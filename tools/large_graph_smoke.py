"""CI smoke test for the large-graph scale-out path.

Builds a ~100k-node graph, persists it into a memory-mapped
:class:`~repro.graphs.store.GraphStore`, then runs a payoff cell batch on
the **process** backend with ``GraphRef`` payloads and asserts the two
scale-out invariants:

* **O(1) payloads** — every submitted job pickles in under
  ``MAX_PAYLOAD_PER_JOB`` bytes, regardless of graph size (the journal's
  ``batch_start.payload_bytes`` is the evidence);
* **bounded memory** — peak RSS of the whole run stays under
  ``MAX_RSS_MB``; the CSR arrays are read through the mmap, snapshot pools
  store packed bitsets, and nothing O(n+m) rides inside job payloads.

Run from the repo root::

    PYTHONPATH=src python tools/large_graph_smoke.py
"""

from __future__ import annotations

import resource
import sys
import tempfile
from pathlib import Path

from repro.cascade.ic import IndependentCascade
from repro.cascade.pools import SnapshotPool
from repro.exec import Executor
from repro.exec.jobs import CompetitiveJob, SpreadJob
from repro.graphs.generators import powerlaw_configuration
from repro.graphs.store import GraphStore, clear_handle_cache
from repro.obs.journal import RunJournal, attached, read_journal
from repro.utils.bitset import is_packed

NODES = 100_000
SEED = 2015
K = 10
ROUNDS = 2
MAX_PAYLOAD_PER_JOB = 8192
MAX_RSS_MB = 512


def peak_rss_mb() -> float:
    """Peak resident set size of this process, in MiB (Linux: ru_maxrss is KiB)."""
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    divisor = 1024 if sys.platform != "darwin" else 1024 * 1024
    return usage / divisor


def main() -> int:
    graph = powerlaw_configuration(NODES, NODES, rng=SEED)
    model = IndependentCascade(0.02)
    seeds = tuple(range(K))

    with tempfile.TemporaryDirectory() as tmp:
        store = GraphStore(Path(tmp) / "store")
        ref = store.save(graph, "smoke")
        csr_bytes = int(
            graph._out_indptr.nbytes
            + graph._out_indices.nbytes
            + graph._in_indptr.nbytes
            + graph._in_indices.nbytes
            + graph._edge_ids.nbytes
        )
        del graph
        clear_handle_cache()
        mapped = ref.open()

        jobs = [
            SpreadJob(graph=ref, model=model, seeds=seeds, rounds=ROUNDS),
            CompetitiveJob(
                graph=ref,
                model=model,
                seed_sets=(seeds, tuple(range(K, 2 * K))),
                rounds=ROUNDS,
                kernel="numpy",
            ),
        ]
        journal_path = Path(tmp) / "smoke.jsonl"
        with RunJournal(journal_path) as journal, attached(journal):
            with Executor("process", workers=2) as executor:
                estimates = executor.estimates(jobs, rng=SEED)
        assert len(estimates) == 2 and estimates[0][0].mean >= K

        starts = [
            e for e in read_journal(journal_path) if e["event"] == "batch_start"
        ]
        assert starts, "no batch_start journaled on the process backend"
        per_job = starts[0]["payload_bytes"] / starts[0]["jobs"]
        assert per_job <= MAX_PAYLOAD_PER_JOB, (
            f"payload {per_job:.0f}B/job exceeds the O(1) ceiling "
            f"{MAX_PAYLOAD_PER_JOB}B (CSR would be {csr_bytes}B)"
        )

        pool = SnapshotPool(mapped)
        pool.token(SEED)
        masks = pool.masks(model, 4)
        assert all(is_packed(m) for m in masks), "pool masks are not packed"

    rss = peak_rss_mb()
    assert rss <= MAX_RSS_MB, (
        f"peak RSS {rss:.0f}MiB exceeds the {MAX_RSS_MB}MiB ceiling"
    )
    print(
        f"large-graph smoke OK: {NODES} nodes, {per_job:.0f}B/job payload "
        f"(CSR {csr_bytes}B), packed pool masks, peak RSS {rss:.0f}MiB "
        f"<= {MAX_RSS_MB}MiB"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
