"""Monte-Carlo estimate container shared by every σ(·) producer.

:class:`SpreadEstimate` is the unit of currency between the simulation
layer and everything above it: simulation jobs (:mod:`repro.exec`) return
tuples of estimates, the payoff table stores them, and the GetReal layer
reads their standard errors to judge whether a pure-NE comparison is
statistically meaningful.

The class lives in its own module (rather than in
:mod:`repro.cascade.simulate`) so the execution engine can depend on it
without importing the estimation entry points that are themselves built on
the engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.errors import CascadeError


@dataclass(frozen=True)
class SpreadEstimate:
    """Monte-Carlo estimate of an expected influence spread."""

    mean: float
    std: float
    samples: int

    @property
    def stderr(self) -> float:
        """Standard error of :attr:`mean`."""
        if self.samples <= 1:
            return float("inf")
        return self.std / np.sqrt(self.samples)

    @classmethod
    def from_values(
        cls, values: Sequence[float] | np.ndarray
    ) -> "SpreadEstimate":
        """Build an estimate from raw simulation values.

        Accepts any sequence; a float64 :class:`numpy.ndarray` is consumed
        as-is (``np.asarray`` on a matching-dtype array is a no-copy view),
        so hot paths can preallocate one buffer per job and hand it over
        without an extra copy.
        """
        arr = np.asarray(values, dtype=float)
        if arr.size == 0:
            raise CascadeError("cannot build an estimate from zero samples")
        std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
        return cls(mean=float(arr.mean()), std=std, samples=int(arr.size))

    def __add__(self, other: "SpreadEstimate") -> "SpreadEstimate":
        """Pool two independent estimates (weighted by sample count).

        Uses the same ``ddof=1`` convention as :meth:`from_values`: the
        sums of squared deviations around the combined mean are added and
        divided by ``n - 1``, so pooling two estimates is exactly
        equivalent to estimating from the concatenated samples.  Pooling is
        commutative up to floating-point rounding, which is what lets the
        execution engine combine job results in completion order.
        """
        if not isinstance(other, SpreadEstimate):
            return NotImplemented
        n = self.samples + other.samples
        mean = (self.mean * self.samples + other.mean * other.samples) / n
        sum_squares = (
            (self.samples - 1) * self.std**2
            + self.samples * (self.mean - mean) ** 2
            + (other.samples - 1) * other.std**2
            + other.samples * (other.mean - mean) ** 2
        )
        std = float(np.sqrt(sum_squares / (n - 1))) if n > 1 else 0.0
        return SpreadEstimate(mean=mean, std=std, samples=n)
