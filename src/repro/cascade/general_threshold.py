"""General Threshold model (Kempe et al. 2003, §"general threshold").

Each node *v* has a monotone activation function ``f_v(S)`` over sets of
active in-neighbours and a random threshold ``θ_v ~ U[0,1]``; *v*
activates once ``f_v(active in-neighbours) ≥ θ_v``.  LT is the special
case ``f_v(S) = Σ_{u∈S} b(u,v)``; IC corresponds to
``f_v(S) = 1 − Π_{u∈S}(1 − p_{uv})``.

The paper's related-work discussion (Borodin et al., WINE'10) extends
competitive influence to threshold models; this module provides the
single-group substrate with pluggable activation functions, so the
library covers the full triggering-model family the paper claims GetReal
is orthogonal to.  Activation functions that are not of triggering form
have no exact live-edge representation — ``sample_live_mask`` raises in
that case rather than silently producing a biased oracle.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.cascade.base import CascadeModel
from repro.errors import CascadeError
from repro.graphs.digraph import DiGraph
from repro.utils.rng import RandomSource, as_rng

#: f(weights_of_active_in_neighbours, in_degree) -> activation level in [0, 1].
ActivationFunction = Callable[[np.ndarray, int], float]


def linear_activation(weights: np.ndarray, in_degree: int) -> float:
    """LT-style: sum of active in-neighbour weights (each 1/in_degree)."""
    if in_degree == 0:
        return 0.0
    return float(weights.sum())


def independent_activation(probability: float) -> ActivationFunction:
    """IC-style: ``1 − (1 − p)^{#active in-neighbours}``."""

    def f(weights: np.ndarray, in_degree: int) -> float:
        return 1.0 - (1.0 - probability) ** weights.shape[0]

    return f


def majority_activation(weights: np.ndarray, in_degree: int) -> float:
    """Deterministic-flavoured: activation level = active fraction, squared.

    Convex in the active fraction — activation needs a *critical mass*,
    the regime studied in complex-contagion work.  Not a triggering model.
    """
    if in_degree == 0:
        return 0.0
    fraction = weights.shape[0] / in_degree
    return float(fraction * fraction)


class GeneralThreshold(CascadeModel):
    """General Threshold model with a pluggable activation function.

    Parameters
    ----------
    activation:
        Function of (active in-neighbour weight array, in-degree) giving
        the activation level compared against the uniform threshold.
        Defaults to :func:`linear_activation` (i.e. LT).
    triggering:
        Declare whether the activation function is of triggering form.
        Only triggering models can provide live-edge snapshots; the LT
        default is triggering.
    """

    name = "gt"

    def __init__(
        self,
        activation: ActivationFunction = linear_activation,
        triggering: bool = True,
    ) -> None:
        self.activation = activation
        self.triggering = bool(triggering)

    def edge_probabilities(self, graph: DiGraph) -> np.ndarray:
        """LT-style weights 1/in_degree(v); used as weights, and as the
        triggering distribution when ``triggering`` is declared."""
        in_deg = graph.in_degrees().astype(float)
        safe = np.maximum(in_deg, 1.0)
        _, dst = graph.edge_array()
        return 1.0 / safe[dst]

    def sample_live_mask(self, graph: DiGraph, rng: RandomSource = None) -> np.ndarray:
        if not self.triggering:
            raise CascadeError(
                "this activation function is not of triggering form; "
                "live-edge snapshots would be biased"
            )
        from repro.cascade.lt import LinearThreshold

        return LinearThreshold().sample_live_mask(graph, rng)

    def simulate(
        self,
        graph: DiGraph,
        seeds: Sequence[int],
        rng: RandomSource = None,
        kernel: str | None = None,
    ) -> np.ndarray:
        """One general-threshold diffusion.

        Arbitrary activation functions have no vectorized kernel; the
        reference walk below runs regardless of *kernel*.
        """
        generator = as_rng(rng)
        n = graph.num_nodes
        thresholds = generator.random(n)
        in_deg = graph.in_degrees()
        weight_in = 1.0 / np.maximum(in_deg.astype(float), 1.0)

        active = np.zeros(n, dtype=bool)
        active_in_count = np.zeros(n, dtype=np.int64)
        frontier: list[int] = []
        for s in seeds:
            if not 0 <= s < n:
                raise CascadeError(f"seed {s} out of range [0, {n})")
            if not active[s]:
                active[s] = True
                frontier.append(int(s))

        while frontier:
            next_frontier: list[int] = []
            touched: set[int] = set()
            for u in frontier:
                # general activation functions: no vectorized kernel form
                for v in graph.out_neighbors(u):  # reprolint: disable=RP007
                    if not active[v]:
                        active_in_count[v] += 1
                        touched.add(int(v))
            # Sorted for a canonical frontier order (RP011): activation here
            # draws no randomness, but downstream consumers see the frontier.
            for v in sorted(touched):
                weights = np.full(active_in_count[v], weight_in[v])
                level = self.activation(weights, int(in_deg[v]))
                if level >= thresholds[v]:
                    active[v] = True
                    next_frontier.append(v)
            frontier = next_frontier
        return active

    def __repr__(self) -> str:
        return f"GeneralThreshold(activation={self.activation.__name__}, triggering={self.triggering})"
