"""Competitive multi-group diffusion (Section 3.2 of the paper).

Two mechanisms distinguish competitive from classical diffusion:

**Seed collisions.**  Groups select their seed sets independently, so a node
may appear in several of them.  The paper's bitmap construction assigns such
a node as an *initiator* of exactly one selecting group, uniformly at random
(:data:`TieBreakRule.UNIFORM`).  The proportional variant criticized in the
paper's discussion of Goyal–Kearns is provided for the ablation bench
(:data:`TieBreakRule.PROPORTIONAL`: weight each selecting group by its count
of uncontested seeds).

**Competitive activation.**  In round ``i+1``, a node *v* with ``t_j``
newly-active in-neighbours of group *j* becomes active with the classical
probability computed from the combined count ``T = Σ_j t_j`` — e.g.
``1 − (1 − p)^T`` under IC — and is then claimed by group *j* with
probability ``t_j / T`` (:data:`ClaimRule.PROPORTIONAL`, the paper's rule).
A winner-take-all variant (most attempts wins, ties uniform) is provided for
ablations.  Once claimed, a node never switches groups (the paper's third
assumption).

The engine accepts any :class:`~repro.cascade.base.CascadeModel`.  Models
that define per-edge success probabilities (IC, WC, and any heterogeneous-p
variant) run through the cascade path; :class:`LinearThreshold` runs through
a threshold path where a node is claimed in proportion to each group's share
of the accumulated in-neighbour weight.

The per-round inner loops live in :mod:`repro.cascade.kernels`, selected by
the engine's ``kernel`` argument (``"python"`` reference walk or the
frontier-batched ``"numpy"`` vectorization).
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field
from collections.abc import Sequence

import numpy as np

from repro.cascade.base import CascadeModel
from repro.cascade.kernels import (
    ClaimRule,
    resolve_kernel,
    run_competitive_cascade,
    run_competitive_threshold,
)
from repro.cascade.lt import LinearThreshold
from repro.errors import CascadeError
from repro.graphs.digraph import DiGraph
from repro.lint import contracts
from repro.obs.metrics import Histogram, counter, histogram
from repro.utils.rng import RandomSource, as_rng

__all__ = [
    "ClaimRule",
    "CompetitiveDiffusion",
    "CompetitiveOutcome",
    "TieBreakRule",
    "assign_initiators",
]

# Cached instrument handles: incremented once per simulation (or round), so
# the per-simulation overhead is a handful of attribute updates (RP004).
_SIMULATIONS = counter("cascade.simulations")
_ROUNDS = counter("cascade.rounds")
_NODES_ACTIVATED = counter("cascade.nodes_activated")
_SEED_COLLISIONS = counter("cascade.seed_collisions")

# Per-group spread histograms have dynamic names ("cascade.group1.spread"…),
# so they are memoized here instead of re-resolved — and re-formatted — on
# every simulation.  Handles survive metrics.reset(), so the cache is safe.
# The memo is written from thread-backend jobs, hence the lock (RP013).
_GROUP_SPREADS: dict[int, Histogram] = {}
_GROUP_SPREADS_LOCK = threading.Lock()


def _group_spread_histogram(group: int) -> Histogram:
    try:
        return _GROUP_SPREADS[group]
    except KeyError:
        with _GROUP_SPREADS_LOCK:
            handle = _GROUP_SPREADS.get(group)
            if handle is None:
                handle = histogram(f"cascade.group{group + 1}.spread")  # reprolint: disable=RP004
                _GROUP_SPREADS[group] = handle
            return handle


class TieBreakRule(enum.Enum):
    """How a seed selected by several groups picks its initiator group."""

    #: Equal chance among the selecting groups (the paper's rule).
    UNIFORM = "uniform"
    #: Weighted by each selecting group's count of uncontested seeds
    #: (a realizable stand-in for the Goyal–Kearns proportional rule).
    PROPORTIONAL = "proportional"


@dataclass
class CompetitiveOutcome:
    """Result of one competitive diffusion.

    Attributes
    ----------
    owner:
        Integer array over nodes; ``owner[v]`` is the group that activated
        *v*, or ``-1`` if *v* stayed inactive.
    initiators:
        Per-group lists of initiator nodes (disjoint; the resolution of seed
        collisions for this run).
    rounds:
        Number of diffusion rounds until quiescence.
    """

    owner: np.ndarray
    initiators: list[list[int]]
    rounds: int
    activation_round: np.ndarray | None = None
    _counts: np.ndarray | None = field(default=None, repr=False)

    @property
    def num_groups(self) -> int:
        return len(self.initiators)

    def spread(self, group: int) -> int:
        """Number of nodes claimed by *group*."""
        return int(self.spreads()[group])

    def spreads(self) -> np.ndarray:
        """Array of claimed-node counts, one entry per group."""
        if self._counts is None:
            counts = np.zeros(self.num_groups, dtype=np.int64)
            claimed = self.owner[self.owner >= 0]
            np.add.at(counts, claimed, 1)
            self._counts = counts
        return self._counts

    @property
    def total_activated(self) -> int:
        """Nodes activated by any group."""
        return int((self.owner >= 0).sum())

    def timeline(self) -> np.ndarray:
        """New activations per (round, group); shape ``(rounds + 1, r)``.

        Row 0 counts the initiators; row *t* the nodes claimed in round
        *t*.  Useful for studying how quickly each campaign saturates its
        share of the market.
        """
        if self.activation_round is None:
            raise ValueError("this outcome was produced without round tracking")
        out = np.zeros((self.rounds + 1, self.num_groups), dtype=np.int64)
        active = self.owner >= 0
        np.add.at(
            out,
            (self.activation_round[active], self.owner[active]),
            1,
        )
        return out


def assign_initiators(
    num_nodes: int,
    seed_sets: Sequence[Sequence[int]],
    tie_break: TieBreakRule = TieBreakRule.UNIFORM,
    rng: RandomSource = None,
) -> list[list[int]]:
    """Resolve seed collisions: map overlapping seed sets to disjoint initiator sets.

    Implements the bitmap construction of Section 3.2: a seed selected only
    by group *i* always initiates for *i*; a seed selected by groups
    ``{j1..js, i}`` initiates for exactly one of them (uniformly under the
    paper's rule).
    """
    generator = as_rng(rng)
    r = len(seed_sets)
    if r == 0:
        return []

    selectors: dict[int, list[int]] = {}
    for i, seeds in enumerate(seed_sets):
        for s in seeds:
            if not 0 <= s < num_nodes:
                raise CascadeError(f"seed {s} out of range [0, {num_nodes})")
            groups = selectors.setdefault(int(s), [])
            if i not in groups:
                groups.append(i)

    if tie_break is TieBreakRule.PROPORTIONAL:
        exclusive = np.zeros(r, dtype=float)
        for groups in selectors.values():
            if len(groups) == 1:
                exclusive[groups[0]] += 1.0
    initiators: list[list[int]] = [[] for _ in range(r)]
    contested = 0
    for node, groups in selectors.items():
        if len(groups) == 1:
            winner = groups[0]
        elif tie_break is TieBreakRule.UNIFORM:
            contested += 1
            winner = groups[int(generator.integers(0, len(groups)))]
        else:
            contested += 1
            weights = np.array([exclusive[g] for g in groups])
            if weights.sum() == 0:
                winner = groups[int(generator.integers(0, len(groups)))]
            else:
                weights = weights / weights.sum()
                winner = groups[int(generator.choice(len(groups), p=weights))]
        initiators[winner].append(node)
    if contested:
        _SEED_COLLISIONS.inc(contested)
    return initiators


class CompetitiveDiffusion:
    """Simultaneous multi-group diffusion engine.

    Parameters
    ----------
    graph:
        The network.
    model:
        Any :class:`CascadeModel`; IC/WC-style models run the cascade path,
        :class:`LinearThreshold` the threshold path.
    tie_break:
        Seed-collision rule (see :class:`TieBreakRule`).
    claim_rule:
        Node-attribution rule (see :class:`ClaimRule`).
    kernel:
        Diffusion kernel (``"python"`` or ``"numpy"``); ``None`` falls back
        to ``REPRO_KERNEL`` — see :mod:`repro.cascade.kernels`.
    """

    def __init__(
        self,
        graph: DiGraph,
        model: CascadeModel,
        tie_break: TieBreakRule = TieBreakRule.UNIFORM,
        claim_rule: ClaimRule = ClaimRule.PROPORTIONAL,
        kernel: str | None = None,
    ) -> None:
        self.graph = graph
        self.model = model
        self.tie_break = tie_break
        self.claim_rule = claim_rule
        self.kernel = resolve_kernel(kernel)
        self._edge_probs: np.ndarray | None = None

    def _probs(self) -> np.ndarray:
        if self._edge_probs is None:
            self._edge_probs = self.model.edge_probabilities(self.graph)
        return self._edge_probs

    def run(
        self,
        seed_sets: Sequence[Sequence[int]],
        rng: RandomSource = None,
    ) -> CompetitiveOutcome:
        """Run one competitive diffusion; returns the per-node ownership."""
        if not seed_sets:
            raise CascadeError("at least one seed set is required")
        generator = as_rng(rng)
        contracts_on = contracts.enabled()
        if contracts_on and not isinstance(self.model, LinearThreshold):
            contracts.check_probabilities(self._probs(), "edge probabilities")
        initiators = assign_initiators(
            self.graph.num_nodes, seed_sets, self.tie_break, generator
        )
        if isinstance(self.model, LinearThreshold):
            owner, rounds, when = run_competitive_threshold(
                self.graph, initiators, self.claim_rule, generator, self.kernel
            )
        else:
            owner, rounds, when = run_competitive_cascade(
                self.graph,
                self._probs(),
                initiators,
                self.claim_rule,
                generator,
                self.kernel,
            )
        outcome = CompetitiveOutcome(
            owner=owner,
            initiators=initiators,
            rounds=rounds,
            activation_round=when,
        )
        spreads = outcome.spreads()
        if contracts_on:
            contracts.check_ownership(owner, initiators, len(seed_sets))
            contracts.check_spreads(spreads, self.graph.num_nodes)
        _SIMULATIONS.inc()
        _ROUNDS.inc(rounds)
        _NODES_ACTIVATED.inc(int(spreads.sum()))
        for j in range(outcome.num_groups):
            _group_spread_histogram(j).observe(float(spreads[j]))
        return outcome
