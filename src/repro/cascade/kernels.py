"""Diffusion kernels: the per-round inner loops behind every simulation.

Two interchangeable implementations of the same diffusion semantics live
here, selected by the ``kernel`` argument (or the ``REPRO_KERNEL``
environment variable):

``python``
    The reference implementation: explicit frontier walks, one node and one
    edge at a time.  Easy to audit against Section 3.2 of the paper and the
    default everywhere.

``numpy``
    A frontier-batched vectorization of the same process.  Each round
    expands *all* frontier out-edges at once with ``np.repeat``/fancy
    indexing over the CSR arrays, reduces per-target attempt counts and the
    survival product ``Π(1 - p_e)`` with segmented reductions
    (``np.multiply.reduceat`` / ``np.bincount``), and resolves activation
    plus PROPORTIONAL / WINNER_TAKE_ALL claims for the whole round in one
    vectorized pass.  The LT pressure path and the snapshot-oracle
    reachability BFS get the same treatment (a mask-filtered CSR frontier
    sweep).

**Determinism contract.**  Both kernels draw every random variate from the
caller's :class:`numpy.random.Generator`, so for a fixed master seed each
kernel is bit-identical to itself across backends and worker counts (the
SeedSequence discipline of :mod:`repro.exec`).  The kernels consume
randomness in different orders, however, so they are *not* bit-identical to
each other — they are statistically equivalent: per-node activation and
claim probabilities match exactly, only the sample paths differ.  The
equivalence suite (``tests/test_kernel_equivalence.py``) checks both halves
of this contract.

Per-node Python diffusion loops outside this module are flagged by
reprolint rule RP007.
"""

from __future__ import annotations

import enum
import os
from collections.abc import Sequence

import numpy as np

from repro.errors import CascadeError, GraphError
from repro.graphs.digraph import DiGraph
from repro.obs.metrics import histogram, counter
from repro.utils.bitset import is_packed, lookup_bits, lookup_bits_rows, num_words

#: Environment variable selecting the process-wide default kernel.
KERNEL_ENV_VAR = "REPRO_KERNEL"

#: Known kernel names, in documentation order.
KERNELS = ("python", "numpy")

# Cached instrument handles (RP004): one counter pair per kernel so metrics
# record which implementation actually ran, exec.*-style.
_SIMULATIONS = {name: counter(f"kernel.{name}.simulations") for name in KERNELS}
_SWEEPS = {name: counter(f"kernel.{name}.sweeps") for name in KERNELS}
_FRONTIER_SIZE = histogram("cascade.frontier_size")


def resolve_kernel(kernel: str | None = None) -> str:
    """Resolve *kernel* to a concrete kernel name.

    ``None`` falls back to ``REPRO_KERNEL`` (default ``python``); anything
    outside :data:`KERNELS` raises :class:`CascadeError`.
    """
    resolved = kernel or os.environ.get(KERNEL_ENV_VAR, "").strip() or "python"
    if resolved not in KERNELS:
        raise CascadeError(
            f"unknown cascade kernel {resolved!r}; known: {sorted(KERNELS)}"
        )
    return resolved


class ClaimRule(enum.Enum):
    """How an activated node is attributed to one of the attacking groups."""

    #: Probability ``t_j / Σt_j`` (the paper's rule).
    PROPORTIONAL = "proportional"
    #: The group with the most attempts wins; ties broken uniformly.
    WINNER_TAKE_ALL = "winner_take_all"


def claim_group(
    weights: np.ndarray,
    claim_rule: ClaimRule,
    generator: np.random.Generator,
) -> int:
    """Pick the claiming group for one node given per-group attempt weights."""
    total = weights.sum()
    if claim_rule is ClaimRule.PROPORTIONAL:
        return int(generator.choice(weights.shape[0], p=weights / total))
    best = weights.max()
    winners = np.flatnonzero(weights == best)
    return int(winners[generator.integers(0, winners.shape[0])])


# ---------------------------------------------------------------------- #
# CSR frontier expansion (shared by every numpy kernel)
# ---------------------------------------------------------------------- #


def _frontier_edges(
    graph: DiGraph, frontier: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All out-edges of *frontier* at once: (targets, edge ids, out-degrees).

    ``targets``/``eids`` are flat, ordered frontier-node-major; ``degs``
    aligns with *frontier* so callers can ``np.repeat`` per-source values
    onto the edge axis.
    """
    indptr = graph.out_indptr
    starts = indptr[frontier]
    degs = indptr[frontier + 1] - starts
    total = int(degs.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, degs
    ends = np.cumsum(degs)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(ends - degs, degs)
    pos = np.repeat(starts, degs) + offsets
    targets = graph.out_indices[pos].astype(np.int64)
    eids = graph.edge_ids[pos]
    return targets, eids, degs


def _claim_batch(
    weights: np.ndarray,
    claim_rule: ClaimRule,
    generator: np.random.Generator,
) -> np.ndarray:
    """Vectorized :func:`claim_group` over a ``(nodes, groups)`` weight matrix.

    One uniform draw per node resolves the claim: inverse-CDF over the
    per-node weight rows for PROPORTIONAL, an index into the tied-maximum
    set for WINNER_TAKE_ALL — the same distributions as the scalar path.
    """
    m = weights.shape[0]
    if m == 0:
        return np.empty(0, dtype=np.int64)
    draws = generator.random(m)
    if claim_rule is ClaimRule.PROPORTIONAL:
        cum = np.cumsum(weights, axis=1)
        points = draws * cum[:, -1]
        return np.asarray((points[:, None] < cum).argmax(axis=1), dtype=np.int64)
    best = weights.max(axis=1, keepdims=True)
    wins = np.cumsum(weights == best, axis=1)
    nwin = wins[:, -1]
    pick = np.minimum((draws * nwin).astype(np.int64), nwin - 1)
    return np.asarray((wins > pick[:, None]).argmax(axis=1), dtype=np.int64)


def _initial_owner(
    num_nodes: int, initiators: Sequence[Sequence[int]]
) -> tuple[np.ndarray, np.ndarray]:
    """Ownership array seeded from disjoint initiator sets, plus the frontier."""
    owner = np.full(num_nodes, -1, dtype=np.int64)
    for j, nodes in enumerate(initiators):
        owner[np.asarray(list(nodes), dtype=np.int64)] = j
    return owner, np.flatnonzero(owner >= 0)


# ---------------------------------------------------------------------- #
# competitive cascade path (IC / WC / heterogeneous-probability models)
# ---------------------------------------------------------------------- #


def run_competitive_cascade(
    graph: DiGraph,
    probs: np.ndarray,
    initiators: Sequence[Sequence[int]],
    claim_rule: ClaimRule,
    generator: np.random.Generator,
    kernel: str | None = None,
) -> tuple[np.ndarray, int, np.ndarray]:
    """One competitive cascade; returns ``(owner, rounds, activation_round)``.

    Nodes are activated with the combined probability ``1 - Π(1 - p_e)``
    over all attempting edges and claimed per *claim_rule* (Section 3.2).
    """
    resolved = resolve_kernel(kernel)
    _SIMULATIONS[resolved].inc()
    if resolved == "numpy":
        return _competitive_cascade_numpy(
            graph, probs, initiators, claim_rule, generator
        )
    return _competitive_cascade_python(graph, probs, initiators, claim_rule, generator)


def _competitive_cascade_python(
    graph: DiGraph,
    probs: np.ndarray,
    initiators: Sequence[Sequence[int]],
    claim_rule: ClaimRule,
    generator: np.random.Generator,
) -> tuple[np.ndarray, int, np.ndarray]:
    r = len(initiators)
    owner = np.full(graph.num_nodes, -1, dtype=np.int64)
    when = np.zeros(graph.num_nodes, dtype=np.int64)
    frontiers: list[list[int]] = []
    for j, nodes in enumerate(initiators):
        for v in nodes:
            owner[v] = j
        frontiers.append(list(nodes))

    rounds = 0
    while any(frontiers):
        rounds += 1
        # attempts[v] = (per-group counts, running product of (1 - p)).
        attempts: dict[int, tuple[np.ndarray, float]] = {}
        for j in range(r):
            for u in frontiers[j]:
                nbrs = graph.out_neighbors(u)
                if nbrs.size == 0:
                    continue
                eids = graph.out_edge_ids(u)
                for v, eid in zip(nbrs, eids):
                    if owner[v] >= 0:
                        continue
                    counts, survive = attempts.get(
                        int(v), (np.zeros(r, dtype=np.int64), 1.0)
                    )
                    counts[j] += 1
                    attempts[int(v)] = (counts, survive * (1.0 - probs[eid]))

        next_frontiers: list[list[int]] = [[] for _ in range(r)]
        for v, (counts, survive) in attempts.items():
            # Combined activation probability: 1 - Π(1 - p_e) over all
            # attempting edges; equals 1 - (1 - p)^T for uniform p,
            # the paper's Section 3.2 formula.
            if generator.random() < 1.0 - survive:
                winner = claim_group(counts.astype(float), claim_rule, generator)
                owner[v] = winner
                when[v] = rounds
                next_frontiers[winner].append(v)
        frontiers = next_frontiers
        _FRONTIER_SIZE.observe(sum(len(f) for f in frontiers))
    return owner, rounds, when


def _competitive_cascade_numpy(
    graph: DiGraph,
    probs: np.ndarray,
    initiators: Sequence[Sequence[int]],
    claim_rule: ClaimRule,
    generator: np.random.Generator,
) -> tuple[np.ndarray, int, np.ndarray]:
    r = len(initiators)
    owner, frontier = _initial_owner(graph.num_nodes, initiators)
    when = np.zeros(graph.num_nodes, dtype=np.int64)

    rounds = 0
    while frontier.size:
        rounds += 1
        targets, eids, degs = _frontier_edges(graph, frontier)
        groups = np.repeat(owner[frontier], degs)
        live = owner[targets] < 0
        targets, eids, groups = targets[live], eids[live], groups[live]
        if targets.size:
            # Segment the flat edge list by target node: one segment per
            # unique target, per-group attempt counts via bincount over
            # (segment, group) keys, survival Π(1 - p_e) via reduceat.
            order = np.argsort(targets, kind="stable")
            t_sorted = targets[order]
            seg_head = np.r_[True, t_sorted[1:] != t_sorted[:-1]]
            seg_starts = np.flatnonzero(seg_head)
            uniq = t_sorted[seg_starts]
            survive = np.multiply.reduceat(1.0 - probs[eids[order]], seg_starts)
            slots = np.cumsum(seg_head) - 1
            counts = np.bincount(
                slots * r + groups[order], minlength=uniq.size * r
            ).reshape(uniq.size, r)
            activated = generator.random(uniq.size) < 1.0 - survive
            new_nodes = uniq[activated]
            winners = _claim_batch(
                counts[activated].astype(float), claim_rule, generator
            )
            owner[new_nodes] = winners
            when[new_nodes] = rounds
            frontier = new_nodes
        else:
            frontier = targets
        _FRONTIER_SIZE.observe(float(frontier.size))
    return owner, rounds, when


# ---------------------------------------------------------------------- #
# competitive threshold path (LT)
# ---------------------------------------------------------------------- #


def run_competitive_threshold(
    graph: DiGraph,
    initiators: Sequence[Sequence[int]],
    claim_rule: ClaimRule,
    generator: np.random.Generator,
    kernel: str | None = None,
) -> tuple[np.ndarray, int, np.ndarray]:
    """One competitive LT diffusion; returns ``(owner, rounds, activation_round)``.

    A node activates once the summed ``1/in_degree`` weight of its active
    in-neighbours reaches its uniform threshold, and is claimed in
    proportion to each group's share of that accumulated weight (the LT
    analogue of ``t_j / Σt_j``).
    """
    resolved = resolve_kernel(kernel)
    _SIMULATIONS[resolved].inc()
    if resolved == "numpy":
        return _competitive_threshold_numpy(graph, initiators, claim_rule, generator)
    return _competitive_threshold_python(graph, initiators, claim_rule, generator)


def _competitive_threshold_python(
    graph: DiGraph,
    initiators: Sequence[Sequence[int]],
    claim_rule: ClaimRule,
    generator: np.random.Generator,
) -> tuple[np.ndarray, int, np.ndarray]:
    n = graph.num_nodes
    r = len(initiators)
    thresholds = generator.random(n)
    weight_in = 1.0 / np.maximum(graph.in_degrees().astype(float), 1.0)

    owner = np.full(n, -1, dtype=np.int64)
    when = np.zeros(n, dtype=np.int64)
    pressure = np.zeros((n, r))
    frontiers: list[list[int]] = []
    for j, nodes in enumerate(initiators):
        for v in nodes:
            owner[v] = j
        frontiers.append(list(nodes))

    rounds = 0
    while any(frontiers):
        rounds += 1
        touched: set[int] = set()
        for j in range(r):
            for u in frontiers[j]:
                for v in graph.out_neighbors(u):
                    if owner[v] < 0:
                        pressure[v, j] += weight_in[v]
                        touched.add(int(v))

        next_frontiers: list[list[int]] = [[] for _ in range(r)]
        # Sorted so the claim_group draw order — and thus the whole
        # trajectory — is deterministic by construction, not by the accident
        # of CPython's int-set iteration order (RP011).
        for v in sorted(touched):
            total = pressure[v].sum()
            if total >= thresholds[v]:
                # Claim in proportion to each group's share of the
                # accumulated weight (the LT analogue of t_j / Σt_j).
                winner = claim_group(pressure[v].copy(), claim_rule, generator)
                owner[v] = winner
                when[v] = rounds
                next_frontiers[winner].append(v)
        frontiers = next_frontiers
        _FRONTIER_SIZE.observe(sum(len(f) for f in frontiers))
    return owner, rounds, when


def _competitive_threshold_numpy(
    graph: DiGraph,
    initiators: Sequence[Sequence[int]],
    claim_rule: ClaimRule,
    generator: np.random.Generator,
) -> tuple[np.ndarray, int, np.ndarray]:
    n = graph.num_nodes
    r = len(initiators)
    thresholds = generator.random(n)
    weight_in = 1.0 / np.maximum(graph.in_degrees().astype(float), 1.0)

    owner, frontier = _initial_owner(n, initiators)
    when = np.zeros(n, dtype=np.int64)
    pressure = np.zeros((n, r))

    rounds = 0
    while frontier.size:
        rounds += 1
        targets, _, degs = _frontier_edges(graph, frontier)
        groups = np.repeat(owner[frontier], degs)
        live = owner[targets] < 0
        targets, groups = targets[live], groups[live]
        if targets.size:
            np.add.at(pressure, (targets, groups), weight_in[targets])
            touched = np.unique(targets)
            crossed = pressure[touched].sum(axis=1) >= thresholds[touched]
            new_nodes = touched[crossed]
            winners = _claim_batch(pressure[new_nodes], claim_rule, generator)
            owner[new_nodes] = winners
            when[new_nodes] = rounds
            frontier = new_nodes
        else:
            frontier = targets
        _FRONTIER_SIZE.observe(float(frontier.size))
    return owner, rounds, when


# ---------------------------------------------------------------------- #
# single-group simulation (classical spread)
# ---------------------------------------------------------------------- #


def simulate_cascade(
    graph: DiGraph,
    probs: np.ndarray,
    seeds: Sequence[int],
    generator: np.random.Generator,
    kernel: str | None = None,
) -> np.ndarray:
    """One single-group cascade from *seeds*; returns the active-node mask."""
    resolved = resolve_kernel(kernel)
    _SIMULATIONS[resolved].inc()
    if resolved == "numpy":
        return _simulate_cascade_numpy(graph, probs, seeds, generator)
    return _simulate_cascade_python(graph, probs, seeds, generator)


def _checked_seed_array(num_nodes: int, seeds: Sequence[int]) -> np.ndarray:
    seed_arr = np.asarray([int(s) for s in seeds], dtype=np.int64)
    bad = (seed_arr < 0) | (seed_arr >= num_nodes)
    if bad.any():
        first = int(seed_arr[bad][0])
        raise CascadeError(f"seed {first} out of range [0, {num_nodes})")
    return seed_arr


def _simulate_cascade_python(
    graph: DiGraph,
    probs: np.ndarray,
    seeds: Sequence[int],
    generator: np.random.Generator,
) -> np.ndarray:
    active = np.zeros(graph.num_nodes, dtype=bool)
    frontier: list[int] = []
    for s in seeds:
        if not 0 <= s < graph.num_nodes:
            raise CascadeError(f"seed {s} out of range [0, {graph.num_nodes})")
        if not active[s]:
            active[s] = True
            frontier.append(int(s))

    while frontier:
        next_frontier: list[int] = []
        for u in frontier:
            nbrs = graph.out_neighbors(u)
            if nbrs.size == 0:
                continue
            eids = graph.out_edge_ids(u)
            hits = generator.random(nbrs.size) < probs[eids]
            for v in nbrs[hits]:
                if not active[v]:
                    active[v] = True
                    next_frontier.append(int(v))
        frontier = next_frontier
    return active


def _simulate_cascade_numpy(
    graph: DiGraph,
    probs: np.ndarray,
    seeds: Sequence[int],
    generator: np.random.Generator,
) -> np.ndarray:
    active = np.zeros(graph.num_nodes, dtype=bool)
    frontier = np.unique(_checked_seed_array(graph.num_nodes, seeds))
    active[frontier] = True
    while frontier.size:
        targets, eids, _ = _frontier_edges(graph, frontier)
        live = ~active[targets]
        targets, eids = targets[live], eids[live]
        if targets.size == 0:
            break
        order = np.argsort(targets, kind="stable")
        t_sorted = targets[order]
        seg_head = np.r_[True, t_sorted[1:] != t_sorted[:-1]]
        seg_starts = np.flatnonzero(seg_head)
        uniq = t_sorted[seg_starts]
        survive = np.multiply.reduceat(1.0 - probs[eids[order]], seg_starts)
        hits = generator.random(uniq.size) < 1.0 - survive
        frontier = uniq[hits]
        active[frontier] = True
    return active


def simulate_threshold(
    graph: DiGraph,
    seeds: Sequence[int],
    generator: np.random.Generator,
    kernel: str | None = None,
) -> np.ndarray:
    """One single-group LT diffusion from *seeds*; returns the active-node mask."""
    resolved = resolve_kernel(kernel)
    _SIMULATIONS[resolved].inc()
    if resolved == "numpy":
        return _simulate_threshold_numpy(graph, seeds, generator)
    return _simulate_threshold_python(graph, seeds, generator)


def _simulate_threshold_python(
    graph: DiGraph,
    seeds: Sequence[int],
    generator: np.random.Generator,
) -> np.ndarray:
    n = graph.num_nodes
    thresholds = generator.random(n)
    in_deg = graph.in_degrees().astype(float)
    weight_in = 1.0 / np.maximum(in_deg, 1.0)

    active = np.zeros(n, dtype=bool)
    pressure = np.zeros(n)  # summed weight of active in-neighbours
    frontier: list[int] = []
    for s in seeds:
        if not 0 <= s < n:
            raise CascadeError(f"seed {s} out of range [0, {n})")
        if not active[s]:
            active[s] = True
            frontier.append(int(s))

    while frontier:
        next_frontier: list[int] = []
        for u in frontier:
            for v in graph.out_neighbors(u):
                if active[v]:
                    continue
                pressure[v] += weight_in[v]
                if pressure[v] >= thresholds[v]:
                    active[v] = True
                    next_frontier.append(int(v))
        frontier = next_frontier
    return active


def _simulate_threshold_numpy(
    graph: DiGraph,
    seeds: Sequence[int],
    generator: np.random.Generator,
) -> np.ndarray:
    n = graph.num_nodes
    thresholds = generator.random(n)
    weight_in = 1.0 / np.maximum(graph.in_degrees().astype(float), 1.0)

    active = np.zeros(n, dtype=bool)
    pressure = np.zeros(n)
    frontier = np.unique(_checked_seed_array(n, seeds))
    active[frontier] = True
    while frontier.size:
        targets, _, _ = _frontier_edges(graph, frontier)
        targets = targets[~active[targets]]
        if targets.size == 0:
            break
        np.add.at(pressure, targets, weight_in[targets])
        touched = np.unique(targets)
        frontier = touched[pressure[touched] >= thresholds[touched]]
        active[frontier] = True
    return active


# ---------------------------------------------------------------------- #
# reachability sweeps (snapshot oracle / live-edge possible worlds)
# ---------------------------------------------------------------------- #


def _sweep_numpy(
    graph: DiGraph,
    edge_mask: np.ndarray | None,
    frontier: np.ndarray,
    visited: np.ndarray,
) -> None:
    """Mask-filtered CSR frontier sweep; marks everything reachable in *visited*.

    *edge_mask* may be a boolean-style array of length *m* or its packed
    bitset equivalent (:mod:`repro.utils.bitset`); both filter identically.
    """
    while frontier.size:
        targets, eids, _ = _frontier_edges(graph, frontier)
        if edge_mask is not None and targets.size:
            keep = lookup_bits(edge_mask, eids)
            targets = targets[keep]
        if targets.size:
            targets = targets[~visited[targets]]
        if targets.size == 0:
            return
        frontier = np.unique(targets)
        visited[frontier] = True


def reachable_mask(
    graph: DiGraph,
    sources: Sequence[int],
    edge_mask: np.ndarray | None = None,
    kernel: str | None = None,
) -> np.ndarray:
    """Boolean array marking nodes reachable from *sources* (mask-filtered)."""
    resolved = resolve_kernel(kernel)
    _SWEEPS[resolved].inc()
    if resolved == "python":
        return graph.reachable_from(sources, edge_mask)
    visited = np.zeros(graph.num_nodes, dtype=bool)
    frontier: list[int] = []
    for s in sources:
        node = int(s)
        if not 0 <= node < graph.num_nodes:
            raise GraphError(f"node {node} out of range [0, {graph.num_nodes})")
        if not visited[node]:
            visited[node] = True
            frontier.append(node)
    _sweep_numpy(graph, edge_mask, np.asarray(frontier, dtype=np.int64), visited)
    return visited


def reachable_mask_batch(
    graph: DiGraph,
    sources: Sequence[int],
    mask_matrix: np.ndarray,
    kernel: str | None = None,
) -> np.ndarray:
    """Per-snapshot reachability over a stacked ``(snapshots, edges)`` mask.

    Row *s* of the returned ``(snapshots, nodes)`` boolean matrix equals
    ``reachable_mask(graph, sources, mask_matrix[s])`` bit for bit.  The
    python kernel is that per-mask loop verbatim; the numpy kernel runs one
    frontier sweep over flat ``(snapshot, node)`` pairs, so a snapshot whose
    cascade dies early drops out of the frontier while live snapshots keep
    expanding — the batched analogue of the per-mask early exit.

    *mask_matrix* is either boolean-style ``(snapshots, edges)`` or packed
    ``(snapshots, words)`` ``uint64`` rows (:mod:`repro.utils.bitset`);
    results are bit-identical between the two representations.
    """
    resolved = resolve_kernel(kernel)
    expected_width = (
        num_words(graph.num_edges) if is_packed(mask_matrix) else graph.num_edges
    )
    if mask_matrix.ndim != 2 or mask_matrix.shape[1] != expected_width:
        raise CascadeError(
            f"mask matrix shape {mask_matrix.shape} does not match "
            f"(snapshots, {expected_width})"
        )
    num_snaps = mask_matrix.shape[0]
    _SWEEPS[resolved].inc(num_snaps)
    if resolved == "python":
        rows = [graph.reachable_from(sources, mask_matrix[s]) for s in range(num_snaps)]
        if not rows:
            return np.zeros((0, graph.num_nodes), dtype=bool)
        return np.stack(rows)
    visited = np.zeros((num_snaps, graph.num_nodes), dtype=bool)
    starts: list[int] = []
    for s in sources:
        node = int(s)
        if not 0 <= node < graph.num_nodes:
            raise GraphError(f"node {node} out of range [0, {graph.num_nodes})")
        starts.append(node)
    if not starts or num_snaps == 0:
        return visited
    uniq = np.unique(np.asarray(starts, dtype=np.int64))
    visited[:, uniq] = True
    n = graph.num_nodes
    snap_f = np.repeat(np.arange(num_snaps, dtype=np.int64), uniq.size)
    node_f = np.tile(uniq, num_snaps)
    while node_f.size:
        targets, eids, degs = _frontier_edges(graph, node_f)
        if targets.size == 0:
            break
        snaps = np.repeat(snap_f, degs)
        live = lookup_bits_rows(mask_matrix, snaps, eids)
        targets, snaps = targets[live], snaps[live]
        if targets.size:
            fresh = ~visited[snaps, targets]
            targets, snaps = targets[fresh], snaps[fresh]
        if targets.size == 0:
            break
        keys = np.unique(snaps * n + targets)
        snap_f, node_f = keys // n, keys % n
        visited[snap_f, node_f] = True
    return visited


def count_new_reachable(
    graph: DiGraph,
    mask: np.ndarray,
    start: int,
    reached: np.ndarray,
    kernel: str | None = None,
) -> int:
    """Nodes reachable from *start* that are not in *reached* (no mutation).

    The sweep stops at already-reached nodes: in a live-edge world,
    everything reachable from a reached node is itself already reached.
    """
    resolved = resolve_kernel(kernel)
    _SWEEPS[resolved].inc()
    if reached[start]:
        return 0
    if resolved == "numpy":
        visited = reached.copy()
        visited[start] = True
        _sweep_numpy(graph, mask, np.asarray([start], dtype=np.int64), visited)
        return int(visited.sum() - reached.sum())
    visited = {int(start)}
    stack = [int(start)]
    count = 0
    while stack:
        u = stack.pop()
        count += 1
        lo, hi = graph.out_indptr[u], graph.out_indptr[u + 1]
        nbrs = graph.out_indices[lo:hi]
        live = lookup_bits(mask, graph.out_edge_ids(u))
        for v in nbrs[live]:
            node = int(v)
            if node not in visited and not reached[node]:
                visited.add(node)
                stack.append(node)
    return count


def absorb_reachable(
    graph: DiGraph,
    mask: np.ndarray,
    start: int,
    reached: np.ndarray,
    kernel: str | None = None,
) -> None:
    """Mark everything reachable from *start* in *reached* (mutates)."""
    resolved = resolve_kernel(kernel)
    _SWEEPS[resolved].inc()
    if reached[start]:
        return
    reached[start] = True
    if resolved == "numpy":
        _sweep_numpy(graph, mask, np.asarray([start], dtype=np.int64), reached)
        return
    stack = [int(start)]
    while stack:
        u = stack.pop()
        lo, hi = graph.out_indptr[u], graph.out_indptr[u + 1]
        nbrs = graph.out_indices[lo:hi]
        live = lookup_bits(mask, graph.out_edge_ids(u))
        for v in nbrs[live]:
            node = int(v)
            if not reached[node]:
                reached[node] = True
                stack.append(node)
