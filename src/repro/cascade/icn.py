"""IC-N: Independent Cascade with Negative opinions (Chen et al., SDM'11).

Cited as [6] in the paper's related work.  Product quality enters the
diffusion: when a node adopts, it turns *negative* with probability
``1 − q`` (a bad experience) and then spreads negativity — its neighbours
who activate through it become negative deterministically.  The quantity
maximized is the expected number of **positive** adopters.

Single-group model: the paper's competitive engine attributes nodes to
groups, whereas IC-N attributes sentiment within one campaign.  The class
deliberately reports positive adopters from :meth:`simulate`, so every
spread estimator and seed-selection algorithm in this library maximizes
positive influence under IC-N without modification.  ``sample_live_mask``
raises — positive spread is not a reachability quantity, so snapshot
greedy (MixGreedy) does not apply; use CELF-free heuristics or RIS-free
selectors (DegreeDiscount and friends) or plain Monte-Carlo greedy.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.cascade.base import CascadeModel
from repro.errors import CascadeError
from repro.graphs.digraph import DiGraph
from repro.utils.rng import RandomSource, as_rng
from repro.utils.validation import check_probability


class NegativeAwareCascade(CascadeModel):
    """IC-N with edge probability *p* and quality factor *q*.

    ``q = 1`` reduces exactly to IC (verified by the test suite); lower
    *q* shrinks the positive spread super-linearly because negativity
    propagates deterministically once it appears.
    """

    name = "icn"

    def __init__(self, probability: float = 0.01, quality: float = 0.9) -> None:
        self.probability = check_probability(probability, "probability")
        self.quality = check_probability(quality, "quality")

    def edge_probabilities(self, graph: DiGraph) -> np.ndarray:
        return np.full(graph.num_edges, self.probability)

    def sample_live_mask(self, graph: DiGraph, rng: RandomSource = None) -> np.ndarray:
        raise CascadeError(
            "IC-N's positive spread is not a live-edge reachability "
            "quantity; snapshot-based algorithms do not apply"
        )

    def simulate(
        self,
        graph: DiGraph,
        seeds: Sequence[int],
        rng: RandomSource = None,
        kernel: str | None = None,
    ) -> np.ndarray:
        """One IC-N diffusion; returns the **positive** adopter indicator.

        IC-N's per-node quality sampling has no vectorized kernel; the
        reference walk below runs regardless of *kernel*.
        """
        generator = as_rng(rng)
        n = graph.num_nodes
        # state: 0 inactive, 1 positive, 2 negative.
        state = np.zeros(n, dtype=np.int8)
        frontier: list[int] = []
        for s in seeds:
            if not 0 <= s < n:
                raise CascadeError(f"seed {s} out of range [0, {n})")
            if state[s] == 0:
                # Seeds sample their own experience too (Chen et al.).
                state[s] = 1 if generator.random() < self.quality else 2
                frontier.append(int(s))

        while frontier:
            next_frontier: list[int] = []
            for u in frontier:
                negative_parent = state[u] == 2
                # IC-N's per-node quality draw: no vectorized kernel form
                nbrs = graph.out_neighbors(u)  # reprolint: disable=RP007
                if nbrs.size == 0:
                    continue
                hits = generator.random(nbrs.size) < self.probability
                for v in nbrs[hits]:
                    v = int(v)
                    if state[v] != 0:
                        continue
                    if negative_parent:
                        state[v] = 2  # negativity dominates
                    else:
                        state[v] = (
                            1 if generator.random() < self.quality else 2
                        )
                    next_frontier.append(v)
            frontier = next_frontier
        return state == 1

    def sentiment_spread(
        self,
        graph: DiGraph,
        seeds: Sequence[int],
        rng: RandomSource = None,
    ) -> tuple[int, int]:
        """One simulation's (positive count, negative count)."""
        generator = as_rng(rng)
        n = graph.num_nodes
        state = np.zeros(n, dtype=np.int8)
        frontier: list[int] = []
        for s in seeds:
            if not 0 <= s < n:
                raise CascadeError(f"seed {s} out of range [0, {n})")
            if state[s] == 0:
                state[s] = 1 if generator.random() < self.quality else 2
                frontier.append(int(s))
        while frontier:
            next_frontier: list[int] = []
            for u in frontier:
                negative_parent = state[u] == 2
                # IC-N's per-node quality draw: no vectorized kernel form
                nbrs = graph.out_neighbors(u)  # reprolint: disable=RP007
                if nbrs.size == 0:
                    continue
                hits = generator.random(nbrs.size) < self.probability
                for v in nbrs[hits]:
                    v = int(v)
                    if state[v] != 0:
                        continue
                    state[v] = 2 if negative_parent else (
                        1 if generator.random() < self.quality else 2
                    )
                    next_frontier.append(v)
            frontier = next_frontier
        return int((state == 1).sum()), int((state == 2).sum())

    def __repr__(self) -> str:
        return f"NegativeAwareCascade(p={self.probability}, q={self.quality})"
