"""All-source reachability on live-edge snapshots.

``NewGreedy`` (Chen, Wang & Yang, KDD'09) — the first round of MixGreedy —
needs, for each snapshot, the size of the reachable set of *every* node.
Running a BFS from each node is quadratic in the worst case; instead we
condense the live subgraph into its strongly connected components (iterative
Tarjan) and propagate reachable-set *bitsets* through the condensation DAG
in reverse topological order.  Bitsets are freed as soon as every parent has
consumed them, so peak memory tracks the DAG frontier rather than the whole
graph.

The DP bitsets are packed ``uint64`` words (:mod:`repro.utils.bitset`) —
one bit per node instead of a byte — so the live DAG frontier costs n/8
bytes per component, and the union step (``|=``) and the popcount both run
64 nodes per instruction.  *edge_mask* may itself be boolean-style or
packed; results are bit-identical either way.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.digraph import DiGraph
from repro.utils.bitset import lookup_bits, packed_zeros, popcount, set_bits


def _tarjan_scc(num_nodes: int, adj: list[np.ndarray]) -> tuple[np.ndarray, int]:
    """Iterative Tarjan; returns (component id per node, component count).

    Component ids are assigned in reverse topological order of the
    condensation: if component A has an edge to component B, then
    ``id(A) > id(B)``.
    """
    index = np.full(num_nodes, -1, dtype=np.int64)
    lowlink = np.zeros(num_nodes, dtype=np.int64)
    on_stack = np.zeros(num_nodes, dtype=bool)
    comp = np.full(num_nodes, -1, dtype=np.int64)
    stack: list[int] = []
    next_index = 0
    next_comp = 0

    for root in range(num_nodes):
        if index[root] != -1:
            continue
        # Each work item is (node, iterator position into adj[node]).
        work: list[list[int]] = [[root, 0]]
        while work:
            v, pos = work[-1]
            if pos == 0:
                index[v] = lowlink[v] = next_index
                next_index += 1
                stack.append(v)
                on_stack[v] = True
            advanced = False
            neighbors = adj[v]
            while pos < len(neighbors):
                w = int(neighbors[pos])
                pos += 1
                if index[w] == -1:
                    work[-1][1] = pos
                    work.append([w, 0])
                    advanced = True
                    break
                if on_stack[w]:
                    lowlink[v] = min(lowlink[v], index[w])
            if advanced:
                continue
            work[-1][1] = pos
            if pos >= len(neighbors):
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[v])
                if lowlink[v] == index[v]:
                    while True:
                        w = stack.pop()
                        on_stack[w] = False
                        comp[w] = next_comp
                        if w == v:
                            break
                    next_comp += 1
    return comp, next_comp


def all_reach_sizes(graph: DiGraph, edge_mask: np.ndarray | None = None) -> np.ndarray:
    """Size of the reachable set of every node, under an optional live-edge mask.

    Returns an integer array ``sizes`` with ``sizes[v] = |R(v)|`` including
    *v* itself.  *edge_mask* may be boolean-style or a packed bitset.
    """
    n = graph.num_nodes
    if n == 0:
        return np.zeros(0, dtype=np.int64)

    # Materialize the (masked) adjacency once.
    adj: list[np.ndarray] = []
    for u in range(n):
        # one-shot adjacency materialization for the SCC DP (not a
        # frontier walk; the DP itself is vectorized per component)
        nbrs = graph.out_neighbors(u)  # reprolint: disable=RP007
        if edge_mask is not None and nbrs.size:
            nbrs = nbrs[lookup_bits(edge_mask, graph.out_edge_ids(u))]  # reprolint: disable=RP007
        adj.append(nbrs)

    comp, num_comps = _tarjan_scc(n, adj)

    # Condensation edges and member lists.
    members: list[list[int]] = [[] for _ in range(num_comps)]
    for v in range(n):
        members[comp[v]].append(v)
    children: list[set[int]] = [set() for _ in range(num_comps)]
    pending_parents = np.zeros(num_comps, dtype=np.int64)
    for u in range(n):
        cu = comp[u]
        for w in adj[u]:
            cw = comp[int(w)]
            if cw != cu and cw not in children[cu]:
                children[cu].add(cw)
                pending_parents[cw] += 1

    # Tarjan emitted components in reverse topological order: children first.
    # Reach sets are packed bitsets (one bit per node); unions and size
    # counts operate on whole uint64 words.
    sizes = np.zeros(n, dtype=np.int64)
    reach: dict[int, np.ndarray] = {}
    for c in range(num_comps):
        bits = packed_zeros(n)
        set_bits(bits, np.asarray(members[c], dtype=np.int64))
        for child in children[c]:
            bits |= reach[child]
            pending_parents[child] -= 1
            if pending_parents[child] == 0:
                del reach[child]  # no remaining consumers; free the bitset
        size = popcount(bits)
        sizes[members[c]] = size
        if pending_parents[c] > 0:
            reach[c] = bits
    return sizes
