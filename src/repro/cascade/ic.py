"""Independent Cascade model (Kempe, Kleinberg, Tardos 2003)."""

from __future__ import annotations

import numpy as np

from repro.cascade.base import CascadeModel
from repro.graphs.digraph import DiGraph
from repro.utils.validation import check_probability


class IndependentCascade(CascadeModel):
    """IC with a uniform edge probability *p*.

    Every newly activated node activates each inactive out-neighbour
    independently with probability *p*.  The paper (and the Chen et al.
    experiments it builds on) uses ``p = 0.01`` on the collaboration
    networks, which is the default here.
    """

    name = "ic"

    def __init__(self, probability: float = 0.01) -> None:
        self.probability = check_probability(probability, "probability")

    def edge_probabilities(self, graph: DiGraph) -> np.ndarray:
        return np.full(graph.num_edges, self.probability)

    def __repr__(self) -> str:
        return f"IndependentCascade(p={self.probability})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, IndependentCascade)
            and other.probability == self.probability
        )

    def __hash__(self) -> int:
        return hash(("ic", self.probability))
