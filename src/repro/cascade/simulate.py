"""Monte-Carlo spread estimation, single-group and competitive.

These estimators produce the ``σ(·)`` quantities of the paper:
:func:`estimate_spread` gives the singleton spread ``σ0(S)`` (no
competition), and :func:`estimate_competitive_spread` gives the vector
``(σ1(..), .., σr(..))`` for a full profile of seed sets diffusing
simultaneously.  Both return a :class:`SpreadEstimate` carrying the sample
standard error, which the GetReal layer uses to judge whether a pure-NE
comparison is statistically meaningful.

Since the execution-engine refactor both functions are thin wrappers: they
describe the work as a single :class:`~repro.exec.jobs.SpreadJob` /
:class:`~repro.exec.jobs.CompetitiveJob` and submit it through an
:class:`~repro.exec.executor.Executor` (the env-configured process default
when none is passed).  Callers that need many estimates at once — the
payoff table, the figure sweeps, greedy candidate scoring — should build
the jobs themselves and submit them as **one batch** so the backend can
run them concurrently; see ``docs/execution.md``.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

from repro.cascade.base import CascadeModel
from repro.cascade.competitive import ClaimRule, TieBreakRule
from repro.cascade.estimate import SpreadEstimate
from repro.exec.executor import Executor, resolve_executor
from repro.exec.jobs import CompetitiveJob, SpreadJob
from repro.graphs.digraph import DiGraph
from repro.graphs.store import maybe_ref
from repro.lint import contracts
from repro.obs.log import get_logger
from repro.obs.metrics import counter, histogram
from repro.utils.rng import RandomSource
from repro.utils.validation import check_positive_int

_LOG = get_logger("cascade.simulate")

_SINGLE_SIMULATIONS = counter("cascade.simulations")
_SPREAD_CALLS = counter("estimate.spread_calls")
_COMPETITIVE_CALLS = counter("estimate.competitive_calls")
_SPREAD_SECONDS = histogram("estimate.spread_seconds")
_COMPETITIVE_SECONDS = histogram("estimate.competitive_seconds")

__all__ = [
    "SpreadEstimate",
    "estimate_competitive_spread",
    "estimate_spread",
]


def estimate_spread(
    graph: DiGraph,
    model: CascadeModel,
    seeds: Sequence[int],
    rounds: int = 100,
    rng: RandomSource = None,
    executor: Executor | None = None,
    kernel: str | None = None,
) -> SpreadEstimate:
    """Estimate the non-competitive spread ``σ0(seeds)`` by *rounds* simulations."""
    check_positive_int(rounds, "rounds")
    job = SpreadJob(
        graph=maybe_ref(graph),
        model=model,
        seeds=tuple(int(s) for s in seeds),
        rounds=rounds,
        kernel=kernel,
    )
    started = time.perf_counter()
    (estimate,) = resolve_executor(executor).estimates([job], rng=rng)[0]
    _SPREAD_CALLS.inc()
    _SINGLE_SIMULATIONS.inc(rounds)
    _SPREAD_SECONDS.observe(time.perf_counter() - started)  # reprolint: disable=RP009
    if contracts.enabled():
        contracts.check_spread_estimate(estimate.mean, graph.num_nodes)
    return estimate


def estimate_competitive_spread(
    graph: DiGraph,
    model: CascadeModel,
    seed_sets: Sequence[Sequence[int]],
    rounds: int = 100,
    rng: RandomSource = None,
    tie_break: TieBreakRule = TieBreakRule.UNIFORM,
    claim_rule: ClaimRule = ClaimRule.PROPORTIONAL,
    executor: Executor | None = None,
    kernel: str | None = None,
) -> list[SpreadEstimate]:
    """Estimate per-group competitive spreads for a full seed-set profile.

    Each of the *rounds* simulations independently re-resolves seed
    collisions (initiator assignment) and re-runs the diffusion, matching the
    paper's expectation over both sources of randomness.
    """
    check_positive_int(rounds, "rounds")
    job = CompetitiveJob(
        graph=maybe_ref(graph),
        model=model,
        seed_sets=tuple(tuple(int(s) for s in seeds) for seeds in seed_sets),
        rounds=rounds,
        tie_break=tie_break,
        claim_rule=claim_rule,
        kernel=kernel,
    )
    started = time.perf_counter()
    estimates = list(resolve_executor(executor).estimates([job], rng=rng)[0])
    elapsed = time.perf_counter() - started  # reprolint: disable=RP009
    _COMPETITIVE_CALLS.inc()
    _COMPETITIVE_SECONDS.observe(elapsed)
    _LOG.debug(
        "competitive spread: %d groups x %d rounds in %.3fs",
        len(seed_sets),
        rounds,
        elapsed,
    )
    if contracts.enabled():
        # Per-profile invariant: the group means partition at most |V| nodes.
        contracts.check_spreads(
            [est.mean for est in estimates], graph.num_nodes, "mean spreads"
        )
    return estimates
