"""Monte-Carlo spread estimation, single-group and competitive.

These estimators produce the ``σ(·)`` quantities of the paper:
:func:`estimate_spread` gives the singleton spread ``σ0(S)`` (no
competition), and :func:`estimate_competitive_spread` gives the vector
``(σ1(..), .., σr(..))`` for a full profile of seed sets diffusing
simultaneously.  Both return a :class:`SpreadEstimate` carrying the sample
standard error, which the GetReal layer uses to judge whether a pure-NE
comparison is statistically meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.cascade.base import CascadeModel
from repro.cascade.competitive import ClaimRule, CompetitiveDiffusion, TieBreakRule
from repro.errors import CascadeError
from repro.graphs.digraph import DiGraph
from repro.utils.rng import RandomSource, as_rng
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class SpreadEstimate:
    """Monte-Carlo estimate of an expected influence spread."""

    mean: float
    std: float
    samples: int

    @property
    def stderr(self) -> float:
        """Standard error of :attr:`mean`."""
        if self.samples <= 1:
            return float("inf")
        return self.std / np.sqrt(self.samples)

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "SpreadEstimate":
        arr = np.asarray(values, dtype=float)
        if arr.size == 0:
            raise CascadeError("cannot build an estimate from zero samples")
        std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
        return cls(mean=float(arr.mean()), std=std, samples=int(arr.size))

    def __add__(self, other: "SpreadEstimate") -> "SpreadEstimate":
        """Pool two independent estimates (weighted by sample count)."""
        if not isinstance(other, SpreadEstimate):
            return NotImplemented
        n = self.samples + other.samples
        mean = (self.mean * self.samples + other.mean * other.samples) / n
        # Pooled variance around the combined mean.
        var = (
            self.samples * (self.std**2 + (self.mean - mean) ** 2)
            + other.samples * (other.std**2 + (other.mean - mean) ** 2)
        ) / n
        return SpreadEstimate(mean=mean, std=float(np.sqrt(var)), samples=n)


def estimate_spread(
    graph: DiGraph,
    model: CascadeModel,
    seeds: Sequence[int],
    rounds: int = 100,
    rng: RandomSource = None,
) -> SpreadEstimate:
    """Estimate the non-competitive spread ``σ0(seeds)`` by *rounds* simulations."""
    check_positive_int(rounds, "rounds")
    generator = as_rng(rng)
    values = [model.spread_once(graph, seeds, generator) for _ in range(rounds)]
    return SpreadEstimate.from_values(values)


def estimate_competitive_spread(
    graph: DiGraph,
    model: CascadeModel,
    seed_sets: Sequence[Sequence[int]],
    rounds: int = 100,
    rng: RandomSource = None,
    tie_break: TieBreakRule = TieBreakRule.UNIFORM,
    claim_rule: ClaimRule = ClaimRule.PROPORTIONAL,
) -> list[SpreadEstimate]:
    """Estimate per-group competitive spreads for a full seed-set profile.

    Each of the *rounds* simulations independently re-resolves seed
    collisions (initiator assignment) and re-runs the diffusion, matching the
    paper's expectation over both sources of randomness.
    """
    check_positive_int(rounds, "rounds")
    generator = as_rng(rng)
    engine = CompetitiveDiffusion(graph, model, tie_break, claim_rule)
    per_group: list[list[int]] = [[] for _ in seed_sets]
    for _ in range(rounds):
        outcome = engine.run(seed_sets, generator)
        spreads = outcome.spreads()
        for j in range(len(seed_sets)):
            per_group[j].append(int(spreads[j]))
    return [SpreadEstimate.from_values(vals) for vals in per_group]
