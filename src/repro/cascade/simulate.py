"""Monte-Carlo spread estimation, single-group and competitive.

These estimators produce the ``σ(·)`` quantities of the paper:
:func:`estimate_spread` gives the singleton spread ``σ0(S)`` (no
competition), and :func:`estimate_competitive_spread` gives the vector
``(σ1(..), .., σr(..))`` for a full profile of seed sets diffusing
simultaneously.  Both return a :class:`SpreadEstimate` carrying the sample
standard error, which the GetReal layer uses to judge whether a pure-NE
comparison is statistically meaningful.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.cascade.base import CascadeModel
from repro.cascade.competitive import ClaimRule, CompetitiveDiffusion, TieBreakRule
from repro.errors import CascadeError
from repro.graphs.digraph import DiGraph
from repro.lint import contracts
from repro.obs.log import get_logger
from repro.obs.metrics import counter, histogram
from repro.utils.rng import RandomSource, as_rng
from repro.utils.validation import check_positive_int

_LOG = get_logger("cascade.simulate")

_SINGLE_SIMULATIONS = counter("cascade.simulations")
_SPREAD_CALLS = counter("estimate.spread_calls")
_COMPETITIVE_CALLS = counter("estimate.competitive_calls")
_SPREAD_SECONDS = histogram("estimate.spread_seconds")
_COMPETITIVE_SECONDS = histogram("estimate.competitive_seconds")


@dataclass(frozen=True)
class SpreadEstimate:
    """Monte-Carlo estimate of an expected influence spread."""

    mean: float
    std: float
    samples: int

    @property
    def stderr(self) -> float:
        """Standard error of :attr:`mean`."""
        if self.samples <= 1:
            return float("inf")
        return self.std / np.sqrt(self.samples)

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "SpreadEstimate":
        arr = np.asarray(values, dtype=float)
        if arr.size == 0:
            raise CascadeError("cannot build an estimate from zero samples")
        std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
        return cls(mean=float(arr.mean()), std=std, samples=int(arr.size))

    def __add__(self, other: "SpreadEstimate") -> "SpreadEstimate":
        """Pool two independent estimates (weighted by sample count).

        Uses the same ``ddof=1`` convention as :meth:`from_values`: the
        sums of squared deviations around the combined mean are added and
        divided by ``n - 1``, so pooling two estimates is exactly
        equivalent to estimating from the concatenated samples.
        """
        if not isinstance(other, SpreadEstimate):
            return NotImplemented
        n = self.samples + other.samples
        mean = (self.mean * self.samples + other.mean * other.samples) / n
        sum_squares = (
            (self.samples - 1) * self.std**2
            + self.samples * (self.mean - mean) ** 2
            + (other.samples - 1) * other.std**2
            + other.samples * (other.mean - mean) ** 2
        )
        std = float(np.sqrt(sum_squares / (n - 1))) if n > 1 else 0.0
        return SpreadEstimate(mean=mean, std=std, samples=n)


def estimate_spread(
    graph: DiGraph,
    model: CascadeModel,
    seeds: Sequence[int],
    rounds: int = 100,
    rng: RandomSource = None,
) -> SpreadEstimate:
    """Estimate the non-competitive spread ``σ0(seeds)`` by *rounds* simulations."""
    check_positive_int(rounds, "rounds")
    generator = as_rng(rng)
    started = time.perf_counter()
    values = [model.spread_once(graph, seeds, generator) for _ in range(rounds)]
    _SPREAD_CALLS.inc()
    _SINGLE_SIMULATIONS.inc(rounds)
    _SPREAD_SECONDS.observe(time.perf_counter() - started)
    estimate = SpreadEstimate.from_values(values)
    if contracts.enabled():
        contracts.check_spread_estimate(estimate.mean, graph.num_nodes)
    return estimate


def estimate_competitive_spread(
    graph: DiGraph,
    model: CascadeModel,
    seed_sets: Sequence[Sequence[int]],
    rounds: int = 100,
    rng: RandomSource = None,
    tie_break: TieBreakRule = TieBreakRule.UNIFORM,
    claim_rule: ClaimRule = ClaimRule.PROPORTIONAL,
) -> list[SpreadEstimate]:
    """Estimate per-group competitive spreads for a full seed-set profile.

    Each of the *rounds* simulations independently re-resolves seed
    collisions (initiator assignment) and re-runs the diffusion, matching the
    paper's expectation over both sources of randomness.
    """
    check_positive_int(rounds, "rounds")
    generator = as_rng(rng)
    engine = CompetitiveDiffusion(graph, model, tie_break, claim_rule)
    started = time.perf_counter()
    per_group: list[list[int]] = [[] for _ in seed_sets]
    for _ in range(rounds):
        outcome = engine.run(seed_sets, generator)
        spreads = outcome.spreads()
        for j in range(len(seed_sets)):
            per_group[j].append(int(spreads[j]))
    elapsed = time.perf_counter() - started
    _COMPETITIVE_CALLS.inc()
    _COMPETITIVE_SECONDS.observe(elapsed)
    _LOG.debug(
        "competitive spread: %d groups x %d rounds in %.3fs",
        len(seed_sets),
        rounds,
        elapsed,
    )
    estimates = [SpreadEstimate.from_values(vals) for vals in per_group]
    if contracts.enabled():
        # Per-profile invariant: the group means partition at most |V| nodes.
        contracts.check_spreads(
            [est.mean for est in estimates], graph.num_nodes, "mean spreads"
        )
    return estimates
