"""Shared live-edge snapshot pools: sample once, serve every strategy.

Inside one payoff-table estimation, every snapshot-greedy strategy
(MixGreedy, CELFGreedy) of a given ``(draw, group)`` pair used to resample
its own live-edge pool and recompute the batched NewGreedy initial gains —
the dominant cost of selection — even when they share the same diffusion
model.  A :class:`SnapshotPool` is handed to all ``z`` strategies of a
group and memoizes, per ``(model, count)``:

* the sampled masks (:meth:`masks`),
* the :class:`~repro.cascade.snapshots.SnapshotOracle` built on them, per
  kernel (:meth:`oracle`),
* the batched initial gains (:meth:`initial_gains`, shared between
  MixGreedy and CELFGreedy).

Pools store masks as **packed bitsets** by default (one bit per edge — see
:mod:`repro.utils.bitset`), so a resident pool costs m/8 bytes per snapshot
instead of m; pass ``packed=False`` for the legacy boolean representation.
Both hold exactly the same bits, and every oracle/gains result is
bit-identical across the two.

**Sharded generation.**  With ``shards > 1`` (or ``REPRO_SNAPSHOT_SHARDS``)
the snapshot sample is split into contiguous shards, each derived from its
own deterministic shard seed.  :meth:`initial_gains` then fans one
:class:`~repro.exec.jobs.SnapshotShardJob` per shard through the executor —
workers sample their shard locally, so neither graph nor masks cross the
pickle boundary — while :meth:`masks` re-derives the identical shard
samples parent-side from the same seeds.  Shard seeds depend only on the
pool seed, the request key, and the shard index, never on the executor, so
warm-cache replay stays deterministic on every backend.  ``shards=1`` (the
default) uses the exact legacy single-stream sampling path, preserving
historical mask content bit for bit.

**Randomization contract (Theorem 1).**  The paper's mixed-equilibrium
argument needs identical strategies played by different groups to produce
*distinct* (independently randomized) seed sets, so pools are created per
``(draw, group)`` and never shared across groups.  A pool draws exactly one
child seed from the caller's generator on first :meth:`token` use; mask
content is then derived from that seed plus a stable digest of the request
key, independent of request order — a selection-cache hit that skips one
strategy's pool access therefore never perturbs what another strategy
samples.
"""

from __future__ import annotations

import hashlib
import os

import numpy as np

from repro.cache import cache_enabled, params_token, shard_memo
from repro.cascade.base import CascadeModel
from repro.cascade.kernels import resolve_kernel
from repro.cascade.snapshots import (
    SnapshotOracle,
    sample_snapshots,
    sample_stable_snapshots,
)
from repro.errors import CascadeError
from repro.exec.executor import Executor, resolve_executor
from repro.exec.jobs import SnapshotGainsJob, SnapshotShardJob
from repro.graphs.digraph import DiGraph
from repro.graphs.store import maybe_ref
from repro.obs.metrics import counter
from repro.utils.bitset import packed_bytes
from repro.utils.rng import RandomSource, as_rng
from repro.utils.shards import DEFAULT_NUM_SHARDS

__all__ = [
    "MASKS_PER_JOB",
    "SHARDS_ENV_VAR",
    "SnapshotPool",
    "shard_counts",
    "snapshot_initial_gains",
]

#: Snapshots per gains job: small enough to parallelize, big enough to
#: amortize per-job overhead.  Fixed (not derived from the worker count) so
#: chunking — and therefore pooled estimates — never depends on the backend.
MASKS_PER_JOB = 8

#: Environment override for the default shard count of new pools.
SHARDS_ENV_VAR = "REPRO_SNAPSHOT_SHARDS"

_POOL_SAMPLES = counter("cascade.pool_samples")
_POOL_SHARED = counter("cascade.pool_shared")
_POOL_MASK_BYTES = counter("cascade.pool_mask_bytes")


def shard_counts(count: int, shards: int) -> list[int]:
    """Split *count* snapshots into *shards* contiguous shard sizes.

    Every shard gets ``count // shards`` snapshots and the first
    ``count % shards`` shards one extra, so the split depends only on the
    two integers — never on the executor or worker count.  Shards beyond
    *count* would be empty and are dropped.
    """
    if shards <= 0:
        raise CascadeError(f"shard count must be positive, got {shards}")
    base, extra = divmod(int(count), int(shards))
    sizes = [base + (1 if s < extra else 0) for s in range(shards)]
    return [size for size in sizes if size > 0]


def _default_shards() -> int:
    raw = os.environ.get(SHARDS_ENV_VAR)
    if raw is None or not raw.strip():
        return 1
    try:
        shards = int(raw)
    except ValueError as exc:
        raise CascadeError(
            f"{SHARDS_ENV_VAR} must be an integer, got {raw!r}"
        ) from exc
    if shards <= 0:
        raise CascadeError(f"{SHARDS_ENV_VAR} must be positive, got {shards}")
    return shards


def snapshot_initial_gains(
    graph: DiGraph,
    masks: list[np.ndarray],
    executor: Executor | str | None = None,
) -> list[float]:
    """Batched per-node NewGreedy gains over *masks* (one chunk per job).

    This is the expensive all-nodes reachability pass both MixGreedy and
    CELFGreedy start from; it lives here so a :class:`SnapshotPool` can
    compute it once per ``(model, count)`` and serve every consumer.  The
    graph payload is shrunk to a :class:`~repro.graphs.store.GraphRef`
    when a default graph store is configured (see
    :func:`repro.graphs.store.maybe_ref`).
    """
    payload = maybe_ref(graph)
    jobs = [
        SnapshotGainsJob(graph=payload, masks=tuple(masks[i : i + MASKS_PER_JOB]))
        for i in range(0, len(masks), MASKS_PER_JOB)
    ]
    per_chunk = resolve_executor(executor).estimates(jobs)
    pooled = list(per_chunk[0])
    for chunk in per_chunk[1:]:
        pooled = [prev + new for prev, new in zip(pooled, chunk)]
    return [est.mean for est in pooled]


class SnapshotPool:
    """Memoized live-edge sample shared by the strategies of one group."""

    def __init__(
        self,
        graph: DiGraph,
        packed: bool = True,
        shards: int | None = None,
        stable: bool = False,
        struct_shards: int = DEFAULT_NUM_SHARDS,
        seed: int | None = None,
    ) -> None:
        self.graph = graph
        self.packed = bool(packed)
        self.shards = _default_shards() if shards is None else int(shards)
        if self.shards <= 0:
            raise CascadeError(
                f"shard count must be positive, got {self.shards}"
            )
        # Stable pools draw mask bits from per-edge hashes
        # (sample_stable_snapshots) instead of a sequential generator
        # stream, which makes the sample delta-stable: re-creating the pool
        # with the *same identity seed* on a patched graph reproduces every
        # clean structural shard bit for bit (and serves it from the shard
        # memo when caching is on).  Pass ``seed=`` to pin that identity —
        # the incremental session does — otherwise token(rng) draws one.
        self.stable = bool(stable)
        self.struct_shards = int(struct_shards)
        if self.struct_shards <= 0:
            raise CascadeError(
                f"structural shard count must be positive, got {self.struct_shards}"
            )
        self._seed: int | None = None if seed is None else int(seed)
        self._masks: dict[tuple[object, int], list[np.ndarray]] = {}
        self._oracles: dict[tuple[object, int, str], SnapshotOracle] = {}
        self._gains: dict[tuple[object, int], list[float]] = {}

    def token(self, rng: RandomSource = None) -> int:
        """The pool's identity seed; drawn from *rng* on first use.

        The single draw happens here — and only here — so the caller's
        generator advances identically whether later pool accesses are
        served cold or skipped by a selection-cache hit.  The token also
        feeds the selection-cache key: two pools seeded differently never
        collide.
        """
        if self._seed is None:
            generator = as_rng(rng)
            self._seed = int(generator.integers(0, 2**62))
        return self._seed

    @property
    def seeded(self) -> bool:
        return self._seed is not None

    def _request_key(self, model: CascadeModel, count: int) -> tuple[object, int]:
        return (params_token(model), int(count))

    def _child_seed(self, key: tuple[object, ...]) -> int:
        if self._seed is None:
            raise CascadeError("snapshot pool is unseeded; call token(rng) first")
        digest = hashlib.blake2b(
            repr(key).encode(), digest_size=8, key=str(self._seed).encode()
        )
        return int.from_bytes(digest.digest(), "big") >> 2

    def _shard_seeds(self, key: tuple[object, int], count: int) -> list[tuple[int, int]]:
        """Deterministic ``(seed, size)`` per shard of a ``count`` sample."""
        return [
            (self._child_seed((*key, "shard", s)), size)
            for s, size in enumerate(shard_counts(count, self.shards))
        ]

    def _sample(self, model: CascadeModel, key: tuple[object, int], count: int) -> list[np.ndarray]:
        if self.stable:
            # Stable sampling is splittable by snapshot index, so the
            # parent-side sample is one call regardless of the job fan-out
            # (shard jobs cover [start, start+size) ranges of the same
            # stream).  The shard memo turns clean-shard reuse across graph
            # versions into the warm-pool splice.
            return sample_stable_snapshots(
                self.graph,
                model,
                count,
                seed=self._child_seed(key),
                packed=self.packed,
                num_shards=self.struct_shards,
                memo=shard_memo() if cache_enabled() else None,
            )
        if self.shards == 1:
            # Exact legacy path: one stream seeded off the request key, so
            # single-shard pools reproduce historical masks bit for bit.
            return sample_snapshots(
                self.graph,
                model,
                count,
                as_rng(self._child_seed(key)),
                packed=self.packed,
            )
        masks: list[np.ndarray] = []
        for seed, size in self._shard_seeds(key, count):
            masks.extend(
                sample_snapshots(
                    self.graph, model, size, as_rng(seed), packed=self.packed
                )
            )
        return masks

    def masks(self, model: CascadeModel, count: int) -> list[np.ndarray]:
        """The shared live-edge masks for ``(model, count)``; sampled once.

        Packed pools return packed bitsets; shard boundaries (if any) are
        invisible here — the list is always the concatenation of shard
        samples in shard order.
        """
        key = self._request_key(model, count)
        masks = self._masks.get(key)
        if masks is None:
            masks = self._sample(model, key, count)
            self._masks[key] = masks
            _POOL_SAMPLES.inc()
            _POOL_MASK_BYTES.inc(packed_bytes(masks))
        else:
            _POOL_SHARED.inc()
        return masks

    def oracle(
        self, model: CascadeModel, count: int, kernel: str | None = None
    ) -> SnapshotOracle:
        """A spread oracle over the shared masks; one instance per kernel."""
        resolved = resolve_kernel(kernel)
        key = (*self._request_key(model, count), resolved)
        oracle = self._oracles.get(key)
        if oracle is None:
            oracle = SnapshotOracle(self.graph, self.masks(model, count), kernel=resolved)
            self._oracles[key] = oracle
        return oracle

    def initial_gains(
        self,
        model: CascadeModel,
        count: int,
        executor: Executor | str | None = None,
    ) -> list[float]:
        """The shared batched NewGreedy gains for ``(model, count)``.

        Single-shard pools chunk the parent-side masks through
        :func:`snapshot_initial_gains`; sharded pools instead submit one
        :class:`~repro.exec.jobs.SnapshotShardJob` per shard, so workers
        sample their own masks and only the O(1) shard description is
        pickled.  Reach sizes are integers, so pooling the per-shard
        estimates reproduces the gains of the concatenated sample exactly.
        """
        key = self._request_key(model, count)
        gains = self._gains.get(key)
        if gains is None:
            if self.shards == 1:
                gains = snapshot_initial_gains(
                    self.graph, self.masks(model, count), executor
                )
            else:
                gains = self._sharded_gains(model, key, count, executor)
            self._gains[key] = gains
        return gains

    def _sharded_gains(
        self,
        model: CascadeModel,
        key: tuple[object, int],
        count: int,
        executor: Executor | str | None,
    ) -> list[float]:
        payload = maybe_ref(self.graph)
        if self.stable:
            # One stable stream, one [start, start+size) range per job — all
            # jobs share the pool-level child seed, so the union of their
            # shard samples is exactly the parent-side _sample result.
            stable_seed = self._child_seed(key)
            jobs = []
            start = 0
            for size in shard_counts(count, self.shards):
                jobs.append(
                    SnapshotShardJob(
                        graph=payload,
                        model=model,
                        shard_seed=stable_seed,
                        count=size,
                        packed=self.packed,
                        stable=True,
                        start=start,
                        struct_shards=self.struct_shards,
                    )
                )
                start += size
        else:
            jobs = [
                SnapshotShardJob(
                    graph=payload,
                    model=model,
                    shard_seed=seed,
                    count=size,
                    packed=self.packed,
                )
                for seed, size in self._shard_seeds(key, count)
            ]
        per_shard = resolve_executor(executor).estimates(jobs)
        pooled = list(per_shard[0])
        for shard in per_shard[1:]:
            pooled = [prev + new for prev, new in zip(pooled, shard)]
        return [est.mean for est in pooled]
