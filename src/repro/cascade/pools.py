"""Shared live-edge snapshot pools: sample once, serve every strategy.

Inside one payoff-table estimation, every snapshot-greedy strategy
(MixGreedy, CELFGreedy) of a given ``(draw, group)`` pair used to resample
its own live-edge pool and recompute the batched NewGreedy initial gains —
the dominant cost of selection — even when they share the same diffusion
model.  A :class:`SnapshotPool` is handed to all ``z`` strategies of a
group and memoizes, per ``(model, count)``:

* the sampled masks (:meth:`masks`),
* the :class:`~repro.cascade.snapshots.SnapshotOracle` built on them, per
  kernel (:meth:`oracle`),
* the batched initial gains (:meth:`initial_gains`, shared between
  MixGreedy and CELFGreedy).

**Randomization contract (Theorem 1).**  The paper's mixed-equilibrium
argument needs identical strategies played by different groups to produce
*distinct* (independently randomized) seed sets, so pools are created per
``(draw, group)`` and never shared across groups.  A pool draws exactly one
child seed from the caller's generator on first :meth:`token` use; mask
content is then derived from that seed plus a stable digest of the request
key, independent of request order — a selection-cache hit that skips one
strategy's pool access therefore never perturbs what another strategy
samples.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.cache import params_token
from repro.cascade.base import CascadeModel
from repro.cascade.kernels import resolve_kernel
from repro.cascade.snapshots import SnapshotOracle, sample_snapshots
from repro.errors import CascadeError
from repro.exec.executor import Executor, resolve_executor
from repro.exec.jobs import SnapshotGainsJob
from repro.graphs.digraph import DiGraph
from repro.obs.metrics import counter
from repro.utils.rng import RandomSource, as_rng

__all__ = ["MASKS_PER_JOB", "SnapshotPool", "snapshot_initial_gains"]

#: Snapshots per gains job: small enough to parallelize, big enough to
#: amortize per-job overhead.  Fixed (not derived from the worker count) so
#: chunking — and therefore pooled estimates — never depends on the backend.
MASKS_PER_JOB = 8

_POOL_SAMPLES = counter("cascade.pool_samples")
_POOL_SHARED = counter("cascade.pool_shared")


def snapshot_initial_gains(
    graph: DiGraph,
    masks: list[np.ndarray],
    executor: Executor | str | None = None,
) -> list[float]:
    """Batched per-node NewGreedy gains over *masks* (one chunk per job).

    This is the expensive all-nodes reachability pass both MixGreedy and
    CELFGreedy start from; it lives here so a :class:`SnapshotPool` can
    compute it once per ``(model, count)`` and serve every consumer.
    """
    jobs = [
        SnapshotGainsJob(graph=graph, masks=tuple(masks[i : i + MASKS_PER_JOB]))
        for i in range(0, len(masks), MASKS_PER_JOB)
    ]
    per_chunk = resolve_executor(executor).estimates(jobs)
    pooled = list(per_chunk[0])
    for chunk in per_chunk[1:]:
        pooled = [prev + new for prev, new in zip(pooled, chunk)]
    return [est.mean for est in pooled]


class SnapshotPool:
    """Memoized live-edge sample shared by the strategies of one group."""

    def __init__(self, graph: DiGraph) -> None:
        self.graph = graph
        self._seed: int | None = None
        self._masks: dict[tuple[object, int], list[np.ndarray]] = {}
        self._oracles: dict[tuple[object, int, str], SnapshotOracle] = {}
        self._gains: dict[tuple[object, int], list[float]] = {}

    def token(self, rng: RandomSource = None) -> int:
        """The pool's identity seed; drawn from *rng* on first use.

        The single draw happens here — and only here — so the caller's
        generator advances identically whether later pool accesses are
        served cold or skipped by a selection-cache hit.  The token also
        feeds the selection-cache key: two pools seeded differently never
        collide.
        """
        if self._seed is None:
            generator = as_rng(rng)
            self._seed = int(generator.integers(0, 2**62))
        return self._seed

    @property
    def seeded(self) -> bool:
        return self._seed is not None

    def _request_key(self, model: CascadeModel, count: int) -> tuple[object, int]:
        return (params_token(model), int(count))

    def _child_seed(self, key: tuple[object, int]) -> int:
        if self._seed is None:
            raise CascadeError("snapshot pool is unseeded; call token(rng) first")
        digest = hashlib.blake2b(
            repr(key).encode(), digest_size=8, key=str(self._seed).encode()
        )
        return int.from_bytes(digest.digest(), "big") >> 2

    def masks(self, model: CascadeModel, count: int) -> list[np.ndarray]:
        """The shared live-edge masks for ``(model, count)``; sampled once."""
        key = self._request_key(model, count)
        masks = self._masks.get(key)
        if masks is None:
            masks = sample_snapshots(self.graph, model, count, as_rng(self._child_seed(key)))
            self._masks[key] = masks
            _POOL_SAMPLES.inc()
        else:
            _POOL_SHARED.inc()
        return masks

    def oracle(
        self, model: CascadeModel, count: int, kernel: str | None = None
    ) -> SnapshotOracle:
        """A spread oracle over the shared masks; one instance per kernel."""
        resolved = resolve_kernel(kernel)
        key = (*self._request_key(model, count), resolved)
        oracle = self._oracles.get(key)
        if oracle is None:
            oracle = SnapshotOracle(self.graph, self.masks(model, count), kernel=resolved)
            self._oracles[key] = oracle
        return oracle

    def initial_gains(
        self,
        model: CascadeModel,
        count: int,
        executor: Executor | str | None = None,
    ) -> list[float]:
        """The shared batched NewGreedy gains for ``(model, count)``."""
        key = self._request_key(model, count)
        gains = self._gains.get(key)
        if gains is None:
            gains = snapshot_initial_gains(self.graph, self.masks(model, count), executor)
            self._gains[key] = gains
        return gains
