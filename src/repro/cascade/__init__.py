"""Cascade models: IC/WC/LT, their competitive extensions, and MC estimators."""

from repro.cascade.base import CascadeModel
from repro.cascade.ic import IndependentCascade
from repro.cascade.wc import WeightedCascade
from repro.cascade.lt import LinearThreshold
from repro.cascade.general_threshold import (
    GeneralThreshold,
    independent_activation,
    linear_activation,
    majority_activation,
)
from repro.cascade.icn import NegativeAwareCascade
from repro.cascade.kernels import KERNEL_ENV_VAR, KERNELS, resolve_kernel
from repro.cascade.competitive import (
    ClaimRule,
    CompetitiveDiffusion,
    CompetitiveOutcome,
    TieBreakRule,
    assign_initiators,
)
from repro.cascade.snapshots import SnapshotOracle, sample_snapshots
from repro.cascade.simulate import (
    SpreadEstimate,
    estimate_competitive_spread,
    estimate_spread,
)

__all__ = [
    "CascadeModel",
    "IndependentCascade",
    "WeightedCascade",
    "LinearThreshold",
    "GeneralThreshold",
    "NegativeAwareCascade",
    "linear_activation",
    "independent_activation",
    "majority_activation",
    "KERNEL_ENV_VAR",
    "KERNELS",
    "resolve_kernel",
    "ClaimRule",
    "CompetitiveDiffusion",
    "CompetitiveOutcome",
    "TieBreakRule",
    "assign_initiators",
    "SnapshotOracle",
    "sample_snapshots",
    "SpreadEstimate",
    "estimate_competitive_spread",
    "estimate_spread",
]
