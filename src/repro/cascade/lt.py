"""Linear Threshold model with uniform 1/in_degree(v) edge weights.

Each node *v* draws a threshold ``θ_v ~ U[0,1]`` at the start of a
simulation and activates once the summed weights of its active in-neighbours
reach ``θ_v``.  With weights ``b(u,v) = 1 / in_degree(v)`` this is the
standard normalization of Kempe et al.

LT is a triggering model: sampling, for every node, at most one live in-edge
with probability equal to its weight yields the possible-world equivalence,
so LT plugs into the same snapshot machinery (MixGreedy) as IC/WC.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.cascade.base import CascadeModel
from repro.cascade.kernels import simulate_threshold
from repro.graphs.digraph import DiGraph
from repro.utils.rng import RandomSource, as_rng


class LinearThreshold(CascadeModel):
    """LT with ``b(u,v) = 1/in_degree(v)``; thresholds uniform per simulation."""

    name = "lt"

    def edge_probabilities(self, graph: DiGraph) -> np.ndarray:
        """Edge weights (= triggering probabilities), by stable edge id."""
        in_deg = graph.in_degrees().astype(float)
        safe = np.maximum(in_deg, 1.0)
        _, dst = graph.edge_array()
        return 1.0 / safe[dst]

    def sample_live_mask(self, graph: DiGraph, rng: RandomSource = None) -> np.ndarray:
        """Triggering-set sample: at most one live in-edge per node.

        For node *v* with in-degree *d*, each in-edge is selected with
        probability ``1/d`` and "no edge" with probability 0 (weights sum to
        exactly 1 here), matching the LT triggering distribution.
        """
        generator = as_rng(rng)
        mask = np.zeros(graph.num_edges, dtype=bool)
        src, dst = graph.edge_array()
        order = np.argsort(dst, kind="stable")
        sorted_dst = dst[order]
        boundaries = np.searchsorted(sorted_dst, np.arange(graph.num_nodes + 1))
        draws = generator.random(graph.num_nodes)
        for v in range(graph.num_nodes):
            lo, hi = boundaries[v], boundaries[v + 1]
            d = hi - lo
            if d == 0:
                continue
            # Inverse-CDF over d equal slots: pick edge floor(u * d).
            pick = int(draws[v] * d)
            if pick < d:  # guards u == 1.0
                mask[order[lo + pick]] = True
        return mask

    def simulate(
        self,
        graph: DiGraph,
        seeds: Sequence[int],
        rng: RandomSource = None,
        kernel: str | None = None,
    ) -> np.ndarray:
        """One LT diffusion; thresholds are drawn up front, then the
        pressure sweep runs in the selected kernel
        (:func:`repro.cascade.kernels.simulate_threshold`)."""
        generator = as_rng(rng)
        return simulate_threshold(graph, seeds, generator, kernel=kernel)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LinearThreshold)

    def __hash__(self) -> int:
        return hash("lt")
