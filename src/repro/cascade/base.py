"""Cascade-model interface.

The paper (Section 3) works with the Independent Cascade (IC) and Weighted
Cascade (WC) models and stresses that GetReal is orthogonal to the choice of
model; this library also ships Linear Threshold (LT).  All three are
*triggering models* in Kempe et al.'s sense, so they share two primitives:

``edge_probabilities``
    Per-edge success probability ``p(u→v)`` indexed by stable edge id.  IC
    uses a constant; WC uses ``1 / in_degree(v)``; LT exposes its edge
    weights (which also sum to ≤1 per node and drive the triggering-set
    equivalence).

``sample_live_mask``
    Draw one *live-edge snapshot* — the possible-world construction under
    which influence spread equals reachability.  MixGreedy evaluates spreads
    on pre-sampled snapshots instead of re-simulating cascades.

``simulate``
    Run one full (single-group, non-competitive) diffusion from a seed set
    and return the activated-node indicator.  The competitive extension
    lives in :mod:`repro.cascade.competitive`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence

import numpy as np

from repro.cascade.kernels import simulate_cascade
from repro.graphs.digraph import DiGraph
from repro.utils.rng import RandomSource, as_rng


class CascadeModel(ABC):
    """Abstract influence-propagation model over a :class:`DiGraph`."""

    #: short identifier used in strategy names and reports ("ic", "wc", "lt")
    name: str = "abstract"

    @abstractmethod
    def edge_probabilities(self, graph: DiGraph) -> np.ndarray:
        """Success probability of each edge, indexed by stable edge id."""

    def sample_live_mask(self, graph: DiGraph, rng: RandomSource = None) -> np.ndarray:
        """Sample one live-edge snapshot: boolean array over stable edge ids."""
        generator = as_rng(rng)
        probs = self.edge_probabilities(graph)
        return generator.random(probs.shape[0]) < probs

    def simulate(
        self,
        graph: DiGraph,
        seeds: Sequence[int],
        rng: RandomSource = None,
        kernel: str | None = None,
    ) -> np.ndarray:
        """One diffusion from *seeds*; returns the active-node boolean array.

        Default implementation is the standard cascade process: each newly
        activated node gets a single chance to activate each inactive
        out-neighbour with the model's edge probability.  *kernel* selects
        the inner loop (see :mod:`repro.cascade.kernels`).
        """
        generator = as_rng(rng)
        probs = self.edge_probabilities(graph)
        return simulate_cascade(graph, probs, seeds, generator, kernel=kernel)

    def spread_once(
        self,
        graph: DiGraph,
        seeds: Sequence[int],
        rng: RandomSource = None,
        kernel: str | None = None,
    ) -> int:
        """Convenience: number of nodes activated in a single simulation."""
        return int(self.simulate(graph, seeds, rng, kernel=kernel).sum())

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
