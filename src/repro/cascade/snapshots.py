"""Live-edge snapshots and the spread oracle built on them.

Under any triggering model (IC, WC, LT), the expected influence spread of a
seed set equals its expected reachability over random live-edge subgraphs
(Kempe et al.'s possible-world equivalence).  MixGreedy — the ``NewGreedy``
improvement of Chen, Wang & Yang (KDD'09) combined with CELF — exploits this
by sampling the subgraphs once and evaluating every candidate seed against
the same sample, which both slashes simulation cost and removes evaluation
noise between candidates.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.cascade.base import CascadeModel
from repro.cascade.kernels import (
    absorb_reachable,
    count_new_reachable,
    reachable_mask_batch,
    resolve_kernel,
)
from repro.errors import CascadeError
from repro.graphs.digraph import DiGraph
from repro.utils.bitset import is_packed, num_words, pack_bits, unpack_bits
from repro.utils.rng import RandomSource, as_rng


def sample_snapshots(
    graph: DiGraph,
    model: CascadeModel,
    count: int,
    rng: RandomSource = None,
    packed: bool = False,
) -> list[np.ndarray]:
    """Draw *count* independent live-edge masks from *model* on *graph*.

    With ``packed=True`` each mask is returned as a packed bitset
    (``uint64`` words, 8x smaller) holding exactly the same bits — the
    generator is consumed identically, so the packed sample is the packed
    form of the boolean sample for the same *rng*.
    """
    if count <= 0:
        raise CascadeError(f"snapshot count must be positive, got {count}")
    generator = as_rng(rng)
    masks = [model.sample_live_mask(graph, generator) for _ in range(count)]
    if packed:
        return [pack_bits(mask) for mask in masks]
    return masks


class SnapshotOracle:
    """Estimates spreads by reachability over a fixed set of live-edge masks.

    The oracle supports the incremental pattern greedy algorithms need:
    :meth:`reach` materializes the per-snapshot reached sets of the current
    seed set, and :meth:`marginal_gain` counts only *newly* reachable nodes,
    stopping its BFS at already-reached nodes (in a live-edge world,
    everything reachable from a reached node is itself already reached).

    *kernel* selects the sweep implementation — the python BFS or the
    mask-filtered CSR frontier sweep (see :mod:`repro.cascade.kernels`);
    both visit the same nodes, so oracle results are kernel-independent.

    Masks may be boolean-style (length *m*) or packed bitsets
    (:mod:`repro.utils.bitset`); a homogeneous packed sample is kept packed
    end to end — the stacked matrix stores one bit per edge — and every
    oracle result is bit-identical across the two representations.
    """

    def __init__(
        self,
        graph: DiGraph,
        masks: Sequence[np.ndarray],
        kernel: str | None = None,
    ) -> None:
        if not masks:
            raise CascadeError("at least one snapshot mask is required")
        packed_words = num_words(graph.num_edges)
        all_packed = all(is_packed(np.asarray(mask)) for mask in masks)
        for mask in masks:
            expected = (packed_words,) if is_packed(np.asarray(mask)) else (
                graph.num_edges,
            )
            if mask.shape != expected:
                raise CascadeError(
                    f"mask shape {mask.shape} does not match edge count "
                    f"{graph.num_edges}"
                )
        self.graph = graph
        self.masks = list(masks)
        # Stacked (snapshots, edges-or-words) view: spread/reach sweep all
        # snapshots in one reachable_mask_batch call instead of a per-mask
        # loop.  A fully packed sample stays packed (uint64 rows); mixed
        # samples are normalized to boolean rows.
        if all_packed:
            self.mask_matrix = np.stack(self.masks)
        else:
            self.mask_matrix = np.stack(
                [
                    unpack_bits(mask, graph.num_edges)
                    if is_packed(np.asarray(mask))
                    else np.asarray(mask, dtype=bool)
                    for mask in self.masks
                ]
            )
        self.kernel = resolve_kernel(kernel)

    @property
    def num_snapshots(self) -> int:
        return len(self.masks)

    def spread(self, seeds: Sequence[int]) -> float:
        """Average number of nodes reachable from *seeds* over all snapshots."""
        visited = reachable_mask_batch(
            self.graph, seeds, self.mask_matrix, kernel=self.kernel
        )
        return int(visited.sum()) / len(self.masks)

    def reach(self, seeds: Sequence[int]) -> list[np.ndarray]:
        """Per-snapshot boolean reached arrays for *seeds*."""
        visited = reachable_mask_batch(
            self.graph, seeds, self.mask_matrix, kernel=self.kernel
        )
        return [visited[s] for s in range(visited.shape[0])]

    def extend_reach(self, reached: list[np.ndarray], new_seed: int) -> None:
        """Mutate *reached* in place to include everything reachable from *new_seed*."""
        for mask, already in zip(self.masks, reached):
            absorb_reachable(self.graph, mask, new_seed, already, kernel=self.kernel)

    def marginal_gain(self, candidate: int, reached: list[np.ndarray]) -> float:
        """Average count of nodes newly reached by adding *candidate*."""
        total = 0
        for mask, already in zip(self.masks, reached):
            total += count_new_reachable(
                self.graph, mask, candidate, already, kernel=self.kernel
            )
        return total / len(self.masks)
