"""Live-edge snapshots and the spread oracle built on them.

Under any triggering model (IC, WC, LT), the expected influence spread of a
seed set equals its expected reachability over random live-edge subgraphs
(Kempe et al.'s possible-world equivalence).  MixGreedy — the ``NewGreedy``
improvement of Chen, Wang & Yang (KDD'09) combined with CELF — exploits this
by sampling the subgraphs once and evaluating every candidate seed against
the same sample, which both slashes simulation cost and removes evaluation
noise between candidates.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.cascade.base import CascadeModel
from repro.errors import CascadeError
from repro.graphs.digraph import DiGraph
from repro.utils.rng import RandomSource, as_rng


def sample_snapshots(
    graph: DiGraph,
    model: CascadeModel,
    count: int,
    rng: RandomSource = None,
) -> list[np.ndarray]:
    """Draw *count* independent live-edge masks from *model* on *graph*."""
    if count <= 0:
        raise CascadeError(f"snapshot count must be positive, got {count}")
    generator = as_rng(rng)
    return [model.sample_live_mask(graph, generator) for _ in range(count)]


class SnapshotOracle:
    """Estimates spreads by reachability over a fixed set of live-edge masks.

    The oracle supports the incremental pattern greedy algorithms need:
    :meth:`reach` materializes the per-snapshot reached sets of the current
    seed set, and :meth:`marginal_gain` counts only *newly* reachable nodes,
    stopping its BFS at already-reached nodes (in a live-edge world,
    everything reachable from a reached node is itself already reached).
    """

    def __init__(self, graph: DiGraph, masks: Sequence[np.ndarray]) -> None:
        if not masks:
            raise CascadeError("at least one snapshot mask is required")
        for mask in masks:
            if mask.shape != (graph.num_edges,):
                raise CascadeError(
                    f"mask shape {mask.shape} does not match edge count "
                    f"{graph.num_edges}"
                )
        self.graph = graph
        self.masks = list(masks)

    @property
    def num_snapshots(self) -> int:
        return len(self.masks)

    def spread(self, seeds: Sequence[int]) -> float:
        """Average number of nodes reachable from *seeds* over all snapshots."""
        total = 0
        for mask in self.masks:
            total += int(self.graph.reachable_from(seeds, mask).sum())
        return total / len(self.masks)

    def reach(self, seeds: Sequence[int]) -> list[np.ndarray]:
        """Per-snapshot boolean reached arrays for *seeds*."""
        return [self.graph.reachable_from(seeds, mask) for mask in self.masks]

    def extend_reach(self, reached: list[np.ndarray], new_seed: int) -> None:
        """Mutate *reached* in place to include everything reachable from *new_seed*."""
        for mask, already in zip(self.masks, reached):
            self._absorb(mask, new_seed, already)

    def marginal_gain(self, candidate: int, reached: list[np.ndarray]) -> float:
        """Average count of nodes newly reached by adding *candidate*."""
        total = 0
        for mask, already in zip(self.masks, reached):
            total += self._count_new(mask, candidate, already)
        return total / len(self.masks)

    # ------------------------------------------------------------------ #

    def _count_new(self, mask: np.ndarray, start: int, reached: np.ndarray) -> int:
        """Nodes reachable from *start* that are not in *reached* (no mutation)."""
        if reached[start]:
            return 0
        graph = self.graph
        visited = {int(start)}
        stack = [int(start)]
        count = 0
        while stack:
            u = stack.pop()
            count += 1
            lo, hi = graph.out_indptr[u], graph.out_indptr[u + 1]
            nbrs = graph.out_indices[lo:hi]
            live = mask[graph.out_edge_ids(u)]
            for v in nbrs[live]:
                v = int(v)
                if v not in visited and not reached[v]:
                    visited.add(v)
                    stack.append(v)
        return count

    def _absorb(self, mask: np.ndarray, start: int, reached: np.ndarray) -> None:
        """Mark everything reachable from *start* in *reached* (mutates)."""
        if reached[start]:
            return
        graph = self.graph
        reached[start] = True
        stack = [int(start)]
        while stack:
            u = stack.pop()
            lo, hi = graph.out_indptr[u], graph.out_indptr[u + 1]
            nbrs = graph.out_indices[lo:hi]
            live = mask[graph.out_edge_ids(u)]
            for v in nbrs[live]:
                v = int(v)
                if not reached[v]:
                    reached[v] = True
                    stack.append(v)
