"""Live-edge snapshots and the spread oracle built on them.

Under any triggering model (IC, WC, LT), the expected influence spread of a
seed set equals its expected reachability over random live-edge subgraphs
(Kempe et al.'s possible-world equivalence).  MixGreedy — the ``NewGreedy``
improvement of Chen, Wang & Yang (KDD'09) combined with CELF — exploits this
by sampling the subgraphs once and evaluating every candidate seed against
the same sample, which both slashes simulation cost and removes evaluation
noise between candidates.
"""

from __future__ import annotations

import hashlib
from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro.cascade.base import CascadeModel
from repro.cascade.kernels import (
    absorb_reachable,
    count_new_reachable,
    reachable_mask_batch,
    resolve_kernel,
)
from repro.errors import CascadeError
from repro.graphs.digraph import DiGraph
from repro.utils.bitset import is_packed, num_words, pack_bits, unpack_bits
from repro.utils.rng import RandomSource, as_rng
from repro.utils.shards import DEFAULT_NUM_SHARDS, shard_bounds

if TYPE_CHECKING:
    from repro.cache.memo import Memo


def sample_snapshots(
    graph: DiGraph,
    model: CascadeModel,
    count: int,
    rng: RandomSource = None,
    packed: bool = False,
) -> list[np.ndarray]:
    """Draw *count* independent live-edge masks from *model* on *graph*.

    With ``packed=True`` each mask is returned as a packed bitset
    (``uint64`` words, 8x smaller) holding exactly the same bits — the
    generator is consumed identically, so the packed sample is the packed
    form of the boolean sample for the same *rng*.
    """
    if count <= 0:
        raise CascadeError(f"snapshot count must be positive, got {count}")
    generator = as_rng(rng)
    masks = [model.sample_live_mask(graph, generator) for _ in range(count)]
    if packed:
        return [pack_bits(mask) for mask in masks]
    return masks


# --------------------------------------------------------------------------- #
# delta-stable sampling
# --------------------------------------------------------------------------- #

# splitmix64 finalizer constants (Steele et al.); the avalanche mixer behind
# the per-edge hash draws of stable sampling.
_MIX_1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_2 = np.uint64(0x94D049BB133111EB)
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_U64 = np.uint64


def _mix64(x: np.ndarray) -> np.ndarray:
    """splitmix64 finalizer, vectorized over uint64 (wrapping arithmetic)."""
    x = x ^ (x >> _U64(30))
    x = x * _MIX_1
    x = x ^ (x >> _U64(27))
    x = x * _MIX_2
    return x ^ (x >> _U64(31))


def stable_edge_draws(
    seed: int, index: int, src: np.ndarray, dst: np.ndarray
) -> np.ndarray:
    """Uniform [0, 1) draw per edge, a pure function of ``(seed, index, u, v)``.

    Unlike a sequential generator stream, the draw of edge ``(u, v)`` in
    snapshot *index* does not depend on which other edges exist — so after
    an edge delta, every surviving edge keeps exactly the draw it had, and
    a resampled shard is bit-identical to the same shard sampled cold on
    the patched graph.  The 53 high bits of a splitmix64-mixed hash give
    the float, matching the precision of ``Generator.random``.
    """
    with np.errstate(over="ignore"):
        base = _mix64(np.asarray(_U64(seed % (1 << 64)) + _GOLDEN * _U64(index)))
        h = _mix64(src.astype(np.uint64) * _GOLDEN ^ base)
        h = _mix64(h ^ dst.astype(np.uint64) * _MIX_2)
    return (h >> _U64(11)).astype(np.float64) * (2.0**-53)


def _probs_digest(probs_slice: np.ndarray) -> int:
    digest = hashlib.blake2b(
        np.ascontiguousarray(probs_slice).tobytes(), digest_size=8
    )
    return int.from_bytes(digest.digest(), "big")


def sample_stable_snapshots(
    graph: DiGraph,
    model: CascadeModel,
    count: int,
    seed: int,
    start: int = 0,
    packed: bool = False,
    num_shards: int = DEFAULT_NUM_SHARDS,
    memo: "Memo | None" = None,
) -> list[np.ndarray]:
    """Draw snapshots ``start .. start + count`` from per-edge hash draws.

    The delta-stable counterpart of :func:`sample_snapshots`: mask bits are
    computed shard by shard (structural node-range shards, see
    :mod:`repro.utils.shards`) from :func:`stable_edge_draws`, so each
    shard's slice is a pure function of ``(shard edges, edge probabilities,
    seed, snapshot index)``.  Two consequences:

    * sampling is *splittable* — any snapshot range of any shard can be
      produced independently (``start`` offsets shard jobs without
      replaying earlier snapshots);
    * sampling is *delta-stable* — after an edge delta, shards the delta
      left untouched produce byte-identical slices, which the optional
      *memo* (keyed on shard structural hash + probability digest + seed +
      index) turns into the warm-pool splice: clean shards are served from
      cache, dirty shards are recomputed, and the resulting masks are
      bit-identical to a cold pool on the patched graph.

    Requires an independent-per-edge model (IC, WC): models that override
    ``sample_live_mask`` with coupled draws (LT's triggering sets) are
    rejected — their snapshots cannot be decomposed per edge.
    """
    if count <= 0:
        raise CascadeError(f"snapshot count must be positive, got {count}")
    if start < 0:
        raise CascadeError(f"snapshot start must be non-negative, got {start}")
    if type(model).sample_live_mask is not CascadeModel.sample_live_mask:
        raise CascadeError(
            f"stable sampling requires independent per-edge draws; "
            f"{type(model).__name__} overrides sample_live_mask"
        )

    # Local import: repro.cache imports repro.utils, never repro.cascade,
    # so the runtime edge cascade -> cache is acyclic (pools does the same).
    from repro.cache.keys import shard_hashes

    n, m = graph.num_nodes, graph.num_edges
    probs = model.edge_probabilities(graph)
    bounds = shard_bounds(n, num_shards)
    indptr, indices, eids = graph.out_indptr, graph.out_indices, graph.edge_ids
    hashes = shard_hashes(graph, num_shards) if memo is not None else None

    # Per-shard CSR slices: source ids, destinations, stable edge ids, and
    # the probability slice (edge-id indexed probabilities gathered to CSR
    # positions).  Built once and shared by every snapshot.
    shards: list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]] = []
    for s in range(num_shards):
        lo, hi = int(bounds[s]), int(bounds[s + 1])
        p0, p1 = int(indptr[lo]), int(indptr[hi])
        if p0 == p1:
            shards.append(
                (
                    np.zeros(0, np.int64),
                    np.zeros(0, np.int64),
                    np.zeros(0, np.int64),
                    np.zeros(0, np.float64),
                    s,
                )
            )
            continue
        degrees = np.asarray(indptr[lo : hi + 1] - indptr[lo])
        src = np.repeat(np.arange(lo, hi, dtype=np.int64), np.diff(degrees))
        dst = np.asarray(indices[p0:p1], dtype=np.int64)
        shard_eids = np.asarray(eids[p0:p1])
        shards.append((src, dst, shard_eids, probs[shard_eids], s))

    digests = [_probs_digest(shard[3]) for shard in shards] if memo is not None else None

    masks: list[np.ndarray] = []
    for index in range(start, start + count):
        mask = np.zeros(m, dtype=bool)
        for src, dst, shard_eids, shard_probs, s in shards:
            if shard_eids.size == 0:
                continue
            bits: np.ndarray | None = None
            key: tuple[object, ...] | None = None
            if memo is not None and hashes is not None and digests is not None:
                key = ("stable", hashes[s], digests[s], int(seed), index)
                stored = memo.get(key)
                if stored is not None:
                    bits = unpack_bits(stored[0], shard_eids.size)
            if bits is None:
                bits = stable_edge_draws(seed, index, src, dst) < shard_probs
                if memo is not None and key is not None:
                    packed_bits = pack_bits(bits)
                    memo.put(key, (packed_bits,), nbytes=packed_bits.nbytes)
            mask[shard_eids] = bits
        masks.append(pack_bits(mask) if packed else mask)
    return masks


class SnapshotOracle:
    """Estimates spreads by reachability over a fixed set of live-edge masks.

    The oracle supports the incremental pattern greedy algorithms need:
    :meth:`reach` materializes the per-snapshot reached sets of the current
    seed set, and :meth:`marginal_gain` counts only *newly* reachable nodes,
    stopping its BFS at already-reached nodes (in a live-edge world,
    everything reachable from a reached node is itself already reached).

    *kernel* selects the sweep implementation — the python BFS or the
    mask-filtered CSR frontier sweep (see :mod:`repro.cascade.kernels`);
    both visit the same nodes, so oracle results are kernel-independent.

    Masks may be boolean-style (length *m*) or packed bitsets
    (:mod:`repro.utils.bitset`); a homogeneous packed sample is kept packed
    end to end — the stacked matrix stores one bit per edge — and every
    oracle result is bit-identical across the two representations.
    """

    def __init__(
        self,
        graph: DiGraph,
        masks: Sequence[np.ndarray],
        kernel: str | None = None,
    ) -> None:
        if not masks:
            raise CascadeError("at least one snapshot mask is required")
        packed_words = num_words(graph.num_edges)
        all_packed = all(is_packed(np.asarray(mask)) for mask in masks)
        for mask in masks:
            expected = (packed_words,) if is_packed(np.asarray(mask)) else (
                graph.num_edges,
            )
            if mask.shape != expected:
                raise CascadeError(
                    f"mask shape {mask.shape} does not match edge count "
                    f"{graph.num_edges}"
                )
        self.graph = graph
        self.masks = list(masks)
        # Stacked (snapshots, edges-or-words) view: spread/reach sweep all
        # snapshots in one reachable_mask_batch call instead of a per-mask
        # loop.  A fully packed sample stays packed (uint64 rows); mixed
        # samples are normalized to boolean rows.
        if all_packed:
            self.mask_matrix = np.stack(self.masks)
        else:
            self.mask_matrix = np.stack(
                [
                    unpack_bits(mask, graph.num_edges)
                    if is_packed(np.asarray(mask))
                    else np.asarray(mask, dtype=bool)
                    for mask in self.masks
                ]
            )
        self.kernel = resolve_kernel(kernel)

    @property
    def num_snapshots(self) -> int:
        return len(self.masks)

    def spread(self, seeds: Sequence[int]) -> float:
        """Average number of nodes reachable from *seeds* over all snapshots."""
        visited = reachable_mask_batch(
            self.graph, seeds, self.mask_matrix, kernel=self.kernel
        )
        return int(visited.sum()) / len(self.masks)

    def reach(self, seeds: Sequence[int]) -> list[np.ndarray]:
        """Per-snapshot boolean reached arrays for *seeds*."""
        visited = reachable_mask_batch(
            self.graph, seeds, self.mask_matrix, kernel=self.kernel
        )
        return [visited[s] for s in range(visited.shape[0])]

    def extend_reach(self, reached: list[np.ndarray], new_seed: int) -> None:
        """Mutate *reached* in place to include everything reachable from *new_seed*."""
        for mask, already in zip(self.masks, reached):
            absorb_reachable(self.graph, mask, new_seed, already, kernel=self.kernel)

    def marginal_gain(self, candidate: int, reached: list[np.ndarray]) -> float:
        """Average count of nodes newly reached by adding *candidate*."""
        total = 0
        for mask, already in zip(self.masks, reached):
            total += count_new_reachable(
                self.graph, mask, candidate, already, kernel=self.kernel
            )
        return total / len(self.masks)
