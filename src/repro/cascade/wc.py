"""Weighted Cascade model: edge (u, v) succeeds with probability 1/in_degree(v)."""

from __future__ import annotations

import numpy as np

from repro.cascade.base import CascadeModel
from repro.graphs.digraph import DiGraph


class WeightedCascade(CascadeModel):
    """WC assigns each edge into *v* the probability ``1 / in_degree(v)``.

    This is the "1/d_v" special case of IC introduced by Kempe et al.;
    the paper's Section 3.2 writes the competitive activation probability as
    ``(t_j / Σt_j) · (1 − (1 − 1/v.degree)^{Σt_j})``, which the competitive
    engine reproduces because all in-edges of *v* share the same probability.
    """

    name = "wc"

    def edge_probabilities(self, graph: DiGraph) -> np.ndarray:
        in_deg = graph.in_degrees().astype(float)
        # Nodes with in-degree 0 have no in-edges, so the value is unused;
        # guard anyway to keep the division well-defined.
        safe = np.maximum(in_deg, 1.0)
        _, dst = graph.edge_array()
        return 1.0 / safe[dst]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, WeightedCascade)

    def __hash__(self) -> int:
        return hash("wc")
