"""Incremental recomputation on dynamic graphs: the warm-path session.

A cold influence-maximization answer on a million-node graph pays three
large bills: sampling ``R`` live-edge snapshots, computing exact per-node
reach sizes on each (the NewGreedy matrix), and running CELF lazy greedy.
When the graph then changes by a handful of edges, almost none of that work
is stale — and :class:`IncrementalSession` is the machinery that proves it:

* **Stable snapshots** — the session's :class:`~repro.cascade.pools.SnapshotPool`
  runs in *stable* mode (per-edge hash draws), so after
  :meth:`~IncrementalSession.apply_delta` the patched pool reproduces every
  clean structural shard bit for bit and only dirty shards are resampled
  (served through the shard memo — the warm-pool splice).
* **Blast-radius reach update** — per snapshot, the only nodes whose reach
  size can change are those that can reach a *changed* edge's source in the
  old or new live graph (:meth:`~repro.graphs.digraph.DiGraph.reverse_reachable_from`);
  the session recomputes exactly those rows of the R×n reach matrix and
  falls back to a full per-snapshot recompute when the blast radius exceeds
  ``recompute_fraction`` of the graph.
* **CELF seed-set repair** — :meth:`~IncrementalSession.reselect` re-validates
  the cached picks with :func:`repro.algorithms.greedy.repair_celf`, re-runs
  lazy greedy only from the first invalidated depth, and falls back to a
  full reselection when the repair budget is exhausted.  Either way the
  returned seeds are bit-identical to a cold selection on the patched graph.

``REPRO_INCREMENTAL`` governs the two entry points: the session honours it
as a kill-switch (:func:`incremental_enabled`, default **on** — set ``0`` /
``off`` to force cold recomputation everywhere), while CLI/driver code uses
:func:`incremental_requested` (default **off** — set ``1`` / ``on`` to opt
runs in).  Both read the same variable so one export flips the whole stack.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.algorithms.greedy import CelfTrace, repair_celf, run_celf
from repro.cache import DeltaInvalidation, invalidate_for_delta
from repro.cascade.base import CascadeModel
from repro.cascade.pools import SnapshotPool
from repro.cascade.reachability import all_reach_sizes
from repro.cascade.snapshots import SnapshotOracle
from repro.errors import GraphError
from repro.graphs.delta import AppliedDelta, EdgeDelta, merge_delta
from repro.graphs.digraph import DiGraph
from repro.obs.metrics import counter, histogram
from repro.obs.trace import span
from repro.utils.bitset import lookup_bits
from repro.utils.rng import RandomSource, as_rng
from repro.utils.shards import DEFAULT_NUM_SHARDS

__all__ = [
    "INCREMENTAL_ENV_VAR",
    "DeltaOutcome",
    "IncrementalSession",
    "ReselectOutcome",
    "incremental_enabled",
    "incremental_requested",
]

#: Environment variable switching incremental recomputation.  Unset means
#: "enabled but not requested": libraries keep their warm paths available
#: (:func:`incremental_enabled`), drivers don't turn them on uninvited
#: (:func:`incremental_requested`).
INCREMENTAL_ENV_VAR = "REPRO_INCREMENTAL"

_FALSY = frozenset({"0", "off", "false", "no"})
_TRUTHY = frozenset({"1", "on", "true", "yes"})

_REPAIR_DEPTH = histogram("incremental.repair_depth")
_REPAIRS = counter("incremental.repairs")
_FALLBACKS = counter("incremental.fallbacks")


def incremental_enabled() -> bool:
    """Kill-switch view of ``REPRO_INCREMENTAL``: on unless explicitly off.

    A session with incremental disabled recomputes everything cold on every
    delta — the escape hatch if a warm-path bug is ever suspected in
    production, since cold and warm paths are contractually bit-identical.
    """
    raw = os.environ.get(INCREMENTAL_ENV_VAR, "").strip().lower()
    return raw not in _FALSY


def incremental_requested() -> bool:
    """Opt-in view of ``REPRO_INCREMENTAL``: off unless explicitly on.

    Drivers (CLI, experiment runner) consult this before building an
    :class:`IncrementalSession` for a run that didn't ask for one.
    """
    raw = os.environ.get(INCREMENTAL_ENV_VAR, "").strip().lower()
    return raw in _TRUTHY


@dataclass(frozen=True)
class DeltaOutcome:
    """What :meth:`IncrementalSession.apply_delta` did.

    ``affected_counts[t]`` is the number of reach-matrix rows recomputed for
    snapshot *t*; ``full_recompute[t]`` marks snapshots whose blast radius
    exceeded the threshold and were recomputed wholesale.
    """

    applied: AppliedDelta
    invalidation: DeltaInvalidation
    affected_counts: tuple[int, ...]
    full_recompute: tuple[bool, ...]

    @property
    def incremental(self) -> bool:
        """Whether any snapshot took the blast-radius path."""
        return any(not full for full in self.full_recompute)


@dataclass(frozen=True)
class ReselectOutcome:
    """What :meth:`IncrementalSession.reselect` did.

    ``repaired`` is False when the seed set was recomputed cold (no cached
    trace, incremental disabled, or budget ``fallback``); the seeds are the
    same either way — only the work differs.
    """

    seeds: tuple[int, ...]
    repair_depth: int
    evaluations: int
    fallback: bool
    repaired: bool


class IncrementalSession:
    """Cold-select once, then answer edge deltas at warm-path cost.

    The session owns one stable snapshot sample (identity drawn from *rng*
    on construction), the exact R×n reach matrix over it, and the CELF
    traces of every budget selected so far.  :meth:`apply_delta` patches all
    three in place; :meth:`reselect` repairs a cached seed set against the
    patched state.  All answers are bit-identical to cold recomputation on
    the current graph — the session only changes how much work they cost.
    """

    def __init__(
        self,
        graph: DiGraph,
        model: CascadeModel,
        num_snapshots: int = 8,
        kernel: str | None = None,
        num_shards: int = DEFAULT_NUM_SHARDS,
        rng: RandomSource = None,
        tolerance: float = 1e-9,
        repair_budget: int | None = None,
        recompute_fraction: float = 0.25,
        pool_seed: int | None = None,
    ) -> None:
        if num_snapshots <= 0:
            raise GraphError(
                f"num_snapshots must be positive, got {num_snapshots}"
            )
        if not 0.0 < recompute_fraction <= 1.0:
            raise GraphError(
                "recompute_fraction must be in (0, 1], got "
                f"{recompute_fraction}"
            )
        self.graph = graph
        self.model = model
        self.num_snapshots = int(num_snapshots)
        self.kernel = kernel
        self.num_shards = int(num_shards)
        self.tolerance = float(tolerance)
        self.repair_budget = repair_budget
        self.recompute_fraction = float(recompute_fraction)
        # The pool identity: pin it (``pool_seed``) to make two sessions
        # sample the identical stable snapshot stream — how cold
        # comparators reproduce a warm session's answers bit for bit.
        if pool_seed is not None:
            self._pool_seed = int(pool_seed)
        else:
            self._pool_seed = int(as_rng(rng).integers(0, 2**62))
        self._masks: list[np.ndarray] | None = None
        self._reach: np.ndarray | None = None
        self._oracle: SnapshotOracle | None = None
        self._traces: dict[int, CelfTrace] = {}

    # ------------------------------------------------------------------ #
    # shared state
    # ------------------------------------------------------------------ #

    @property
    def pool_seed(self) -> int:
        """The stable-sampling identity seed of this session's snapshots."""
        return self._pool_seed

    def _pool(self, graph: DiGraph) -> SnapshotPool:
        return SnapshotPool(
            graph,
            stable=True,
            struct_shards=self.num_shards,
            seed=self._pool_seed,
        )

    def _ensure_state(self) -> tuple[list[np.ndarray], np.ndarray, SnapshotOracle]:
        if self._masks is None or self._reach is None:
            with span(
                "incremental.cold_sample", snapshots=self.num_snapshots
            ):
                masks = self._pool(self.graph).masks(
                    self.model, self.num_snapshots
                )
                reach = np.stack(
                    [all_reach_sizes(self.graph, mask) for mask in masks]
                )
            self._masks, self._reach = masks, reach
            self._oracle = None
        if self._oracle is None:
            self._oracle = SnapshotOracle(
                self.graph, self._masks, kernel=self.kernel
            )
        return self._masks, self._reach, self._oracle

    def _gains(self) -> list[float]:
        _, reach, _ = self._ensure_state()
        return [float(g) for g in reach.mean(axis=0)]

    def journal_params(self) -> dict[str, object]:
        """``run_start`` fields attributing warm vs cold paths in traces."""
        from repro.cascade.kernels import resolve_kernel

        return {
            "kernel": resolve_kernel(self.kernel),
            "shards": self.num_shards,
        }

    # ------------------------------------------------------------------ #
    # cold selection
    # ------------------------------------------------------------------ #

    def select(self, k: int) -> list[int]:
        """Cold CELF selection; caches the trace for later repair."""
        with span("incremental.cold_select", k=k):
            _, _, oracle = self._ensure_state()
            seeds, trace = run_celf(oracle, k, self._gains())
        self._traces[k] = trace
        return seeds

    # ------------------------------------------------------------------ #
    # delta application
    # ------------------------------------------------------------------ #

    def apply_delta(self, delta: EdgeDelta) -> DeltaOutcome:
        """Patch the graph, the snapshot sample, and the reach matrix.

        Invalidates shard-scoped cache state, splices the stable snapshot
        pool (clean shards reused, dirty shards resampled), and updates the
        reach matrix by blast radius.  With incremental disabled
        (``REPRO_INCREMENTAL=off``) every snapshot takes the full-recompute
        path instead — same numbers, cold cost.
        """
        old_graph = self.graph
        old_masks, old_reach, _ = self._ensure_state()
        applied = merge_delta(old_graph, delta)
        invalidation = invalidate_for_delta(applied, self.num_shards)
        new_graph = applied.graph

        with span(
            "incremental.splice",
            dirty_shards=len(invalidation.dirty_shards),
            shards=self.num_shards,
        ):
            new_masks = self._pool(new_graph).masks(
                self.model, self.num_snapshots
            )

        warm = incremental_enabled()
        affected_counts: list[int] = []
        full_recompute: list[bool] = []
        rows: list[np.ndarray] = []
        with span("incremental.gains_update", snapshots=self.num_snapshots):
            for t in range(self.num_snapshots):
                if not warm:
                    rows.append(all_reach_sizes(new_graph, new_masks[t]))
                    affected_counts.append(new_graph.num_nodes)
                    full_recompute.append(True)
                    continue
                row, count, full = self._update_row(
                    applied, old_masks[t], new_masks[t], old_reach[t]
                )
                rows.append(row)
                affected_counts.append(count)
                full_recompute.append(full)

        self.graph = new_graph
        self._masks = new_masks
        self._reach = np.stack(rows)
        self._oracle = None
        return DeltaOutcome(
            applied=applied,
            invalidation=invalidation,
            affected_counts=tuple(affected_counts),
            full_recompute=tuple(full_recompute),
        )

    def _update_row(
        self,
        applied: AppliedDelta,
        old_mask: np.ndarray,
        new_mask: np.ndarray,
        old_row: np.ndarray,
    ) -> tuple[np.ndarray, int, bool]:
        """One snapshot's reach-size row after the delta.

        A node's reach set can change only if it reaches the source of an
        edge whose live status differs between the snapshots — survivors
        whose bit flipped (dirty-shard resampling can flip them), removed
        edges that were live, added edges that are live.  The union of the
        reverse-reachable sets of those sources in the old and new live
        graphs is the exact blast radius; rows outside it are copied.
        """
        parent, child = applied.parent, applied.graph
        old_src, _ = parent.edge_array()
        new_src, _ = child.edge_array()

        changed_sources: list[np.ndarray] = []
        if applied.kept_old_ids.size:
            live_old = lookup_bits(old_mask, applied.kept_old_ids)
            live_new = lookup_bits(new_mask, applied.kept_new_ids)
            flipped = live_old != live_new
            changed_sources.append(old_src[applied.kept_old_ids[flipped]])
        if applied.removed_old_ids.size:
            was_live = lookup_bits(old_mask, applied.removed_old_ids)
            changed_sources.append(
                old_src[applied.removed_old_ids[was_live]]
            )
        if applied.added_new_ids.size:
            is_live = lookup_bits(new_mask, applied.added_new_ids)
            changed_sources.append(new_src[applied.added_new_ids[is_live]])

        sources = (
            np.unique(np.concatenate(changed_sources))
            if changed_sources
            else np.zeros(0, np.int64)
        )
        if sources.size == 0:
            return old_row.copy(), 0, False

        affected = parent.reverse_reachable_from(
            sources, old_mask
        ) | child.reverse_reachable_from(sources, new_mask)
        count = int(affected.sum())
        if count > self.recompute_fraction * child.num_nodes:
            return all_reach_sizes(child, new_mask), count, True
        row = old_row.copy()
        for node in np.flatnonzero(affected):
            row[node] = int(
                child.reachable_from([int(node)], new_mask).sum()
            )
        return row, count, False

    # ------------------------------------------------------------------ #
    # warm reselection
    # ------------------------------------------------------------------ #

    def reselect(self, k: int) -> ReselectOutcome:
        """Seed set for budget *k* on the current graph, repaired if possible.

        Bit-identical to :meth:`select` on a fresh session over the current
        graph state; uses the cached CELF trace to avoid re-deriving picks
        that provably still hold.  Updates ``incremental.repair_depth`` /
        ``incremental.repairs`` / ``incremental.fallbacks``.
        """
        _, _, oracle = self._ensure_state()
        gains = self._gains()
        trace = self._traces.get(k)
        if trace is None or not incremental_enabled():
            seeds, new_trace = run_celf(oracle, k, gains)
            self._traces[k] = new_trace
            return ReselectOutcome(
                seeds=tuple(seeds),
                repair_depth=0,
                evaluations=0,
                fallback=False,
                repaired=False,
            )

        with span("incremental.repair", k=k):
            outcome = repair_celf(
                oracle,
                k,
                gains,
                trace,
                tolerance=self.tolerance,
                budget=self.repair_budget,
            )
        _REPAIR_DEPTH.observe(float(outcome.repair_depth))
        if outcome.fallback:
            _FALLBACKS.inc()
            seeds, new_trace = run_celf(oracle, k, gains)
            self._traces[k] = new_trace
            return ReselectOutcome(
                seeds=tuple(seeds),
                repair_depth=outcome.repair_depth,
                evaluations=outcome.evaluations,
                fallback=True,
                repaired=False,
            )
        _REPAIRS.inc()
        self._traces[k] = outcome.trace
        return ReselectOutcome(
            seeds=tuple(outcome.seeds),
            repair_depth=outcome.repair_depth,
            evaluations=outcome.evaluations,
            fallback=False,
            repaired=True,
        )
