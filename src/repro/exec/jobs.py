"""Simulation job types: the unit of work the execution engine schedules.

A *job* is a self-contained, picklable description of a batch-able piece of
Monte-Carlo work: everything it needs (graph, model, seed sets, round
count) travels with it, and :meth:`~SimulationJob.run` produces a tuple of
:class:`~repro.cascade.estimate.SpreadEstimate` — one per quantity the job
estimates.  Self-containment is what lets the same job object execute
unchanged on the serial, thread, and process backends.

**Graph payloads.**  Every job's ``graph`` field accepts either an
in-memory :class:`~repro.graphs.digraph.DiGraph` or a
:class:`~repro.graphs.store.GraphRef` — an O(1) handle to a stored,
memory-mapped graph.  Jobs resolve the ref at the top of ``run`` through
the per-process handle cache (:func:`repro.graphs.store.resolve_graph`),
so on the process backend a ref-carrying payload pickles in hundreds of
bytes where the raw CSR arrays would cost O(n+m) — the difference between
hep-scale and wiki-Talk-scale batches.  Project-lint rule RP016 flags job
classes whose graph fields do not admit refs.

Concrete jobs covering the σ(·) quantities of the paper:

* :class:`SpreadJob` — the non-competitive spread ``σ0(S)`` of one seed
  set (a 1-tuple of estimates);
* :class:`CompetitiveJob` — the per-group spreads ``(σ1, .., σr)`` of a
  full seed-set profile under the competitive engine;
* :class:`SnapshotGainsJob` — exact per-node reach sizes over a chunk of
  pre-sampled live-edge masks;
* :class:`SnapshotShardJob` — the sharded variant: samples its own shard
  of live-edge masks worker-side from a deterministic shard seed, so the
  masks never cross the pickle boundary at all.

``CompetitiveJob`` optionally runs under **common random numbers**
(``crn_base``): round *i* replays the stream seeded
``crn_base + crn_step·i`` instead of drawing from the job's spawned
generator, so candidate comparisons inside greedy loops (follower best
response, blocker selection) are paired across jobs.

Other modules may define their own job types — anything satisfying the
:class:`SimulationJob` protocol (and picklable, for the process backend)
can be submitted to an :class:`~repro.exec.executor.Executor`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from repro.cascade.base import CascadeModel
from repro.cascade.competitive import ClaimRule, CompetitiveDiffusion, TieBreakRule
from repro.cascade.estimate import SpreadEstimate
from repro.cascade.reachability import all_reach_sizes
from repro.cascade.snapshots import sample_snapshots, sample_stable_snapshots
from repro.graphs.digraph import DiGraph
from repro.graphs.store import GraphRef, resolve_graph
from repro.utils.rng import as_rng
from repro.utils.shards import DEFAULT_NUM_SHARDS

#: Modulus keeping derived common-random-number seeds inside numpy's range.
_SEED_MODULUS = 2**63 - 1

#: What a job's ``graph`` field holds: the graph itself, or an O(1) ref
#: resolved worker-side.  Both expose ``num_nodes`` without I/O.
GraphPayload = DiGraph | GraphRef


@runtime_checkable
class SimulationJob(Protocol):
    """Anything the execution engine can schedule.

    ``run`` receives a dedicated :class:`numpy.random.Generator` (spawned
    from the batch's root seed sequence — see
    :func:`repro.utils.rng.spawn_seed_sequences`) and returns one
    :class:`SpreadEstimate` per estimated quantity.  ``num_nodes`` bounds
    every estimate for the opt-in runtime contracts; return ``None`` when
    no graph-derived bound applies.
    """

    def run(self, generator: np.random.Generator) -> tuple[SpreadEstimate, ...]:
        """Execute the job using *generator* for all randomness."""
        ...

    @property
    def num_nodes(self) -> int | None:
        """Upper bound for every estimate's mean, or ``None``."""
        ...


@dataclass(frozen=True)
class SpreadJob:
    """Estimate the non-competitive spread ``σ0(seeds)`` by *rounds* simulations.

    ``kernel`` selects the diffusion inner loop (``"python"``/``"numpy"``;
    ``None`` falls back to ``REPRO_KERNEL`` at run time).
    """

    graph: DiGraph | GraphRef
    model: CascadeModel
    seeds: tuple[int, ...]
    rounds: int
    kernel: str | None = None

    @property
    def num_nodes(self) -> int | None:
        return self.graph.num_nodes

    def run(self, generator: np.random.Generator) -> tuple[SpreadEstimate, ...]:
        graph = resolve_graph(self.graph)
        values = np.empty(self.rounds, dtype=float)
        for i in range(self.rounds):
            values[i] = self.model.spread_once(
                graph, self.seeds, generator, kernel=self.kernel
            )
        return (SpreadEstimate.from_values(values),)


@dataclass(frozen=True)
class CompetitiveJob:
    """Estimate per-group competitive spreads for one seed-set profile.

    Each of the *rounds* simulations independently re-resolves seed
    collisions (initiator assignment) and re-runs the diffusion, matching
    the paper's expectation over both sources of randomness.

    When ``crn_base`` is set, round *i* draws from a fresh stream seeded
    ``(crn_base + crn_step·i) mod 2^63-1`` — the common-random-numbers
    pairing used by the greedy candidate loops.

    ``kernel`` selects the diffusion inner loop (``"python"``/``"numpy"``;
    ``None`` falls back to ``REPRO_KERNEL`` at run time).
    """

    graph: DiGraph | GraphRef
    model: CascadeModel
    seed_sets: tuple[tuple[int, ...], ...]
    rounds: int
    tie_break: TieBreakRule = TieBreakRule.UNIFORM
    claim_rule: ClaimRule = ClaimRule.PROPORTIONAL
    crn_base: int | None = None
    crn_step: int = 7919
    kernel: str | None = None

    @property
    def num_nodes(self) -> int | None:
        return self.graph.num_nodes

    def run(self, generator: np.random.Generator) -> tuple[SpreadEstimate, ...]:
        graph = resolve_graph(self.graph)
        engine = CompetitiveDiffusion(
            graph, self.model, self.tie_break, self.claim_rule, self.kernel
        )
        profile = [list(seeds) for seeds in self.seed_sets]
        values = np.empty((len(profile), self.rounds), dtype=float)
        for i in range(self.rounds):
            if self.crn_base is None:
                stream = generator
            else:
                stream = as_rng((self.crn_base + self.crn_step * i) % _SEED_MODULUS)
            outcome = engine.run(profile, stream)
            values[:, i] = outcome.spreads()
        return tuple(
            SpreadEstimate.from_values(values[j]) for j in range(len(profile))
        )


def _reach_estimates(
    graph: DiGraph, masks: tuple[np.ndarray, ...] | list[np.ndarray]
) -> tuple[SpreadEstimate, ...]:
    """Per-node reach-size estimates over *masks* (samples = len(masks))."""
    values = np.empty((len(masks), graph.num_nodes), dtype=float)
    for i, mask in enumerate(masks):
        values[i] = all_reach_sizes(graph, mask)
    return tuple(
        SpreadEstimate.from_values(values[:, v])
        for v in range(graph.num_nodes)
    )


@dataclass(frozen=True)
class SnapshotGainsJob:
    """Exact per-node reach sizes over a chunk of live-edge snapshots.

    Used by the snapshot-greedy algorithms (MixGreedy / CELF) to fan the
    NewGreedy step out across workers: each job evaluates its chunk of
    masks with the SCC-condensation DP and returns one estimate **per
    node** (samples = masks in the chunk).  Pooling the chunk estimates
    with :meth:`SpreadEstimate.__add__` recovers the average reach over
    the full snapshot sample; reach sizes are integers, so the pooled
    means are exact regardless of how masks were chunked.

    The job draws no randomness — masks are sampled by the caller (a
    private ``select`` call or a shared per-group
    :class:`~repro.cascade.pools.SnapshotPool`, which also memoizes the
    pooled result of this batch) so the snapshot sample is identical no
    matter which backend evaluates it.  Masks may be boolean-style or
    packed bitsets; for payloads that avoid shipping masks entirely, see
    :class:`SnapshotShardJob`.
    """

    graph: DiGraph | GraphRef
    masks: tuple[np.ndarray, ...]

    @property
    def num_nodes(self) -> int | None:
        return self.graph.num_nodes

    def run(self, generator: np.random.Generator) -> tuple[SpreadEstimate, ...]:
        return _reach_estimates(resolve_graph(self.graph), self.masks)


@dataclass(frozen=True)
class SnapshotShardJob:
    """Sample one shard of live-edge snapshots worker-side and score it.

    The sharded counterpart of :class:`SnapshotGainsJob`: instead of
    receiving pre-sampled masks (O(edges) per payload), the job carries
    only a deterministic ``shard_seed`` and samples its *count* masks
    inside the worker, then runs the same per-node reach-size DP.  With a
    :class:`~repro.graphs.store.GraphRef` graph payload the whole job
    pickles in O(1) regardless of graph size.

    Determinism: ``shard_seed`` is derived by the
    :class:`~repro.cascade.pools.SnapshotPool` from its identity seed and
    the shard index alone — *not* from the executor's per-job stream — so
    the sampled masks depend only on (pool seed, shard layout) and
    warm-cache replay reproduces them bit for bit on any backend.  The
    parent can re-derive the same masks locally from the same seed
    (:meth:`SnapshotPool.masks` does exactly that).

    With ``stable=True`` the job instead draws snapshots ``start ..
    start + count`` of the per-edge-hash stream
    (:func:`~repro.cascade.snapshots.sample_stable_snapshots`) keyed by
    ``shard_seed`` — here the *pool-level* stable seed shared by every job
    of the batch, with ``start`` offsets partitioning the snapshot range.
    ``struct_shards`` fixes the structural (node-range) shard layout so
    worker-side samples match the parent's splice layout bit for bit.
    """

    graph: DiGraph | GraphRef
    model: CascadeModel
    shard_seed: int
    count: int
    packed: bool = True
    stable: bool = False
    start: int = 0
    struct_shards: int = DEFAULT_NUM_SHARDS

    @property
    def num_nodes(self) -> int | None:
        return self.graph.num_nodes

    def run(self, generator: np.random.Generator) -> tuple[SpreadEstimate, ...]:
        graph = resolve_graph(self.graph)
        if self.stable:
            masks = sample_stable_snapshots(
                graph,
                self.model,
                self.count,
                seed=self.shard_seed,
                start=self.start,
                packed=self.packed,
                num_shards=self.struct_shards,
            )
        else:
            masks = sample_snapshots(
                graph,
                self.model,
                self.count,
                as_rng(self.shard_seed),
                packed=self.packed,
            )
        return _reach_estimates(graph, masks)
