"""Pluggable batched execution engine for Monte-Carlo simulation.

Public surface: the :class:`Executor` facade, the job types it schedules
(:class:`SpreadJob`, :class:`CompetitiveJob`, anything satisfying the
:class:`SimulationJob` protocol), the three backends, and the env-driven
default-executor plumbing.  See ``docs/execution.md`` for the design and
the SeedSequence-spawn determinism scheme.
"""

from repro.exec.backends import (
    BACKENDS,
    ProcessBackend,
    SerialBackend,
    SimulationBackend,
    ThreadBackend,
    make_backend,
)
from repro.exec.executor import (
    BACKEND_ENV_VAR,
    WORKERS_ENV_VAR,
    Executor,
    JobOutcome,
    build_executor,
    default_executor,
    reset_default_executor,
    resolve_executor,
)
from repro.exec.jobs import (
    CompetitiveJob,
    SimulationJob,
    SnapshotGainsJob,
    SpreadJob,
)

__all__ = [
    "BACKENDS",
    "BACKEND_ENV_VAR",
    "WORKERS_ENV_VAR",
    "CompetitiveJob",
    "Executor",
    "JobOutcome",
    "ProcessBackend",
    "SerialBackend",
    "SimulationBackend",
    "SimulationJob",
    "SnapshotGainsJob",
    "SpreadJob",
    "ThreadBackend",
    "build_executor",
    "default_executor",
    "make_backend",
    "reset_default_executor",
    "resolve_executor",
]
