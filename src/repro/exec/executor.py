"""The :class:`Executor` facade: batched simulation with deterministic RNG.

Every σ(·) estimator in the library submits its Monte-Carlo work here as a
batch of independent :class:`~repro.exec.jobs.SimulationJob` objects.  The
executor:

1. spawns one :class:`numpy.random.SeedSequence` child per job from a
   single entropy draw off the caller's generator
   (:func:`repro.utils.rng.spawn_seed_sequences`), so a fixed master seed
   yields **bit-identical results on every backend at any worker count**;
2. hands the (job, seed-sequence) payloads to the configured
   :class:`~repro.exec.backends.SimulationBackend`;
3. reassembles completions by job index (completion order is irrelevant);
4. instruments the whole batch through :mod:`repro.obs` — job counters,
   queue-wait/job-duration histograms, and ``batch_start``/``batch_done``
   journal events — and validates it under the opt-in
   ``REPRO_CONTRACTS`` invariants.

The process-wide default executor is configured by the ``REPRO_BACKEND``
(``serial``/``thread``/``process``) and ``REPRO_WORKERS`` environment
variables; estimation entry points fall back to it whenever no explicit
executor is passed.
"""

from __future__ import annotations

import atexit
import cProfile
import itertools
import os
import pickle
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Sequence

from repro.cascade.estimate import SpreadEstimate
from repro.cascade.kernels import KERNELS, resolve_kernel
from repro.errors import ExecutionError
from repro.exec.backends import (
    BACKENDS,
    JobPayload,
    SerialBackend,
    SimulationBackend,
    make_backend,
)
from repro.exec.jobs import SimulationJob
from repro.lint import contracts
from repro.obs.journal import RunJournal, current_journal
from repro.obs.log import get_logger
from repro.obs.metrics import counter, get_registry, histogram
from repro.obs.trace import current_trace_context, span
from repro.utils.rng import RandomSource, as_rng, spawn_seed_sequences

#: Environment variables configuring the process-wide default executor.
BACKEND_ENV_VAR = "REPRO_BACKEND"
WORKERS_ENV_VAR = "REPRO_WORKERS"

#: ``REPRO_PROFILE=1`` wraps every batch in cProfile; ``REPRO_PROFILE_DIR``
#: picks where the per-batch ``.prof`` dumps land (default ./repro-profiles).
PROFILE_ENV_VAR = "REPRO_PROFILE"
PROFILE_DIR_ENV_VAR = "REPRO_PROFILE_DIR"

_PROFILE_OFF_VALUES = frozenset({"", "0", "false", "no", "off"})


def profiling_enabled() -> bool:
    """Whether the ``REPRO_PROFILE`` batch-profiling hook is active."""
    raw = os.environ.get(PROFILE_ENV_VAR, "").strip().lower()
    return raw not in _PROFILE_OFF_VALUES

_LOG = get_logger("exec.executor")

_BATCHES = counter("exec.batches")
_JOBS_SUBMITTED = counter("exec.jobs_submitted")
_JOBS_COMPLETED = counter("exec.jobs_completed")
_QUEUE_WAIT_SECONDS = histogram("exec.queue_wait_seconds")
_JOB_SECONDS = histogram("exec.job_seconds")
_BATCH_SECONDS = histogram("exec.batch_seconds")
# Pickled size of each submitted job, observed only on backends that
# actually serialize payloads (process).  With GraphRef payloads this stays
# O(1) per job regardless of graph size — the scale-out invariant the
# large-graph smoke test asserts.
_JOB_PAYLOAD_BYTES = histogram("exec.job_payload_bytes")
_JOBS_BY_KERNEL = {
    name: counter(f"exec.jobs_kernel_{name}") for name in KERNELS
}

_BATCH_IDS = itertools.count()


def _batch_kernel(jobs: Sequence[SimulationJob]) -> str:
    """The kernel label journaled for a batch.

    Jobs without a ``kernel`` attribute (e.g. snapshot-gains jobs, which
    draw no randomness) resolve like an unset kernel; mixed batches are
    labelled with every kernel present, slash-joined.
    """
    resolved = sorted(
        {resolve_kernel(getattr(job, "kernel", None)) for job in jobs}
    )
    return "/".join(resolved)


@dataclass(frozen=True)
class JobOutcome:
    """One job's results plus its scheduling telemetry."""

    index: int
    estimates: tuple[SpreadEstimate, ...]
    queue_wait_seconds: float
    job_seconds: float


class Executor:
    """Facade running batches of simulation jobs on a pluggable backend.

    Parameters
    ----------
    backend:
        A backend name (``serial``/``thread``/``process``) or an already
        constructed :class:`SimulationBackend`.
    workers:
        Worker count for the pooled backends (ignored by ``serial``;
        defaults to the CPU count).
    """

    def __init__(
        self,
        backend: str | SimulationBackend = "serial",
        workers: int | None = None,
    ) -> None:
        if isinstance(backend, SimulationBackend):
            self._backend = backend
        else:
            self._backend = make_backend(backend, workers)
        _LIVE_EXECUTORS.add(self)

    @property
    def backend_name(self) -> str:
        """The active backend's short name."""
        return self._backend.name

    @property
    def workers(self) -> int:
        """Effective worker count (1 for the serial backend)."""
        return getattr(self._backend, "workers", 1)

    def run(
        self,
        jobs: Sequence[SimulationJob],
        rng: RandomSource = None,
    ) -> list[JobOutcome]:
        """Execute *jobs* as one batch; outcomes are ordered like *jobs*.

        Exactly one entropy value is drawn from *rng* per batch (advancing
        a shared generator by a single step), from which every job's
        private stream is spawned — see
        :func:`repro.utils.rng.spawn_seed_sequences` for the determinism
        argument.
        """
        jobs = list(jobs)
        if not jobs:
            return []
        generator = as_rng(rng)
        sequences = spawn_seed_sequences(generator, len(jobs))
        batch_id = next(_BATCH_IDS)
        kernel = _batch_kernel(jobs)
        # Harvest worker-local metric deltas only when workers do not share
        # this process's registry (process backend): serial/thread jobs
        # already increment it directly, so merging would double-count.
        harvest = not self._backend.shares_registry
        # Measure submit-side payloads only where they are actually pickled
        # (same condition as harvesting): serial/thread backends pass jobs
        # by reference, so serializing them there would be pure overhead.
        payload_bytes: int | None = None
        if harvest:
            sizes = [
                len(pickle.dumps(job, protocol=pickle.HIGHEST_PROTOCOL))
                for job in jobs
            ]
            for size in sizes:
                _JOB_PAYLOAD_BYTES.observe(float(size))
            payload_bytes = int(sum(sizes))
        sink = current_journal()
        if sink is not None:
            sink.batch_start(
                batch_id,
                jobs=len(jobs),
                backend=self.backend_name,
                workers=self.workers,
                kernel=kernel,
                payload_bytes=payload_bytes,
            )
        _BATCHES.inc()
        _JOBS_SUBMITTED.inc(len(jobs))
        for job in jobs:
            _JOBS_BY_KERNEL[resolve_kernel(getattr(job, "kernel", None))].inc()
        registry = get_registry()
        profiler = cProfile.Profile() if profiling_enabled() else None
        outcomes: list[JobOutcome | None] = [None] * len(jobs)
        worker_spans: list[dict[str, object]] = []
        with span(
            "exec.batch",
            journal=True,
            batch_id=batch_id,
            jobs=len(jobs),
            backend=self.backend_name,
            kernel=kernel,
        ):
            context = current_trace_context()
            serialized = context.as_dict() if context is not None else None
            submitted = time.monotonic()
            payloads: list[JobPayload] = [
                (i, job, sequences[i], submitted, serialized, harvest)
                for i, job in enumerate(jobs)
            ]
            if profiler is not None:
                profiler.enable()
            try:
                for (
                    index,
                    estimates,
                    queue_wait,
                    job_seconds,
                    delta,
                    span_records,
                ) in self._backend.map_unordered(payloads):
                    outcomes[index] = JobOutcome(
                        index, estimates, queue_wait, job_seconds
                    )
                    _JOBS_COMPLETED.inc()
                    _QUEUE_WAIT_SECONDS.observe(queue_wait)
                    _JOB_SECONDS.observe(job_seconds)
                    if harvest and delta is not None:
                        registry.merge_delta(delta)
                    worker_spans.extend(span_records)
            finally:
                if profiler is not None:
                    profiler.disable()
            elapsed = time.monotonic() - submitted
        if sink is not None:
            # Replay journal-worthy spans collected inside workers (which
            # have no journal attached); their trace ids already parent
            # them under this batch's span.
            for record in worker_spans:
                sink.emit("span", **record)
        if profiler is not None:
            self._dump_profile(profiler, batch_id, sink)
        _BATCH_SECONDS.observe(elapsed)
        missing = [i for i, outcome in enumerate(outcomes) if outcome is None]
        if missing:
            raise ExecutionError(
                f"backend {self.backend_name!r} dropped jobs {missing} of "
                f"batch {batch_id}"
            )
        completed: list[JobOutcome] = [o for o in outcomes if o is not None]
        if contracts.enabled():
            contracts.check_batch(
                [outcome.estimates for outcome in completed],
                [job.num_nodes for job in jobs],
            )
        if sink is not None:
            sink.batch_done(
                batch_id,
                jobs=len(jobs),
                backend=self.backend_name,
                workers=self.workers,
                duration_seconds=elapsed,
                kernel=kernel,
            )
        _LOG.debug(
            "batch %d: %d jobs on %s/%d workers in %.3fs",
            batch_id,
            len(jobs),
            self.backend_name,
            self.workers,
            elapsed,
        )
        return completed

    def _dump_profile(
        self,
        profiler: cProfile.Profile,
        batch_id: int,
        sink: RunJournal | None,
    ) -> None:
        """Write the batch's cProfile dump and journal a pointer to it.

        Serial/thread backends profile the actual simulation work; the
        process backend profiles only the submit/gather side (workers run
        in other processes), which still surfaces pickling overheads.
        """
        directory = Path(
            os.environ.get(PROFILE_DIR_ENV_VAR, "").strip() or "repro-profiles"
        )
        directory.mkdir(parents=True, exist_ok=True)
        prof_path = directory / f"batch-{batch_id:05d}.prof"
        profiler.dump_stats(str(prof_path))
        _LOG.debug("batch %d profile dumped to %s", batch_id, prof_path)
        if sink is not None:
            sink.emit(
                "profile",
                batch_id=batch_id,
                path=str(prof_path),
                backend=self.backend_name,
            )

    def estimates(
        self,
        jobs: Sequence[SimulationJob],
        rng: RandomSource = None,
    ) -> list[tuple[SpreadEstimate, ...]]:
        """Convenience wrapper: the per-job estimate tuples of :meth:`run`."""
        return [outcome.estimates for outcome in self.run(jobs, rng=rng)]

    def close(self) -> None:
        """Release the backend's pooled workers (idempotent)."""
        self._backend.close()
        _LIVE_EXECUTORS.discard(self)

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"Executor(backend={self.backend_name!r}, workers={self.workers})"


# ---------------------------------------------------------------------- #
# interpreter-exit cleanup
# ---------------------------------------------------------------------- #

# Strong references: an unclosed executor must never be reclaimed by
# refcounting, because concurrent.futures reacts to that with an
# *asynchronous* pool shutdown from its manager thread, which races its
# own exit hook on the wakeup pipe (EBADF at interpreter exit on
# CPython < 3.12).  close() discards the reference; anything still here
# at exit is shut down synchronously below, before that hook runs.
_LIVE_EXECUTORS: set[Executor] = set()
_OWNER_PID = os.getpid()


def _close_live_executors() -> None:
    # Forked workers inherit this hook plus phantom references to the
    # parent's executors; shutting those down from a child deadlocks the
    # child (its pool's manager thread does not exist post-fork), which
    # in turn hangs the parent's own shutdown.  Only the creating
    # process cleans up.
    if os.getpid() != _OWNER_PID:
        return
    for executor in list(_LIVE_EXECUTORS):
        executor.close()


# Pools must be shut down before concurrent.futures' own exit hook runs:
# a still-live ProcessPoolExecutor races it on the management-thread
# wakeup pipe under fork (EBADF at interpreter exit on CPython < 3.12).
# threading._register_atexit callbacks run LIFO, and repro.exec imports
# after concurrent.futures, so this hook fires first; plain atexit is the
# fallback where the private hook is unavailable.
_register_atexit = getattr(threading, "_register_atexit", None)
if _register_atexit is not None:
    _register_atexit(_close_live_executors)
else:  # pragma: no cover - CPython always has the threading hook
    atexit.register(_close_live_executors)


# ---------------------------------------------------------------------- #
# process-wide default
# ---------------------------------------------------------------------- #

_DEFAULT: Executor | None = None


def _env_workers() -> int | None:
    raw = os.environ.get(WORKERS_ENV_VAR, "").strip()
    if not raw:
        return None
    value = int(raw)
    if value < 1:
        raise ExecutionError(f"{WORKERS_ENV_VAR} must be >= 1, got {value}")
    return value


def build_executor(
    backend: str | None = None, workers: int | None = None
) -> Executor:
    """Build an executor from explicit settings with env-variable fallbacks.

    ``backend=None`` falls back to ``REPRO_BACKEND`` (default ``serial``);
    ``workers=None`` falls back to ``REPRO_WORKERS`` (default: CPU count).
    """
    resolved = backend or os.environ.get(BACKEND_ENV_VAR, "").strip() or "serial"
    if resolved not in BACKENDS:
        raise ExecutionError(
            f"unknown execution backend {resolved!r}; known: {sorted(BACKENDS)}"
        )
    return Executor(resolved, workers if workers is not None else _env_workers())


def default_executor() -> Executor:
    """The process-wide executor estimation entry points fall back to.

    Configured by ``REPRO_BACKEND``/``REPRO_WORKERS`` and re-built (closing
    the previous instance) whenever those variables change, so test suites
    and CI matrices can flip backends between calls.
    """
    global _DEFAULT
    backend = os.environ.get(BACKEND_ENV_VAR, "").strip() or "serial"
    workers = _env_workers()
    if (
        _DEFAULT is None
        or _DEFAULT.backend_name != backend
        or (workers is not None and _DEFAULT.workers != workers)
    ):
        if _DEFAULT is not None:
            _DEFAULT.close()
        _DEFAULT = build_executor(backend, workers)
    return _DEFAULT


def reset_default_executor() -> None:
    """Close and forget the process-wide default executor (mainly for tests)."""
    global _DEFAULT
    if _DEFAULT is not None:
        _DEFAULT.close()
        _DEFAULT = None


def resolve_executor(executor: Executor | None) -> Executor:
    """*executor* itself, or the process-wide default when ``None``."""
    return executor if executor is not None else default_executor()
