"""Execution backends: serial, thread-pool, and process-pool job runners.

A backend's only contract is :meth:`SimulationBackend.map_unordered`: apply
the worker function to every payload and yield ``(index, estimates,
queue_wait_seconds, job_seconds)`` records **in any order**.  The
:class:`~repro.exec.executor.Executor` reassembles results by index, and
per-job randomness is fixed up front by the spawned seed sequences, so
completion order never affects results.

Backend choice is a pure performance trade-off (see ``docs/execution.md``):

* :class:`SerialBackend` — zero overhead; the default and the baseline.
* :class:`ThreadBackend` — shares memory (no pickling) but the diffusion
  inner loops are pure Python, so the GIL caps speedup; useful mainly when
  a job type releases the GIL (numpy-heavy jobs) or for latency hiding.
* :class:`ProcessBackend` — true multi-core scaling at the cost of
  pickling each job (graph included) to the worker; wins whenever per-job
  simulation time dominates serialization, which the Table-4 payoff
  workload comfortably does.

Pools are created lazily and reused across batches; call
:meth:`SimulationBackend.close` (or close the owning executor) to release
worker threads/processes.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import (
    Executor as _FuturesExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from collections.abc import Iterator, Sequence

import numpy as np

from typing import Any

from repro.cascade.estimate import SpreadEstimate
from repro.errors import ExecutionError
from repro.exec.jobs import SimulationJob
from repro.obs.metrics import MetricsState, delta_state, get_registry
from repro.obs.trace import collect_spans, span, trace_scope
from repro.utils.rng import as_rng

#: (index, job, per-job seed sequence, batch submission time,
#:  serialized trace context or None, harvest-worker-metrics flag).
JobPayload = tuple[
    int,
    SimulationJob,
    np.random.SeedSequence,
    float,
    dict[str, str] | None,
    bool,
]

#: (index, estimates, queue-wait seconds, job-duration seconds,
#:  worker metrics delta or None, journal-worthy span records).
JobRecord = tuple[
    int,
    tuple[SpreadEstimate, ...],
    float,
    float,
    MetricsState | None,
    tuple[dict[str, Any], ...],
]


def execute_job(payload: JobPayload) -> JobRecord:
    """Run one job with its dedicated RNG stream (the worker entry point).

    Module-level so the process backend can pickle a reference to it; the
    timing fields use :func:`time.monotonic`, which is system-wide on the
    platforms we support, so queue waits measured across fork boundaries
    stay meaningful.

    Telemetry crosses the exec boundary in both directions: the payload's
    trace context re-anchors spans opened here under the submitting batch
    span (:func:`repro.obs.trace.trace_scope`), and — when the payload asks
    for a harvest (process backend) — the worker-local metric activity of
    the job is snapshotted as a delta and shipped back in the record for
    the executor to merge, so ``metrics.snapshot()`` is backend-invariant.
    Journal-worthy spans are collected rather than emitted (workers have no
    journal attached) and replayed into the parent-side journal.
    """
    index, job, seed_seq, submitted, trace_ctx, harvest = payload
    registry = get_registry()
    before = registry.state() if harvest else None
    started = time.monotonic()
    with trace_scope(trace_ctx), collect_spans() as records:
        with span("exec.job", journal=True, index=index):
            estimates = job.run(as_rng(seed_seq))
    finished = time.monotonic()
    delta = delta_state(before, registry.state()) if before is not None else None
    return (
        index,
        estimates,
        max(0.0, started - submitted),
        finished - started,
        delta,
        tuple(records),
    )


class SimulationBackend:
    """Strategy interface for running a batch of independent jobs."""

    #: short identifier used in metrics, journal events, and CLI flags
    name: str = "abstract"

    #: whether jobs run in the submitting process and therefore increment
    #: the parent metrics registry directly; when False (process backend)
    #: the executor asks workers for metric deltas and merges them instead
    shares_registry: bool = True

    def map_unordered(
        self, payloads: Sequence[JobPayload]
    ) -> Iterator[JobRecord]:
        """Yield one :data:`JobRecord` per payload, in any order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any pooled workers (idempotent)."""

    def __enter__(self) -> "SimulationBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SerialBackend(SimulationBackend):
    """Run jobs one after another in the calling thread."""

    name = "serial"

    def map_unordered(
        self, payloads: Sequence[JobPayload]
    ) -> Iterator[JobRecord]:
        for payload in payloads:
            yield execute_job(payload)


class _PooledBackend(SimulationBackend):
    """Shared submit/gather plumbing for the pool-based backends."""

    def __init__(self, workers: int | None = None) -> None:
        if workers is not None and workers < 1:
            raise ExecutionError(f"workers must be >= 1, got {workers}")
        self.workers = workers or os.cpu_count() or 1
        self._pool: _FuturesExecutor | None = None

    def _make_pool(self) -> _FuturesExecutor:
        raise NotImplementedError

    def _ensure_pool(self) -> _FuturesExecutor:
        if self._pool is None:
            self._pool = self._make_pool()
        return self._pool

    def map_unordered(
        self, payloads: Sequence[JobPayload]
    ) -> Iterator[JobRecord]:
        pool = self._ensure_pool()
        futures = [pool.submit(execute_job, payload) for payload in payloads]
        for future in as_completed(futures):
            yield future.result()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __repr__(self) -> str:
        return f"{type(self).__name__}(workers={self.workers})"


class ThreadBackend(_PooledBackend):
    """Run jobs on a shared :class:`ThreadPoolExecutor`."""

    name = "thread"

    def _make_pool(self) -> _FuturesExecutor:
        return ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-exec"
        )


class ProcessBackend(_PooledBackend):
    """Run jobs on a shared :class:`ProcessPoolExecutor`.

    Jobs and results cross the process boundary by pickling, so job types
    must be module-level classes and should keep their payloads lean (the
    graph's arrays dominate; at experiment scale that is well under the
    per-job simulation cost).
    """

    name = "process"
    shares_registry = False

    def _make_pool(self) -> _FuturesExecutor:
        return ProcessPoolExecutor(max_workers=self.workers)


#: Registry used by the CLI/env plumbing; order defines documentation order.
BACKENDS: dict[str, type[SimulationBackend]] = {
    SerialBackend.name: SerialBackend,
    ThreadBackend.name: ThreadBackend,
    ProcessBackend.name: ProcessBackend,
}


def make_backend(name: str, workers: int | None = None) -> SimulationBackend:
    """Instantiate a backend by name (``serial``/``thread``/``process``)."""
    try:
        backend_cls = BACKENDS[name]
    except KeyError:
        raise ExecutionError(
            f"unknown execution backend {name!r}; known: {sorted(BACKENDS)}"
        ) from None
    if backend_cls is SerialBackend:
        return SerialBackend()
    return backend_cls(workers)
