"""Argument validation helpers shared across the library.

These raise built-in ``ValueError``/``TypeError`` (not :class:`ReproError`)
because a bad argument is a programming error at the call site, not a domain
failure.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np


def check_positive_int(value: int, name: str) -> int:
    """Return *value* if it is a positive integer, else raise."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return int(value)


def check_non_negative_int(value: int, name: str) -> int:
    """Return *value* if it is a non-negative integer, else raise."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return int(value)


def check_probability(value: float, name: str) -> float:
    """Return *value* if it lies in the closed interval [0, 1], else raise."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def check_fraction(value: float, name: str) -> float:
    """Return *value* if it lies in the half-open interval (0, 1], else raise."""
    value = float(value)
    if not 0.0 < value <= 1.0:
        raise ValueError(f"{name} must be in (0, 1], got {value}")
    return value


def nearly_zero(value: float, atol: float = 1e-12) -> bool:
    """True when *value* is within *atol* of zero.

    The sanctioned replacement for ``x == 0.0`` on floats (reprolint RP002):
    payoffs and mixture weights are Monte-Carlo estimates and products of
    probabilities, so exact equality encodes rounding behaviour, not model
    behaviour.  The default tolerance is far below any meaningful payoff
    difference yet absorbs representation noise.
    """
    return abs(float(value)) <= atol


def values_close(a: float, b: float, atol: float = 1e-9, rtol: float = 1e-9) -> bool:
    """True when *a* and *b* agree within absolute or relative tolerance.

    The sanctioned replacement for ``a == b`` on floats (reprolint RP002).
    Symmetric: ``|a - b| <= atol + rtol * max(|a|, |b|)``.
    """
    a = float(a)
    b = float(b)
    return abs(a - b) <= atol + rtol * max(abs(a), abs(b))


def check_distribution(weights: Sequence[float], name: str, atol: float = 1e-8) -> np.ndarray:
    """Return *weights* as an array if it is a probability distribution.

    The entries must be non-negative and sum to 1 within *atol*.
    """
    arr = np.asarray(weights, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if np.any(arr < -atol):
        raise ValueError(f"{name} has negative entries: {arr}")
    total = float(arr.sum())
    if abs(total - 1.0) > atol:
        raise ValueError(f"{name} must sum to 1, sums to {total}")
    arr = np.clip(arr, 0.0, None)
    return arr / arr.sum()
