"""Plain-text line charts for figure-style benchmark output.

The paper's evaluation is mostly line plots (spread vs k, coefficient vs
k); :func:`ascii_chart` renders such series as a monospace chart so the
benchmark output is visually comparable with the published figures
without any plotting dependency.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

_MARKERS = "*o+x#@%&"


def ascii_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 60,
    height: int = 16,
    title: str | None = None,
) -> str:
    """Render named ``(x, y)`` series as an ASCII chart.

    Each series gets a marker from ``* o + x …``; overlapping points keep
    the first series' marker.  Axes are annotated with the min/max of each
    dimension.

    >>> chart = ascii_chart({"a": [(0, 0), (1, 1)]}, width=10, height=4)
    >>> "a" in chart and "*" in chart
    True
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return (title + "\n(no data)") if title else "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for marker, (name, pts) in zip(_MARKERS, series.items()):
        for x, y in pts:
            col = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((y - y_lo) / y_span * (height - 1))
            if grid[row][col] == " ":
                grid[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:>10.1f} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{y_lo:>10.1f} ┤" + "".join(grid[-1]))
    lines.append(" " * 12 + "└" + "─" * width)
    lines.append(
        " " * 12 + f"{x_lo:<.0f}" + " " * max(1, width - 12) + f"{x_hi:>.0f}"
    )
    legend = "   ".join(
        f"{marker}={name}" for marker, name in zip(_MARKERS, series)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def series_from_rows(
    rows: Sequence[Mapping[str, object]],
    x_key: str,
    y_key: str,
    group_key: str,
) -> dict[str, list[tuple[float, float]]]:
    """Group row dicts into the series mapping :func:`ascii_chart` expects."""
    out: dict[str, list[tuple[float, float]]] = {}
    for row in rows:
        name = str(row[group_key])
        out.setdefault(name, []).append((float(row[x_key]), float(row[y_key])))
    for pts in out.values():
        pts.sort()
    return out
