"""Structural shards: contiguous node-range partitions of a graph.

The incremental layer keys caches on *per-shard* structural hashes instead
of one whole-graph fingerprint, so an edge delta only dirties the shards
holding its touched endpoints.  A shard is a contiguous node range — edge
``(u, v)`` belongs to the shard of its source ``u``, which makes a shard's
edge set a contiguous slice of the out-CSR (cheap to hash, cheap to
resample).  The partition depends only on ``(num_nodes, num_shards)``, never
on edge content, so the same node keeps its shard across graph versions and
clean shards stay byte-comparable.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError

__all__ = [
    "DEFAULT_NUM_SHARDS",
    "shard_bounds",
    "shard_of_nodes",
    "touched_shards",
]

#: Default structural shard count: fine enough that a point delta dirties a
#: small fraction of a large graph, coarse enough that per-shard overhead
#: (hashes, memo entries) stays negligible on hep-scale graphs.
DEFAULT_NUM_SHARDS = 16


def _check(num_nodes: int, num_shards: int) -> None:
    if num_nodes < 0:
        raise GraphError(f"num_nodes must be non-negative, got {num_nodes}")
    if num_shards <= 0:
        raise GraphError(f"num_shards must be positive, got {num_shards}")


def shard_bounds(num_nodes: int, num_shards: int = DEFAULT_NUM_SHARDS) -> np.ndarray:
    """Node-range boundaries: shard *s* owns ``[bounds[s], bounds[s + 1])``.

    Ranges are balanced to within one node (``floor(s * n / S)`` splits);
    with more shards than nodes the trailing shards are empty, which is
    harmless — empty shards hash to a constant and are never dirtied.
    """
    _check(num_nodes, num_shards)
    return (
        np.arange(num_shards + 1, dtype=np.int64) * num_nodes
    ) // num_shards


def shard_of_nodes(
    nodes: np.ndarray,
    num_nodes: int,
    num_shards: int = DEFAULT_NUM_SHARDS,
) -> np.ndarray:
    """Shard index of each node in *nodes* (vectorized)."""
    _check(num_nodes, num_shards)
    arr = np.asarray(nodes, dtype=np.int64)
    if arr.size and (arr.min() < 0 or arr.max() >= num_nodes):
        raise GraphError(
            f"node ids must lie in [0, {num_nodes}), got range "
            f"[{arr.min()}, {arr.max()}]"
        )
    bounds = shard_bounds(num_nodes, num_shards)
    return np.searchsorted(bounds, arr, side="right") - 1


def touched_shards(
    nodes: np.ndarray,
    num_nodes: int,
    num_shards: int = DEFAULT_NUM_SHARDS,
) -> tuple[int, ...]:
    """Sorted distinct shard indices owning any node in *nodes*.

    This is the dirty-shard set of a delta whose effective changes touch
    *nodes* (both endpoints: the source shard owns the edge, and
    destination in-degree feeds WC edge probabilities).
    """
    shards = shard_of_nodes(nodes, num_nodes, num_shards)
    return tuple(int(s) for s in np.unique(shards))
