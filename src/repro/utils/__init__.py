"""Shared utilities: RNG handling, timing, validation, and table rendering."""

from repro.utils.rng import RandomSource, as_rng, spawn_rngs
from repro.utils.timing import Stopwatch, timed
from repro.utils.validation import (
    check_fraction,
    check_positive_int,
    check_probability,
)
from repro.utils.tables import format_table, write_csv
from repro.utils.charts import ascii_chart, series_from_rows

__all__ = [
    "RandomSource",
    "as_rng",
    "spawn_rngs",
    "Stopwatch",
    "timed",
    "check_fraction",
    "check_positive_int",
    "check_probability",
    "format_table",
    "write_csv",
    "ascii_chart",
    "series_from_rows",
]
