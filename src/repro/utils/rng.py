"""Random-number-generator plumbing.

Every stochastic component of the library (cascade simulation, randomized
seed-selection algorithms, synthetic graph generators, Monte-Carlo payoff
estimation) accepts a ``rng`` argument of type :data:`RandomSource` — either
an integer seed, ``None`` (fresh OS entropy), or an existing
:class:`numpy.random.Generator`.  Normalizing through :func:`as_rng` keeps
experiments reproducible end to end: a single seed at the top level
deterministically derives every stream below it via :func:`spawn_rngs`.
"""

from __future__ import annotations

import os

import numpy as np

RandomSource = int | np.random.Generator | np.random.SeedSequence | None
"""Anything convertible to a :class:`numpy.random.Generator`."""


def _entropy_rng() -> np.random.Generator:
    """The single allowlisted ambient-entropy boundary of the library.

    ``rng=None`` means "fresh OS entropy" by documented contract, and this
    helper is the only place that contract is honoured — every other
    generator in the project derives from an explicit seed through the
    ``SeedSequence.spawn`` chain.  Setting ``REPRO_REQUIRE_SEED=1`` turns
    the fallback into an error so CI and benchmark runs cannot silently
    pick up nondeterministic streams.
    """
    if os.environ.get("REPRO_REQUIRE_SEED", "").strip().lower() in (
        "1",
        "true",
        "yes",
        "on",
    ):
        raise ValueError(
            "rng=None requests ambient OS entropy, but REPRO_REQUIRE_SEED "
            "is set; pass an explicit int seed, SeedSequence, or Generator"
        )
    # Decision (reprolint RP010): ambient entropy is the *documented*
    # meaning of rng=None, kept behind this one boundary and gated by
    # REPRO_REQUIRE_SEED above for strict runs.
    return np.random.default_rng()  # reprolint: disable=RP010


def as_rng(rng: RandomSource = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *rng*.

    ``None`` produces a generator seeded from OS entropy (rejected when the
    ``REPRO_REQUIRE_SEED`` environment variable is set — see
    :func:`_entropy_rng`); an ``int`` or a
    :class:`numpy.random.SeedSequence` produces a deterministic generator;
    an existing generator is returned unchanged (NOT copied — callers share
    its state deliberately).
    """
    if rng is None:
        return _entropy_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, np.random.SeedSequence):
        return np.random.default_rng(rng)
    if isinstance(rng, (int, np.integer)):
        if rng < 0:
            raise ValueError(f"seed must be non-negative, got {rng}")
        return np.random.default_rng(int(rng))
    raise TypeError(
        "rng must be None, an int seed, a SeedSequence, or a numpy "
        f"Generator, got {type(rng).__name__}"
    )


def spawn_rngs(rng: RandomSource, count: int) -> list[np.random.Generator]:
    """Derive *count* independent child generators from *rng*.

    The children are statistically independent streams (via
    :meth:`numpy.random.Generator.spawn`), so parallel or repeated
    sub-experiments never share state with each other or with the parent.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = as_rng(rng)
    return list(parent.spawn(count))


def spawn_seed_sequences(rng: RandomSource, count: int) -> list[np.random.SeedSequence]:
    """Derive *count* independent :class:`~numpy.random.SeedSequence` children.

    This is the determinism scheme of the batched execution engine
    (:mod:`repro.exec`): exactly **one** 63-bit entropy value is drawn from
    *rng*, seeds a root ``SeedSequence``, and the children are spawned from
    that root.  Because the parent generator advances by a single draw no
    matter how many jobs are in the batch — and each child stream depends
    only on (entropy, child index) — results are bit-identical across
    backends, worker counts, and completion orders for a fixed master seed.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    entropy = int(as_rng(rng).integers(0, 2**63 - 1))
    return list(np.random.SeedSequence(entropy).spawn(count))


def derive_seed(rng: RandomSource, salt: int | None = None) -> int:
    """Draw a fresh 63-bit integer seed from *rng*, optionally XOR-ed with *salt*.

    Useful when an API (e.g. ``networkx`` generators) wants an integer seed
    rather than a generator object.
    """
    value = int(as_rng(rng).integers(0, 2**63 - 1))
    if salt is not None:
        value ^= salt & (2**63 - 1)
    return value
