"""Lightweight wall-clock timing helpers used by the experiment harness."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from collections.abc import Iterator


@dataclass
class Stopwatch:
    """Accumulating stopwatch.

    >>> watch = Stopwatch()
    >>> with watch:
    ...     _ = sum(range(100))
    >>> watch.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    laps: list[float] = field(default_factory=list)
    _started_at: float | None = None

    def start(self) -> None:
        if self._started_at is not None:
            raise RuntimeError("stopwatch already running")
        self._started_at = time.perf_counter()

    def stop(self) -> float:
        """Stop the watch and return the duration of the lap just ended."""
        if self._started_at is None:
            raise RuntimeError("stopwatch is not running")
        lap = time.perf_counter() - self._started_at
        self._started_at = None
        self.elapsed += lap
        self.laps.append(lap)
        return lap

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    @property
    def mean_lap(self) -> float:
        if not self.laps:
            raise RuntimeError("no laps recorded")
        return self.elapsed / len(self.laps)


@contextmanager
def timed() -> Iterator[Stopwatch]:
    """Context manager yielding a single-lap :class:`Stopwatch`.

    >>> with timed() as watch:
    ...     _ = [i * i for i in range(10)]
    >>> watch.elapsed >= 0.0
    True
    """
    watch = Stopwatch()
    watch.start()
    try:
        yield watch
    finally:
        if watch._started_at is not None:
            watch.stop()
