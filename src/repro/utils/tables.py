"""Plain-text table rendering for benchmark and experiment output.

The benchmark harness prints the same rows/series the paper reports; this
module renders them as aligned monospace tables so the output is directly
comparable with the published tables and figure series.
"""

from __future__ import annotations

import csv
from pathlib import Path
from collections.abc import Mapping, Sequence


def _fmt(value: object, precision: int) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
    precision: int = 4,
) -> str:
    """Render *rows* (a list of dicts) as an aligned text table.

    *columns* fixes the column order; by default the keys of the first row
    are used. Missing cells render as an empty string.

    >>> print(format_table([{"k": 10, "spread": 42.5}], title="demo"))
    demo
    k   spread
    --  -------
    10  42.5000
    """
    if not rows:
        return (title + "\n(no rows)") if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [
        [_fmt(row.get(col, ""), precision) for col in columns] for row in rows
    ]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(col.ljust(w) for col, w in zip(columns, widths)).rstrip())
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered:
        lines.append(
            "  ".join(cell.ljust(w) for cell, w in zip(r, widths)).rstrip()
        )
    return "\n".join(lines)


def write_csv(
    rows: Sequence[Mapping[str, object]],
    path: str | Path,
    columns: Sequence[str] | None = None,
) -> None:
    """Write row dicts as CSV (header + one line per row).

    *columns* fixes the column order; by default the union of all row keys
    in first-seen order is used.  Missing cells are left empty.
    """
    path = Path(path)
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(columns), extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow({col: row.get(col, "") for col in columns})
