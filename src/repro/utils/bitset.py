"""Packed bitsets: boolean arrays stored as ``np.uint64`` words.

The cascade layer keeps many large boolean arrays alive at once — live-edge
snapshot masks (one bit per edge, dozens of snapshots per pool) and the
reachable-set bitsets of the NewGreedy SCC DP (one bit per node, one set per
live DAG component).  Stored as numpy ``bool`` arrays these cost a byte per
bit; packing them into ``uint64`` words cuts that memory by 8x, which is
what lets million-node graphs keep whole snapshot pools resident.

Conventions
-----------
* Bit *i* of a packed array lives in word ``i >> 6`` at bit position
  ``i & 63`` (little-endian bit order, the ``np.packbits`` layout).
* Packed arrays are detected **by dtype**: ``uint64`` means packed words,
  anything else is treated as a boolean-style mask.  The kernels accept
  either representation at every mask argument via :func:`lookup_bits`.
* Padding bits past ``num_bits`` are always zero, so :func:`popcount` and
  equality comparisons need no trailing-word masking.

Every operation here is exact — packing then unpacking round-trips bit for
bit — so the packed and boolean code paths of the kernels are bit-identical
(covered by ``tests/test_utils_bitset.py`` and the kernel equivalence
suite).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "WORD_BITS",
    "is_packed",
    "lookup_bits",
    "lookup_bits_rows",
    "num_words",
    "pack_bits",
    "packed_bytes",
    "packed_zeros",
    "popcount",
    "set_bits",
    "unpack_bits",
]

#: Bits per storage word.
WORD_BITS = 64

_ONE = np.uint64(1)
_LOW6 = np.uint64(63)


def num_words(num_bits: int) -> int:
    """Number of ``uint64`` words needed to hold *num_bits* bits."""
    if num_bits < 0:
        raise ValueError(f"num_bits must be non-negative, got {num_bits}")
    return (int(num_bits) + WORD_BITS - 1) // WORD_BITS


def is_packed(mask: np.ndarray) -> bool:
    """Whether *mask* is a packed word array (detected by ``uint64`` dtype)."""
    return mask.dtype == np.uint64


def packed_zeros(num_bits: int) -> np.ndarray:
    """An all-zeros packed bitset holding *num_bits* bits."""
    return np.zeros(num_words(num_bits), dtype=np.uint64)


def pack_bits(mask: np.ndarray) -> np.ndarray:
    """Pack a 1-D boolean-style array into little-endian ``uint64`` words.

    Padding bits beyond ``mask.size`` are zero.  Packing an already-packed
    array is an error (it would silently re-pack the words themselves).
    """
    arr = np.asarray(mask)
    if is_packed(arr):
        raise ValueError("mask is already packed (uint64 words)")
    if arr.ndim != 1:
        raise ValueError(f"expected a 1-D mask, got shape {arr.shape}")
    packed_bytes_ = np.packbits(arr.astype(bool), bitorder="little")
    pad = (-packed_bytes_.size) % 8
    if pad:
        packed_bytes_ = np.concatenate(
            [packed_bytes_, np.zeros(pad, dtype=np.uint8)]
        )
    return packed_bytes_.view(np.uint64)


def unpack_bits(words: np.ndarray, num_bits: int) -> np.ndarray:
    """Unpack ``uint64`` words back into a boolean array of *num_bits* bits."""
    words = np.ascontiguousarray(words, dtype=np.uint64)
    if num_bits > words.size * WORD_BITS:
        raise ValueError(
            f"{num_bits} bits do not fit in {words.size} words"
        )
    return (
        np.unpackbits(words.view(np.uint8), count=int(num_bits), bitorder="little")
        .astype(bool)
    )


def popcount(words: np.ndarray) -> int:
    """Total number of set bits across *words* (the packed ``.sum()``)."""
    if words.size == 0:
        return 0
    return int(np.bitwise_count(words).sum())


def lookup_bits(mask: np.ndarray, idx: np.ndarray) -> np.ndarray:
    """``mask[idx]`` for either representation; always returns booleans.

    This is the single mask-indexing primitive of the cascade kernels:
    boolean-style masks use plain fancy indexing, packed masks extract bit
    ``idx & 63`` of word ``idx >> 6``.
    """
    if not is_packed(mask):
        return mask[idx]
    idx = np.asarray(idx, dtype=np.int64)
    shifts = (idx & 63).astype(np.uint64)
    return ((mask[idx >> 6] >> shifts) & _ONE).astype(bool)


def lookup_bits_rows(
    matrix: np.ndarray, rows: np.ndarray, idx: np.ndarray
) -> np.ndarray:
    """``matrix[rows, idx]`` for a 2-D stacked mask of either representation.

    Used by the batched snapshot sweep, where *rows* selects the snapshot
    and *idx* the edge id for every flat frontier edge at once.
    """
    if not is_packed(matrix):
        return matrix[rows, idx]
    idx = np.asarray(idx, dtype=np.int64)
    shifts = (idx & 63).astype(np.uint64)
    return ((matrix[rows, idx >> 6] >> shifts) & _ONE).astype(bool)


def set_bits(words: np.ndarray, idx: np.ndarray) -> None:
    """Set bit *idx* (vectorized, duplicates allowed) in packed *words*."""
    idx = np.asarray(idx, dtype=np.int64)
    if idx.size == 0:
        return
    values = _ONE << (idx & 63).astype(np.uint64)
    np.bitwise_or.at(words, idx >> 6, values)


def packed_bytes(masks: object) -> int:
    """Total ``nbytes`` of an ndarray or an iterable of ndarrays.

    Convenience for the pool metrics: reports how much memory a stored
    snapshot sample actually occupies, packed or not.
    """
    if isinstance(masks, np.ndarray):
        return int(masks.nbytes)
    return int(sum(int(np.asarray(m).nbytes) for m in masks))
