"""Stable, hashable cache-key tokens.

The work-sharing cache (:mod:`repro.cache.memo`) keys entries on *content*,
not identity: two selector instances constructed with the same parameters
must produce the same token, while any parameter difference that could change
the selection must change it.  Three token families cover the key space:

* :func:`params_token` — a frozen view of an object's public attributes
  (type name, ``name`` attribute, primitive fields, one level of nested
  objects such as a selector's diffusion model).
* :func:`rng_token` / :func:`rng_state` / :func:`set_rng_state` — the
  generator's ``bit_generator.state`` dict, frozen for keying and kept
  verbatim for restore-on-hit (a cache hit must leave the caller's RNG in
  exactly the state a cold run would have).
* ``DiGraph.fingerprint`` (on the graph itself) — a content hash of the CSR
  arrays.

Attributes named in :data:`EXCLUDED_ATTRS` never enter a token: the executor
backend is excluded because batched results are bit-identical across
backends (the PR-3 contract), so the backend choice must not segment the
cache.
"""

from __future__ import annotations

import enum
import hashlib
from collections.abc import Mapping
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.utils.shards import DEFAULT_NUM_SHARDS, shard_bounds

if TYPE_CHECKING:
    from repro.graphs.digraph import DiGraph

__all__ = [
    "EXCLUDED_ATTRS",
    "freeze",
    "params_token",
    "rng_state",
    "rng_token",
    "set_rng_state",
    "shard_hashes",
]

#: Attribute names that never participate in a params token.
EXCLUDED_ATTRS = frozenset({"executor"})

_PRIMITIVES = (str, bytes, bool, int, float, type(None))


def freeze(value: Any, depth: int = 2) -> Any:
    """Convert ``value`` into a hashable, order-stable token.

    Containers freeze element-wise, mappings and sets by sorted key, enums
    by ``(type, value)``, numpy scalars/arrays by value.  Arbitrary objects
    recurse through :func:`params_token` while ``depth`` allows it and fall
    back to ``repr`` below that (a lossy but safe always-hashable terminal).
    """
    if isinstance(value, _PRIMITIVES):
        return value
    if isinstance(value, enum.Enum):
        return (type(value).__name__, value.value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return ("ndarray", str(value.dtype), value.shape, value.tobytes())
    if isinstance(value, Mapping):
        return tuple(sorted((str(key), freeze(item, depth)) for key, item in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(freeze(item, depth) for item in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted((repr(item), freeze(item, depth)) for item in value))
    if depth > 0:
        return params_token(value, depth=depth - 1)
    return repr(value)


def params_token(obj: Any, depth: int = 2) -> tuple[Any, ...]:
    """Frozen view of ``obj``'s public attributes, suitable as a cache key.

    Captures the type name, the ``name`` attribute when present (selectors
    bake model identity into it), and every public instance attribute except
    those in :data:`EXCLUDED_ATTRS`, frozen via :func:`freeze`.
    """
    attrs: dict[str, Any] = {}
    values = getattr(obj, "__dict__", None)
    if values is None:
        slots = getattr(type(obj), "__slots__", ())
        values = {
            name: getattr(obj, name) for name in slots if hasattr(obj, name)
        }
    for name, value in values.items():
        if name.startswith("_") or name in EXCLUDED_ATTRS:
            continue
        attrs[name] = freeze(value, depth)
    return (
        type(obj).__name__,
        freeze(getattr(obj, "name", None), 0),
        tuple(sorted(attrs.items())),
    )


def shard_hashes(
    graph: "DiGraph", num_shards: int = DEFAULT_NUM_SHARDS
) -> tuple[int, ...]:
    """Per-shard structural hash of *graph*'s out-CSR (cached on the graph).

    Shard *s* covers the node range ``[bounds[s], bounds[s + 1])`` (see
    :func:`repro.utils.shards.shard_bounds`); its hash digests the node
    range, the *normalized* row pointers of the range (offsets relative to
    the shard start, so the hash is position-independent of other shards'
    edge counts), and the destination slice.  Two graph versions that agree
    on a shard's local topology therefore agree on its hash even when edges
    elsewhere were inserted or deleted — the property that lets an edge
    delta invalidate only the shards it touched and lets clean shards'
    snapshot samples be reused verbatim.

    The edge-id permutation is deliberately excluded: it renumbers globally
    on every delta, and per-edge *content* keys (e.g. the probability
    digests of stable snapshot sampling) are handled by the callers that
    need them.
    """
    cached = graph._shard_hashes.get(num_shards)
    if cached is not None:
        return cached
    bounds = shard_bounds(graph.num_nodes, num_shards)
    indptr = graph.out_indptr
    indices = graph.out_indices
    hashes = []
    for s in range(num_shards):
        lo, hi = int(bounds[s]), int(bounds[s + 1])
        digest = hashlib.blake2b(digest_size=8)
        digest.update(
            f"{graph.num_nodes}:{num_shards}:{s}:{lo}:{hi}".encode()
        )
        row = np.ascontiguousarray(indptr[lo : hi + 1] - indptr[lo])
        digest.update(row.tobytes())
        digest.update(
            np.ascontiguousarray(indices[indptr[lo] : indptr[hi]]).tobytes()
        )
        hashes.append(int.from_bytes(digest.digest(), "big"))
    result = tuple(hashes)
    graph._shard_hashes[num_shards] = result
    return result


def rng_state(generator: np.random.Generator) -> dict[str, Any]:
    """The generator's full bit-generator state (verbatim, for restore)."""
    state = generator.bit_generator.state
    assert isinstance(state, dict)
    return state


def set_rng_state(generator: np.random.Generator, state: dict[str, Any]) -> None:
    """Restore a state previously captured with :func:`rng_state`."""
    generator.bit_generator.state = state


def rng_token(generator: np.random.Generator) -> Any:
    """Hashable token of the generator's current state (for cache keys)."""
    return freeze(rng_state(generator), depth=4)
