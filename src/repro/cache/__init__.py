"""Work-sharing cache: keyed memos for seed selections and blocking runs.

Parameter sweeps (vary ``rounds``, vary ``r``, vary tie-break) repeat the
same seed selections over and over — the selection inputs (graph, strategy
parameters, budget, RNG state) don't change when only simulation-side knobs
do.  This package memoizes those computations behind content-derived keys:

* :func:`selection_memo` — ``SeedSelector.select`` results, keyed on graph
  fingerprint, selector params, ``k``, kernel, RNG state, and (for pooled
  snapshot strategies) the pool token.
* :func:`blocking_memo` — ``select_blockers`` results, keyed analogously.

Hits restore the exact post-computation RNG state into the caller's
generator, so a warm cache is bit-identical to a cold one — downstream
draws continue from the same stream position either way.  The whole layer
is switched off with ``REPRO_CACHE=off``; see :mod:`repro.cache.memo` for
the metrics (``cache.hits`` / ``cache.misses`` / ``cache.evictions`` /
``cache.bytes``) and journal events.
"""

from repro.cache.keys import (
    EXCLUDED_ATTRS,
    freeze,
    params_token,
    rng_state,
    rng_token,
    set_rng_state,
)
from repro.cache.memo import CACHE_ENV_VAR, Memo, cache_enabled

__all__ = [
    "CACHE_ENV_VAR",
    "EXCLUDED_ATTRS",
    "Memo",
    "blocking_memo",
    "cache_enabled",
    "clear_caches",
    "freeze",
    "params_token",
    "rng_state",
    "rng_token",
    "selection_memo",
    "set_rng_state",
]

_SELECTION_MEMO = Memo("selection", capacity=4096)
_BLOCKING_MEMO = Memo("blocking", capacity=512)


def selection_memo() -> Memo:
    """The shared memo for ``SeedSelector.select`` results."""
    return _SELECTION_MEMO


def blocking_memo() -> Memo:
    """The shared memo for ``select_blockers`` results."""
    return _BLOCKING_MEMO


def clear_caches() -> None:
    """Explicitly invalidate every shared memo."""
    _SELECTION_MEMO.clear()
    _BLOCKING_MEMO.clear()
