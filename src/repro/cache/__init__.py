"""Work-sharing cache: keyed memos for seed selections and blocking runs.

Parameter sweeps (vary ``rounds``, vary ``r``, vary tie-break) repeat the
same seed selections over and over — the selection inputs (graph, strategy
parameters, budget, RNG state) don't change when only simulation-side knobs
do.  This package memoizes those computations behind content-derived keys:

* :func:`selection_memo` — ``SeedSelector.select`` results, keyed on graph
  fingerprint, selector params, ``k``, kernel, RNG state, and (for pooled
  snapshot strategies) the pool token.
* :func:`blocking_memo` — ``select_blockers`` results, keyed analogously.
* :func:`shard_memo` — per-shard stable snapshot samples, keyed on the
  shard's *structural hash* (:func:`repro.cache.keys.shard_hashes`) rather
  than the whole-graph fingerprint, so entries survive edge deltas that
  leave their shard untouched.

Hits restore the exact post-computation RNG state into the caller's
generator, so a warm cache is bit-identical to a cold one — downstream
draws continue from the same stream position either way.  The whole layer
is switched off with ``REPRO_CACHE=off``; see :mod:`repro.cache.memo` for
the metrics (``cache.hits`` / ``cache.misses`` / ``cache.evictions`` /
``cache.bytes``) and journal events.

**Shard-scoped invalidation.**  :func:`invalidate_for_delta` is the one
sanctioned entry point for dropping cache state after a graph edit: it
computes the delta's dirty shards, drops the parent graph's selection and
blocking entries, and drops only the *dirty* shards' snapshot samples —
clean shards keep serving the patched graph, because their structural hash
(and therefore their memo key) is unchanged.  Calling
``Memo.invalidate(graph.fingerprint)`` directly outside this helper is
flagged by reprolint rule RP017 (``no-whole-graph-invalidation``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.cache.keys import (
    EXCLUDED_ATTRS,
    freeze,
    params_token,
    rng_state,
    rng_token,
    set_rng_state,
    shard_hashes,
)
from repro.cache.memo import CACHE_ENV_VAR, Memo, cache_enabled
from repro.obs.metrics import counter
from repro.utils.shards import DEFAULT_NUM_SHARDS, touched_shards

if TYPE_CHECKING:
    from repro.graphs.delta import AppliedDelta

__all__ = [
    "CACHE_ENV_VAR",
    "EXCLUDED_ATTRS",
    "DeltaInvalidation",
    "Memo",
    "blocking_memo",
    "cache_enabled",
    "clear_caches",
    "freeze",
    "invalidate_for_delta",
    "params_token",
    "rng_state",
    "rng_token",
    "selection_memo",
    "set_rng_state",
    "shard_hashes",
    "shard_memo",
]

_SELECTION_MEMO = Memo("selection", capacity=4096)
_BLOCKING_MEMO = Memo("blocking", capacity=512)
_SHARD_MEMO = Memo("shards", capacity=8192)

_SHARD_INVALIDATIONS = counter("cache.shard_invalidations")


def selection_memo() -> Memo:
    """The shared memo for ``SeedSelector.select`` results."""
    return _SELECTION_MEMO


def blocking_memo() -> Memo:
    """The shared memo for ``select_blockers`` results."""
    return _BLOCKING_MEMO


def shard_memo() -> Memo:
    """The shared memo for per-shard stable snapshot samples.

    Keys lead with the shard's structural hash
    (:func:`repro.cache.keys.shard_hashes`), so the entries are
    content-addressed: a patched graph re-uses every clean shard's sample
    verbatim, and an entry can never serve a graph whose shard topology
    (or edge probabilities — the key also digests them) differs.
    """
    return _SHARD_MEMO


def clear_caches() -> None:
    """Explicitly invalidate every shared memo."""
    _SELECTION_MEMO.clear()
    _BLOCKING_MEMO.clear()
    _SHARD_MEMO.clear()


@dataclass(frozen=True)
class DeltaInvalidation:
    """What :func:`invalidate_for_delta` dropped."""

    dirty_shards: tuple[int, ...]
    num_shards: int
    selection_dropped: int
    blocking_dropped: int
    shard_entries_dropped: int


def invalidate_for_delta(
    applied: "AppliedDelta", num_shards: int = DEFAULT_NUM_SHARDS
) -> DeltaInvalidation:
    """Shard-scoped cache invalidation for one applied edge delta.

    Drops the parent graph's selection/blocking entries (their keys bake in
    the whole-graph fingerprint, which the delta changed) and the snapshot
    samples of exactly the shards whose node ranges the delta touched.
    Clean shards' samples stay resident and are picked up by the patched
    graph through their unchanged structural hash — that reuse is the
    warm-pool splice.  Increments ``cache.shard_invalidations`` by the
    dirty-shard count.

    Note on WC-style degree-coupled models: a delta can change edge
    probabilities in shards it does not topologically touch (in-degree of a
    touched destination feeds ``1/in_degree`` weights of edges stored with
    *their* sources).  Those stale entries are left resident but can never
    be served — shard-memo keys digest the edge probabilities — and age out
    FIFO.
    """
    parent = applied.parent
    dirty = touched_shards(
        applied.touched_nodes, parent.num_nodes, num_shards
    )
    selection_dropped = _SELECTION_MEMO.invalidate(parent.fingerprint)
    blocking_dropped = _BLOCKING_MEMO.invalidate(parent.fingerprint)
    hashes = shard_hashes(parent, num_shards)
    shard_entries_dropped = sum(
        _SHARD_MEMO.invalidate(hashes[s]) for s in dirty
    )
    if dirty:
        _SHARD_INVALIDATIONS.inc(len(dirty))
    return DeltaInvalidation(
        dirty_shards=dirty,
        num_shards=num_shards,
        selection_dropped=selection_dropped,
        blocking_dropped=blocking_dropped,
        shard_entries_dropped=shard_entries_dropped,
    )
