"""Bounded memo stores with metrics, journal events, and an env kill-switch.

A :class:`Memo` is a thread-safe FIFO-bounded mapping from frozen keys
(:mod:`repro.cache.keys`) to computed values.  Shared module-level instances
back the selection and blocking caches (see :mod:`repro.cache`); every
lookup lands in the ``cache.hits`` / ``cache.misses`` counters, evictions in
``cache.evictions``, and the approximate resident size of all memos in the
``cache.bytes`` gauge.  Hits, misses, and clears are journaled as ``cache``
events when a run journal is attached (the live monitor derives its hit
rate from that stream).

Caching is on by default and can be disabled globally with
``REPRO_CACHE=off`` (also ``0`` / ``false`` / ``no``): callers consult
:func:`cache_enabled` before touching a memo, so a disabled cache costs
nothing and — because hits restore the exact post-computation RNG state —
produces bit-identical results to a cold cache.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Any

from repro.obs.journal import current_journal
from repro.obs.metrics import counter, gauge

__all__ = ["CACHE_ENV_VAR", "Memo", "cache_enabled"]

#: Environment variable that disables all work-sharing caches when set to a
#: falsy value (``0`` / ``off`` / ``false`` / ``no``).
CACHE_ENV_VAR = "REPRO_CACHE"

_DISABLED_VALUES = frozenset({"0", "off", "false", "no"})

_HITS = counter("cache.hits")
_MISSES = counter("cache.misses")
_EVICTIONS = counter("cache.evictions")
_BYTES = gauge("cache.bytes")

_ALL_MEMOS: list[Memo] = []
_MEMOS_LOCK = threading.Lock()


def cache_enabled() -> bool:
    """Whether the work-sharing caches are active (``REPRO_CACHE`` gate)."""
    raw = os.environ.get(CACHE_ENV_VAR, "").strip().lower()
    return raw not in _DISABLED_VALUES


def _update_bytes_gauge() -> None:
    with _MEMOS_LOCK:
        total = sum(memo.nbytes for memo in _ALL_MEMOS)
    _BYTES.set(float(total))


class Memo:
    """Thread-safe FIFO-bounded key/value store with cache telemetry."""

    def __init__(self, namespace: str, capacity: int = 1024) -> None:
        if capacity <= 0:
            raise ValueError(f"memo capacity must be positive, got {capacity}")
        self.namespace = namespace
        self.capacity = capacity
        self._entries: OrderedDict[Any, tuple[Any, int]] = OrderedDict()
        # Secondary index: leading key element -> keys carrying it.  Every
        # memo user puts the graph fingerprint (or shard hash) first in its
        # key tuples, so invalidation walks exactly the affected keys
        # instead of scanning the whole store.
        self._by_group: dict[Any, set[Any]] = {}
        self._nbytes = 0
        self._lock = threading.Lock()
        with _MEMOS_LOCK:
            _ALL_MEMOS.append(self)

    @staticmethod
    def _group(key: Any) -> Any:
        if isinstance(key, tuple) and key:
            return key[0]
        return None

    def _index_drop(self, key: Any) -> None:
        group = self._group(key)
        if group is None:
            return
        members = self._by_group.get(group)
        if members is not None:
            members.discard(key)
            if not members:
                del self._by_group[group]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def nbytes(self) -> int:
        """Approximate resident bytes, as reported by callers at ``put``."""
        return self._nbytes

    def get(self, key: Any) -> Any | None:
        """Return the stored value or ``None``; counts a hit or a miss.

        Stored values are never ``None`` by construction (callers store
        result tuples), so ``None`` unambiguously means a miss.
        """
        with self._lock:
            entry = self._entries.get(key)
            entries = len(self._entries)
        sink = current_journal()
        if entry is None:
            _MISSES.inc()
            if sink is not None:
                sink.cache_event(self.namespace, "miss", entries)
            return None
        _HITS.inc()
        if sink is not None:
            sink.cache_event(self.namespace, "hit", entries)
        return entry[0]

    def put(self, key: Any, value: Any, nbytes: int = 0) -> None:
        """Store ``value``, evicting oldest entries beyond the capacity."""
        evicted = 0
        with self._lock:
            previous = self._entries.pop(key, None)
            if previous is not None:
                self._nbytes -= previous[1]
            self._entries[key] = (value, int(nbytes))
            self._nbytes += int(nbytes)
            group = self._group(key)
            if group is not None:
                self._by_group.setdefault(group, set()).add(key)
            while len(self._entries) > self.capacity:
                victim, (_, dropped) = self._entries.popitem(last=False)
                self._index_drop(victim)
                self._nbytes -= dropped
                evicted += 1
        if evicted:
            _EVICTIONS.inc(evicted)
        _update_bytes_gauge()

    def invalidate(self, group: int) -> int:
        """Drop every entry whose leading key element equals *group*.

        All memo users put the graph fingerprint (or, for shard-scoped
        memos, the shard's structural hash) first in their key tuples, so
        invalidation resolves through the secondary index in time
        proportional to the entries actually dropped — never a scan of the
        full store — and the ``cache.bytes`` gauge stays exact after the
        partial drop.  Returns the number of entries removed.

        Prefer :func:`repro.cache.invalidate_for_delta` for graph edits:
        it scopes the drop to the shards a delta touched (reprolint RP017
        flags whole-graph ``invalidate(graph.fingerprint)`` calls outside
        that helper).
        """
        removed = 0
        with self._lock:
            stale = self._by_group.pop(group, None)
            if stale:
                for key in stale:
                    _, nbytes = self._entries.pop(key)
                    self._nbytes -= nbytes
                    removed += 1
        if removed:
            _update_bytes_gauge()
            sink = current_journal()
            if sink is not None:
                sink.cache_event(self.namespace, "invalidate", removed)
        return removed

    def clear(self) -> None:
        """Drop every entry and journal the clear."""
        with self._lock:
            self._entries.clear()
            self._by_group.clear()
            self._nbytes = 0
        _update_bytes_gauge()
        sink = current_journal()
        if sink is not None:
            sink.cache_event(self.namespace, "clear", 0)
