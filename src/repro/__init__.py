"""GetReal: realistic selection of influence-maximization strategies in
competitive networks.

A from-scratch Python reproduction of Li, Bhowmick, Cui, Gao & Ma,
*GetReal* (SIGMOD 2015).  The public API re-exports the pieces a user
needs end to end:

>>> import repro
>>> graph = repro.karate_like_fixture()
>>> model = repro.IndependentCascade(0.1)
>>> space = repro.StrategySpace([
...     repro.DegreeDiscount(0.1), repro.RandomSeeds()])
>>> result = repro.get_real(graph, model, space, k=3, rounds=10, rng=7)
>>> result.kind in {"pure", "mixed"}
True
"""

from repro.errors import (
    CascadeError,
    EquilibriumError,
    GameError,
    GraphError,
    GraphFormatError,
    JournalError,
    ObservabilityError,
    PayoffEstimationError,
    ReproError,
    SeedSelectionError,
)
from repro.graphs import (
    DiGraph,
    barabasi_albert,
    community_powerlaw,
    copying_model,
    erdos_renyi,
    get_dataset,
    hep,
    karate_like_fixture,
    load_edge_list,
    phy,
    powerlaw_configuration,
    save_edge_list,
    summarize,
    wiki,
)
from repro.cascade import (
    ClaimRule,
    CompetitiveDiffusion,
    GeneralThreshold,
    IndependentCascade,
    LinearThreshold,
    SpreadEstimate,
    TieBreakRule,
    WeightedCascade,
    estimate_competitive_spread,
    estimate_spread,
)
from repro.algorithms import (
    CELFGreedy,
    DegreeDiscount,
    HighDegree,
    MixGreedy,
    PageRankSeeds,
    RandomSeeds,
    RISGreedy,
    SeedSelector,
    SingleDiscount,
    get_algorithm,
)
from repro.game import (
    NormalFormGame,
    fictitious_play,
    lemke_howson,
    pure_nash_equilibria,
    replicator_dynamics,
    support_enumeration,
    symmetric_mixed_equilibrium,
)
from repro.obs import (
    RunJournal,
    attach_journal,
    attached,
    configure_logging,
    detach_journal,
    get_logger,
    metrics_reset,
    metrics_snapshot,
    read_journal,
)
from repro.core import (
    AsymmetricBudgetResult,
    BlockingResult,
    CoefficientEstimates,
    EfficiencyReport,
    GetRealResult,
    MixedStrategy,
    PayoffTable,
    StrategySpace,
    asymmetric_budget_analysis,
    collusion_analysis,
    efficiency_report,
    estimate_coefficients,
    estimate_payoff_table,
    get_real,
    jaccard,
    save_result,
    select_blockers,
    solve_strategy_game,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "GraphError",
    "GraphFormatError",
    "CascadeError",
    "SeedSelectionError",
    "GameError",
    "EquilibriumError",
    "PayoffEstimationError",
    "ObservabilityError",
    "JournalError",
    # graphs
    "DiGraph",
    "barabasi_albert",
    "community_powerlaw",
    "copying_model",
    "erdos_renyi",
    "powerlaw_configuration",
    "karate_like_fixture",
    "load_edge_list",
    "save_edge_list",
    "get_dataset",
    "hep",
    "phy",
    "wiki",
    "summarize",
    # cascade
    "IndependentCascade",
    "WeightedCascade",
    "LinearThreshold",
    "GeneralThreshold",
    "CompetitiveDiffusion",
    "TieBreakRule",
    "ClaimRule",
    "SpreadEstimate",
    "estimate_spread",
    "estimate_competitive_spread",
    # algorithms
    "SeedSelector",
    "MixGreedy",
    "CELFGreedy",
    "DegreeDiscount",
    "SingleDiscount",
    "HighDegree",
    "PageRankSeeds",
    "RandomSeeds",
    "RISGreedy",
    "get_algorithm",
    # observability
    "configure_logging",
    "get_logger",
    "metrics_snapshot",
    "metrics_reset",
    "RunJournal",
    "attach_journal",
    "detach_journal",
    "attached",
    "read_journal",
    # game theory
    "NormalFormGame",
    "pure_nash_equilibria",
    "symmetric_mixed_equilibrium",
    "support_enumeration",
    "lemke_howson",
    "replicator_dynamics",
    "fictitious_play",
    # core
    "StrategySpace",
    "MixedStrategy",
    "PayoffTable",
    "estimate_payoff_table",
    "GetRealResult",
    "get_real",
    "solve_strategy_game",
    "CoefficientEstimates",
    "estimate_coefficients",
    "jaccard",
    "collusion_analysis",
    "AsymmetricBudgetResult",
    "asymmetric_budget_analysis",
    "BlockingResult",
    "select_blockers",
    "EfficiencyReport",
    "efficiency_report",
    "save_result",
]
