"""Command-line interface: ``python -m repro <command>``.

Subcommands cover the everyday workflows:

* ``stats``    — summarize a dataset surrogate or a SNAP edge-list file;
* ``seeds``    — run one IM algorithm and print its seed set;
* ``spread``   — Monte-Carlo spread of an algorithm's seeds (optionally
  against a competing algorithm);
* ``compete``  — two algorithms head-to-head: per-group spreads + overlap;
* ``getreal``  — run the full GetReal pipeline and print the equilibrium;
* ``overlap``  — Jaccard overlap of two algorithms' seed sets;
* ``block``    — place blocker seeds against a rival campaign;
* ``experiments`` — declarative scenario-matrix orchestrator:
  ``run`` executes a matrix spec and appends to its ``BENCH_*`` trajectory,
  ``gate`` diffs the newest entry against the stored history and exits
  non-zero on regressions, ``list`` shows registered scenario plugins
  (and, with ``--matrix``, the expanded cells);
* ``journal``  — per-profile timing/variance report from a run journal;
* ``monitor``  — tail-follow a run journal and render a live dashboard;
* ``obs trace``  — per-run span waterfall (self vs child time) from a journal;
* ``obs export`` — metrics in Prometheus text format or JSON.

Every graph-taking command accepts the observability flags
``--log-level``/``--log-json`` (structured logging on stderr) and
``--journal PATH`` (append typed JSONL events to *PATH*), plus the
execution flags ``--backend {serial,thread,process}`` / ``--workers N``
selecting the simulation backend and ``--kernel {python,numpy}`` selecting
the diffusion kernel (defaults come from ``REPRO_BACKEND`` /
``REPRO_WORKERS`` / ``REPRO_KERNEL``; results are bit-identical across backends for a fixed
seed).  ``getreal`` additionally accepts
``--profile-symmetry {full,reduce}`` (default ``REPRO_SYMMETRY`` or
``full``) selecting full-profile vs symmetric-reduced payoff estimation.

Examples::

    python -m repro stats hep --scale 0.1
    python -m repro seeds hep --algorithm ddic --k 10
    python -m repro spread hep --algorithm mgic --k 20 --rounds 50
    python -m repro compete hep --first mgic --second ddic --k 20
    python -m repro getreal hep --strategies mgic,ddic --k 20 --rounds 30 \
        --journal run.jsonl --log-level info
    python -m repro journal run.jsonl
    python -m repro monitor run.jsonl
    python -m repro obs trace run.jsonl
    python -m repro obs export --journal run.jsonl --format prom
    python -m repro overlap hep --first ddic --second mgic --k 20
    python -m repro block hep --rival ddic --k 5 --rival-k 10
    python -m repro experiments run --matrix benchmarks/matrices/smoke.json
    python -m repro experiments gate
    python -m repro experiments list --matrix benchmarks/matrices/smoke.json
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
import time
from collections.abc import Iterator
from pathlib import Path

from repro.algorithms import get_algorithm, registered_algorithms
from repro.cascade import IndependentCascade, LinearThreshold, WeightedCascade
from repro.core.getreal import get_real
from repro.core.metrics import jaccard
from repro.core.strategy import StrategySpace
from repro.errors import JournalError
from repro.cascade.kernels import KERNELS
from repro.core.payoff import SYMMETRY_MODES
from repro.exec.backends import BACKENDS
from repro.exec.executor import Executor, build_executor
from repro.graphs.datasets import DATASETS, get_dataset
from repro.graphs.digraph import DiGraph
from repro.graphs.loaders import load_edge_list
from repro.graphs.store import GraphStore, is_store_entry
from repro.graphs.stats import summarize
from repro.lint.cli import add_lint_arguments
from repro.lint.cli import run as lint_run
from repro.obs import (
    RunJournal,
    attach_journal,
    configure_logging,
    detach_journal,
    metrics_snapshot,
    read_journal,
    registry_from_journal,
    render_export,
    render_journal_report,
    render_trace_tree,
    run_monitor,
)
from repro.utils.tables import format_table


def _load_graph(target: str, scale: float | None, directed: bool) -> DiGraph:
    """A dataset name (hep/phy/wiki), a graph-store entry dir, or an edge list.

    Graph-store entries (directories written by
    :class:`repro.graphs.store.GraphStore`) open as memory-mapped CSR
    arrays, so million-node graphs load in milliseconds without touching
    ``--undirected`` (direction was fixed at ingest time).
    """
    if target in DATASETS:
        return get_dataset(target, scale=scale)
    path = Path(target)
    if not path.exists():
        raise SystemExit(
            f"unknown dataset/path {target!r}; datasets: {sorted(DATASETS)}"
        )
    if is_store_entry(path):
        return GraphStore(path.parent).open(path.name)
    graph, _ = load_edge_list(path, directed=directed)
    return graph


def _model(name: str, probability: float):
    if name == "ic":
        return IndependentCascade(probability)
    if name == "wc":
        return WeightedCascade()
    if name == "lt":
        return LinearThreshold()
    raise SystemExit(f"unknown model {name!r}; use ic, wc, or lt")


def _algorithm(name: str, probability: float):
    kwargs = {}
    if name in ("mgic", "celfic", "ddic"):
        kwargs["probability"] = probability
    try:
        return get_algorithm(name, **kwargs)
    except Exception as exc:
        raise SystemExit(
            f"unknown algorithm {name!r}; registered: {registered_algorithms()}"
        ) from exc


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "graph",
        help="dataset name (hep/phy/wiki), graph-store entry dir, or edge-list path",
    )
    parser.add_argument("--scale", type=float, default=None, help="surrogate scale")
    parser.add_argument(
        "--undirected", action="store_true", help="treat an edge-list file as undirected"
    )
    parser.add_argument("--seed", type=int, default=2015, help="RNG seed")
    parser.add_argument(
        "--log-level",
        default="warning",
        help="logging threshold (debug/info/warning/error)",
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="emit log records as JSON lines",
    )
    parser.add_argument(
        "--journal",
        metavar="PATH",
        default=None,
        help="append typed JSONL run events to PATH",
    )
    parser.add_argument(
        "--backend",
        choices=sorted(BACKENDS),
        default=None,
        help="simulation backend (default: $REPRO_BACKEND or serial)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker count for pooled backends (default: $REPRO_WORKERS)",
    )
    parser.add_argument(
        "--kernel",
        choices=sorted(KERNELS),
        default=None,
        help="diffusion kernel (default: $REPRO_KERNEL or python)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GetReal: IM strategy selection in competitive networks",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    stats = sub.add_parser("stats", help="summarize a graph")
    _add_common(stats)

    seeds = sub.add_parser("seeds", help="run one IM algorithm")
    _add_common(seeds)
    seeds.add_argument("--algorithm", default="ddic")
    seeds.add_argument("--k", type=int, default=10)
    seeds.add_argument("--probability", type=float, default=0.05, help="IC p")
    seeds.add_argument(
        "--incremental",
        action="store_true",
        help="select through an IncrementalSession (stable snapshots + "
        "CELF repair; exports REPRO_INCREMENTAL=1 for the command)",
    )
    seeds.add_argument(
        "--delta",
        metavar="FILE",
        default=None,
        help="JSON file {\"added\": [[u, v], ...], \"removed\": [...]} to "
        "apply after the cold selection (requires --incremental); prints "
        "the repaired seed set and repair stats",
    )
    seeds.add_argument(
        "--snapshots",
        type=int,
        default=8,
        help="live-edge snapshots for --incremental selection",
    )
    seeds.add_argument(
        "--shards",
        type=int,
        default=None,
        help="structural shard count for --incremental cache scoping",
    )

    getreal = sub.add_parser("getreal", help="run the GetReal pipeline")
    _add_common(getreal)
    getreal.add_argument(
        "--strategies", default="mgic,ddic", help="comma-separated algorithm names"
    )
    getreal.add_argument("--model", default="ic", choices=["ic", "wc", "lt"])
    getreal.add_argument("--groups", type=int, default=2)
    getreal.add_argument("--k", type=int, default=20)
    getreal.add_argument("--rounds", type=int, default=20)
    getreal.add_argument("--probability", type=float, default=0.05, help="IC p")
    getreal.add_argument(
        "--profile-symmetry",
        dest="profile_symmetry",
        choices=sorted(SYMMETRY_MODES),
        default=None,
        help=(
            "payoff-table symmetry mode: 'reduce' simulates only canonical "
            "sorted profiles and fills the rest by player permutation "
            "(default: $REPRO_SYMMETRY or full)"
        ),
    )

    overlap = sub.add_parser("overlap", help="seed overlap of two algorithms")
    _add_common(overlap)
    overlap.add_argument("--first", default="ddic")
    overlap.add_argument("--second", default="mgic")
    overlap.add_argument("--k", type=int, default=20)
    overlap.add_argument("--probability", type=float, default=0.05, help="IC p")

    spread = sub.add_parser("spread", help="Monte-Carlo spread of an algorithm")
    _add_common(spread)
    spread.add_argument("--algorithm", default="ddic")
    spread.add_argument("--model", default="ic", choices=["ic", "wc", "lt"])
    spread.add_argument("--k", type=int, default=20)
    spread.add_argument("--rounds", type=int, default=50)
    spread.add_argument("--probability", type=float, default=0.05, help="IC p")

    compete = sub.add_parser("compete", help="two algorithms head-to-head")
    _add_common(compete)
    compete.add_argument("--first", default="mgic")
    compete.add_argument("--second", default="ddic")
    compete.add_argument("--model", default="ic", choices=["ic", "wc", "lt"])
    compete.add_argument("--k", type=int, default=20)
    compete.add_argument("--rounds", type=int, default=50)
    compete.add_argument("--probability", type=float, default=0.05, help="IC p")

    block = sub.add_parser("block", help="place blockers against a rival campaign")
    _add_common(block)
    block.add_argument("--rival", default="ddic", help="rival's algorithm")
    block.add_argument("--rival-k", type=int, default=10, dest="rival_k")
    block.add_argument("--k", type=int, default=5, help="blocker budget")
    block.add_argument("--model", default="ic", choices=["ic", "wc", "lt"])
    block.add_argument("--rounds", type=int, default=10)
    block.add_argument("--pool", type=int, default=60, help="candidate pool size")
    block.add_argument("--probability", type=float, default=0.05, help="IC p")

    journal = sub.add_parser(
        "journal", help="summarize a JSONL run journal written by --journal"
    )
    journal.add_argument("file", help="path to a .jsonl run journal")

    monitor = sub.add_parser(
        "monitor", help="tail-follow a run journal and render a live dashboard"
    )
    monitor.add_argument("file", help="path to a (possibly growing) .jsonl journal")
    monitor.add_argument(
        "--interval", type=float, default=0.5, help="poll interval in seconds"
    )
    monitor.add_argument(
        "--once",
        action="store_true",
        help="render one dashboard from the current contents and exit",
    )
    monitor.add_argument(
        "--duration",
        type=float,
        default=None,
        help="stop after this many seconds (default: follow until Ctrl-C)",
    )
    monitor.add_argument(
        "--top-spans", type=int, default=10, dest="top_spans",
        help="rows in the cumulative-span-time table",
    )

    obs = sub.add_parser("obs", help="observability tooling (trace/export)")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)

    trace = obs_sub.add_parser(
        "trace", help="render per-run span trees from a journal's span events"
    )
    trace.add_argument("file", help="path to a .jsonl run journal")
    trace.add_argument(
        "--max-children",
        type=int,
        default=20,
        dest="max_children",
        help="per-span child rows before elision",
    )

    export = obs_sub.add_parser(
        "export", help="export metrics (Prometheus text format or JSON)"
    )
    export.add_argument(
        "--format",
        dest="format",
        choices=["prom", "json"],
        default="prom",
        help="output format (default: prom)",
    )
    export.add_argument(
        "--journal",
        metavar="PATH",
        default=None,
        help=(
            "rebuild metrics from a recorded journal instead of this "
            "process's (empty) live registry"
        ),
    )

    experiments = sub.add_parser(
        "experiments",
        help="scenario-matrix orchestrator: run/gate/list (docs/experiments.md)",
    )
    exp_sub = experiments.add_subparsers(dest="experiments_command", required=True)

    exp_run = exp_sub.add_parser(
        "run", help="expand a matrix spec, run every cell, append the trajectory"
    )
    exp_run.add_argument(
        "--matrix", required=True, metavar="SPEC",
        help="path to a JSON matrix spec (see docs/experiments.md)",
    )
    exp_run.add_argument(
        "--output", default="results/experiments", metavar="DIR",
        help="manifest/journal/cells output directory (default: %(default)s)",
    )
    exp_run.add_argument(
        "--no-append", action="store_true",
        help="skip appending the run's entry to the spec's trajectory file",
    )
    exp_run.add_argument(
        "--log-level", default="warning",
        help="logging threshold (debug/info/warning/error)",
    )

    exp_gate = exp_sub.add_parser(
        "gate",
        help="diff the newest trajectory entry against the stored history",
    )
    exp_gate.add_argument(
        "--matrix", default=None, metavar="SPEC",
        help="matrix spec naming the trajectory (default: read the manifest "
        "written by the last 'experiments run' under --output)",
    )
    exp_gate.add_argument(
        "--trajectory", default=None, metavar="PATH",
        help="gate this trajectory file directly (overrides --matrix)",
    )
    exp_gate.add_argument(
        "--output", default="results/experiments", metavar="DIR",
        help="output directory of the run to gate (default: %(default)s)",
    )
    exp_gate.add_argument(
        "--tolerance", type=float, default=0.2,
        help="allowed fractional speedup regression (default: %(default)s)",
    )
    exp_gate.add_argument(
        "--sigmas", type=float, default=3.0,
        help="pooled-stderr multiplier for equivalence drift (default: %(default)s)",
    )
    exp_gate.add_argument(
        "--time-tolerance", type=float, default=None, dest="time_tolerance",
        help="also gate wall-clock keys at this fractional ceiling "
        "(off by default: CI timing is noisy)",
    )
    exp_gate.add_argument(
        "--log-level", default="warning",
        help="logging threshold (debug/info/warning/error)",
    )

    exp_list = exp_sub.add_parser(
        "list", help="list registered scenario plugins (and a matrix's cells)"
    )
    exp_list.add_argument(
        "--matrix", default=None, metavar="SPEC",
        help="also expand and print this matrix spec's cells",
    )

    lint = sub.add_parser(
        "lint",
        help="run the reprolint static-analysis rules (per-file RP001-RP009 "
        "and RP017; --project adds the whole-program RP010-RP016)",
    )
    add_lint_arguments(lint)

    return parser


@contextlib.contextmanager
def _incremental_override(requested: bool) -> Iterator[None]:
    """Export ``--incremental`` as ``REPRO_INCREMENTAL=1`` for the command.

    Mirrors :func:`_kernel_override`: code built inside the command (the
    session, drivers consulting :func:`repro.incremental.incremental_requested`)
    resolves the switch through the environment.  Restored on exit.  An
    explicit ``REPRO_INCREMENTAL=off`` kill-switch wins over the flag —
    the flag still selects the session code path, but warm shortcuts stay
    disabled and every answer recomputes cold.
    """
    if not requested:
        yield
        return
    from repro.incremental import INCREMENTAL_ENV_VAR, incremental_enabled

    if not incremental_enabled():
        yield
        return
    previous = os.environ.get(INCREMENTAL_ENV_VAR)
    os.environ[INCREMENTAL_ENV_VAR] = "1"
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(INCREMENTAL_ENV_VAR, None)
        else:
            os.environ[INCREMENTAL_ENV_VAR] = previous


@contextlib.contextmanager
def _kernel_override(kernel: str | None) -> Iterator[None]:
    """Export ``--kernel`` as ``REPRO_KERNEL`` for the command's duration.

    The flag is passed explicitly to the estimators, but strategies built
    inside the command (e.g. MixGreedy's snapshot oracle) resolve the
    kernel through the environment — exporting keeps the whole command on
    one kernel.  Restored on exit so in-process callers see no side effect.
    """
    if kernel is None:
        yield
        return
    previous = os.environ.get("REPRO_KERNEL")
    os.environ["REPRO_KERNEL"] = kernel
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop("REPRO_KERNEL", None)
        else:
            os.environ["REPRO_KERNEL"] = previous


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "lint":
        return lint_run(args)

    if args.command == "journal":
        try:
            events = read_journal(args.file)
        except JournalError as exc:
            raise SystemExit(str(exc)) from exc
        print(render_journal_report(events))
        return 0

    if args.command == "monitor":
        return run_monitor(
            args.file,
            interval=args.interval,
            once=args.once,
            duration=args.duration,
            top_spans=args.top_spans,
        )

    if args.command == "obs":
        return _run_obs(args)

    if args.command == "experiments":
        return _run_experiments(args)

    try:
        configure_logging(args.log_level, json=args.log_json)
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc
    incremental = bool(getattr(args, "incremental", False))
    with _kernel_override(args.kernel), _incremental_override(incremental):
        journal = RunJournal(args.journal) if args.journal else None
        if journal is None:
            return _run_command(args)
        # get_real journals its own run span; for every other command the CLI
        # brackets the invocation so the journal is never event-less.
        wrap_run = args.command != "getreal"
        attach_journal(journal)
        started = time.perf_counter()
        if wrap_run:
            # Incremental runs bundle the resolved kernel and shard layout
            # into run_start so `repro obs trace` can attribute warm vs
            # cold paths without re-deriving run configuration.
            extra: dict[str, object] = {}
            if incremental:
                from repro.cascade.kernels import resolve_kernel
                from repro.utils.shards import DEFAULT_NUM_SHARDS

                extra = {
                    "kernel": resolve_kernel(args.kernel),
                    "shards": getattr(args, "shards", None)
                    or DEFAULT_NUM_SHARDS,
                    "incremental": True,
                }
            journal.run_start(
                args.command,
                argv=[str(a) for a in (argv or sys.argv[1:])],
                **extra,
            )
        try:
            code = _run_command(args)
        except BaseException as exc:
            if wrap_run:
                journal.run_end(
                    status="error",
                    duration_seconds=time.perf_counter() - started,  # reprolint: disable=RP009
                    error=f"{type(exc).__name__}: {exc}",
                )
            raise
        else:
            if wrap_run:
                journal.run_end(
                    status="ok",
                    duration_seconds=time.perf_counter() - started,  # reprolint: disable=RP009
                )
            return code
        finally:
            detach_journal(journal)
            journal.close()


def _run_obs(args: argparse.Namespace) -> int:
    """``repro obs trace|export`` — journal-driven, no graph loading."""
    if args.obs_command == "trace":
        try:
            events = read_journal(args.file, strict=False)
        except JournalError as exc:
            raise SystemExit(str(exc)) from exc
        print(render_trace_tree(events, max_children=args.max_children))
        return 0

    # export
    if args.journal is not None:
        try:
            events = read_journal(args.journal, strict=False)
        except JournalError as exc:
            raise SystemExit(str(exc)) from exc
        snapshot = registry_from_journal(events).snapshot()
    else:
        snapshot = metrics_snapshot()
    try:
        sys.stdout.write(render_export(snapshot, args.format))
    except JournalError as exc:
        raise SystemExit(str(exc)) from exc
    return 0


def _run_experiments(args: argparse.Namespace) -> int:
    """``repro experiments run|gate|list`` — orchestrator + regression gate."""
    from repro.errors import ExperimentError, GateError, TrajectoryError
    from repro.experiments.gate import gate_trajectory
    from repro.experiments.orchestrator import MatrixSpec, run_matrix
    from repro.experiments.scenarios import registered_scenarios

    if getattr(args, "log_level", None):
        try:
            configure_logging(args.log_level)
        except ValueError as exc:
            raise SystemExit(str(exc)) from exc

    if args.experiments_command == "list":
        print(format_table(registered_scenarios(), title="registered scenarios"))
        if args.matrix:
            spec = MatrixSpec.from_file(args.matrix)
            rows = [{"cell": cell.cell_id} for cell in spec.expand()]
            print()
            print(
                format_table(
                    rows,
                    title=f"matrix {spec.name} [{spec.scenario}] "
                    f"({len(rows)} cells)",
                )
            )
        return 0

    if args.experiments_command == "run":
        try:
            spec = MatrixSpec.from_file(args.matrix)
            result = run_matrix(
                spec, output_dir=args.output, append=not args.no_append
            )
        except (ExperimentError, TrajectoryError) as exc:
            raise SystemExit(str(exc)) from exc
        print(
            format_table(
                result.results_rows,
                title=f"matrix {spec.name} [{spec.scenario}]",
            )
        )
        print(
            f"\n{len(result.results) - len(result.failed)}/"
            f"{len(result.results)} cells ok in "
            f"{result.manifest['total_seconds']}s; manifest: "
            f"{Path(args.output) / 'manifest.json'}"
        )
        if not args.no_append and spec.trajectory is not None:
            print(f"trajectory appended: {spec.trajectory}")
        if result.failed:
            for cell in result.failed:
                print(f"FAILED {cell.cell.cell_id}: {cell.error}")
            return 1
        return 0

    # gate
    trajectory = args.trajectory
    if trajectory is None and args.matrix is not None:
        spec = MatrixSpec.from_file(args.matrix)
        if spec.trajectory is None:
            raise SystemExit(
                f"matrix {spec.name!r} declares no 'trajectory' to gate"
            )
        trajectory = spec.trajectory
    if trajectory is None:
        manifest_path = Path(args.output) / "manifest.json"
        if not manifest_path.exists():
            raise SystemExit(
                "nothing to gate: pass --matrix/--trajectory or run "
                f"'repro experiments run' first (no {manifest_path})"
            )
        manifest = json.loads(manifest_path.read_text())
        trajectory = (manifest.get("matrix") or {}).get("trajectory")
        if not trajectory:
            raise SystemExit(
                f"{manifest_path} records no trajectory; pass --trajectory"
            )
    try:
        report = gate_trajectory(
            trajectory,
            tolerance=args.tolerance,
            sigmas=args.sigmas,
            time_tolerance=args.time_tolerance,
        )
    except (GateError, TrajectoryError) as exc:
        raise SystemExit(str(exc)) from exc
    print(report.render())
    return 0 if report.passed else 1


def _seeds_incremental(args: argparse.Namespace, graph: DiGraph) -> int:
    """``repro seeds --incremental``: session select, optional delta + repair."""
    from repro.graphs.delta import EdgeDelta
    from repro.incremental import IncrementalSession
    from repro.utils.shards import DEFAULT_NUM_SHARDS

    session = IncrementalSession(
        graph,
        IndependentCascade(args.probability),
        num_snapshots=args.snapshots,
        kernel=args.kernel,
        num_shards=args.shards or DEFAULT_NUM_SHARDS,
        rng=args.seed,
    )
    selected = session.select(args.k)
    print(f"incremental seeds (k={args.k}): {selected}")
    if not args.delta:
        return 0
    spec = json.loads(Path(args.delta).read_text())
    delta = EdgeDelta.of(
        added=[tuple(edge) for edge in spec.get("added", [])],
        removed=[tuple(edge) for edge in spec.get("removed", [])],
    )
    outcome = session.apply_delta(delta)
    result = session.reselect(args.k)
    inv = outcome.invalidation
    print(
        f"delta applied: +{outcome.applied.num_added} -"
        f"{outcome.applied.num_removed} edges; dirty shards "
        f"{list(inv.dirty_shards)}/{inv.num_shards}, cache entries dropped: "
        f"{inv.selection_dropped + inv.blocking_dropped + inv.shard_entries_dropped}"
    )
    print(
        f"repaired seeds (k={args.k}): {list(result.seeds)} "
        f"[depth={result.repair_depth} evals={result.evaluations} "
        f"repaired={result.repaired} fallback={result.fallback}]"
    )
    return 0


def _run_command(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph, args.scale, directed=not args.undirected)
    # The with-block shuts pooled workers down before interpreter exit;
    # leaking a live ProcessPoolExecutor into atexit races its own
    # cleanup hook (OSError on the wakeup pipe under fork).
    with build_executor(args.backend, args.workers) as executor:
        return _dispatch(args, graph, executor)


def _dispatch(args: argparse.Namespace, graph: DiGraph, executor: Executor) -> int:
    if args.command == "stats":
        print(format_table([summarize(graph).as_row()], title=f"graph: {args.graph}"))
        return 0

    if args.command == "seeds":
        if args.incremental:
            return _seeds_incremental(args, graph)
        if args.delta:
            raise SystemExit("--delta requires --incremental")
        algo = _algorithm(args.algorithm, args.probability)
        selected = algo.select(graph, args.k, rng=args.seed)
        print(f"{algo.name} seeds (k={args.k}): {selected}")
        return 0

    if args.command == "overlap":
        first = _algorithm(args.first, args.probability)
        second = _algorithm(args.second, args.probability)
        s1 = first.select(graph, args.k, rng=args.seed)
        s2 = second.select(graph, args.k, rng=args.seed + 1)
        print(f"Jaccard({first.name}, {second.name}) @k={args.k}: "
              f"{jaccard(s1, s2):.4f}")
        return 0

    if args.command == "spread":
        from repro.cascade.simulate import estimate_spread

        algo = _algorithm(args.algorithm, args.probability)
        model = _model(args.model, args.probability)
        selected = algo.select(graph, args.k, rng=args.seed)
        est = estimate_spread(
            graph,
            model,
            selected,
            args.rounds,
            rng=args.seed,
            executor=executor,
            kernel=args.kernel,
        )
        print(
            f"{algo.name} @k={args.k} under {args.model}: "
            f"{est.mean:.2f} +/- {est.stderr:.2f} "
            f"({args.rounds} simulations)"
        )
        return 0

    if args.command == "compete":
        from repro.cascade.simulate import estimate_competitive_spread

        first = _algorithm(args.first, args.probability)
        second = _algorithm(args.second, args.probability)
        model = _model(args.model, args.probability)
        s1 = first.select(graph, args.k, rng=args.seed)
        s2 = second.select(graph, args.k, rng=args.seed + 1)
        ests = estimate_competitive_spread(
            graph,
            model,
            [s1, s2],
            args.rounds,
            rng=args.seed,
            executor=executor,
            kernel=args.kernel,
        )
        print(
            format_table(
                [
                    {
                        "group": "p1",
                        "strategy": first.name,
                        "spread": ests[0].mean,
                        "stderr": ests[0].stderr,
                    },
                    {
                        "group": "p2",
                        "strategy": second.name,
                        "spread": ests[1].mean,
                        "stderr": ests[1].stderr,
                    },
                ],
                title=f"head-to-head under {args.model} (k={args.k})",
            )
        )
        print(f"seed overlap: {jaccard(s1, s2):.4f}")
        return 0

    if args.command == "block":
        from repro.core.blocking import select_blockers

        rival_algo = _algorithm(args.rival, args.probability)
        model = _model(args.model, args.probability)
        rival_seeds = rival_algo.select(graph, args.rival_k, rng=args.seed)
        result = select_blockers(
            graph,
            model,
            rival_seeds,
            k=args.k,
            rounds=args.rounds,
            candidate_pool=args.pool,
            rng=args.seed,
            executor=executor,
            kernel=args.kernel,
        )
        print(f"rival ({rival_algo.name}, k={args.rival_k}) spread without "
              f"blockers: {result.rival_spread_before:.2f}")
        print(f"rival spread against {args.k} blockers: "
              f"{result.rival_spread_after:.2f} "
              f"({result.reduction:.1%} blocked)")
        print(f"blockers: {result.blockers}")
        return 0

    # getreal
    names = [n.strip() for n in args.strategies.split(",") if n.strip()]
    if len(names) < 2:
        raise SystemExit("--strategies needs at least two algorithm names")
    space = StrategySpace([_algorithm(n, args.probability) for n in names])
    model = _model(args.model, args.probability)
    result = get_real(
        graph,
        model,
        space,
        num_groups=args.groups,
        k=args.k,
        rounds=args.rounds,
        rng=args.seed,
        executor=executor,
        kernel=args.kernel,
        symmetry=args.profile_symmetry,
    )
    print(format_table(result.payoff_table.rows(), title="estimated payoffs"))
    print()
    print(f"equilibrium : {result.describe()}")
    print(f"regret      : {result.regret:.4f}")
    print(f"NE search   : {result.solve_seconds * 1000:.2f} ms")
    return 0


if __name__ == "__main__":
    sys.exit(main())
