"""Experiment harness: configuration, runners, orchestrator, and gates.

* :mod:`repro.experiments.config` / :mod:`repro.experiments.runners` —
  the per-table/figure reproduction runners;
* :mod:`repro.experiments.orchestrator` — the declarative scenario-matrix
  runner behind ``python -m repro experiments run``;
* :mod:`repro.experiments.scenarios` — the scenario plugin registry;
* :mod:`repro.experiments.trajectory` — the atomic ``BENCH_*.json``
  trajectory store;
* :mod:`repro.experiments.gate` — the trajectory regression gate behind
  ``python -m repro experiments gate``.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.gate import (
    GateFinding,
    GateReport,
    compare_entries,
    gate_trajectory,
)
from repro.experiments.orchestrator import (
    CellResult,
    MatrixRunResult,
    MatrixSpec,
    run_matrix,
)
from repro.experiments.runners import (
    coefficient_rows,
    jaccard_rows,
    mixed_vs_random_rows,
    profile_rows,
    response_time_rows,
    sensitivity_rows,
    spread_rows,
    table3_rows,
)
from repro.experiments.scenarios import (
    ScenarioCell,
    get_scenario,
    registered_scenarios,
    scenario,
)
from repro.experiments.trajectory import TrajectoryStore, append_trajectory

__all__ = [
    "ExperimentConfig",
    "table3_rows",
    "jaccard_rows",
    "spread_rows",
    "mixed_vs_random_rows",
    "profile_rows",
    "response_time_rows",
    "sensitivity_rows",
    "coefficient_rows",
    "MatrixSpec",
    "MatrixRunResult",
    "CellResult",
    "run_matrix",
    "ScenarioCell",
    "scenario",
    "get_scenario",
    "registered_scenarios",
    "TrajectoryStore",
    "append_trajectory",
    "GateFinding",
    "GateReport",
    "compare_entries",
    "gate_trajectory",
]
