"""Experiment harness: configuration and runners for every paper table/figure."""

from repro.experiments.config import ExperimentConfig
from repro.experiments.runners import (
    coefficient_rows,
    jaccard_rows,
    mixed_vs_random_rows,
    profile_rows,
    response_time_rows,
    sensitivity_rows,
    spread_rows,
    table3_rows,
)

__all__ = [
    "ExperimentConfig",
    "table3_rows",
    "jaccard_rows",
    "spread_rows",
    "mixed_vs_random_rows",
    "profile_rows",
    "response_time_rows",
    "sensitivity_rows",
    "coefficient_rows",
]
