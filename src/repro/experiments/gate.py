"""Trajectory regression gate.

Compares a *candidate* benchmark-trajectory entry against a *baseline*
entry from the same :class:`~repro.experiments.trajectory.TrajectoryStore`
and reports typed findings.  ``python -m repro experiments gate`` turns
those findings into a non-zero exit, which is what lets every perf PR
prove itself in CI: run the matrix, append the fresh entry, gate it
against the checked-in history.

Comparison rules (applied recursively over the two entries' shared keys):

* ``{"mean": m, "stderr": s}`` objects are Monte-Carlo estimates — the
  gate fails when ``|m_base - m_cand|`` exceeds ``sigmas`` pooled standard
  errors (default 3.0, matching the bench suite's equivalence checks).
  When both stderrs are zero the values must match bit-for-bit: the
  runners promise bit-identical results for a fixed seed;
* numeric keys ending in ``speedup`` are higher-is-better ratios — the
  gate fails when the candidate drops below ``baseline * (1 - tolerance)``
  (default tolerance 0.2);
* numeric keys ending in ``_s``/``_ms`` or containing ``seconds`` are
  wall-clock timings — compared only when ``time_tolerance`` is set
  (CI machines are too noisy for that to be a default);
* strings (equilibrium ``kind``, recommended strategy) must be equal;
* a cell/metric present in the baseline but missing from the candidate
  fails, as does a cell whose candidate ``status`` is not ``"ok"``;
* other bare numbers (byte counts, row counts, ...) are contextual and
  ignored.

Entries are only compared when *comparable*: configuration-bearing keys
(``matrix``/``scenario``/``config``/``nodes``/``rounds``/``k``/``kernel``/
``seed``/``dataset``) that appear in both entries must be equal, so a
scale change (e.g. a smoke run after a full-scale run) starts a new
comparison lineage instead of producing nonsense findings.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Mapping, Sequence
from typing import Any

from repro.errors import GateError
from repro.experiments.trajectory import TrajectoryStore
from repro.utils.tables import format_table

#: Envelope/context keys never compared as metrics.
_SKIP_KEYS = frozenset(
    {
        "timestamp",
        "run_id",
        "matrix",
        "scenario",
        "config",
        "error",
        "seed",
        "dataset",
        "kernel",
        "backend",
        "symmetry",
        "nodes",
        "edges",
        "k",
        "ks",
        "rounds",
        "snapshots",
        "samples",
    }
)

#: Keys that must match for two entries to be comparable at all.
_CONTEXT_KEYS = (
    "matrix",
    "scenario",
    "config",
    "dataset",
    "kernel",
    "seed",
    "nodes",
    "rounds",
    "k",
    "ks",
)

#: Tolerated float fuzz when pooled stderr is exactly zero.
_EXACT_ATOL = 1e-9


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _is_estimate(value: object) -> bool:
    return (
        isinstance(value, Mapping) and "mean" in value and "stderr" in value
    )


def _is_time_key(key: str) -> bool:
    return key.endswith(("_s", "_ms")) or "seconds" in key


@dataclass(frozen=True)
class GateFinding:
    """One detected regression."""

    path: str
    kind: str
    baseline: Any
    candidate: Any
    limit: float | None
    message: str

    def as_row(self) -> dict[str, Any]:
        return {
            "metric": self.path,
            "kind": self.kind,
            "baseline": self.baseline,
            "candidate": self.candidate,
            "limit": "" if self.limit is None else round(self.limit, 4),
        }


@dataclass
class GateReport:
    """Outcome of gating one candidate entry."""

    trajectory: str
    findings: list[GateFinding] = field(default_factory=list)
    checked: int = 0
    baseline_timestamp: str | None = None
    candidate_timestamp: str | None = None
    skipped_reason: str | None = None

    @property
    def passed(self) -> bool:
        return not self.findings

    def render(self) -> str:
        header = f"regression gate: {self.trajectory}"
        if self.skipped_reason is not None:
            return f"{header}\n  PASS (skipped: {self.skipped_reason})"
        lines = [
            header,
            f"  baseline  : {self.baseline_timestamp}",
            f"  candidate : {self.candidate_timestamp}",
            f"  checks    : {self.checked}",
        ]
        if self.passed:
            lines.append("  PASS")
            return "\n".join(lines)
        lines.append(f"  FAIL ({len(self.findings)} finding(s))")
        lines.append("")
        lines.append(
            format_table(
                [finding.as_row() for finding in self.findings],
                title="gate findings",
            )
        )
        lines.extend(f"  - {finding.message}" for finding in self.findings)
        return "\n".join(lines)


def entries_comparable(
    baseline: Mapping[str, Any], candidate: Mapping[str, Any]
) -> bool:
    """Whether two entries share every context key they both carry."""
    return all(
        baseline[key] == candidate[key]
        for key in _CONTEXT_KEYS
        if key in baseline and key in candidate
    )


def select_baseline(
    history: Sequence[Mapping[str, Any]], candidate: Mapping[str, Any]
) -> Mapping[str, Any] | None:
    """Most recent entry before *candidate* that is comparable with it."""
    for entry in reversed(list(history)):
        if entry is candidate:
            continue
        if entries_comparable(entry, candidate):
            return entry
    return None


def compare_entries(
    baseline: Mapping[str, Any],
    candidate: Mapping[str, Any],
    tolerance: float = 0.2,
    sigmas: float = 3.0,
    time_tolerance: float | None = None,
) -> GateReport:
    """Diff *candidate* against *baseline*; returns the findings report."""
    report = GateReport(
        trajectory="<entries>",
        baseline_timestamp=str(baseline.get("timestamp")),
        candidate_timestamp=str(candidate.get("timestamp")),
    )
    _walk("", baseline, candidate, report, tolerance, sigmas, time_tolerance)
    return report


def _walk(
    path: str,
    base: Any,
    cand: Any,
    report: GateReport,
    tolerance: float,
    sigmas: float,
    time_tolerance: float | None,
) -> None:
    leaf = path.rsplit(".", 1)[-1]

    if _is_estimate(base) and _is_estimate(cand):
        report.checked += 1
        base_mean = float(base["mean"])
        cand_mean = float(cand["mean"])
        pooled = math.sqrt(
            float(base["stderr"]) ** 2 + float(cand["stderr"]) ** 2
        )
        gap = abs(base_mean - cand_mean)
        limit = sigmas * pooled if pooled > 0.0 else _EXACT_ATOL
        if gap > limit:
            report.findings.append(
                GateFinding(
                    path=path,
                    kind="equivalence_drift",
                    baseline=round(base_mean, 4),
                    candidate=round(cand_mean, 4),
                    limit=limit,
                    message=(
                        f"{path}: mean drifted {base_mean:.4f} -> "
                        f"{cand_mean:.4f} (gap {gap:.4f} > allowed {limit:.4f})"
                    ),
                )
            )
        return

    if isinstance(base, Mapping) and isinstance(cand, Mapping):
        for key, base_value in base.items():
            child = f"{path}.{key}" if path else str(key)
            if key == "status":
                report.checked += 1
                if base_value == "ok" and cand.get(key) != "ok":
                    report.findings.append(
                        GateFinding(
                            path=child,
                            kind="cell_failed",
                            baseline=base_value,
                            candidate=cand.get(key),
                            limit=None,
                            message=(
                                f"{path or 'entry'}: cell succeeded in the "
                                "baseline but failed in the candidate"
                            ),
                        )
                    )
                continue
            if key in _SKIP_KEYS:
                continue
            if key not in cand:
                report.findings.append(
                    GateFinding(
                        path=child,
                        kind="missing",
                        baseline="present",
                        candidate="absent",
                        limit=None,
                        message=(
                            f"{child}: recorded in the baseline but missing "
                            "from the candidate run"
                        ),
                    )
                )
                continue
            _walk(
                child, base_value, cand[key], report, tolerance, sigmas,
                time_tolerance,
            )
        return

    if _is_number(base) and _is_number(cand):
        base_f, cand_f = float(base), float(cand)
        if leaf.endswith("speedup"):
            report.checked += 1
            limit = base_f * (1.0 - tolerance)
            if cand_f < limit and not math.isclose(cand_f, limit, rel_tol=1e-9):
                report.findings.append(
                    GateFinding(
                        path=path,
                        kind="speedup_regression",
                        baseline=round(base_f, 3),
                        candidate=round(cand_f, 3),
                        limit=limit,
                        message=(
                            f"{path}: speedup regressed {base_f:.2f}x -> "
                            f"{cand_f:.2f}x (floor {limit:.2f}x at "
                            f"tolerance {tolerance:.0%})"
                        ),
                    )
                )
        elif _is_time_key(leaf):
            if time_tolerance is None:
                return
            report.checked += 1
            limit = base_f * (1.0 + time_tolerance)
            if cand_f > limit and not math.isclose(cand_f, limit, rel_tol=1e-9):
                report.findings.append(
                    GateFinding(
                        path=path,
                        kind="time_regression",
                        baseline=round(base_f, 4),
                        candidate=round(cand_f, 4),
                        limit=limit,
                        message=(
                            f"{path}: wall clock regressed {base_f:.3f}s -> "
                            f"{cand_f:.3f}s (ceiling {limit:.3f}s)"
                        ),
                    )
                )
        # Other bare numbers (byte counts, cache hits, ...) are context.
        return

    if isinstance(base, str) and isinstance(cand, str):
        report.checked += 1
        if base != cand:
            report.findings.append(
                GateFinding(
                    path=path,
                    kind="value_drift",
                    baseline=base,
                    candidate=cand,
                    limit=None,
                    message=f"{path}: value changed {base!r} -> {cand!r}",
                )
            )


def gate_trajectory(
    trajectory: str | Path,
    candidate: Mapping[str, Any] | None = None,
    tolerance: float = 0.2,
    sigmas: float = 3.0,
    time_tolerance: float | None = None,
) -> GateReport:
    """Gate the newest (or an explicit *candidate*) entry of *trajectory*.

    The baseline is the most recent *comparable* earlier entry (see
    :func:`entries_comparable`).  A trajectory with nothing to compare
    against — missing candidate context twin, or a single entry — passes
    with an explanatory ``skipped_reason`` rather than failing: the first
    run of a new matrix must be able to seed its own history.
    """
    store = TrajectoryStore(trajectory)
    history = store.read()
    if candidate is None:
        if not history:
            raise GateError(
                f"trajectory {store.path} is empty; run the matrix first"
            )
        candidate = history[-1]
        history = history[:-1]
    baseline = select_baseline(history, candidate)
    if baseline is None:
        return GateReport(
            trajectory=str(store.path),
            candidate_timestamp=str(candidate.get("timestamp")),
            skipped_reason=(
                "no comparable baseline entry in the trajectory "
                "(first run at this configuration)"
            ),
        )
    report = compare_entries(
        baseline,
        candidate,
        tolerance=tolerance,
        sigmas=sigmas,
        time_tolerance=time_tolerance,
    )
    report.trajectory = str(store.path)
    return report
