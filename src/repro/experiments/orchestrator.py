"""Declarative scenario-matrix orchestrator.

Turns a JSON *matrix spec* — the cross product dataset × model × kernel ×
backend × symmetry × k, plus pinned scale knobs — into scenario cells,
runs each cell's registered scenario (:mod:`repro.experiments.scenarios`)
through the batched :class:`~repro.exec.executor.Executor`, journals every
cell as a span in a JSONL run journal, writes a manifest, and appends one
schema-validated entry to the spec's ``BENCH_*`` trajectory through the
atomic :class:`~repro.experiments.trajectory.TrajectoryStore`.

A spec file looks like::

    {
      "name": "smoke",
      "scenario": "competitive_spread",
      "trajectory": "BENCH_orchestrator_smoke.json",
      "datasets": ["hep"],
      "models": ["ic", "wc"],
      "kernels": ["python", "numpy"],
      "backends": ["serial"],
      "symmetries": ["full"],
      "ks": [5],
      "nodes": 300, "rounds": 6, "snapshots": 8, "seed": 2015
    }

Scale knobs present in the spec (``nodes``/``rounds``/``snapshots``/
``seed``/``ic_probability``/``workers``) override the ``REPRO_BENCH_*``
environment so a checked-in spec reproduces bit-identically wherever it
runs; omitted knobs fall back to the environment-driven defaults of
:class:`~repro.experiments.config.ExperimentConfig`.

Cells never abort the campaign: a scenario that raises is recorded as a
failed cell in the manifest (and as ``status: "failed"`` in the trajectory
entry) and the run carries on — the CLI exits non-zero at the end.

``python -m repro experiments run|gate|list`` is the command-line surface;
the regression gate lives in :mod:`repro.experiments.gate`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields as dataclass_fields
from datetime import datetime, timezone
from itertools import product
from pathlib import Path
from collections.abc import Mapping, Sequence
from typing import Any

from repro.cascade.kernels import resolve_kernel
from repro.core.payoff import resolve_symmetry
from repro.errors import ExperimentError
from repro.exec.backends import BACKENDS
from repro.exec.executor import Executor, build_executor
from repro.experiments.config import ExperimentConfig
from repro.experiments.scenarios import (
    ScenarioCell,
    get_scenario,
)
from repro.experiments.trajectory import TrajectoryStore
from repro.graphs.datasets import DATASETS
from repro.graphs.digraph import DiGraph
from repro.obs.journal import RunJournal, attached
from repro.obs.log import get_logger
from repro.obs.metrics import counter
from repro.obs.trace import span
from repro.utils.timing import Stopwatch

_LOG = get_logger("experiments.orchestrator")
_CELLS_RUN = counter("experiments.cells_run")
_CELLS_FAILED = counter("experiments.cells_failed")

#: Model kinds :meth:`ExperimentConfig.model` accepts.
_MODEL_KINDS = ("ic", "wc")


def _utc_timestamp() -> str:
    # Trajectory entries record *when* a benchmark ran — the timestamp is
    # the product, not hidden nondeterminism.
    return datetime.now(timezone.utc).isoformat(timespec="seconds")  # reprolint: disable=RP011


@dataclass(frozen=True)
class MatrixSpec:
    """A validated, declarative scenario matrix."""

    name: str
    scenario: str = "competitive_spread"
    trajectory: Path | None = None
    datasets: tuple[str, ...] = ("hep",)
    models: tuple[str, ...] = ("ic",)
    kernels: tuple[str, ...] = ("python",)
    backends: tuple[str, ...] = ("serial",)
    symmetries: tuple[str, ...] = ("full",)
    ks: tuple[int, ...] = (5,)
    nodes: int | None = None
    rounds: int | None = None
    snapshots: int | None = None
    seed: int | None = None
    workers: int | None = None
    ic_probability: float | None = None

    # ------------------------------------------------------------------ #
    # construction / validation
    # ------------------------------------------------------------------ #

    @classmethod
    def from_file(cls, path: str | Path) -> "MatrixSpec":
        """Load and validate a spec from a JSON file.

        A relative ``trajectory`` path resolves against the spec file's
        directory's *repository root convention*: the current working
        directory (so checked-in specs can point at the repo-root
        ``BENCH_*.json`` files regardless of where the spec lives).
        """
        path = Path(path)
        if not path.exists():
            raise ExperimentError(f"matrix spec not found: {path}")
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ExperimentError(f"{path}: not valid JSON ({exc})") from exc
        return cls.from_dict(data, source=str(path))

    @classmethod
    def from_dict(
        cls, data: Mapping[str, Any], source: str = "<dict>"
    ) -> "MatrixSpec":
        """Validate a spec mapping; unknown keys and bad axes raise."""
        if not isinstance(data, Mapping):
            raise ExperimentError(
                f"{source}: matrix spec must be a JSON object"
            )
        known = {f.name for f in dataclass_fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ExperimentError(
                f"{source}: unknown matrix spec keys {unknown}; "
                f"known: {sorted(known)}"
            )
        if not str(data.get("name", "")).strip():
            raise ExperimentError(f"{source}: matrix spec needs a 'name'")

        def axis(key: str, default: tuple[Any, ...]) -> tuple[Any, ...]:
            raw = data.get(key, default)
            if isinstance(raw, (str, int, float)):
                raw = [raw]
            values = tuple(raw)
            if not values:
                raise ExperimentError(f"{source}: axis {key!r} must not be empty")
            return values

        datasets = tuple(str(d) for d in axis("datasets", ("hep",)))
        for dataset in datasets:
            if dataset not in DATASETS:
                raise ExperimentError(
                    f"{source}: unknown dataset {dataset!r}; "
                    f"available: {sorted(DATASETS)}"
                )
        models = tuple(str(m) for m in axis("models", ("ic",)))
        for model in models:
            if model not in _MODEL_KINDS:
                raise ExperimentError(
                    f"{source}: unknown model {model!r}; known: {_MODEL_KINDS}"
                )
        kernels = tuple(resolve_kernel(str(k)) for k in axis("kernels", ("python",)))
        backends = tuple(str(b) for b in axis("backends", ("serial",)))
        for backend in backends:
            if backend not in BACKENDS:
                raise ExperimentError(
                    f"{source}: unknown backend {backend!r}; "
                    f"known: {sorted(BACKENDS)}"
                )
        symmetries = tuple(
            resolve_symmetry(str(s)) for s in axis("symmetries", ("full",))
        )
        ks = tuple(int(k) for k in axis("ks", (5,)))
        if any(k < 1 for k in ks):
            raise ExperimentError(f"{source}: every k must be >= 1, got {ks}")

        scenario_name = str(data.get("scenario", "competitive_spread"))
        get_scenario(scenario_name)  # raises on unknown scenarios

        def knob(key: str, kind: type) -> Any:
            raw = data.get(key)
            if raw is None:
                return None
            value = kind(raw)
            if kind is int and value < 1:
                raise ExperimentError(
                    f"{source}: {key!r} must be >= 1, got {value}"
                )
            return value

        trajectory = data.get("trajectory")
        return cls(
            name=str(data["name"]),
            scenario=scenario_name,
            trajectory=Path(trajectory) if trajectory else None,
            datasets=datasets,
            models=models,
            kernels=kernels,
            backends=backends,
            symmetries=symmetries,
            ks=ks,
            nodes=knob("nodes", int),
            rounds=knob("rounds", int),
            snapshots=knob("snapshots", int),
            seed=None if data.get("seed") is None else int(data["seed"]),
            workers=knob("workers", int),
            ic_probability=(
                None
                if data.get("ic_probability") is None
                else float(data["ic_probability"])
            ),
        )

    # ------------------------------------------------------------------ #
    # expansion
    # ------------------------------------------------------------------ #

    def expand(self) -> list[ScenarioCell]:
        """Every cell of the matrix, in deterministic axis order."""
        return [
            ScenarioCell(
                dataset=dataset,
                model=model,
                kernel=kernel,
                backend=backend,
                symmetry=symmetry,
                k=k,
            )
            for dataset, model, kernel, backend, symmetry, k in product(
                self.datasets,
                self.models,
                self.kernels,
                self.backends,
                self.symmetries,
                self.ks,
            )
        ]

    def config_overrides(self) -> dict[str, Any]:
        """The spec's pinned scale knobs as ``ExperimentConfig`` kwargs."""
        overrides: dict[str, Any] = {}
        if self.nodes is not None:
            overrides["nodes_budget"] = self.nodes
        if self.rounds is not None:
            overrides["rounds"] = self.rounds
        if self.snapshots is not None:
            overrides["snapshots"] = self.snapshots
        if self.seed is not None:
            overrides["seed"] = self.seed
        if self.ic_probability is not None:
            overrides["ic_probability"] = self.ic_probability
        return overrides

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready spec echo for manifests and trajectory entries."""
        return {
            "name": self.name,
            "scenario": self.scenario,
            "trajectory": str(self.trajectory) if self.trajectory else None,
            "datasets": list(self.datasets),
            "models": list(self.models),
            "kernels": list(self.kernels),
            "backends": list(self.backends),
            "symmetries": list(self.symmetries),
            "ks": list(self.ks),
            **self.config_overrides(),
        }


@dataclass
class CellResult:
    """Outcome of one scenario cell."""

    cell: ScenarioCell
    status: str
    seconds: float
    metrics: dict[str, Any] | None = None
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class MatrixRunResult:
    """Outcome of a whole matrix run."""

    spec: MatrixSpec
    results: list[CellResult]
    entry: dict[str, Any]
    manifest: dict[str, Any]
    output_dir: Path | None = None
    results_rows: list[dict[str, Any]] = field(default_factory=list)

    @property
    def failed(self) -> list[CellResult]:
        return [r for r in self.results if not r.ok]

    @property
    def ok(self) -> bool:
        return not self.failed


def run_matrix(
    spec: MatrixSpec,
    output_dir: str | Path | None = None,
    journal_path: str | Path | None = None,
    append: bool = True,
) -> MatrixRunResult:
    """Run every cell of *spec*; write manifest + trajectory entry.

    Parameters
    ----------
    spec:
        The validated matrix.
    output_dir:
        Where ``manifest.json``, ``cells.txt`` and (unless *journal_path*
        overrides it) ``journal.jsonl`` land.  ``None`` skips all file
        output except the trajectory append.
    journal_path:
        Explicit JSONL journal destination (defaults to
        ``<output_dir>/journal.jsonl`` when an output directory is given).
    append:
        Append the run's entry to the spec's trajectory store (requires
        ``spec.trajectory``); disable for gate-only fresh runs.
    """
    cells = spec.expand()
    out = Path(output_dir) if output_dir is not None else None
    if out is not None:
        out.mkdir(parents=True, exist_ok=True)
        if journal_path is None:
            journal_path = out / "journal.jsonl"

    journal = RunJournal(journal_path) if journal_path is not None else None
    results: list[CellResult] = []
    total_watch = Stopwatch()
    try:
        if journal is not None:
            journal.run_start(
                "experiments.run",
                matrix=spec.name,
                scenario=spec.scenario,
                cells=len(cells),
            )
        with total_watch:
            _run_cells(spec, cells, results, journal)
        if journal is not None:
            journal.run_end(
                status="ok" if all(r.ok for r in results) else "error",
                duration_seconds=total_watch.elapsed,
            )
    finally:
        if journal is not None:
            journal.close()

    entry = _trajectory_entry(spec, results, total_watch.elapsed)
    manifest = _manifest(spec, results, total_watch.elapsed, journal_path)
    rows = _result_rows(results)
    if out is not None:
        (out / "manifest.json").write_text(
            json.dumps(manifest, indent=2, default=str) + "\n"
        )
        from repro.utils.tables import format_table

        (out / "cells.txt").write_text(
            format_table(rows, title=f"matrix {spec.name} [{spec.scenario}]")
            + "\n"
        )
    if append:
        if spec.trajectory is None:
            raise ExperimentError(
                f"matrix {spec.name!r} has no 'trajectory' path to append to"
            )
        TrajectoryStore(spec.trajectory).append(entry)
    failed = [r for r in results if not r.ok]
    _LOG.info(
        "matrix %s: %d/%d cells ok in %.2fs",
        spec.name,
        len(results) - len(failed),
        len(results),
        total_watch.elapsed,
    )
    return MatrixRunResult(
        spec=spec,
        results=results,
        entry=entry,
        manifest=manifest,
        output_dir=out,
        results_rows=rows,
    )


def _run_cells(
    spec: MatrixSpec,
    cells: Sequence[ScenarioCell],
    results: list[CellResult],
    journal: RunJournal | None,
) -> None:
    """Execute every cell, sharing graphs and per-backend executors."""
    scenario_fn = get_scenario(spec.scenario)
    overrides = spec.config_overrides()
    graph_cache: dict[str, DiGraph] = {}
    executors: dict[str, Executor] = {}
    try:
        for cell in cells:
            config = ExperimentConfig(
                backend=cell.backend,
                kernel=cell.kernel,
                symmetry=cell.symmetry,
                ks=(cell.k,),
                **overrides,
            )
            if spec.workers is not None:
                config.workers = spec.workers
            # Share the graph cache and one executor per backend across
            # cells: the matrix is a cross product, so most cells reuse
            # both, and MixGreedy's selection cache keys on the graph
            # object's fingerprint either way.
            config._graph_cache = graph_cache
            if cell.backend not in executors:
                executors[cell.backend] = build_executor(
                    cell.backend, config.workers
                )
            config._executor = executors[cell.backend]
            _CELLS_RUN.inc()
            watch = Stopwatch()
            journal_scope = (
                attached(journal) if journal is not None else _null_scope()
            )
            try:
                with journal_scope, span(
                    "experiments.cell",
                    journal=journal is not None,
                    cell=cell.cell_id,
                    matrix=spec.name,
                    scenario=spec.scenario,
                ), watch:
                    metrics = scenario_fn(cell, config)
            except Exception as exc:  # cell failures must not kill the run
                _CELLS_FAILED.inc()
                error = f"{type(exc).__name__}: {exc}"
                _LOG.warning("cell %s failed: %s", cell.cell_id, error)
                results.append(
                    CellResult(
                        cell=cell,
                        status="failed",
                        seconds=watch.elapsed,
                        error=error,
                    )
                )
                continue
            results.append(
                CellResult(
                    cell=cell,
                    status="ok",
                    seconds=watch.elapsed,
                    metrics=dict(metrics),
                )
            )
    finally:
        for executor in executors.values():
            executor.close()


class _null_scope:
    """``with``-compatible no-op used when no journal is configured."""

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> None:
        return None


def _trajectory_entry(
    spec: MatrixSpec, results: Sequence[CellResult], elapsed: float
) -> dict[str, Any]:
    """The run's trajectory entry (the gate's comparison unit)."""
    cells: dict[str, Any] = {}
    for result in results:
        record: dict[str, Any] = {"status": result.status}
        if result.metrics is not None:
            record["metrics"] = result.metrics
        if result.error is not None:
            record["error"] = result.error
        cells[result.cell.cell_id] = record
    return {
        "timestamp": _utc_timestamp(),
        "matrix": spec.name,
        "scenario": spec.scenario,
        "config": {
            key: value
            for key, value in spec.as_dict().items()
            if key != "trajectory"
        },
        "total_s": round(elapsed, 3),
        "cells": cells,
    }


def _manifest(
    spec: MatrixSpec,
    results: Sequence[CellResult],
    elapsed: float,
    journal_path: str | Path | None,
) -> dict[str, Any]:
    failed = [r for r in results if not r.ok]
    return {
        "matrix": spec.as_dict(),
        "status": "ok" if not failed else "failed",
        "cells_total": len(results),
        "cells_failed": len(failed),
        "total_seconds": round(elapsed, 3),
        "journal": str(journal_path) if journal_path is not None else None,
        "cells": {
            result.cell.cell_id: {
                "status": result.status,
                "seconds": round(result.seconds, 3),
                **({"error": result.error} if result.error else {}),
            }
            for result in results
        },
    }


def _result_rows(results: Sequence[CellResult]) -> list[dict[str, Any]]:
    """Flat per-cell rows for the CLI table / ``cells.txt``."""
    rows: list[dict[str, Any]] = []
    for result in results:
        row: dict[str, Any] = {
            "cell": result.cell.cell_id,
            "status": result.status,
            "seconds": round(result.seconds, 3),
        }
        for key, value in (result.metrics or {}).items():
            if isinstance(value, Mapping) and "mean" in value:
                row[key] = round(float(value["mean"]), 3)
            elif isinstance(value, float):
                row[key] = round(value, 4)
            else:
                row[key] = value
        if result.error:
            row["error"] = result.error
        rows.append(row)
    return rows
