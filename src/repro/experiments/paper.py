"""The paper's published numbers, as structured data.

Encodes what the paper's Section 6 actually reports — dataset sizes,
Table 4 response times, Figure 10 coefficient ranges, the Hep/WC mixed
probability ρ = 0.582, the Figure 8 improvement percentages — so that the
benchmark harness can print paper-vs-measured side by side and
EXPERIMENTS.md stays backed by code rather than prose.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PaperDataset:
    """A row of the paper's Table 3."""

    name: str
    nodes: int
    edges: int


@dataclass(frozen=True)
class CoefficientRange:
    """Figure 10 ranges for one (dataset, model) panel."""

    dataset: str
    model: str
    lambda_range: tuple[float, float]
    gamma_range: tuple[float, float]
    alpha_plus_beta_range: tuple[float, float]


@dataclass(frozen=True)
class ResponseTime:
    """A cell of the paper's Table 4 (seconds)."""

    dataset: str
    model: str
    order: int  # r = z
    seconds: float


TABLE3 = (
    PaperDataset("hep", 15_233, 58_891),
    PaperDataset("phy", 37_154, 231_584),
    PaperDataset("wiki", 2_394_385, 5_021_410),
)

#: Table 4, verbatim.
TABLE4 = (
    ResponseTime("hep", "ic", 2, 0.022),
    ResponseTime("hep", "wc", 2, 0.034),
    ResponseTime("phy", "ic", 2, 0.024),
    ResponseTime("phy", "wc", 2, 0.024),
    ResponseTime("wiki", "ic", 2, 0.023),
    ResponseTime("wiki", "wc", 2, 0.030),
    ResponseTime("hep", "ic", 3, 0.043),
    ResponseTime("hep", "wc", 3, 0.083),
    ResponseTime("phy", "ic", 3, 0.044),
    ResponseTime("phy", "wc", 3, 0.092),
    ResponseTime("wiki", "ic", 3, 0.098),
    ResponseTime("wiki", "wc", 3, 0.440),
)

#: Figure 10: the paper reports λ, γ ∈ [0.5, 0.59] overall, with the IC
#: model sitting slightly higher (λ ∈ [0.56, 0.59]) than WC ([0.51, 0.52])
#: on Hep, and α+β ∈ [1.08, 1.16] (IC) / [1.2, 1.29] (WC).
FIGURE10 = (
    CoefficientRange("hep", "ic", (0.56, 0.59), (0.50, 0.59), (1.08, 1.16)),
    CoefficientRange("hep", "wc", (0.51, 0.52), (0.50, 0.59), (1.20, 1.29)),
    CoefficientRange("phy", "ic", (0.50, 0.59), (0.50, 0.59), (1.08, 1.16)),
    CoefficientRange("phy", "wc", (0.50, 0.59), (0.50, 0.59), (1.20, 1.29)),
    CoefficientRange("wiki", "ic", (0.50, 0.59), (0.50, 0.59), (1.08, 1.16)),
    CoefficientRange("wiki", "wc", (0.50, 0.59), (0.50, 0.59), (1.20, 1.29)),
)

#: The one scenario without a pure NE, and its mixed solution.
MIXED_SCENARIO = {
    "dataset": "hep",
    "model": "wc",
    "rho_mgwc": 0.582,
    "rho_sdwc": 0.418,
    "improvement_vs_mgwc_mgwc": 0.20,
    "improvement_vs_sdwc_sdwc": 0.09,
    "improvement_vs_random": 0.07,
    "simulation_rounds": 50,
}

#: The paper's qualitative claims, used as labels in comparison tables.
QUALITATIVE_CLAIMS = (
    "same-algorithm seed sets overlap far more than cross-algorithm pairs",
    "competitive spread is well below the non-competitive singleton spread",
    "under IC the greedy strategy is the pure NE on all three datasets",
    "Hep under WC has no pure NE; the mixed NE mixes mgwc/sdwc",
    "lambda and gamma stay in [1/2, 1 - eps/2g]; alpha+beta >= 1",
    "NE search is sub-second for r = z <= 3",
)


def theorem1_holds(lam: float, gamma: float, alpha_plus_beta: float,
                   slack: float = 0.15) -> bool:
    """Check a measured coefficient triple against Theorem 1 / Corollary 1.

    *slack* absorbs Monte-Carlo noise around the theoretical interval
    endpoints (the theorems bound expectations, not finite-sample
    estimates).
    """
    lower = 0.5 - slack
    return (
        lam >= lower
        and gamma >= lower
        and alpha_plus_beta >= 1.0 - 2 * slack
    )


def table4_shape_holds(measured_seconds: float, order: int) -> bool:
    """Table 4's transferable claim: NE search is sub-second at r=z<=3."""
    return measured_seconds < 1.0 if order <= 3 else measured_seconds < 10.0
