"""Scenario plugins for the experiment orchestrator.

A *scenario* is the measurement taken inside one cell of a scenario
matrix: a callable ``fn(cell, config) -> metrics`` where *cell* is the
:class:`ScenarioCell` naming the (dataset, model, kernel, backend,
symmetry, k) coordinates, *config* is a fully resolved
:class:`~repro.experiments.config.ExperimentConfig` for that cell (its
``executor()``/``load()``/``strategy_space()`` plumbing already points at
the cell's backend, kernel and dataset), and *metrics* is a flat JSON
object of results.

Metric value conventions — these drive the regression gate
(:mod:`repro.experiments.gate`):

* ``{"mean": m, "stderr": s}`` dicts are Monte-Carlo estimates; the gate
  checks run-over-run drift against the pooled standard error;
* numeric keys ending in ``speedup`` are higher-is-better ratios; the gate
  fails when they regress beyond its tolerance;
* numeric keys ending in ``_s``/``_ms``/``seconds`` are wall-clock timings,
  compared only when the gate's opt-in time tolerance is set;
* strings (e.g. an equilibrium ``kind``) are compared for equality.

New workloads (the ROADMAP's asymmetric cascades, budgeted actions,
blocking games) land by *registering* a scenario — no new bench script::

    from repro.experiments.scenarios import scenario

    @scenario("blocking", "defender/attacker blocking under competitive LT")
    def blocking(cell, config):
        ...
        return {"blocked_fraction": {"mean": ..., "stderr": ...}}
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable
from typing import Any

from repro.errors import ExperimentError
from repro.utils.rng import as_rng
from repro.utils.timing import Stopwatch

#: A scenario measurement: ``fn(cell, config) -> metrics``.
ScenarioFn = Callable[["ScenarioCell", Any], dict[str, Any]]


@dataclass(frozen=True)
class ScenarioCell:
    """One coordinate of the scenario matrix."""

    dataset: str
    model: str
    kernel: str
    backend: str
    symmetry: str
    k: int

    @property
    def cell_id(self) -> str:
        """Stable identifier used in manifests, journals and trajectories."""
        return (
            f"{self.dataset}/{self.model}/{self.kernel}/"
            f"{self.backend}/{self.symmetry}/k{self.k}"
        )


_SCENARIOS: dict[str, tuple[ScenarioFn, str]] = {}


def scenario(name: str, summary: str) -> Callable[[ScenarioFn], ScenarioFn]:
    """Register a scenario plugin under *name* (decorator)."""

    def register(fn: ScenarioFn) -> ScenarioFn:
        if name in _SCENARIOS:
            raise ExperimentError(f"scenario {name!r} is already registered")
        _SCENARIOS[name] = (fn, summary)
        return fn

    return register


def get_scenario(name: str) -> ScenarioFn:
    """The registered scenario callable, or :class:`ExperimentError`."""
    try:
        return _SCENARIOS[name][0]
    except KeyError:
        raise ExperimentError(
            f"unknown scenario {name!r}; registered: {sorted(_SCENARIOS)}"
        ) from None


def registered_scenarios() -> list[dict[str, str]]:
    """Name/summary rows for every registered scenario (CLI ``list``)."""
    return [
        {"scenario": name, "summary": _SCENARIOS[name][1]}
        for name in sorted(_SCENARIOS)
    ]


# ---------------------------------------------------------------------- #
# built-in scenarios
# ---------------------------------------------------------------------- #


@scenario(
    "competitive_spread",
    "head-to-head spread of the paper's strategy pairing (phi1 vs phi2)",
)
def competitive_spread(cell: ScenarioCell, config: Any) -> dict[str, Any]:
    """Per-group competitive spreads of φ1 vs φ2 at the cell's budget.

    Exercises the full estimation stack — strategy selection (MixGreedy's
    snapshot pools + the selection cache), the batched executor on the
    cell's backend, and the cell's diffusion kernel.
    """
    from repro.cascade.simulate import estimate_competitive_spread
    from repro.core.metrics import jaccard

    graph = config.load(cell.dataset)
    model = config.model(cell.model)
    space = config.strategy_space(cell.model)
    rng = as_rng(config.seed)
    seeds = [phi.select(graph, cell.k, rng) for phi in (space[0], space[1])]
    estimates = estimate_competitive_spread(
        graph,
        model,
        seeds,
        config.rounds,
        rng,
        executor=config.executor(),
        kernel=cell.kernel,
    )
    return {
        "p1_spread": {
            "mean": float(estimates[0].mean),
            "stderr": float(estimates[0].stderr),
        },
        "p2_spread": {
            "mean": float(estimates[1].mean),
            "stderr": float(estimates[1].stderr),
        },
        "seed_overlap": {
            "mean": float(jaccard(seeds[0], seeds[1])),
            "stderr": 0.0,
        },
    }


@scenario(
    "getreal",
    "full GetReal pipeline: equilibrium kind, recommended mixture, regret",
)
def getreal(cell: ScenarioCell, config: Any) -> dict[str, Any]:
    """Run GetReal end to end on the cell and record the recommendation."""
    from repro.core.getreal import get_real

    space = config.strategy_space(cell.model)
    result = get_real(
        config.load(cell.dataset),
        config.model(cell.model),
        space,
        num_groups=2,
        k=cell.k,
        rounds=config.rounds,
        rng=config.seed,
        executor=config.executor(),
        kernel=cell.kernel,
        symmetry=cell.symmetry,
    )
    return {
        "kind": result.kind,
        "rho_phi1": {
            "mean": float(result.mixture.probabilities[0]),
            # The mixture is a deterministic function of the (noisy) payoff
            # table; its run-over-run drift is bounded by the table's own
            # noise floor, which is what the gate should compare against.
            "stderr": float(result.payoff_table.max_stderr()),
        },
        "regret": float(result.regret),
        "solve_s": float(result.solve_seconds),
        "phi1": space.labels[0],
    }


@scenario(
    "payoff_speedup",
    "symmetric-reduction speedup on the cell's payoff tensor (full vs reduce)",
)
def payoff_speedup(cell: ScenarioCell, config: Any) -> dict[str, Any]:
    """Time ``estimate_payoff_table`` full vs ``symmetry="reduce"``.

    The ``speedup`` key feeds the gate's higher-is-better rule — this is
    ``benchmarks/bench_payoff_sharing.py``'s workload formalized as a
    plugin, at whatever scale the matrix spec pins.
    """
    from repro.core.payoff import estimate_payoff_table

    graph = config.load(cell.dataset)
    model = config.model(cell.model)
    space = config.strategy_space(cell.model)
    timings = {}
    for mode in ("full", "reduce"):
        watch = Stopwatch()
        with watch:
            table = estimate_payoff_table(
                graph,
                model,
                space,
                num_groups=2,
                k=cell.k,
                rounds=config.rounds,
                rng=config.seed,
                executor=config.executor(),
                kernel=cell.kernel,
                symmetry=mode,
            )
        timings[mode] = (watch.elapsed, table)
    full_s, full = timings["full"]
    reduce_s, reduced = timings["reduce"]
    profile = next(iter(full.estimates))
    a, b = full.estimate(profile, 0), reduced.estimate(profile, 0)
    return {
        "speedup": full_s / reduce_s if reduce_s else float(len(full.estimates)),
        "full_s": full_s,
        "reduce_s": reduce_s,
        # float() strips numpy scalars: np.float64 is not JSON-serializable
        # and would fail the trajectory store's schema validation.
        "full_cell0": {"mean": float(a.mean), "stderr": float(a.stderr)},
        "reduce_cell0": {"mean": float(b.mean), "stderr": float(b.stderr)},
    }
