"""Experiment configuration with environment-variable overrides.

The paper's evaluation runs on graphs of up to 2.4M nodes with a C++
implementation; this pure-Python reproduction defaults to scaled surrogate
graphs so the full benchmark suite finishes on a laptop.  Every knob can be
raised through environment variables (documented in EXPERIMENTS.md):

===========================  =======================================  =======
variable                     meaning                                  default
===========================  =======================================  =======
``REPRO_BENCH_NODES``        node budget per surrogate graph          1200
``REPRO_BENCH_ROUNDS``       diffusion simulations per estimate       20
``REPRO_BENCH_SNAPSHOTS``    live-edge snapshots inside MixGreedy     30
``REPRO_BENCH_KS``           comma-separated seed budgets             10..50
``REPRO_BENCH_SEED``         master RNG seed                          2015
``REPRO_BENCH_ICP``          IC edge probability                      0.05
===========================  =======================================  =======

Execution is configured by the engine's own variables: ``REPRO_BACKEND``
(``serial``/``thread``/``process``) and ``REPRO_WORKERS`` select the
simulation backend all runners submit their batches to — results are
bit-identical across those settings for a fixed seed.  ``REPRO_KERNEL``
(``python``/``numpy``) selects the diffusion kernel; results are
bit-identical across backends *within* a kernel and statistically
equivalent across kernels (see ``docs/execution.md``).
``REPRO_SYMMETRY`` (``full``/``reduce``) selects full-profile vs
symmetric-reduced payoff estimation, and ``REPRO_CACHE=off`` disables the
work-sharing selection/blocking caches (both in ``docs/execution.md``).

Large-graph scale-out adds three more (see ``docs/architecture.md`` and
the "large graphs" section of EXPERIMENTS.md): ``REPRO_GRAPH_STORE``
points at a :class:`~repro.graphs.store.GraphStore` directory so job
payloads carry O(1) ``GraphRef`` handles instead of CSR arrays;
``REPRO_SNAPSHOT_SHARDS`` fans live-edge snapshot generation out across
that many worker-side shards per pool; ``REPRO_DATA_DIR`` lets the
``wiki`` dataset load the real SNAP wiki-Talk edge list instead of its
synthetic surrogate.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.algorithms import DegreeDiscount, MixGreedy, SingleDiscount
from repro.cascade import (
    KERNEL_ENV_VAR,
    CascadeModel,
    IndependentCascade,
    WeightedCascade,
    resolve_kernel,
)
from repro.core.payoff import SYMMETRY_ENV_VAR, resolve_symmetry
from repro.core.strategy import StrategySpace
from repro.errors import ExperimentError
from repro.exec.executor import (
    BACKEND_ENV_VAR,
    WORKERS_ENV_VAR,
    Executor,
    build_executor,
)
from repro.graphs.datasets import DATASETS
from repro.graphs.digraph import DiGraph


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    return int(raw) if raw else default


def _env_str(name: str, default: str) -> str:
    raw = os.environ.get(name, "").strip()
    return raw if raw else default


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    return float(raw) if raw else default


def _env_ks(name: str, default: tuple[int, ...]) -> tuple[int, ...]:
    raw = os.environ.get(name)
    if not raw:
        return default
    return tuple(int(part) for part in raw.split(","))


def _env_workers() -> int | None:
    """``REPRO_WORKERS``: unset/empty means auto, otherwise an int >= 1.

    Rejecting zero and negatives here (instead of letting them reach the
    executor) mirrors how ``resolve_kernel``/``resolve_symmetry`` fail fast
    on bad environment values — previously ``REPRO_WORKERS=0`` silently
    meant auto and ``-2`` passed straight through to the worker pool.
    """
    raw = os.environ.get(WORKERS_ENV_VAR, "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError as exc:
        raise ExperimentError(
            f"{WORKERS_ENV_VAR} must be an integer >= 1 or unset, got {raw!r}"
        ) from exc
    if value < 1:
        raise ExperimentError(
            f"{WORKERS_ENV_VAR} must be >= 1 or unset, got {value}"
        )
    return value


@dataclass
class ExperimentConfig:
    """All knobs shared by the benchmark harness and the examples."""

    nodes_budget: int = field(default_factory=lambda: _env_int("REPRO_BENCH_NODES", 1200))
    rounds: int = field(default_factory=lambda: _env_int("REPRO_BENCH_ROUNDS", 20))
    snapshots: int = field(default_factory=lambda: _env_int("REPRO_BENCH_SNAPSHOTS", 120))
    ks: tuple[int, ...] = field(
        default_factory=lambda: _env_ks("REPRO_BENCH_KS", (10, 20, 30, 40, 50))
    )
    seed: int = field(default_factory=lambda: _env_int("REPRO_BENCH_SEED", 2015))
    # The paper uses p = 0.01 on the 15k-node Hep graph; on the scaled
    # surrogate that leaves cascades too short to differentiate strategies.
    # p = 0.08 restores the paper-scale regime (multi-hop cascades where
    # greedy beats the degree heuristic and same-algorithm seed sets
    # overlap); see EXPERIMENTS.md.
    ic_probability: float = field(
        default_factory=lambda: _env_float("REPRO_BENCH_ICP", 0.08)
    )
    backend: str = field(
        default_factory=lambda: _env_str(BACKEND_ENV_VAR, "serial")
    )
    workers: int | None = field(default_factory=_env_workers)
    kernel: str = field(
        default_factory=lambda: resolve_kernel(
            _env_str(KERNEL_ENV_VAR, "python")
        )
    )
    symmetry: str = field(
        default_factory=lambda: resolve_symmetry(
            _env_str(SYMMETRY_ENV_VAR, "full")
        )
    )
    _graph_cache: dict[str, DiGraph] = field(default_factory=dict, repr=False)
    _executor: Executor | None = field(default=None, repr=False)

    def scale_for(self, dataset: str) -> float:
        """Fraction of the paper-scale graph that fits the node budget."""
        spec = DATASETS[dataset]
        return min(1.0, self.nodes_budget / spec.paper_nodes)

    def load(self, dataset: str) -> DiGraph:
        """Load (and cache) the surrogate for *dataset* at the bench scale."""
        if dataset not in self._graph_cache:
            if dataset not in DATASETS:
                raise ExperimentError(
                    f"unknown dataset {dataset!r}; available: {sorted(DATASETS)}"
                )
            self._graph_cache[dataset] = DATASETS[dataset].load(
                scale=self.scale_for(dataset)
            )
        return self._graph_cache[dataset]

    def executor(self) -> Executor:
        """The (cached) execution engine all runners submit batches to."""
        if self._executor is None:
            self._executor = build_executor(self.backend, self.workers)
        return self._executor

    # ------------------------------------------------------------------ #
    # the paper's model/strategy pairings
    # ------------------------------------------------------------------ #

    def model(self, model_kind: str) -> CascadeModel:
        """The cascade model for ``"ic"`` or ``"wc"``."""
        if model_kind == "ic":
            return IndependentCascade(self.ic_probability)
        if model_kind == "wc":
            return WeightedCascade()
        raise ExperimentError(f"model_kind must be 'ic' or 'wc', got {model_kind!r}")

    def strategy_space(self, model_kind: str) -> StrategySpace:
        """The paper's 2-strategy space for each model.

        Under IC: φ1 = MixGreedy(IC), φ2 = DegreeDiscountIC.
        Under WC: φ1 = MixGreedy(WC), φ2 = SingleDiscount.
        """
        model = self.model(model_kind)
        greedy = MixGreedy(
            model,
            num_snapshots=self.snapshots,
            executor=self.executor(),
            kernel=self.kernel,
        )
        if model_kind == "ic":
            return StrategySpace([greedy, DegreeDiscount(self.ic_probability)])
        return StrategySpace([greedy, SingleDiscount()])
