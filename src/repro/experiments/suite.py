"""One-call orchestration of the full reproduction campaign.

``run_suite`` executes every table/figure runner, writes each result as a
text table + CSV into an output directory, and records a manifest
(configuration, wall-clock per experiment, row counts).  This is what the
benchmark harness does test-by-test, packaged for scripted use::

    from repro.experiments.suite import run_suite
    manifest = run_suite("results/", only=["table3", "fig10"])
"""

from __future__ import annotations

import json
from pathlib import Path
from collections.abc import Callable, Sequence

from repro.errors import ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runners import (
    coefficient_rows,
    jaccard_rows,
    mixed_vs_random_rows,
    profile_rows,
    response_time_rows,
    sensitivity_rows,
    spread_rows,
    table3_rows,
)
from repro.obs.log import get_logger
from repro.utils.tables import format_table, write_csv
from repro.utils.timing import Stopwatch

_LOG = get_logger("experiments.suite")

PathLike = str | Path

RunnerFn = Callable[[ExperimentConfig], list[dict[str, object]]]


def _fig_spread(dataset: str, model_kind: str) -> RunnerFn:
    def run(config: ExperimentConfig) -> list[dict[str, object]]:
        return spread_rows(config, dataset, model_kind)

    return run


def _fig_coeff(dataset: str, model_kind: str) -> RunnerFn:
    def run(config: ExperimentConfig) -> list[dict[str, object]]:
        return coefficient_rows(config, dataset, model_kind)

    return run


#: Every experiment in the campaign, id -> runner.
EXPERIMENTS: dict[str, RunnerFn] = {
    "table3": table3_rows,
    "fig3": lambda config: jaccard_rows(config, "ic"),
    "fig4": lambda config: jaccard_rows(config, "wc"),
    "fig5_ic": _fig_spread("hep", "ic"),
    "fig5_wc": _fig_spread("hep", "wc"),
    "fig6_ic": _fig_spread("phy", "ic"),
    "fig6_wc": _fig_spread("phy", "wc"),
    "fig7_ic": _fig_spread("wiki", "ic"),
    "fig7_wc": _fig_spread("wiki", "wc"),
    "fig8": lambda config: mixed_vs_random_rows(config),
    "fig9": lambda config: profile_rows(config),
    "table4": lambda config: response_time_rows(config),
    "fig10_hep_ic": _fig_coeff("hep", "ic"),
    "fig10_hep_wc": _fig_coeff("hep", "wc"),
    "fig10_phy_ic": _fig_coeff("phy", "ic"),
    "fig10_phy_wc": _fig_coeff("phy", "wc"),
    "fig10_wiki_ic": _fig_coeff("wiki", "ic"),
    "fig10_wiki_wc": _fig_coeff("wiki", "wc"),
    "sensitivity": lambda config: sensitivity_rows(config),
}


def run_suite(
    output_dir: PathLike,
    config: ExperimentConfig | None = None,
    only: Sequence[str] | None = None,
    raise_on_error: bool = True,
) -> dict:
    """Run (a subset of) the campaign; returns and writes the manifest.

    A runner that raises no longer aborts the campaign with nothing to show
    for the experiments that already completed: the failure is recorded in
    the manifest (``status: "failed"`` plus the error), the remaining
    experiments still run, and — with ``raise_on_error=True``, the
    default — an :class:`ExperimentError` summarizing the failures is
    raised *after* the manifest has been written, so scripted callers exit
    non-zero without losing the partial results.

    Parameters
    ----------
    output_dir:
        Directory for ``<experiment>.txt`` / ``<experiment>.csv`` outputs
        plus ``manifest.json``.  Created if missing.
    config:
        Experiment configuration; defaults to the env-driven one.
    only:
        Experiment ids to run (default: all).  Unknown ids raise.
    raise_on_error:
        Raise after writing the manifest when any experiment failed;
        ``False`` returns the manifest (check ``manifest["status"]``).
    """
    if config is None:
        config = ExperimentConfig()
    requested = list(only) if only is not None else list(EXPERIMENTS)
    unknown = [name for name in requested if name not in EXPERIMENTS]
    if unknown:
        raise ExperimentError(
            f"unknown experiment ids {unknown}; available: {sorted(EXPERIMENTS)}"
        )

    out = Path(output_dir)
    out.mkdir(parents=True, exist_ok=True)

    manifest: dict = {
        "config": {
            "nodes_budget": config.nodes_budget,
            "rounds": config.rounds,
            "snapshots": config.snapshots,
            "ks": list(config.ks),
            "seed": config.seed,
            "ic_probability": config.ic_probability,
        },
        "experiments": {},
    }
    failed: list[str] = []
    for name in requested:
        watch = Stopwatch()
        try:
            with watch:
                rows = EXPERIMENTS[name](config)
        except Exception as exc:
            # One broken runner must not erase the completed cells of the
            # campaign: record it, keep going, report at the end.
            _LOG.warning("experiment %s failed: %s", name, exc)
            failed.append(name)
            manifest["experiments"][name] = {
                "status": "failed",
                "error": f"{type(exc).__name__}: {exc}",
                "seconds": round(watch.elapsed, 3),
            }
            continue
        (out / f"{name}.txt").write_text(
            format_table(rows, title=name) + "\n"
        )
        if rows:
            write_csv(rows, out / f"{name}.csv")
        manifest["experiments"][name] = {
            "status": "ok",
            "rows": len(rows),
            "seconds": round(watch.elapsed, 3),
        }
    manifest["status"] = "ok" if not failed else "failed"
    if failed:
        manifest["failed"] = failed
    (out / "manifest.json").write_text(json.dumps(manifest, indent=2))
    if failed and raise_on_error:
        raise ExperimentError(
            f"{len(failed)} of {len(requested)} experiment(s) failed: "
            f"{failed} (manifest written to {out / 'manifest.json'})"
        )
    return manifest
