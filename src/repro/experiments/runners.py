"""Runners that regenerate every table and figure of the paper.

Each function returns a list of row dicts (ready for
:func:`repro.utils.tables.format_table`); the ``benchmarks/`` directory has
one pytest-benchmark target per table/figure that calls the matching runner
and prints the rows the paper reports.

Every runner is wrapped by :func:`_observed`: its wall time lands in a
``span.experiments.<runner>.seconds`` histogram, start/finish lines go to
the ``repro.experiments`` logger, and — when a run journal is attached
(``REPRO_BENCH_JOURNAL`` in the benchmark harness, ``--journal`` in
``examples/reproduce_paper.py``) — a ``span`` event per runner plus the
``run_start``/``profile_done``/``equilibrium_found`` events emitted by the
underlying ``get_real``/``estimate_payoff_table`` calls.
"""

from __future__ import annotations

import functools
from itertools import product
from collections.abc import Callable
from typing import TypeVar

import numpy as np

from repro.cascade.simulate import estimate_competitive_spread, estimate_spread
from repro.core.getreal import get_real, solve_strategy_game
from repro.core.metrics import estimate_coefficients, seed_overlap_profile
from repro.core.payoff import estimate_payoff_table
from repro.core.strategy import MixedStrategy, StrategySpace
from repro.experiments.config import ExperimentConfig
from repro.graphs.datasets import DATASETS
from repro.graphs.stats import summarize
from repro.obs.log import get_logger
from repro.obs.metrics import counter
from repro.obs.trace import span
from repro.utils.rng import as_rng
from repro.utils.timing import Stopwatch

_PAPER_DATASETS = ("hep", "phy", "wiki")

_LOG = get_logger("experiments.runners")
_RUNNER_CALLS = counter("experiments.runner_calls")

_Runner = TypeVar("_Runner", bound=Callable[..., list])


def _observed(runner: _Runner) -> _Runner:
    """Wrap a runner with logging, a call counter, and a trace span."""

    @functools.wraps(runner)
    def wrapper(*args: object, **kwargs: object) -> list:
        _RUNNER_CALLS.inc()
        _LOG.info("runner %s started", runner.__name__)
        with span(f"experiments.{runner.__name__}", journal=True) as handle:
            rows = runner(*args, **kwargs)
        _LOG.info(
            "runner %s produced %d rows in %.2fs",
            runner.__name__,
            len(rows),
            handle.elapsed,
        )
        return rows

    return wrapper  # type: ignore[return-value]


@_observed
def table3_rows(config: ExperimentConfig) -> list[dict[str, object]]:
    """Table 3: dataset sizes — paper scale vs the surrogate actually used."""
    rows = []
    for name in _PAPER_DATASETS:
        spec = DATASETS[name]
        graph = config.load(name)
        stats = summarize(graph)
        rows.append(
            {
                "network": name,
                "paper_nodes": spec.paper_nodes,
                "paper_edges": spec.paper_edges,
                "bench_nodes": stats.num_nodes,
                "bench_arcs": stats.num_edges,
                "mean_deg": round(stats.mean_out_degree, 2),
                "gini": round(stats.degree_gini, 3),
            }
        )
    return rows


@_observed
def jaccard_rows(
    config: ExperimentConfig,
    model_kind: str,
    datasets: tuple[str, ...] = _PAPER_DATASETS,
    repeats: int = 3,
) -> list[dict[str, object]]:
    """Figures 3 (IC) and 4 (WC): Jaccard overlap of S1 and S2 per strategy pair.

    The three curves per panel are (φ2, φ2), (φ2, φ1) and (φ1, φ1) — e.g.
    ddic-ddic, ddic-mgic, mgic-mgic under IC.  Seeds are drawn once per
    repeat at ``max(ks)`` and prefixes give the smaller budgets (greedy
    selectors are prefix-consistent).
    """
    from repro.cascade.simulate import SpreadEstimate
    from repro.core.metrics import jaccard

    space = config.strategy_space(model_kind)
    greedy, heuristic = space[0], space[1]
    # Each pair is evaluated between the two roles' independent draws.
    pairs = [
        (heuristic.name, heuristic.name),
        (heuristic.name, greedy.name),
        (greedy.name, greedy.name),
    ]
    rng = as_rng(config.seed)
    k_max = max(config.ks)
    rows = []
    for name in datasets:
        graph = config.load(name)
        values: dict[tuple[str, str, int], list[float]] = {}
        for _ in range(repeats):
            draws = {
                (role, phi.name): phi.select(graph, k_max, rng)
                for role in ("p1", "p2")
                for phi in space
            }
            for first, second in pairs:
                for k in config.ks:
                    sim = jaccard(
                        draws[("p1", first)][:k], draws[("p2", second)][:k]
                    )
                    values.setdefault((first, second, k), []).append(sim)
        for (first, second, k), sims in values.items():
            est = SpreadEstimate.from_values(sims)
            rows.append(
                {
                    "dataset": name,
                    "pair": f"{first}-{second}",
                    "k": k,
                    "jaccard": est.mean,
                    "stderr": est.stderr,
                }
            )
    return rows


@_observed
def spread_rows(
    config: ExperimentConfig,
    dataset: str,
    model_kind: str,
) -> list[dict[str, object]]:
    """Figures 5/6/7: p1's spread for each fixed p2 strategy, plus singletons.

    For each panel (p2 fixed to φ1 or φ2) and each k, four curves: p1 plays
    φ1, p1 plays φ2, and the two non-competitive baselines s-φ1 / s-φ2.
    """
    model = config.model(model_kind)
    space = config.strategy_space(model_kind)
    rng = as_rng(config.seed)
    graph = config.load(dataset)
    k_max = max(config.ks)

    # One ordered k_max-seed list per (role, strategy); prefixes give all k.
    seeds = {
        (role, phi.name): phi.select(graph, k_max, rng)
        for role in ("p1", "p2")
        for phi in space
    }

    rows = []
    for p2_strategy in space:
        panel = f"p2={p2_strategy.name}"
        for k in config.ks:
            s2 = seeds[("p2", p2_strategy.name)][:k]
            for p1_strategy in space:
                s1 = seeds[("p1", p1_strategy.name)][:k]
                ests = estimate_competitive_spread(
                    graph,
                    model,
                    [s1, s2],
                    config.rounds,
                    rng,
                    executor=config.executor(),
                    kernel=config.kernel,
                )
                rows.append(
                    {
                        "panel": panel,
                        "k": k,
                        "curve": p1_strategy.name,
                        "spread": ests[0].mean,
                        "stderr": ests[0].stderr,
                    }
                )
            for phi in space:
                singleton = estimate_spread(
                    graph,
                    model,
                    seeds[("p1", phi.name)][:k],
                    config.rounds,
                    rng,
                    executor=config.executor(),
                    kernel=config.kernel,
                )
                rows.append(
                    {
                        "panel": panel,
                        "k": k,
                        "curve": f"s-{phi.name}",
                        "spread": singleton.mean,
                        "stderr": singleton.stderr,
                    }
                )
    return rows


def _mixture_for(
    config: ExperimentConfig,
    dataset: str,
    model_kind: str,
) -> tuple[MixedStrategy, StrategySpace]:
    """GetReal's recommended mixture for the dataset/model pair.

    Uses 3x the configured rounds and three independent seed draws: the
    hep/wc game is a near-tie (that is *why* it is the paper's mixed-case
    scenario), so the pure-vs-mixed decision needs a lower-noise payoff
    table than the figure sweeps do.
    """
    space = config.strategy_space(model_kind)
    result = get_real(
        config.load(dataset),
        config.model(model_kind),
        space,
        num_groups=2,
        k=max(config.ks),
        rounds=3 * config.rounds,
        seed_draws=3,
        rng=config.seed,
        executor=config.executor(),
        kernel=config.kernel,
        symmetry=config.symmetry,
    )
    return result.mixture, space


@_observed
def mixed_vs_random_rows(
    config: ExperimentConfig,
    dataset: str = "hep",
    model_kind: str = "wc",
    simulation_rounds: int = 50,
) -> list[dict[str, object]]:
    """Figure 8: GetReal's mixed strategy vs uniform-random strategy choice.

    Both groups repeatedly draw a pure strategy from the mixture (resp. the
    uniform distribution) and diffuse competitively; reports each group's
    average spread per k over ``simulation_rounds`` draws (the paper's
    R = 50).
    """
    mixture, space = _mixture_for(config, dataset, model_kind)
    uniform = MixedStrategy.uniform(space)
    model = config.model(model_kind)
    graph = config.load(dataset)
    rng = as_rng(config.seed + 1)
    k_max = max(config.ks)

    seeds = {
        (role, phi.name): phi.select(graph, k_max, rng)
        for role in ("p1", "p2")
        for phi in space
    }

    rows = []
    for label, strategy in (("mixed", mixture), ("random", uniform)):
        for k in config.ks:
            totals = np.zeros(2)
            for _ in range(simulation_rounds):
                phi1 = strategy.sample(rng)
                phi2 = strategy.sample(rng)
                ests = estimate_competitive_spread(
                    graph,
                    model,
                    [seeds[("p1", phi1.name)][:k], seeds[("p2", phi2.name)][:k]],
                    rounds=1,
                    rng=rng,
                    executor=config.executor(),
                    kernel=config.kernel,
                )
                totals += [ests[0].mean, ests[1].mean]
            means = totals / simulation_rounds
            rows.append(
                {
                    "strategy": label,
                    "k": k,
                    "spread_p1": float(means[0]),
                    "spread_p2": float(means[1]),
                    "rho": float(strategy.probabilities[0]),
                }
            )
    return rows


@_observed
def profile_rows(
    config: ExperimentConfig,
    dataset: str = "hep",
    model_kind: str = "wc",
) -> list[dict[str, object]]:
    """Figure 9: average spread of every pure 2-order profile vs the mixed line."""
    mixture, space = _mixture_for(config, dataset, model_kind)
    model = config.model(model_kind)
    graph = config.load(dataset)
    rng = as_rng(config.seed + 2)
    k_max = max(config.ks)

    seeds = {
        (role, phi.name): phi.select(graph, k_max, rng)
        for role in ("p1", "p2")
        for phi in space
    }

    rows = []
    for k in config.ks:
        mixed_expect = np.zeros(2)
        for i, j in product(range(space.size), repeat=2):
            phi1, phi2 = space[i], space[j]
            ests = estimate_competitive_spread(
                graph,
                model,
                [seeds[("p1", phi1.name)][:k], seeds[("p2", phi2.name)][:k]],
                config.rounds,
                rng,
                executor=config.executor(),
                kernel=config.kernel,
            )
            weight = mixture.probabilities[i] * mixture.probabilities[j]
            mixed_expect += weight * np.array([ests[0].mean, ests[1].mean])
            rows.append(
                {
                    "k": k,
                    "profile": f"{phi1.name}-{phi2.name}",
                    "spread_p1": ests[0].mean,
                    "spread_p2": ests[1].mean,
                }
            )
        rows.append(
            {
                "k": k,
                "profile": "mixed",
                "spread_p1": float(mixed_expect[0]),
                "spread_p2": float(mixed_expect[1]),
            }
        )
    return rows


@_observed
def response_time_rows(
    config: ExperimentConfig,
    datasets: tuple[str, ...] = _PAPER_DATASETS,
    repeats: int = 5,
) -> list[dict[str, object]]:
    """Table 4: time of the NE search alone (Algorithm 1 lines 5–11).

    Payoff tables are estimated once per (dataset, model, r=z) combination;
    the timer then covers only ``solve_strategy_game``, matching the paper's
    measurement.  ``r = z = 3`` adds RandomSeeds as the third strategy and a
    third group.
    """
    from repro.algorithms import RandomSeeds

    rows = []
    rng = as_rng(config.seed + 3)
    for name in datasets:
        graph = config.load(name)
        for model_kind in ("ic", "wc"):
            model = config.model(model_kind)
            base = config.strategy_space(model_kind)
            for order in (2, 3):
                if order == 2:
                    space = base
                else:
                    space = StrategySpace(list(base) + [RandomSeeds()])
                table = estimate_payoff_table(
                    graph,
                    model,
                    space,
                    num_groups=order,
                    k=min(20, max(config.ks)),
                    rounds=max(4, config.rounds // 4),
                    rng=rng,
                    executor=config.executor(),
                    kernel=config.kernel,
                    symmetry=config.symmetry,
                )
                game = table.to_game()
                watch = Stopwatch()
                for _ in range(repeats):
                    with watch:
                        result = solve_strategy_game(game, space, table)
                rows.append(
                    {
                        "network": name,
                        "model": model_kind,
                        "r=z": order,
                        "ne_seconds": watch.mean_lap,
                        "kind": result.kind,
                    }
                )
    return rows


@_observed
def sensitivity_rows(
    config: ExperimentConfig,
    dataset: str = "hep",
    model_kind: str = "wc",
    rounds_levels: tuple[int, ...] = (5, 10, 20, 40),
    repeats: int = 5,
) -> list[dict[str, object]]:
    """Ablation: stability of the NE decision vs Monte-Carlo effort.

    For each payoff-estimation budget, GetReal runs *repeats* times with
    fresh randomness; the row reports how often the pure/mixed decision and
    the recommended strategy agree, alongside the payoff-table noise level.
    The hep/wc pairing is deliberately the paper's knife-edge scenario.
    """
    model = config.model(model_kind)
    graph = config.load(dataset)
    k = min(20, max(config.ks))
    rows = []
    for rounds in rounds_levels:
        kinds: list[str] = []
        rhos: list[float] = []
        stderrs: list[float] = []
        for i in range(repeats):
            space = config.strategy_space(model_kind)
            result = get_real(
                graph,
                model,
                space,
                num_groups=2,
                k=k,
                rounds=rounds,
                rng=as_rng(config.seed + 100 + 31 * i + rounds),
                executor=config.executor(),
                kernel=config.kernel,
                symmetry=config.symmetry,
            )
            kinds.append(result.kind)
            rhos.append(float(result.mixture.probabilities[0]))
            stderrs.append(result.payoff_table.max_stderr())
        majority = max(set(kinds), key=kinds.count)
        rows.append(
            {
                "rounds": rounds,
                "pure_fraction": kinds.count("pure") / repeats,
                "majority_kind": majority,
                "mean_rho_phi1": float(np.mean(rhos)),
                "rho_spread": float(np.max(rhos) - np.min(rhos)),
                "max_stderr": float(np.mean(stderrs)),
            }
        )
    return rows


@_observed
def coefficient_rows(
    config: ExperimentConfig,
    dataset: str,
    model_kind: str,
) -> list[dict[str, object]]:
    """Figure 10: γ, λ and α+β against k, with Theorem 1's bounds."""
    from repro.core.metrics import coefficient_sweep

    model = config.model(model_kind)
    space = config.strategy_space(model_kind)
    graph = config.load(dataset)
    rng = as_rng(config.seed + 4)
    rows = []
    for k, coeff in coefficient_sweep(
        graph, model, space[0], space[1], config.ks, config.rounds, rng
    ):
        bounds = coeff.theorem1_bounds()
        rows.append(
            {
                "dataset": dataset,
                "model": model_kind,
                "k": k,
                "gamma": coeff.gamma,
                "lambda": coeff.lam,
                "alpha+beta": coeff.alpha_plus_beta,
                "lambda_hi_bound": bounds["lambda"][1],
                "ab_hi_bound": bounds["alpha+beta"][1],
            }
        )
    return rows
