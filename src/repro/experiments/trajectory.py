"""Shared, atomic, schema-validated store for ``BENCH_*.json`` trajectories.

Every benchmark that tracks a perf curve run-over-run appends one entry per
run to a repo-root ``BENCH_<name>.json`` file.  Historically each bench
carried its own copy-pasted ``_append_trajectory`` helper that did
read → mutate → ``write_text`` — an interrupted or concurrent run could
truncate the file and silently destroy the whole recorded history.  This
module is the single replacement:

* **atomic writes** — the updated history is serialized to a temp file in
  the same directory, fsynced, and moved into place with :func:`os.replace`
  (atomic on POSIX), so readers never observe a half-written file and a
  crash mid-append leaves the previous history intact;
* **schema validation** — entries must be JSON objects with a non-empty
  ``timestamp`` string and strictly JSON-serializable values (no ``NaN`` /
  ``Infinity``, which standard parsers reject), so a malformed entry fails
  fast at append time instead of corrupting downstream gates;
* **corruption recovery** — a file that no longer parses (for example the
  tail of a pre-fix truncated write) is quarantined aside as
  ``<name>.corrupt`` rather than blocking future appends, and the loss is
  logged instead of silently overwritten.

The regression gate (:mod:`repro.experiments.gate`) and the orchestrator
(:mod:`repro.experiments.orchestrator`) read and append exclusively through
this store, as do ``benchmarks/bench_payoff_sharing.py`` and
``benchmarks/bench_large_graph.py``.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from pathlib import Path
from collections.abc import Mapping
from typing import Any

from repro.errors import TrajectoryError
from repro.obs.log import get_logger

_LOG = get_logger("experiments.trajectory")

#: Fields every trajectory entry must carry.
REQUIRED_FIELDS = ("timestamp",)

#: Suffix appended to a corrupt trajectory file when it is quarantined.
CORRUPT_SUFFIX = ".corrupt"


def validate_entry(entry: object) -> dict[str, Any]:
    """Validate one trajectory entry; returns it as a plain dict.

    Raises :class:`TrajectoryError` unless *entry* is a JSON object with a
    non-empty string ``timestamp`` and strictly JSON-serializable values.
    """
    if not isinstance(entry, Mapping):
        raise TrajectoryError(
            "trajectory entries must be JSON objects, got "
            f"{type(entry).__name__}"
        )
    record = dict(entry)
    for name in REQUIRED_FIELDS:
        if name not in record:
            raise TrajectoryError(
                f"trajectory entry is missing required field {name!r}"
            )
    timestamp = record["timestamp"]
    if not isinstance(timestamp, str) or not timestamp.strip():
        raise TrajectoryError(
            f"trajectory 'timestamp' must be a non-empty string, got {timestamp!r}"
        )
    try:
        # allow_nan=False keeps the file standard JSON: NaN/Infinity would
        # round-trip through Python's json but break strict parsers (and
        # any arithmetic the gate does on the values).
        json.dumps(record, allow_nan=False)
    except (TypeError, ValueError) as exc:
        raise TrajectoryError(
            f"trajectory entry is not JSON-serializable: {exc}"
        ) from exc
    return record


class TrajectoryStore:
    """Atomic append-only history of benchmark results at *path*.

    >>> import tempfile, os
    >>> path = os.path.join(tempfile.mkdtemp(), "BENCH_demo.json")
    >>> store = TrajectoryStore(path)
    >>> _ = store.append({"timestamp": "2026-01-01T00:00:00+00:00", "speedup": 2.0})
    >>> [e["speedup"] for e in store.read()]
    [2.0]
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #

    def read(self) -> list[dict[str, Any]]:
        """The full validated history; ``[]`` when the file does not exist.

        Raises :class:`TrajectoryError` when the file exists but is corrupt
        (unparseable JSON, not a JSON array, or entries failing the schema).
        """
        if not self.path.exists():
            return []
        text = self.path.read_text(encoding="utf-8")
        if not text.strip():
            return []
        try:
            history = json.loads(text)
        except json.JSONDecodeError as exc:
            raise TrajectoryError(
                f"{self.path}: corrupt trajectory file ({exc})"
            ) from exc
        if not isinstance(history, list):
            raise TrajectoryError(
                f"{self.path}: trajectory must be a JSON array, got "
                f"{type(history).__name__}"
            )
        try:
            return [validate_entry(entry) for entry in history]
        except TrajectoryError as exc:
            raise TrajectoryError(f"{self.path}: {exc}") from exc

    def recover(self) -> list[dict[str, Any]]:
        """Like :meth:`read`, but quarantine a corrupt file instead of raising.

        The unreadable file is renamed to ``<name>.corrupt`` (clobbering any
        previous quarantine) so the evidence survives for inspection while
        appends can start a fresh history.
        """
        try:
            return self.read()
        except TrajectoryError as exc:
            quarantine = self.path.with_name(self.path.name + CORRUPT_SUFFIX)
            os.replace(self.path, quarantine)
            _LOG.warning(
                "quarantined corrupt trajectory %s -> %s (%s)",
                self.path,
                quarantine,
                exc,
            )
            return []

    def last(self) -> dict[str, Any] | None:
        """The most recent entry, or ``None`` for an empty/missing store."""
        history = self.read()
        return history[-1] if history else None

    def __len__(self) -> int:
        return len(self.read())

    # ------------------------------------------------------------------ #
    # writing
    # ------------------------------------------------------------------ #

    def append(
        self, entry: Mapping[str, Any], recover: bool = True
    ) -> dict[str, Any]:
        """Validate *entry*, append it to the history, write atomically.

        With ``recover=True`` (the default) a corrupt existing file is
        quarantined (see :meth:`recover`) and the entry starts a fresh
        history; with ``recover=False`` corruption raises instead.  Returns
        the validated entry as written.
        """
        record = validate_entry(entry)
        history = self.recover() if recover else self.read()
        history.append(record)
        self._write(history)
        return record

    def _write(self, history: list[dict[str, Any]]) -> None:
        """Serialize *history* to a same-directory temp file, then replace.

        ``os.replace`` is atomic on POSIX, so a reader (or a crash) at any
        point observes either the old complete file or the new complete
        file — never a truncated hybrid.
        """
        payload = json.dumps(history, indent=2, allow_nan=False) + "\n"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.path.parent,
            prefix=self.path.name + ".",
            suffix=".tmp",
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, self.path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp_name)
            raise


def append_trajectory(
    path: str | Path, entry: Mapping[str, Any]
) -> dict[str, Any]:
    """One-shot convenience: ``TrajectoryStore(path).append(entry)``."""
    return TrajectoryStore(path).append(entry)
