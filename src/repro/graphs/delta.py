"""Edge deltas: patch an immutable CSR graph without rebuilding it.

Serve-time graphs change — a follow edge appears, a retracted citation
disappears — and the incremental layer (:mod:`repro.incremental`) needs the
*patched* graph plus a precise account of what moved: which stable edge ids
survived (and what they were renumbered to), which were dropped, which are
new, and which nodes were touched.  :func:`merge_delta` produces all of that
with vectorized CSR surgery instead of re-running the
:class:`~repro.graphs.digraph.DiGraph` constructor's sort/dedup pipeline.

**Bit-identity contract.**  The merged graph is bit-identical — every CSR
array, the edge-id permutation, and therefore the fingerprint — to
``DiGraph(n, merged_edges)`` where ``merged_edges`` lists the surviving
edges in stable-edge-id order followed by the effective additions in input
order.  Property tests in ``tests/test_graphs_delta.py`` pin this for
random graphs and random deltas; everything downstream (shard hashes,
stable snapshot splicing, CELF repair) leans on it.

Semantics:

* removals of absent edges and additions of present edges are no-ops
  (recorded in the :class:`AppliedDelta` counts, never an error);
* an edge listed in both ``removed`` and ``added`` is removed first and
  re-added, so it survives **with a fresh edge id** — its per-edge
  attributes are new-edge attributes;
* self-loops and duplicates inside ``added``/``removed`` are dropped the
  same way the constructor drops them (first occurrence wins);
* node count is preserved — deltas patch edges, not the vertex set.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

import numpy as np

from repro.errors import GraphError
from repro.graphs.digraph import DiGraph

__all__ = ["AppliedDelta", "EdgeDelta", "merge_delta"]


def _as_pairs(edges: Iterable[tuple[int, int]] | np.ndarray) -> tuple[tuple[int, int], ...]:
    if isinstance(edges, np.ndarray):
        if edges.size == 0:
            return ()
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise GraphError("delta edges must be (src, dst) pairs")
        return tuple((int(u), int(v)) for u, v in edges)
    return tuple((int(u), int(v)) for u, v in edges)


@dataclass(frozen=True)
class EdgeDelta:
    """A batch of edge insertions and removals against one graph version.

    Hashable and picklable — deltas travel through journals and job
    payloads.  Order inside each tuple matters only for duplicate entries
    (first occurrence wins, like the graph constructor).
    """

    added: tuple[tuple[int, int], ...] = ()
    removed: tuple[tuple[int, int], ...] = ()

    @classmethod
    def of(
        cls,
        added: Iterable[tuple[int, int]] | np.ndarray = (),
        removed: Iterable[tuple[int, int]] | np.ndarray = (),
    ) -> "EdgeDelta":
        """Normalize arbitrary pair iterables / ``(k, 2)`` arrays."""
        return cls(added=_as_pairs(added), removed=_as_pairs(removed))

    @property
    def empty(self) -> bool:
        return not self.added and not self.removed

    def added_array(self) -> np.ndarray:
        """The additions as an ``(a, 2)`` int64 array."""
        return np.asarray(self.added, dtype=np.int64).reshape(-1, 2)

    def removed_array(self) -> np.ndarray:
        """The removals as an ``(r, 2)`` int64 array."""
        return np.asarray(self.removed, dtype=np.int64).reshape(-1, 2)


@dataclass(frozen=True)
class AppliedDelta:
    """The result of :func:`merge_delta`: the patched graph plus id maps.

    ``kept_old_ids[i]`` / ``kept_new_ids[i]`` pair up a surviving edge's
    stable id in the parent and child graph; per-edge attribute arrays
    (live-edge masks, probabilities) migrate with
    ``new_attr[kept_new_ids] = old_attr[kept_old_ids]``.  ``touched_nodes``
    are the endpoints of every *effective* change — the input to
    shard-scoped cache invalidation.
    """

    parent: DiGraph
    graph: DiGraph
    delta: EdgeDelta
    kept_old_ids: np.ndarray
    kept_new_ids: np.ndarray
    removed_old_ids: np.ndarray
    added_new_ids: np.ndarray
    added_edges: np.ndarray
    removed_edges: np.ndarray
    noop_added: int = 0
    noop_removed: int = 0
    touched_nodes: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))

    @property
    def num_added(self) -> int:
        return int(self.added_edges.shape[0])

    @property
    def num_removed(self) -> int:
        return int(self.removed_edges.shape[0])

    @property
    def is_noop(self) -> bool:
        return self.num_added == 0 and self.num_removed == 0


def _normalize_pairs(pairs: np.ndarray, num_nodes: int, what: str) -> np.ndarray:
    """Constructor-compatible normalization: bounds, self-loops, dedup."""
    if pairs.size == 0:
        return pairs.reshape(0, 2)
    if pairs.min() < 0 or pairs.max() >= num_nodes:
        raise GraphError(
            f"{what} endpoints must lie in [0, {num_nodes}), got range "
            f"[{pairs.min()}, {pairs.max()}]"
        )
    pairs = pairs[pairs[:, 0] != pairs[:, 1]]
    if pairs.size:
        keys = pairs[:, 0] * num_nodes + pairs[:, 1]
        _, unique_idx = np.unique(keys, return_index=True)
        pairs = pairs[np.sort(unique_idx)]
    return pairs


def _merge_direction(
    indptr: np.ndarray,
    indices: np.ndarray,
    position_ids: np.ndarray,
    keep_by_old_id: np.ndarray,
    new_id_of_old: np.ndarray,
    add_near: np.ndarray,
    add_far: np.ndarray,
    add_ids: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Merge one CSR direction; rows are keyed by the *near* endpoint.

    ``position_ids`` maps CSR positions to stable edge ids; survivors keep
    their within-row order (old-id ascending, the constructor's stable-sort
    order) and additions land at row ends sorted by ``(near, add id)`` —
    exactly where a full rebuild would put them, because added ids exceed
    every survivor id.
    """
    num_rows = indptr.shape[0] - 1
    keep_pos = keep_by_old_id[position_ids]
    surv_indices = indices[keep_pos]
    surv_ids = new_id_of_old[position_ids[keep_pos]]
    row_of_pos = np.repeat(np.arange(num_rows, dtype=np.int64), np.diff(indptr))
    surv_counts = np.bincount(row_of_pos[keep_pos], minlength=num_rows)
    surv_indptr = np.zeros(num_rows + 1, dtype=np.int64)
    np.cumsum(surv_counts, out=surv_indptr[1:])

    if add_near.size == 0:
        out_indptr = surv_indptr
        return out_indptr, surv_indices.astype(np.int32), surv_ids.astype(np.int64)

    order = np.argsort(add_near, kind="stable")
    insert_at = surv_indptr[add_near[order] + 1]
    merged_indices = np.insert(surv_indices, insert_at, add_far[order])
    merged_ids = np.insert(surv_ids, insert_at, add_ids[order])
    add_counts = np.bincount(add_near, minlength=num_rows)
    merged_indptr = np.zeros(num_rows + 1, dtype=np.int64)
    np.cumsum(surv_counts + add_counts, out=merged_indptr[1:])
    return merged_indptr, merged_indices.astype(np.int32), merged_ids.astype(np.int64)


def merge_delta(graph: DiGraph, delta: EdgeDelta) -> AppliedDelta:
    """Apply *delta* to *graph* via vectorized CSR merge.

    Returns an :class:`AppliedDelta` whose ``graph`` is bit-identical to a
    full rebuild from the merged edge list (see the module docstring for
    the exact ordering contract).  O(m + a log a) with numpy constants —
    no per-edge Python loop and no re-sort of the surviving edges.
    """
    n = graph.num_nodes
    added = _normalize_pairs(delta.added_array(), n, "added edge")
    removed = _normalize_pairs(delta.removed_array(), n, "removed edge")

    src_old, dst_old = graph.edge_array()
    keys_old = src_old * n + dst_old

    if removed.size:
        removed_keys = removed[:, 0] * n + removed[:, 1]
        drop_by_old_id = np.isin(keys_old, removed_keys)
    else:
        drop_by_old_id = np.zeros(graph.num_edges, dtype=bool)
    keep_by_old_id = ~drop_by_old_id
    removed_old_ids = np.flatnonzero(drop_by_old_id)
    noop_removed = int(removed.shape[0]) - int(removed_old_ids.shape[0])
    removed_edges = np.column_stack(
        [src_old[removed_old_ids], dst_old[removed_old_ids]]
    ).reshape(-1, 2)

    if added.size:
        surviving_keys = keys_old[keep_by_old_id]
        present = np.isin(added[:, 0] * n + added[:, 1], surviving_keys)
        noop_added = int(present.sum())
        added = added[~present]
    else:
        noop_added = 0

    kept_old_ids = np.flatnonzero(keep_by_old_id)
    num_survivors = int(kept_old_ids.shape[0])
    new_id_of_old = np.cumsum(keep_by_old_id, dtype=np.int64) - 1
    kept_new_ids = new_id_of_old[kept_old_ids]
    num_added = int(added.shape[0])
    added_new_ids = num_survivors + np.arange(num_added, dtype=np.int64)

    add_src = added[:, 0] if num_added else np.zeros(0, dtype=np.int64)
    add_dst = added[:, 1] if num_added else np.zeros(0, dtype=np.int64)

    out_indptr, out_indices, edge_ids = _merge_direction(
        graph.out_indptr,
        graph.out_indices,
        graph.edge_ids,
        keep_by_old_id,
        new_id_of_old,
        add_src,
        add_dst,
        added_new_ids,
    )
    in_indptr, in_indices, in_edge_ids = _merge_direction(
        graph.in_indptr,
        graph.in_indices,
        graph.in_edge_ids,
        keep_by_old_id,
        new_id_of_old,
        add_dst,
        add_src,
        added_new_ids,
    )

    merged = DiGraph._from_csr(
        n, out_indptr, out_indices, in_indptr, in_indices, edge_ids
    )
    in_edge_ids.setflags(write=False)
    merged._in_edge_ids = in_edge_ids

    touched = np.unique(
        np.concatenate([added.ravel(), removed_edges.ravel()])
    ).astype(np.int64)
    return AppliedDelta(
        parent=graph,
        graph=merged,
        delta=delta,
        kept_old_ids=kept_old_ids,
        kept_new_ids=kept_new_ids,
        removed_old_ids=removed_old_ids,
        added_new_ids=added_new_ids,
        added_edges=added.reshape(-1, 2),
        removed_edges=removed_edges,
        noop_added=noop_added,
        noop_removed=noop_removed,
        touched_nodes=touched,
    )
