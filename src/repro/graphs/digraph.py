"""A compact directed graph stored in CSR (compressed sparse row) form.

The cascade simulators in :mod:`repro.cascade` spend almost all of their time
iterating over out-neighbourhoods, so the graph is stored as two flat numpy
arrays per direction (``indptr``/``indices``), the same layout used by
``scipy.sparse.csr_matrix``.  Nodes are dense integers ``0..n-1``; callers
with string-labelled data relabel at load time (:mod:`repro.graphs.loaders`
does this automatically).

The structure is immutable after construction: every simulation, snapshot and
seed-selection pass can then share a single instance without defensive
copies.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable, Iterator, Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import GraphError
from repro.utils.bitset import lookup_bits

if TYPE_CHECKING:
    from repro.graphs.delta import EdgeDelta


class DiGraph:
    """Immutable directed graph over nodes ``0..n-1``.

    Parameters
    ----------
    num_nodes:
        Number of nodes *n*. Nodes are the integers ``0..n-1``; isolated
        nodes are allowed.
    edges:
        Iterable of ``(src, dst)`` pairs. Duplicate edges and self-loops are
        removed (the paper's cascade models are defined on simple graphs).
    """

    __slots__ = (
        "_n",
        "_m",
        "_out_indptr",
        "_out_indices",
        "_in_indptr",
        "_in_indices",
        "_edge_ids",
        "_fingerprint",
        "_in_edge_ids",
        "_shard_hashes",
    )

    def __init__(self, num_nodes: int, edges: Iterable[tuple[int, int]]) -> None:
        if num_nodes < 0:
            raise GraphError(f"num_nodes must be non-negative, got {num_nodes}")
        self._n = int(num_nodes)

        # Array input (loaders, stores, generators that already vectorized)
        # is used as-is; only generic iterables pay the list round-trip.
        if isinstance(edges, np.ndarray):
            edge_arr = edges.astype(np.int64, copy=False)
        else:
            edge_arr = np.asarray(list(edges), dtype=np.int64)
        if edge_arr.size == 0:
            edge_arr = edge_arr.reshape(0, 2)
        if edge_arr.ndim != 2 or edge_arr.shape[1] != 2:
            raise GraphError("edges must be (src, dst) pairs")
        if edge_arr.size and (
            edge_arr.min() < 0 or edge_arr.max() >= self._n
        ):
            raise GraphError(
                f"edge endpoints must lie in [0, {self._n}), "
                f"got range [{edge_arr.min()}, {edge_arr.max()}]"
            )

        # Drop self-loops, then deduplicate.
        if edge_arr.size:
            edge_arr = edge_arr[edge_arr[:, 0] != edge_arr[:, 1]]
        if edge_arr.size:
            keys = edge_arr[:, 0] * self._n + edge_arr[:, 1]
            _, unique_idx = np.unique(keys, return_index=True)
            edge_arr = edge_arr[np.sort(unique_idx)]

        self._m = int(edge_arr.shape[0])

        src = edge_arr[:, 0]
        dst = edge_arr[:, 1]

        # Out-CSR, sorted by source.  ``edge_ids`` maps each position in the
        # out-CSR back to a stable edge id 0..m-1 (the order after dedup), so
        # per-edge attributes (live-edge masks, probabilities) can be stored
        # as flat arrays indexed the same way.
        out_order = np.argsort(src, kind="stable")
        self._out_indices = dst[out_order].astype(np.int32)
        self._out_indptr = np.zeros(self._n + 1, dtype=np.int64)
        np.add.at(self._out_indptr, src + 1, 1)
        np.cumsum(self._out_indptr, out=self._out_indptr)
        self._edge_ids = out_order.astype(np.int64)

        # In-CSR, sorted by destination.
        in_order = np.argsort(dst, kind="stable")
        self._in_indices = src[in_order].astype(np.int32)
        self._in_indptr = np.zeros(self._n + 1, dtype=np.int64)
        np.add.at(self._in_indptr, dst + 1, 1)
        np.cumsum(self._in_indptr, out=self._in_indptr)

        for arr in (
            self._out_indptr,
            self._out_indices,
            self._in_indptr,
            self._in_indices,
            self._edge_ids,
        ):
            arr.setflags(write=False)

        self._fingerprint: int | None = None
        self._in_edge_ids: np.ndarray | None = None
        self._shard_hashes: dict[int, tuple[int, ...]] = {}

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #

    @property
    def num_nodes(self) -> int:
        """Number of nodes *n*."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of directed edges *m* (after self-loop/duplicate removal)."""
        return self._m

    @property
    def fingerprint(self) -> int:
        """Stable content hash of the CSR arrays.

        Two graphs with identical node count and edge structure share a
        fingerprint (the in-CSR is derived from the out-CSR, so hashing the
        out side plus the edge-id permutation suffices).  Computed lazily on
        first access and cached — the structure is immutable — so repeated
        cache-key construction (:mod:`repro.cache`) costs a slot read.
        """
        if self._fingerprint is None:
            digest = hashlib.blake2b(digest_size=8)
            digest.update(str(self._n).encode())
            for arr in (self._out_indptr, self._out_indices, self._edge_ids):
                digest.update(arr.tobytes())
            self._fingerprint = int.from_bytes(digest.digest(), "big")
        return self._fingerprint

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:
        return f"DiGraph(n={self._n}, m={self._m})"

    def nodes(self) -> range:
        """All node ids, as a range."""
        return range(self._n)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over ``(src, dst)`` pairs in out-CSR order."""
        for u in range(self._n):
            for v in self.out_neighbors(u):
                yield (u, int(v))

    def has_edge(self, u: int, v: int) -> bool:
        """True if the directed edge ``u -> v`` exists."""
        self._check_node(u)
        self._check_node(v)
        lo, hi = self._out_indptr[u], self._out_indptr[u + 1]
        return bool(np.any(self._out_indices[lo:hi] == v))

    def _check_node(self, v: int) -> None:
        if not 0 <= v < self._n:
            raise GraphError(f"node {v} out of range [0, {self._n})")

    # ------------------------------------------------------------------ #
    # adjacency
    # ------------------------------------------------------------------ #

    def out_neighbors(self, v: int) -> np.ndarray:
        """Successors of *v* (read-only view)."""
        self._check_node(v)
        return self._out_indices[self._out_indptr[v]: self._out_indptr[v + 1]]

    def in_neighbors(self, v: int) -> np.ndarray:
        """Predecessors of *v* (read-only view)."""
        self._check_node(v)
        return self._in_indices[self._in_indptr[v]: self._in_indptr[v + 1]]

    def out_edge_ids(self, v: int) -> np.ndarray:
        """Stable edge ids of *v*'s out-edges, aligned with :meth:`out_neighbors`."""
        self._check_node(v)
        return self._edge_ids[self._out_indptr[v]: self._out_indptr[v + 1]]

    def out_degrees(self) -> np.ndarray:
        """Array of out-degrees for all nodes."""
        return np.diff(self._out_indptr)

    def in_degrees(self) -> np.ndarray:
        """Array of in-degrees for all nodes."""
        return np.diff(self._in_indptr)

    def out_degree(self, v: int) -> int:
        self._check_node(v)
        return int(self._out_indptr[v + 1] - self._out_indptr[v])

    def in_degree(self, v: int) -> int:
        self._check_node(v)
        return int(self._in_indptr[v + 1] - self._in_indptr[v])

    @property
    def out_indptr(self) -> np.ndarray:
        """Raw out-CSR row pointer (read-only); for vectorized hot loops."""
        return self._out_indptr

    @property
    def out_indices(self) -> np.ndarray:
        """Raw out-CSR column indices (read-only); for vectorized hot loops."""
        return self._out_indices

    @property
    def edge_ids(self) -> np.ndarray:
        """Stable edge id of each out-CSR position (read-only).

        Aligned with :attr:`out_indices`, so ``edge_ids[i]`` indexes per-edge
        attribute arrays (probabilities, live-edge masks) for the edge stored
        at out-CSR position *i* — the flat-array counterpart of
        :meth:`out_edge_ids` for vectorized hot loops.
        """
        return self._edge_ids

    @property
    def in_indptr(self) -> np.ndarray:
        """Raw in-CSR row pointer (read-only)."""
        return self._in_indptr

    @property
    def in_indices(self) -> np.ndarray:
        """Raw in-CSR column indices (read-only)."""
        return self._in_indices

    @property
    def in_edge_ids(self) -> np.ndarray:
        """Stable edge id of each in-CSR position (read-only).

        The in-direction counterpart of :attr:`edge_ids`: ``in_edge_ids[i]``
        indexes per-edge attribute arrays for the edge stored at in-CSR
        position *i*.  Derived lazily — the in-CSR is built by a stable sort
        on destination over edge-id order, so the permutation is recovered
        by repeating that sort — and cached (delta merges pre-populate it).
        """
        if self._in_edge_ids is None:
            _, dst = self.edge_array()
            in_edge_ids = np.argsort(dst, kind="stable").astype(np.int64)
            in_edge_ids.setflags(write=False)
            self._in_edge_ids = in_edge_ids
        return self._in_edge_ids

    # ------------------------------------------------------------------ #
    # traversal
    # ------------------------------------------------------------------ #

    def reachable_from(
        self,
        sources: Sequence[int],
        edge_mask: np.ndarray | None = None,
    ) -> np.ndarray:
        """Boolean array marking nodes reachable from *sources*.

        *edge_mask*, if given, is a boolean array of length *m* — or its
        packed-bitset equivalent (``uint64`` words, see
        :mod:`repro.utils.bitset`) — indexed by stable edge id; only edges
        whose mask entry is True are traversed (this is the
        live-edge-snapshot primitive used by MixGreedy).  Sources themselves
        are always marked reachable.
        """
        visited = np.zeros(self._n, dtype=bool)
        frontier: list[int] = []
        for s in sources:
            self._check_node(s)
            if not visited[s]:
                visited[s] = True
                frontier.append(int(s))

        indptr, indices, eids = self._out_indptr, self._out_indices, self._edge_ids
        while frontier:
            next_frontier: list[int] = []
            for u in frontier:
                lo, hi = indptr[u], indptr[u + 1]
                nbrs = indices[lo:hi]
                if edge_mask is not None:
                    nbrs = nbrs[lookup_bits(edge_mask, eids[lo:hi])]
                for v in nbrs:
                    if not visited[v]:
                        visited[v] = True
                        next_frontier.append(int(v))
            frontier = next_frontier
        return visited

    def reverse_reachable_from(
        self,
        sources: Sequence[int],
        edge_mask: np.ndarray | None = None,
    ) -> np.ndarray:
        """Boolean array marking nodes that can *reach* one of *sources*.

        The in-CSR mirror of :meth:`reachable_from`: traverses edges
        backwards, filtering by the same stable-edge-id *edge_mask* (boolean
        or packed).  This is the blast-radius primitive of the incremental
        layer — the nodes whose reach sets a changed edge can affect are
        exactly the reverse-reachable set of its source endpoint.
        """
        visited = np.zeros(self._n, dtype=bool)
        frontier: list[int] = []
        for s in sources:
            self._check_node(s)
            if not visited[s]:
                visited[s] = True
                frontier.append(int(s))

        indptr, indices = self._in_indptr, self._in_indices
        eids = self.in_edge_ids if edge_mask is not None else None
        while frontier:
            next_frontier: list[int] = []
            for u in frontier:
                lo, hi = indptr[u], indptr[u + 1]
                nbrs = indices[lo:hi]
                if edge_mask is not None and eids is not None:
                    nbrs = nbrs[lookup_bits(edge_mask, eids[lo:hi])]
                for v in nbrs:
                    if not visited[v]:
                        visited[v] = True
                        next_frontier.append(int(v))
            frontier = next_frontier
        return visited

    # ------------------------------------------------------------------ #
    # constructors / converters
    # ------------------------------------------------------------------ #

    @classmethod
    def _from_csr(
        cls,
        num_nodes: int,
        out_indptr: np.ndarray,
        out_indices: np.ndarray,
        in_indptr: np.ndarray,
        in_indices: np.ndarray,
        edge_ids: np.ndarray,
        fingerprint: int | None = None,
    ) -> "DiGraph":
        """Adopt already-built CSR arrays without re-deriving them.

        This is the :class:`~repro.graphs.store.GraphStore` open path: the
        arrays are typically read-only ``np.memmap`` views of on-disk
        ``.npy`` files, so copying or re-sorting them would defeat the
        point.  The caller vouches that the arrays satisfy the constructor
        invariants (dedup'd, self-loop-free, consistent dtypes); the stored
        *fingerprint* is adopted so cache keys match the graph the arrays
        were saved from without a full re-hash.
        """
        n = int(num_nodes)
        if out_indptr.shape != (n + 1,) or in_indptr.shape != (n + 1,):
            raise GraphError(
                f"indptr arrays must have shape ({n + 1},), got "
                f"{out_indptr.shape} / {in_indptr.shape}"
            )
        m = int(out_indices.shape[0])
        if in_indices.shape[0] != m or edge_ids.shape[0] != m:
            raise GraphError(
                "indices/edge_ids lengths disagree: "
                f"{out_indices.shape[0]} / {in_indices.shape[0]} / "
                f"{edge_ids.shape[0]}"
            )
        graph = object.__new__(cls)
        graph._n = n
        graph._m = m
        graph._out_indptr = out_indptr
        graph._out_indices = out_indices
        graph._in_indptr = in_indptr
        graph._in_indices = in_indices
        graph._edge_ids = edge_ids
        for arr in (out_indptr, out_indices, in_indptr, in_indices, edge_ids):
            if arr.flags.writeable:
                arr.setflags(write=False)
        graph._fingerprint = fingerprint
        graph._in_edge_ids = None
        graph._shard_hashes = {}
        return graph

    def apply_delta(self, delta: "EdgeDelta") -> "DiGraph":
        """The graph with *delta*'s edge changes applied (vectorized merge).

        Bit-identical — CSR arrays, edge-id permutation, fingerprint — to
        rebuilding from the merged edge list; see
        :func:`repro.graphs.delta.merge_delta` for the full contract and
        the :class:`~repro.graphs.delta.AppliedDelta` id maps it also
        returns.
        """
        from repro.graphs.delta import merge_delta

        return merge_delta(self, delta).graph

    @classmethod
    def from_arrays(cls, num_nodes: int, src: np.ndarray, dst: np.ndarray) -> "DiGraph":
        """Build from parallel source/destination arrays."""
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape or src.ndim != 1:
            raise GraphError("src and dst must be 1-D arrays of equal length")
        return cls(num_nodes, np.column_stack([src, dst]))

    @classmethod
    def from_undirected(cls, num_nodes: int, edges: Iterable[tuple[int, int]]) -> "DiGraph":
        """Build a directed graph with both orientations of each edge.

        Collaboration networks (Hep, Phy in the paper) are undirected; the
        cascade models operate on directed edges, so each undirected edge
        becomes an arc in both directions — the convention of Kempe et al.
        """
        pairs = list(edges)
        both = pairs + [(v, u) for (u, v) in pairs]
        return cls(num_nodes, both)

    @classmethod
    def from_networkx(cls, nx_graph: object) -> "DiGraph":
        """Convert a ``networkx`` (Di)Graph with integer or arbitrary labels."""
        import networkx as nx

        if not isinstance(nx_graph, (nx.Graph, nx.DiGraph)):
            raise GraphError(f"expected a networkx graph, got {type(nx_graph).__name__}")
        nodes = list(nx_graph.nodes())
        index = {label: i for i, label in enumerate(nodes)}
        edges = [(index[u], index[v]) for u, v in nx_graph.edges()]
        if not nx_graph.is_directed():
            return cls.from_undirected(len(nodes), edges)
        return cls(len(nodes), edges)

    def to_networkx(self) -> object:
        """Convert to a :class:`networkx.DiGraph` (for stats/inspection only)."""
        import networkx as nx

        out = nx.DiGraph()
        out.add_nodes_from(range(self._n))
        out.add_edges_from(self.edges())
        return out

    def edge_array(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(src, dst)`` arrays indexed by stable edge id.

        Per-edge attributes (cascade probabilities, live-edge masks) are
        stored as flat length-*m* arrays indexed the same way, aligned with
        :meth:`out_edge_ids`.
        """
        src_csr = np.repeat(np.arange(self._n, dtype=np.int64), np.diff(self._out_indptr))
        src = np.empty(self._m, dtype=np.int64)
        dst = np.empty(self._m, dtype=np.int64)
        src[self._edge_ids] = src_csr
        dst[self._edge_ids] = self._out_indices
        return src, dst

    def reverse(self) -> "DiGraph":
        """Return the graph with every edge reversed."""
        src_rev = np.repeat(np.arange(self._n), np.diff(self._out_indptr))
        return DiGraph.from_arrays(self._n, self._out_indices, src_rev)
