"""Memory-mapped graph storage: persist CSR arrays once, share them by ref.

A million-node graph does not belong inside a job pickle.  The paper's
wiki-Talk graph (2.4M nodes / 5M arcs) costs ~120MB as CSR arrays; shipping
that to every worker of the process backend — per job — is what capped the
benchmarks at hep scale.  This module splits graph *storage* from graph
*identity*:

:class:`GraphStore`
    A directory of named graphs, each persisted as one ``.npy`` file per
    CSR array (both directions plus the stable edge-id permutation) and a
    ``meta.json`` carrying the node/edge counts and the content
    fingerprint.  :meth:`GraphStore.open` memory-maps the arrays
    (``np.load(mmap_mode="r")``), so opening is O(1) and the OS page cache
    shares the bytes between every process on the machine.
    :meth:`GraphStore.ingest_edge_list` builds a stored graph straight from
    a SNAP-style edge list in bounded chunks — vectorized parse and
    ``np.searchsorted`` relabel, never a Python list of 5M tuples.

:class:`GraphRef`
    A picklable O(1) handle (path + fingerprint + counts) that stands in
    for the graph inside job payloads.  Workers resolve it lazily through a
    per-process handle cache (:func:`resolve_graph`), so the process
    backend pickles ~200 bytes per job instead of the full CSR arrays, and
    each worker maps the file once no matter how many jobs it runs.

The ``REPRO_GRAPH_STORE`` environment variable names a default store
directory; when set, :func:`maybe_ref` transparently converts graphs to
refs at job-construction sites (persisting them on first use), which is how
the CLI and the benchmarks opt whole pipelines into O(1) payloads.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import GraphError
from repro.graphs.digraph import DiGraph
from repro.graphs.loaders import PathLike, stream_edge_array
from repro.obs.metrics import counter

if TYPE_CHECKING:
    from repro.graphs.delta import EdgeDelta

__all__ = [
    "STORE_ENV_VAR",
    "GraphRef",
    "GraphStore",
    "default_store",
    "maybe_ref",
    "resolve_graph",
]

#: Environment variable naming the default on-disk graph store.
STORE_ENV_VAR = "REPRO_GRAPH_STORE"

#: meta.json layout version, bumped on any array-layout change.
_FORMAT_VERSION = 1

#: The CSR arrays persisted per graph, in (filename stem, attribute) order.
_ARRAY_NAMES = ("out_indptr", "out_indices", "in_indptr", "in_indices", "edge_ids")

_STORE_SAVES = counter("graphs.store_saves")
_STORE_OPENS = counter("graphs.store_opens")
_STORE_CACHE_HITS = counter("graphs.store_cache_hits")
_STORE_DELTAS = counter("graphs.store_deltas")


@dataclass(frozen=True)
class GraphRef:
    """Picklable O(1) stand-in for a stored graph.

    Carries everything jobs need without opening the file: ``num_nodes``
    bounds contract checks, ``fingerprint`` keys the selection cache
    identically to the in-memory graph it was saved from.  ``open`` goes
    through the per-process handle cache, so repeated resolution of the
    same ref — thousands of jobs on one worker — maps the file once.
    """

    path: str
    fingerprint: int
    num_nodes: int
    num_edges: int

    def open(self) -> DiGraph:
        """The mmap-backed :class:`DiGraph` (cached per process)."""
        return _cached_open(self)

    def __repr__(self) -> str:
        return (
            f"GraphRef(n={self.num_nodes}, m={self.num_edges}, "
            f"path={self.path!r})"
        )


# Per-process handle cache.  Workers of the thread backend resolve refs
# concurrently, so writes happen under the lock (RP013); forked workers
# inherit the parent's dict, whose mmap handles remain valid post-fork, but
# the pid guard re-keys defensively in case the cache was captured mid-write.
_HANDLE_LOCK = threading.Lock()
_HANDLES: dict[tuple[str, int], DiGraph] = {}
_HANDLES_PID = os.getpid()


def _cached_open(ref: GraphRef) -> DiGraph:
    global _HANDLES_PID
    key = (ref.path, ref.fingerprint)
    with _HANDLE_LOCK:
        if _HANDLES_PID != os.getpid():
            _HANDLES.clear()
            _HANDLES_PID = os.getpid()
        graph = _HANDLES.get(key)
        if graph is not None:
            _STORE_CACHE_HITS.inc()
            return graph
    # The mmap open happens outside the lock (it touches the filesystem);
    # a racing duplicate open is harmless — last writer wins, both views
    # alias the same on-disk pages.
    graph = _open_graph_dir(Path(ref.path), expected_fingerprint=ref.fingerprint)
    with _HANDLE_LOCK:
        _HANDLES[key] = graph
    return graph


def clear_handle_cache() -> None:
    """Drop every cached mmap handle (mainly for tests)."""
    with _HANDLE_LOCK:
        _HANDLES.clear()


def resolve_graph(graph: DiGraph | GraphRef) -> DiGraph:
    """*graph* itself, or the ref's cached mmap-backed graph.

    This is the worker-side half of the O(1)-payload contract: jobs store
    ``DiGraph | GraphRef`` and call this at the top of ``run``.
    """
    if isinstance(graph, GraphRef):
        return graph.open()
    return graph


def _read_meta(directory: Path) -> dict[str, object]:
    meta_path = directory / "meta.json"
    if not meta_path.is_file():
        raise GraphError(f"{directory} is not a graph store entry (no meta.json)")
    with open(meta_path, encoding="utf-8") as handle:
        meta = json.load(handle)
    if meta.get("format") != _FORMAT_VERSION:
        raise GraphError(
            f"{meta_path}: unsupported store format {meta.get('format')!r} "
            f"(expected {_FORMAT_VERSION})"
        )
    return dict(meta)


def _open_graph_dir(
    directory: Path, expected_fingerprint: int | None = None
) -> DiGraph:
    meta = _read_meta(directory)
    fingerprint = int(meta["fingerprint"])  # type: ignore[arg-type]
    if expected_fingerprint is not None and fingerprint != expected_fingerprint:
        raise GraphError(
            f"{directory}: stored fingerprint {fingerprint:#x} does not "
            f"match the ref's {expected_fingerprint:#x}; the store entry "
            "was overwritten since the ref was created"
        )
    arrays = [
        np.load(directory / f"{name}.npy", mmap_mode="r") for name in _ARRAY_NAMES
    ]
    _STORE_OPENS.inc()
    return DiGraph._from_csr(
        int(meta["num_nodes"]),  # type: ignore[arg-type]
        *arrays,
        fingerprint=fingerprint,
    )


def is_store_entry(path: PathLike) -> bool:
    """Whether *path* is a graph-store entry directory (has a meta.json)."""
    return (Path(path) / "meta.json").is_file()


class GraphStore:
    """A directory of named, memory-mappable CSR graphs."""

    def __init__(self, root: PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _entry(self, name: str) -> Path:
        if not name or "/" in name or name.startswith("."):
            raise GraphError(f"invalid graph store name {name!r}")
        return self.root / name

    def __contains__(self, name: str) -> bool:
        return is_store_entry(self._entry(name))

    def list_graphs(self) -> list[str]:
        """Names of every stored graph, sorted."""
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if entry.is_dir() and is_store_entry(entry)
        )

    # ------------------------------------------------------------------ #
    # save / open
    # ------------------------------------------------------------------ #

    def save(self, graph: DiGraph, name: str | None = None) -> GraphRef:
        """Persist *graph* under *name* (default: its fingerprint) and ref it.

        Saving is idempotent per content: the default name is derived from
        the fingerprint, so re-saving the same graph overwrites the entry
        with identical bytes.
        """
        if name is None:
            name = f"g{graph.fingerprint:016x}"
        directory = self._entry(name)
        directory.mkdir(parents=True, exist_ok=True)
        arrays = (
            graph.out_indptr,
            graph.out_indices,
            graph.in_indptr,
            graph.in_indices,
            graph.edge_ids,
        )
        for array_name, array in zip(_ARRAY_NAMES, arrays):
            np.save(directory / f"{array_name}.npy", array)
        meta = {
            "format": _FORMAT_VERSION,
            "num_nodes": graph.num_nodes,
            "num_edges": graph.num_edges,
            "fingerprint": graph.fingerprint,
        }
        with open(directory / "meta.json", "w", encoding="utf-8") as handle:
            json.dump(meta, handle, indent=2, sort_keys=True)
            handle.write("\n")
        _STORE_SAVES.inc()
        return GraphRef(
            path=str(directory),
            fingerprint=graph.fingerprint,
            num_nodes=graph.num_nodes,
            num_edges=graph.num_edges,
        )

    def apply_delta(
        self,
        graph: str | GraphRef | DiGraph,
        delta: "EdgeDelta",
        name: str | None = None,
    ) -> GraphRef:
        """Patch a stored graph and persist the child as a new entry.

        *graph* may be an entry name, a :class:`GraphRef`, or an in-memory
        :class:`DiGraph`; the child entry is named after its fingerprint by
        default, so re-applying the same delta is idempotent.  Each
        application appends one JSON line to the store-level
        ``deltas.jsonl`` journal — parent/child fingerprints, the edge
        lists, and the no-op counts — so a store's version lineage can be
        reconstructed (:meth:`delta_log`) and replayed.
        """
        from repro.graphs.delta import merge_delta

        parent = self.open(graph) if isinstance(graph, str) else resolve_graph(graph)
        applied = merge_delta(parent, delta)
        child_ref = self.save(applied.graph, name)
        record = {
            "parent_fingerprint": parent.fingerprint,
            "child_fingerprint": applied.graph.fingerprint,
            "child_path": child_ref.path,
            "added": [[int(u), int(v)] for u, v in applied.added_edges],
            "removed": [[int(u), int(v)] for u, v in applied.removed_edges],
            "noop_added": applied.noop_added,
            "noop_removed": applied.noop_removed,
        }
        with open(self.root / "deltas.jsonl", "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record) + "\n")
        _STORE_DELTAS.inc()
        return child_ref

    def delta_log(self) -> list[dict[str, object]]:
        """Every recorded delta application, oldest first."""
        path = self.root / "deltas.jsonl"
        if not path.is_file():
            return []
        with open(path, encoding="utf-8") as handle:
            return [json.loads(line) for line in handle if line.strip()]

    def ref(self, name: str) -> GraphRef:
        """An O(1) ref to a stored graph, from its metadata alone."""
        directory = self._entry(name)
        meta = _read_meta(directory)
        return GraphRef(
            path=str(directory),
            fingerprint=int(meta["fingerprint"]),  # type: ignore[arg-type]
            num_nodes=int(meta["num_nodes"]),  # type: ignore[arg-type]
            num_edges=int(meta["num_edges"]),  # type: ignore[arg-type]
        )

    def open(self, name: str) -> DiGraph:
        """Open a stored graph as a read-only mmap-backed :class:`DiGraph`."""
        return self.ref(name).open()

    def labels(self, name: str) -> np.ndarray | None:
        """Original node labels (dense id → label) if the entry has them."""
        path = self._entry(name) / "labels.npy"
        if not path.is_file():
            return None
        return np.load(path, mmap_mode="r")

    # ------------------------------------------------------------------ #
    # streaming ingestion
    # ------------------------------------------------------------------ #

    def ingest_edge_list(
        self,
        path: PathLike,
        name: str | None = None,
        directed: bool = True,
        comment: str = "#",
        chunk_lines: int = 1 << 20,
    ) -> GraphRef:
        """Build and persist a graph from a SNAP-style edge list.

        The file (optionally ``.gz``) is read *chunk_lines* lines at a
        time; each chunk is parsed with the C tokenizer (``np.loadtxt``)
        into an int64 array, so peak Python-object overhead is bounded by
        the chunk size regardless of total edge count.  Node labels are
        relabelled to dense ``0..n-1`` with one ``np.unique`` +
        ``np.searchsorted`` pass over the accumulated endpoint arrays; the
        sorted original labels are saved alongside the CSR arrays as
        ``labels.npy`` (dense id → label) when they are not already dense.
        """
        source = Path(path)
        edges = stream_edge_array(source, comment=comment, chunk_lines=chunk_lines)
        if edges.size == 0:
            graph = DiGraph(0, edges)
            return self.save(graph, name or source.stem)

        labels = np.unique(edges)
        src = np.searchsorted(labels, edges[:, 0])
        dst = np.searchsorted(labels, edges[:, 1])
        if not directed:
            src, dst = (
                np.concatenate([src, dst]),
                np.concatenate([dst, src]),
            )
        graph = DiGraph(labels.size, np.column_stack([src, dst]))
        ref = self.save(graph, name or source.stem)
        dense = labels.size == 0 or bool(
            labels[0] == 0 and labels[-1] == labels.size - 1
        )
        if not dense:
            np.save(Path(ref.path) / "labels.npy", labels)
        return ref


def default_store() -> GraphStore | None:
    """The store named by ``REPRO_GRAPH_STORE``, or ``None`` when unset."""
    root = os.environ.get(STORE_ENV_VAR, "").strip()
    if not root:
        return None
    return GraphStore(root)


def maybe_ref(graph: DiGraph | GraphRef) -> DiGraph | GraphRef:
    """Convert *graph* to a :class:`GraphRef` when a default store is set.

    The opt-in switch for O(1) job payloads: with ``REPRO_GRAPH_STORE``
    unset this is the identity, so small-graph pipelines keep their
    zero-copy in-process payloads.  With it set, the graph is persisted
    into the store (keyed by fingerprint, so repeated calls hit the same
    entry) and the cheap ref travels instead.
    """
    if isinstance(graph, GraphRef):
        return graph
    store = default_store()
    if store is None:
        return graph
    name = f"g{graph.fingerprint:016x}"
    if name in store:
        return store.ref(name)
    return store.save(graph, name)
