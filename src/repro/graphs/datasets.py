"""Reproducible surrogate datasets for the paper's three networks.

The paper evaluates on Hep and Phy (academic collaboration networks from a
now-dead Microsoft Research URL) and wiki-Talk (SNAP).  With no network
access, this module generates *seeded surrogates* matched on node count,
edge count and degree-tail shape — see DESIGN.md §3 for the substitution
argument.  Each surrogate is deterministic: ``hep()`` always returns the
same graph, so experiments are reproducible across sessions and machines.

The ``scale`` parameter shrinks a dataset proportionally (same average
degree), which keeps test and benchmark runtimes laptop-friendly; the full
paper-scale graphs are available with ``scale=1.0``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Callable

import numpy as np

from repro.errors import GraphError
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import community_powerlaw, copying_model
from repro.graphs.loaders import stream_edge_array
from repro.utils.rng import RandomSource, as_rng
from repro.utils.validation import check_fraction

#: Directory holding real downloaded datasets (e.g. SNAP wiki-Talk.txt[.gz]).
#: When set and the file is present, ``wiki`` loads the paper's actual graph
#: at scale 1.0 instead of the synthetic surrogate.
DATA_DIR_ENV_VAR = "REPRO_DATA_DIR"

#: Accepted wiki-Talk filenames inside ``REPRO_DATA_DIR``, checked in order.
_WIKI_FILENAMES = (
    "wiki-Talk.txt",
    "wiki-Talk.txt.gz",
    "WikiTalk.txt",
    "WikiTalk.txt.gz",
)


def real_wiki_path() -> Path | None:
    """The real SNAP wiki-Talk edge list under ``REPRO_DATA_DIR``, if any."""
    root = os.environ.get(DATA_DIR_ENV_VAR, "").strip()
    if not root:
        return None
    for filename in _WIKI_FILENAMES:
        candidate = Path(root) / filename
        if candidate.is_file():
            return candidate
    return None


def _load_real_wiki(path: Path) -> DiGraph:
    """Stream-parse the real wiki-Talk edge list into a :class:`DiGraph`."""
    edges = stream_edge_array(path)
    labels = np.unique(edges)
    src = np.searchsorted(labels, edges[:, 0])
    dst = np.searchsorted(labels, edges[:, 1])
    return DiGraph(labels.size, np.column_stack([src, dst]))


@dataclass(frozen=True)
class DatasetSpec:
    """Metadata for one of the paper's networks and its surrogate recipe."""

    name: str
    paper_nodes: int
    paper_edges: int
    directed: bool
    description: str
    default_scale: float
    build: Callable[[float, RandomSource], DiGraph]

    def load(self, scale: float | None = None, rng: RandomSource = None) -> DiGraph:
        """Build the surrogate at *scale* (defaults to :attr:`default_scale`)."""
        if scale is None:
            scale = self.default_scale
        check_fraction(scale, "scale")
        return self.build(scale, rng)


def _scaled(value: int, scale: float, minimum: int) -> int:
    return max(minimum, int(round(value * scale)))


def _build_hep(scale: float, rng: RandomSource) -> DiGraph:
    generator = as_rng(15233 if rng is None else rng)
    n = _scaled(15_233, scale, 200)
    m = _scaled(58_891, scale, 400)
    # Collaboration networks are heavily clustered: community-structured
    # power-law graph (communities of ~50 authors, 8% cross-community
    # edges) rather than a bare configuration model.
    return community_powerlaw(n, m, mixing=0.08, exponent=2.3, rng=generator)


def _build_phy(scale: float, rng: RandomSource) -> DiGraph:
    generator = as_rng(37154 if rng is None else rng)
    n = _scaled(37_154, scale, 200)
    m = _scaled(231_584, scale, 800)
    return community_powerlaw(n, m, mixing=0.08, exponent=2.2, rng=generator)


def _build_wiki(scale: float, rng: RandomSource) -> DiGraph:
    # At full scale, prefer the real SNAP edge list when the user has
    # downloaded it (REPRO_DATA_DIR); partial scales always use the seeded
    # surrogate — a real graph cannot be shrunk reproducibly.
    if scale >= 1.0:
        real = real_wiki_path()
        if real is not None:
            return _load_real_wiki(real)
    generator = as_rng(2394385 if rng is None else rng)
    n = _scaled(2_394_385, scale, 500)
    # wiki-Talk has ~2.1 arcs per node; the copying model with 2 out-edges
    # per node reproduces that density and its extreme in-degree skew.
    return copying_model(n, out_edges=2, copy_probability=0.75, rng=generator)


DATASETS: dict[str, DatasetSpec] = {
    "hep": DatasetSpec(
        name="hep",
        paper_nodes=15_233,
        paper_edges=58_891,
        directed=False,
        description=(
            "Surrogate for the Hep (arXiv high-energy physics) collaboration "
            "network used by Kempe et al. and Chen et al.; power-law "
            "configuration model matched on n, m."
        ),
        default_scale=1.0,
        build=_build_hep,
    ),
    "phy": DatasetSpec(
        name="phy",
        paper_nodes=37_154,
        paper_edges=231_584,
        directed=False,
        description=(
            "Surrogate for the Phy (arXiv physics) collaboration network; "
            "power-law configuration model matched on n, m."
        ),
        default_scale=1.0,
        build=_build_phy,
    ),
    "wiki": DatasetSpec(
        name="wiki",
        paper_nodes=2_394_385,
        paper_edges=5_021_410,
        directed=True,
        description=(
            "Surrogate for SNAP wiki-Talk; Kleinberg copying model with the "
            "same arcs-per-node density and heavy in-degree tail.  Default "
            "scale 0.05 (~120k nodes) keeps pure-Python simulation "
            "tractable.  At scale 1.0 the real SNAP edge list is loaded "
            "instead when REPRO_DATA_DIR holds wiki-Talk.txt[.gz]."
        ),
        default_scale=0.05,
        build=_build_wiki,
    ),
}


def get_dataset(name: str, scale: float | None = None, rng: RandomSource = None) -> DiGraph:
    """Load a surrogate dataset by name (``hep``, ``phy``, or ``wiki``)."""
    try:
        spec = DATASETS[name]
    except KeyError:
        raise GraphError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        ) from None
    return spec.load(scale=scale, rng=rng)


def hep(scale: float = 1.0, rng: RandomSource = None) -> DiGraph:
    """The Hep collaboration surrogate (15,233 nodes / 58,891 edges at scale 1)."""
    return DATASETS["hep"].load(scale=scale, rng=rng)


def phy(scale: float = 1.0, rng: RandomSource = None) -> DiGraph:
    """The Phy collaboration surrogate (37,154 nodes / 231,584 edges at scale 1)."""
    return DATASETS["phy"].load(scale=scale, rng=rng)


def wiki(scale: float | None = None, rng: RandomSource = None) -> DiGraph:
    """The wiki-Talk surrogate (default scale 0.05; paper scale is 2.39M nodes).

    At ``scale=1.0`` the real SNAP edge list is loaded when
    ``REPRO_DATA_DIR`` contains ``wiki-Talk.txt`` (optionally gzipped);
    otherwise the seeded synthetic surrogate is generated.
    """
    return DATASETS["wiki"].load(scale=scale, rng=rng)
