"""Reproducible surrogate datasets for the paper's three networks.

The paper evaluates on Hep and Phy (academic collaboration networks from a
now-dead Microsoft Research URL) and wiki-Talk (SNAP).  With no network
access, this module generates *seeded surrogates* matched on node count,
edge count and degree-tail shape — see DESIGN.md §3 for the substitution
argument.  Each surrogate is deterministic: ``hep()`` always returns the
same graph, so experiments are reproducible across sessions and machines.

The ``scale`` parameter shrinks a dataset proportionally (same average
degree), which keeps test and benchmark runtimes laptop-friendly; the full
paper-scale graphs are available with ``scale=1.0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

from repro.errors import GraphError
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import community_powerlaw, copying_model
from repro.utils.rng import RandomSource, as_rng
from repro.utils.validation import check_fraction


@dataclass(frozen=True)
class DatasetSpec:
    """Metadata for one of the paper's networks and its surrogate recipe."""

    name: str
    paper_nodes: int
    paper_edges: int
    directed: bool
    description: str
    default_scale: float
    build: Callable[[float, RandomSource], DiGraph]

    def load(self, scale: float | None = None, rng: RandomSource = None) -> DiGraph:
        """Build the surrogate at *scale* (defaults to :attr:`default_scale`)."""
        if scale is None:
            scale = self.default_scale
        check_fraction(scale, "scale")
        return self.build(scale, rng)


def _scaled(value: int, scale: float, minimum: int) -> int:
    return max(minimum, int(round(value * scale)))


def _build_hep(scale: float, rng: RandomSource) -> DiGraph:
    generator = as_rng(15233 if rng is None else rng)
    n = _scaled(15_233, scale, 200)
    m = _scaled(58_891, scale, 400)
    # Collaboration networks are heavily clustered: community-structured
    # power-law graph (communities of ~50 authors, 8% cross-community
    # edges) rather than a bare configuration model.
    return community_powerlaw(n, m, mixing=0.08, exponent=2.3, rng=generator)


def _build_phy(scale: float, rng: RandomSource) -> DiGraph:
    generator = as_rng(37154 if rng is None else rng)
    n = _scaled(37_154, scale, 200)
    m = _scaled(231_584, scale, 800)
    return community_powerlaw(n, m, mixing=0.08, exponent=2.2, rng=generator)


def _build_wiki(scale: float, rng: RandomSource) -> DiGraph:
    generator = as_rng(2394385 if rng is None else rng)
    n = _scaled(2_394_385, scale, 500)
    # wiki-Talk has ~2.1 arcs per node; the copying model with 2 out-edges
    # per node reproduces that density and its extreme in-degree skew.
    return copying_model(n, out_edges=2, copy_probability=0.75, rng=generator)


DATASETS: dict[str, DatasetSpec] = {
    "hep": DatasetSpec(
        name="hep",
        paper_nodes=15_233,
        paper_edges=58_891,
        directed=False,
        description=(
            "Surrogate for the Hep (arXiv high-energy physics) collaboration "
            "network used by Kempe et al. and Chen et al.; power-law "
            "configuration model matched on n, m."
        ),
        default_scale=1.0,
        build=_build_hep,
    ),
    "phy": DatasetSpec(
        name="phy",
        paper_nodes=37_154,
        paper_edges=231_584,
        directed=False,
        description=(
            "Surrogate for the Phy (arXiv physics) collaboration network; "
            "power-law configuration model matched on n, m."
        ),
        default_scale=1.0,
        build=_build_phy,
    ),
    "wiki": DatasetSpec(
        name="wiki",
        paper_nodes=2_394_385,
        paper_edges=5_021_410,
        directed=True,
        description=(
            "Surrogate for SNAP wiki-Talk; Kleinberg copying model with the "
            "same arcs-per-node density and heavy in-degree tail.  Default "
            "scale 0.05 (~120k nodes) keeps pure-Python simulation tractable."
        ),
        default_scale=0.05,
        build=_build_wiki,
    ),
}


def get_dataset(name: str, scale: float | None = None, rng: RandomSource = None) -> DiGraph:
    """Load a surrogate dataset by name (``hep``, ``phy``, or ``wiki``)."""
    try:
        spec = DATASETS[name]
    except KeyError:
        raise GraphError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        ) from None
    return spec.load(scale=scale, rng=rng)


def hep(scale: float = 1.0, rng: RandomSource = None) -> DiGraph:
    """The Hep collaboration surrogate (15,233 nodes / 58,891 edges at scale 1)."""
    return DATASETS["hep"].load(scale=scale, rng=rng)


def phy(scale: float = 1.0, rng: RandomSource = None) -> DiGraph:
    """The Phy collaboration surrogate (37,154 nodes / 231,584 edges at scale 1)."""
    return DATASETS["phy"].load(scale=scale, rng=rng)


def wiki(scale: float | None = None, rng: RandomSource = None) -> DiGraph:
    """The wiki-Talk surrogate (default scale 0.05; paper scale is 2.39M nodes)."""
    return DATASETS["wiki"].load(scale=scale, rng=rng)
