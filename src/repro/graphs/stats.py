"""Graph statistics: degree distributions, Table-3-style summaries,
clustering, assortativity and effective-diameter estimates.

Everything is implemented directly on the CSR graph (no networkx in the
runtime path); the heavier quantities use sampling with an explicit
``rng``/``samples`` contract so they stay cheap on the full-scale
surrogates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.digraph import DiGraph
from repro.utils.rng import RandomSource, as_rng
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class GraphSummary:
    """The quantities the paper's Table 3 reports, plus degree-shape stats."""

    num_nodes: int
    num_edges: int
    mean_out_degree: float
    max_out_degree: int
    max_in_degree: int
    degree_gini: float

    def as_row(self) -> dict[str, object]:
        """Render as a dict row for :func:`repro.utils.tables.format_table`."""
        return {
            "nodes": self.num_nodes,
            "edges": self.num_edges,
            "mean_deg": round(self.mean_out_degree, 3),
            "max_out": self.max_out_degree,
            "max_in": self.max_in_degree,
            "gini": round(self.degree_gini, 3),
        }


def _gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative array (0 = uniform, →1 = skewed)."""
    if values.size == 0:
        return 0.0
    sorted_vals = np.sort(values.astype(float))
    total = sorted_vals.sum()
    if total == 0:
        return 0.0
    n = sorted_vals.size
    ranks = np.arange(1, n + 1)
    return float((2.0 * (ranks * sorted_vals).sum()) / (n * total) - (n + 1.0) / n)


def summarize(graph: DiGraph) -> GraphSummary:
    """Compute the summary statistics for *graph*."""
    out_deg = graph.out_degrees()
    in_deg = graph.in_degrees()
    mean_out = float(out_deg.mean()) if graph.num_nodes else 0.0
    return GraphSummary(
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        mean_out_degree=mean_out,
        max_out_degree=int(out_deg.max()) if graph.num_nodes else 0,
        max_in_degree=int(in_deg.max()) if graph.num_nodes else 0,
        degree_gini=_gini(out_deg),
    )


def degree_ccdf(graph: DiGraph, direction: str = "out") -> tuple[np.ndarray, np.ndarray]:
    """Complementary CDF of the degree distribution.

    Returns ``(degrees, fraction_of_nodes_with_degree_at_least)`` — the usual
    log-log diagnostic for heavy tails.  *direction* is ``"out"`` or ``"in"``.
    """
    if direction == "out":
        deg = graph.out_degrees()
    elif direction == "in":
        deg = graph.in_degrees()
    else:
        raise ValueError(f"direction must be 'out' or 'in', got {direction!r}")
    if deg.size == 0:
        return np.array([]), np.array([])
    values, counts = np.unique(deg, return_counts=True)
    survivors = counts[::-1].cumsum()[::-1] / deg.size
    return values, survivors


def clustering_coefficient(
    graph: DiGraph,
    samples: int | None = None,
    rng: RandomSource = None,
) -> float:
    """Average local clustering coefficient, treating arcs as undirected.

    For each (sampled) node, the fraction of neighbour pairs that are
    themselves connected; nodes with fewer than two neighbours count as 0
    (networkx's convention, which the tests pin against).  *samples*
    bounds the number of nodes examined (all nodes when None);
    collaboration networks like Hep/Phy sit around 0.3–0.5, configuration
    models near 0.
    """
    n = graph.num_nodes
    if n == 0:
        return 0.0
    generator = as_rng(rng)
    if samples is None or samples >= n:
        nodes = np.arange(n)
    else:
        check_positive_int(samples, "samples")
        nodes = generator.choice(n, size=samples, replace=False)

    # Undirected neighbourhoods: union of in- and out-neighbours.
    total = 0.0
    counted = 0
    neighbour_sets: dict[int, set[int]] = {}

    def neighbours(v: int) -> set[int]:
        if v not in neighbour_sets:
            nbrs = set(int(u) for u in graph.out_neighbors(v))
            nbrs.update(int(u) for u in graph.in_neighbors(v))
            nbrs.discard(v)
            neighbour_sets[v] = nbrs
        return neighbour_sets[v]

    for v in nodes:
        v = int(v)
        counted += 1
        nbrs = sorted(neighbours(v))
        d = len(nbrs)
        if d < 2:
            continue  # contributes 0
        links = 0
        for i, u in enumerate(nbrs):
            u_nbrs = neighbours(u)
            for w in nbrs[i + 1:]:
                if w in u_nbrs:
                    links += 1
        total += 2.0 * links / (d * (d - 1))
    return total / counted if counted else 0.0


def degree_assortativity(graph: DiGraph) -> float:
    """Pearson correlation of (source out-degree, target in-degree) over arcs.

    Positive on social/collaboration networks (hubs befriend hubs),
    negative on hub-and-spoke structures.  Returns 0 for degenerate
    (constant-degree or empty) graphs.
    """
    if graph.num_edges == 0:
        return 0.0
    src, dst = graph.edge_array()
    x = graph.out_degrees()[src].astype(float)
    y = graph.in_degrees()[dst].astype(float)
    if x.std() == 0 or y.std() == 0:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])


def effective_diameter(
    graph: DiGraph,
    percentile: float = 0.9,
    samples: int = 50,
    rng: RandomSource = None,
) -> float:
    """Approximate effective diameter: the *percentile*-quantile of finite
    shortest-path distances from a sample of source nodes (BFS).

    The standard robust alternative to the true diameter on graphs with
    disconnected fringes; wiki-Talk style graphs report ~4–5.
    """
    n = graph.num_nodes
    if n == 0:
        return 0.0
    if not 0.0 < percentile <= 1.0:
        raise ValueError(f"percentile must be in (0, 1], got {percentile}")
    check_positive_int(samples, "samples")
    generator = as_rng(rng)
    sources = generator.choice(n, size=min(samples, n), replace=False)

    distances: list[int] = []
    for s in sources:
        dist = np.full(n, -1, dtype=np.int64)
        dist[s] = 0
        frontier = [int(s)]
        level = 0
        while frontier:
            level += 1
            next_frontier: list[int] = []
            for u in frontier:
                for v in graph.out_neighbors(u):
                    if dist[v] < 0:
                        dist[v] = level
                        next_frontier.append(int(v))
            frontier = next_frontier
        distances.extend(int(d) for d in dist[dist > 0])
    if not distances:
        return 0.0
    return float(np.quantile(np.array(distances), percentile))


def largest_weakly_connected_fraction(graph: DiGraph) -> float:
    """Fraction of nodes in the largest weakly connected component."""
    n = graph.num_nodes
    if n == 0:
        return 0.0
    seen = np.zeros(n, dtype=bool)
    best = 0
    for start in range(n):
        if seen[start]:
            continue
        size = 0
        stack = [start]
        seen[start] = True
        while stack:
            u = stack.pop()
            size += 1
            for v in graph.out_neighbors(u):
                if not seen[v]:
                    seen[v] = True
                    stack.append(int(v))
            for v in graph.in_neighbors(u):
                if not seen[v]:
                    seen[v] = True
                    stack.append(int(v))
        best = max(best, size)
    return best / n
