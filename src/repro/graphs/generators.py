"""Synthetic graph generators.

The paper evaluates on two academic collaboration networks (Hep, Phy) served
from a now-dead Microsoft Research URL and on SNAP's wiki-Talk.  This
environment has no network access, so :mod:`repro.graphs.datasets` builds
*surrogates* with these generators:

* :func:`powerlaw_configuration` — heavy-tailed configuration model used for
  the collaboration surrogates (undirected, symmetrized);
* :func:`copying_model` — Kleinberg-style copying model used for the
  wiki-Talk surrogate (directed, extreme in-degree skew);
* :func:`barabasi_albert` and :func:`erdos_renyi` — standard baselines used
  in tests and ablations;
* :func:`karate_like_fixture` — a small deterministic graph for unit tests.

All generators take the library-wide ``rng`` argument (seed / Generator /
None) and are deterministic for a fixed seed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graphs.digraph import DiGraph
from repro.utils.rng import RandomSource, as_rng
from repro.utils.validation import check_positive_int, check_probability


def _powerlaw_degrees(
    n: int,
    target_sum: int,
    exponent: float,
    rng: np.random.Generator,
    min_degree: int = 1,
) -> np.ndarray:
    """Sample a degree sequence ``d_i >= min_degree`` with ``sum d_i == target_sum``.

    Degrees follow a discrete power law ``P(d) ~ d^{-exponent}`` (inverse
    transform sampling), rescaled multiplicatively so the total matches the
    requested edge budget, then adjusted by +/-1 steps to hit it exactly.
    """
    if target_sum < n * min_degree:
        raise GraphError(
            f"target_sum={target_sum} cannot support {n} nodes of "
            f"min_degree={min_degree}"
        )
    u = rng.random(n)
    raw = min_degree * u ** (-1.0 / (exponent - 1.0))
    cap = max(min_degree + 1, int(np.sqrt(2.0 * target_sum)))
    raw = np.minimum(raw, cap)

    scale = target_sum / raw.sum()
    degrees = np.maximum(min_degree, np.round(raw * scale)).astype(np.int64)

    # Fix up the residual one unit at a time, touching random nodes.
    diff = int(target_sum - degrees.sum())
    while diff != 0:
        idx = rng.integers(0, n, size=abs(diff))
        if diff > 0:
            np.add.at(degrees, idx, 1)
            diff = int(target_sum - degrees.sum())
        else:
            for i in idx:
                if degrees[i] > min_degree:
                    degrees[i] -= 1
            diff = int(target_sum - degrees.sum())
    return degrees


def powerlaw_configuration(
    num_nodes: int,
    num_edges: int,
    exponent: float = 2.4,
    rng: RandomSource = None,
) -> DiGraph:
    """Heavy-tailed undirected configuration model, symmetrized to a DiGraph.

    *num_edges* is the undirected edge budget; the result has roughly
    ``2 * num_edges`` arcs (slightly fewer after removing the self-loops and
    multi-edges the stub-matching step produces).

    Used for the Hep/Phy collaboration surrogates.
    """
    n = check_positive_int(num_nodes, "num_nodes")
    m = check_positive_int(num_edges, "num_edges")
    if exponent <= 1.0:
        raise GraphError(f"exponent must exceed 1, got {exponent}")
    generator = as_rng(rng)

    degrees = _powerlaw_degrees(n, 2 * m, exponent, generator)
    stubs = np.repeat(np.arange(n, dtype=np.int64), degrees)
    generator.shuffle(stubs)
    src = stubs[0::2]
    dst = stubs[1::2]
    pairs = np.column_stack([src, dst])
    # DiGraph's constructor removes self-loops and duplicates; symmetrize
    # first so deduplication sees both orientations.
    both = np.vstack([pairs, pairs[:, ::-1]])
    return DiGraph(n, both)


def community_powerlaw(
    num_nodes: int,
    num_edges: int,
    num_communities: int | None = None,
    mixing: float = 0.08,
    exponent: float = 2.4,
    rng: RandomSource = None,
) -> DiGraph:
    """Power-law configuration model with planted community structure.

    Nodes are partitioned into communities; each node's power-law degree
    stubs are matched *within its community* with probability
    ``1 - mixing`` and in a global pool otherwise.  The result combines the
    heavy-tailed degrees of :func:`powerlaw_configuration` with the high
    clustering of real collaboration networks — the property that makes
    greedy seed selection diversify across communities while degree
    heuristics pile onto co-located hubs.  Used for the Hep/Phy surrogates.

    Stub matching inside dense communities collapses some multi-edges; a
    compensation loop tops the budget back up, so the undirected edge count
    lands within a few percent of *num_edges* (the result has about twice
    that many arcs after symmetrization).
    """
    n = check_positive_int(num_nodes, "num_nodes")
    m = check_positive_int(num_edges, "num_edges")
    mixing = check_probability(mixing, "mixing")
    if exponent <= 1.0:
        raise GraphError(f"exponent must exceed 1, got {exponent}")
    if num_communities is None:
        num_communities = max(2, n // 50)
    c = check_positive_int(num_communities, "num_communities")
    generator = as_rng(rng)

    community = generator.integers(0, c, size=n)
    chosen: set[tuple[int, int]] = set()

    members: list[np.ndarray] = [
        np.flatnonzero(community == cid) for cid in range(c)
    ]

    def top_up(budget: int) -> None:
        """Small deficit pass: direct community-biased pair sampling."""
        for _ in range(budget):
            u = int(generator.integers(0, n))
            own = members[community[u]]
            if own.size > 1 and generator.random() >= mixing:
                v = int(own[generator.integers(0, own.size)])
            else:
                v = int(generator.integers(0, n))
            if u != v:
                chosen.add((u, v) if u < v else (v, u))

    def matched_pairs(budget: int) -> None:
        """Sample ~budget undirected edges via community-aware stub matching."""
        if 2 * budget < n:
            top_up(budget)
            return
        degrees = _powerlaw_degrees(n, 2 * budget, exponent, generator)
        stubs = np.repeat(np.arange(n, dtype=np.int64), degrees)
        is_global = generator.random(stubs.size) < mixing
        pools = [stubs[is_global]]
        local = stubs[~is_global]
        pools.extend(local[community[local] == cid] for cid in range(c))
        for pool in pools:
            if pool.size < 2:
                continue
            pool = pool.copy()
            generator.shuffle(pool)
            half = pool.size // 2
            for u, v in zip(pool[:half], pool[half: 2 * half]):
                u, v = int(u), int(v)
                if u != v:
                    chosen.add((u, v) if u < v else (v, u))

    matched_pairs(m)
    # Dense communities collapse multi-edges; top the budget back up.
    for _ in range(4):
        deficit = m - len(chosen)
        if deficit <= max(4, m // 100):
            break
        matched_pairs(deficit)

    edges = np.array(sorted(chosen), dtype=np.int64)
    both = np.vstack([edges, edges[:, ::-1]])
    return DiGraph(n, both)


def barabasi_albert(
    num_nodes: int,
    edges_per_node: int,
    rng: RandomSource = None,
) -> DiGraph:
    """Barabási–Albert preferential attachment, symmetrized to a DiGraph."""
    n = check_positive_int(num_nodes, "num_nodes")
    m = check_positive_int(edges_per_node, "edges_per_node")
    if m >= n:
        raise GraphError(f"edges_per_node={m} must be < num_nodes={n}")
    generator = as_rng(rng)

    # Repeated-nodes implementation: the target list holds one entry per
    # edge endpoint, so sampling uniformly from it is preferential.
    targets = list(range(m))
    repeated: list[int] = []
    edges: list[tuple[int, int]] = []
    for v in range(m, n):
        for t in targets:
            edges.append((v, t))
        repeated.extend(targets)
        repeated.extend([v] * m)
        idx = generator.integers(0, len(repeated), size=m)
        targets = list({int(repeated[i]) for i in idx})
        while len(targets) < m:
            extra = int(repeated[generator.integers(0, len(repeated))])
            if extra not in targets:
                targets.append(extra)
    return DiGraph.from_undirected(n, edges)


def copying_model(
    num_nodes: int,
    out_edges: int = 2,
    copy_probability: float = 0.7,
    rng: RandomSource = None,
) -> DiGraph:
    """Kleinberg copying model: directed, extreme in-degree skew.

    Each arriving node picks a random *prototype* and creates *out_edges*
    arcs; each arc copies one of the prototype's out-neighbours with
    probability *copy_probability*, otherwise points at a uniform existing
    node.  In-degree follows a power law with exponent controlled by the
    copy probability — the regime of talk-page graphs like wiki-Talk.
    """
    n = check_positive_int(num_nodes, "num_nodes")
    c = check_positive_int(out_edges, "out_edges")
    beta = check_probability(copy_probability, "copy_probability")
    generator = as_rng(rng)
    if n < 2:
        return DiGraph(n, [])

    out_lists: list[list[int]] = [[] for _ in range(n)]
    # Seed clique among the first c+1 nodes so prototypes have out-edges.
    boot = min(c + 1, n)
    for u in range(boot):
        for v in range(boot):
            if u != v:
                out_lists[u].append(v)

    edges: list[tuple[int, int]] = [
        (u, v) for u in range(boot) for v in out_lists[u]
    ]
    for v in range(boot, n):
        prototype = int(generator.integers(0, v))
        proto_out = out_lists[prototype]
        for _ in range(c):
            if proto_out and generator.random() < beta:
                target = int(proto_out[generator.integers(0, len(proto_out))])
            else:
                target = int(generator.integers(0, v))
            if target != v:
                out_lists[v].append(target)
                edges.append((v, target))
    return DiGraph(n, edges)


def watts_strogatz(
    num_nodes: int,
    neighbours: int = 4,
    rewire_probability: float = 0.1,
    rng: RandomSource = None,
) -> DiGraph:
    """Watts–Strogatz small world, symmetrized to a DiGraph.

    Start from a ring lattice where each node connects to its
    *neighbours* nearest nodes (must be even), then rewire each edge's far
    endpoint with probability *rewire_probability*.  High clustering, low
    diameter — a useful test substrate whose degree distribution is the
    opposite extreme of the power-law surrogates.
    """
    n = check_positive_int(num_nodes, "num_nodes")
    k = check_positive_int(neighbours, "neighbours")
    if k % 2 != 0:
        raise GraphError(f"neighbours must be even, got {k}")
    if k >= n:
        raise GraphError(f"neighbours={k} must be < num_nodes={n}")
    beta = check_probability(rewire_probability, "rewire_probability")
    generator = as_rng(rng)

    chosen: set[tuple[int, int]] = set()
    for u in range(n):
        for offset in range(1, k // 2 + 1):
            v = (u + offset) % n
            if generator.random() < beta:
                # Rewire to a uniform non-self, non-duplicate target.
                for _ in range(8):  # a few attempts, then keep the lattice edge
                    w = int(generator.integers(0, n))
                    key = (u, w) if u < w else (w, u)
                    if w != u and key not in chosen:
                        v = w
                        break
            key = (u, v) if u < v else (v, u)
            chosen.add(key)
    edges = list(chosen)
    return DiGraph.from_undirected(n, edges)


def erdos_renyi(
    num_nodes: int,
    num_edges: int,
    rng: RandomSource = None,
) -> DiGraph:
    """Directed G(n, m): *num_edges* arcs sampled uniformly without replacement."""
    n = check_positive_int(num_nodes, "num_nodes")
    m = check_positive_int(num_edges, "num_edges")
    max_edges = n * (n - 1)
    if m > max_edges:
        raise GraphError(f"num_edges={m} exceeds the maximum {max_edges} for n={n}")
    generator = as_rng(rng)

    chosen: set[int] = set()
    # Rejection sampling: encode (u, v) as u * n + v.
    while len(chosen) < m:
        need = m - len(chosen)
        codes = generator.integers(0, n * n, size=max(2 * need, 16))
        for code in codes:
            u, v = divmod(int(code), n)
            if u != v:
                chosen.add(u * n + v)
            if len(chosen) == m:
                break
    edges = [divmod(code, n) for code in chosen]
    return DiGraph(n, edges)


#: Zachary's karate club, hard-coded so tests never depend on networkx data.
_KARATE_EDGES: tuple[tuple[int, int], ...] = (
    (0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (0, 6), (0, 7), (0, 8), (0, 10),
    (0, 11), (0, 12), (0, 13), (0, 17), (0, 19), (0, 21), (0, 31), (1, 2),
    (1, 3), (1, 7), (1, 13), (1, 17), (1, 19), (1, 21), (1, 30), (2, 3),
    (2, 7), (2, 8), (2, 9), (2, 13), (2, 27), (2, 28), (2, 32), (3, 7),
    (3, 12), (3, 13), (4, 6), (4, 10), (5, 6), (5, 10), (5, 16), (6, 16),
    (8, 30), (8, 32), (8, 33), (9, 33), (13, 33), (14, 32), (14, 33),
    (15, 32), (15, 33), (18, 32), (18, 33), (19, 33), (20, 32), (20, 33),
    (22, 32), (22, 33), (23, 25), (23, 27), (23, 29), (23, 32), (23, 33),
    (24, 25), (24, 27), (24, 31), (25, 31), (26, 29), (26, 33), (27, 33),
    (28, 31), (28, 33), (29, 32), (29, 33), (30, 32), (30, 33), (31, 32),
    (31, 33), (32, 33),
)


def karate_like_fixture() -> DiGraph:
    """Zachary's karate club (34 nodes, 78 undirected edges), symmetrized.

    A deterministic, well-studied small graph used throughout the test suite
    and the quickstart example.
    """
    return DiGraph.from_undirected(34, _KARATE_EDGES)
