"""Edge-list I/O in the SNAP text format.

The paper's public dataset (wiki-Talk) and the Chen et al. graph bundle are
distributed as whitespace-separated edge lists with ``#`` comment lines —
exactly the format read and written here.  Node labels need not be dense
integers: they are relabelled to ``0..n-1`` on load and the mapping is
returned so results can be reported in terms of the original ids.
"""

from __future__ import annotations

import gzip
from pathlib import Path

import numpy as np

from repro.errors import GraphFormatError
from repro.graphs.digraph import DiGraph

PathLike = str | Path


def _open_text(path: Path, mode: str):
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def load_edge_list(
    path: PathLike,
    directed: bool = True,
    comment: str = "#",
) -> tuple[DiGraph, dict[int, int]]:
    """Load a SNAP-style edge list.

    Parameters
    ----------
    path:
        Text file (optionally ``.gz``) with one ``src dst`` pair per line.
    directed:
        If False, every edge is added in both directions (collaboration
        networks).
    comment:
        Lines starting with this prefix are skipped.

    Returns
    -------
    (graph, label_map):
        *label_map* maps original node labels to dense ids ``0..n-1``.

    Raises
    ------
    GraphFormatError
        On malformed lines (wrong column count, non-integer labels).
    """
    path = Path(path)
    sources: list[int] = []
    targets: list[int] = []
    with _open_text(path, "r") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith(comment):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphFormatError(
                    f"{path}:{lineno}: expected 'src dst', got {line!r}"
                )
            try:
                u, v = int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise GraphFormatError(
                    f"{path}:{lineno}: non-integer node label in {line!r}"
                ) from exc
            sources.append(u)
            targets.append(v)

    if not sources:
        return DiGraph(0, []), {}

    labels = np.unique(np.concatenate([sources, targets]))
    label_map = {int(label): i for i, label in enumerate(labels)}
    src = np.array([label_map[u] for u in sources], dtype=np.int64)
    dst = np.array([label_map[v] for v in targets], dtype=np.int64)

    if directed:
        graph = DiGraph.from_arrays(len(labels), src, dst)
    else:
        graph = DiGraph.from_undirected(
            len(labels), list(zip(src.tolist(), dst.tolist()))
        )
    return graph, label_map


def save_edge_list(graph: DiGraph, path: PathLike, header: str | None = None) -> None:
    """Write *graph* as a SNAP-style edge list (one ``src dst`` per line)."""
    path = Path(path)
    with _open_text(path, "w") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        handle.write(f"# Nodes: {graph.num_nodes} Edges: {graph.num_edges}\n")
        for u, v in graph.edges():
            handle.write(f"{u}\t{v}\n")
