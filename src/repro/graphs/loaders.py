"""Edge-list I/O in the SNAP text format.

The paper's public dataset (wiki-Talk) and the Chen et al. graph bundle are
distributed as whitespace-separated edge lists with ``#`` comment lines —
exactly the format read and written here.  Node labels need not be dense
integers: they are relabelled to ``0..n-1`` on load and the mapping is
returned so results can be reported in terms of the original ids.
"""

from __future__ import annotations

import gzip
from itertools import islice
from pathlib import Path

import numpy as np

from repro.errors import GraphFormatError
from repro.graphs.digraph import DiGraph

PathLike = str | Path


def _open_text(path: Path, mode: str):
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def stream_edge_array(
    path: PathLike,
    comment: str = "#",
    chunk_lines: int = 1 << 20,
) -> np.ndarray:
    """Parse a SNAP-style edge list into one ``(edges, 2)`` int64 array.

    The file (optionally ``.gz``) is consumed *chunk_lines* lines at a
    time, each chunk tokenized by numpy's C reader (``np.loadtxt``) — peak
    Python-object overhead stays bounded by the chunk size no matter how
    many edges the file holds, which is what makes 5M-edge ingestion
    (:meth:`repro.graphs.store.GraphStore.ingest_edge_list`) tractable.
    Labels are returned raw (not relabelled).
    """
    source = Path(path)
    chunks: list[np.ndarray] = []
    with _open_text(source, "r") as handle:
        while True:
            lines = list(islice(handle, chunk_lines))
            if not lines:
                break
            try:
                chunk = np.loadtxt(
                    lines,
                    dtype=np.int64,
                    comments=comment,
                    usecols=(0, 1),
                    ndmin=2,
                )
            except ValueError as exc:
                raise GraphFormatError(
                    f"{source}: malformed edge-list chunk: {exc}"
                ) from exc
            if chunk.size:
                chunks.append(chunk)
    if not chunks:
        return np.empty((0, 2), dtype=np.int64)
    return np.concatenate(chunks) if len(chunks) > 1 else chunks[0]


def load_edge_list(
    path: PathLike,
    directed: bool = True,
    comment: str = "#",
) -> tuple[DiGraph, dict[int, int]]:
    """Load a SNAP-style edge list.

    Parameters
    ----------
    path:
        Text file (optionally ``.gz``) with one ``src dst`` pair per line.
    directed:
        If False, every edge is added in both directions (collaboration
        networks).
    comment:
        Lines starting with this prefix are skipped.

    Returns
    -------
    (graph, label_map):
        *label_map* maps original node labels to dense ids ``0..n-1``.

    Raises
    ------
    GraphFormatError
        On malformed lines (wrong column count, non-integer labels).
    """
    path = Path(path)
    sources: list[int] = []
    targets: list[int] = []
    with _open_text(path, "r") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith(comment):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphFormatError(
                    f"{path}:{lineno}: expected 'src dst', got {line!r}"
                )
            try:
                u, v = int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise GraphFormatError(
                    f"{path}:{lineno}: non-integer node label in {line!r}"
                ) from exc
            sources.append(u)
            targets.append(v)

    if not sources:
        return DiGraph(0, []), {}

    raw_src = np.asarray(sources, dtype=np.int64)
    raw_dst = np.asarray(targets, dtype=np.int64)
    # Vectorized relabel: labels are sorted by construction, so the dense id
    # of every endpoint is its searchsorted rank — no per-edge dict lookups.
    labels = np.unique(np.concatenate([raw_src, raw_dst]))
    src = np.searchsorted(labels, raw_src)
    dst = np.searchsorted(labels, raw_dst)
    label_map = {int(label): i for i, label in enumerate(labels)}

    if not directed:
        # Both orientations, forward block first — the same edge order
        # from_undirected produces, so stable edge ids (and therefore
        # fingerprints) are unchanged.
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
    graph = DiGraph.from_arrays(len(labels), src, dst)
    return graph, label_map


def save_edge_list(graph: DiGraph, path: PathLike, header: str | None = None) -> None:
    """Write *graph* as a SNAP-style edge list (one ``src dst`` per line)."""
    path = Path(path)
    with _open_text(path, "w") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        handle.write(f"# Nodes: {graph.num_nodes} Edges: {graph.num_edges}\n")
        for u, v in graph.edges():
            handle.write(f"{u}\t{v}\n")
