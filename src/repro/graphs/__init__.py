"""Graph substrate: CSR directed graphs, loaders, generators, datasets, stats."""

from repro.graphs.digraph import DiGraph
from repro.graphs.delta import AppliedDelta, EdgeDelta, merge_delta
from repro.graphs.loaders import load_edge_list, save_edge_list, stream_edge_array
from repro.graphs.store import (
    GraphRef,
    GraphStore,
    default_store,
    maybe_ref,
    resolve_graph,
)
from repro.graphs.generators import (
    barabasi_albert,
    community_powerlaw,
    copying_model,
    erdos_renyi,
    karate_like_fixture,
    powerlaw_configuration,
    watts_strogatz,
)
from repro.graphs.datasets import DatasetSpec, hep, phy, wiki, get_dataset, DATASETS
from repro.graphs.stats import (
    GraphSummary,
    clustering_coefficient,
    degree_assortativity,
    degree_ccdf,
    effective_diameter,
    summarize,
)

__all__ = [
    "AppliedDelta",
    "DiGraph",
    "EdgeDelta",
    "GraphRef",
    "merge_delta",
    "GraphStore",
    "default_store",
    "maybe_ref",
    "resolve_graph",
    "load_edge_list",
    "save_edge_list",
    "stream_edge_array",
    "barabasi_albert",
    "community_powerlaw",
    "copying_model",
    "erdos_renyi",
    "karate_like_fixture",
    "powerlaw_configuration",
    "watts_strogatz",
    "DatasetSpec",
    "hep",
    "phy",
    "wiki",
    "get_dataset",
    "DATASETS",
    "GraphSummary",
    "degree_ccdf",
    "clustering_coefficient",
    "degree_assortativity",
    "effective_diameter",
    "summarize",
]
