"""Influence blocking: limit a rival campaign's spread.

The problem family of Budak et al. (WWW'11) and He et al. (SDM'12), which
the paper's related work groups with competitive IM: a *misinformation*
(or simply rival) campaign has already seeded the network; pick *k*
blocker seeds for a counter-campaign that minimize the number of nodes the
rival eventually claims.

Under this library's competitive semantics a blocker works by claiming
nodes first — once claimed, a node can never adopt the rival's product
(the paper's third assumption) — so blocking is greedy minimization of the
rival's spread via the shared competitive engine, with common random
numbers pairing the candidate comparisons.  Each greedy step evaluates
every remaining candidate, and those evaluations are independent — they
are submitted to the execution engine as one
:class:`~repro.exec.jobs.CompetitiveJob` batch per step.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence
from typing import Any

import numpy as np

from repro.cache import (
    blocking_memo,
    cache_enabled,
    params_token,
    rng_state,
    rng_token,
    set_rng_state,
)
from repro.cascade.base import CascadeModel
from repro.cascade.kernels import resolve_kernel
from repro.errors import SeedSelectionError
from repro.exec.executor import Executor, resolve_executor
from repro.exec.jobs import CompetitiveJob
from repro.graphs.digraph import DiGraph
from repro.graphs.store import maybe_ref
from repro.utils.rng import RandomSource, as_rng
from repro.utils.validation import check_positive_int

#: Stride between the paired random streams of successive blocking rounds.
BLOCKING_CRN_STEP = 104729


@dataclass(frozen=True)
class BlockingResult:
    """Outcome of a blocking run.

    Attributes
    ----------
    blockers:
        The selected counter-campaign seeds, in greedy order.
    rival_spread_before:
        The rival's expected spread with no counter-campaign.
    rival_spread_after:
        The rival's expected spread against the blockers.
    blocker_spread:
        The counter-campaign's own expected spread (a by-product).
    """

    blockers: list[int]
    rival_spread_before: float
    rival_spread_after: float
    blocker_spread: float

    @property
    def reduction(self) -> float:
        """Fraction of the rival's spread removed by the blockers."""
        if self.rival_spread_before <= 0:
            return 0.0
        return 1.0 - self.rival_spread_after / self.rival_spread_before


def _blocking_job(
    graph: DiGraph,
    model: CascadeModel,
    rival_seeds: Sequence[int],
    blockers: Sequence[int],
    rounds: int,
    crn_base: int,
    kernel: str | None = None,
) -> CompetitiveJob:
    """Rival-vs-blockers evaluation as a CRN-paired competitive job."""
    rival = tuple(int(s) for s in rival_seeds)
    seed_sets = (
        (rival, tuple(int(b) for b in blockers)) if blockers else (rival,)
    )
    return CompetitiveJob(
        graph=maybe_ref(graph),
        model=model,
        seed_sets=seed_sets,
        rounds=rounds,
        crn_base=crn_base,
        crn_step=BLOCKING_CRN_STEP,
        kernel=kernel,
    )


def select_blockers(
    graph: DiGraph,
    model: CascadeModel,
    rival_seeds: Sequence[int],
    k: int,
    rounds: int = 10,
    candidate_pool: int = 100,
    rng: RandomSource = None,
    executor: Executor | None = None,
    kernel: str | None = None,
) -> BlockingResult:
    """Greedy blocker selection minimizing the rival's competitive spread.

    Candidates are the top-``candidate_pool`` nodes by out-degree plus the
    rival's own seeds' neighbours (the positions that intercept the rival
    earliest); each greedy step batches all remaining candidates through
    *executor* and picks the one whose addition lowers the rival's
    CRN-paired expected spread the most (first wins on ties, matching the
    sorted candidate order).

    Reproducible calls (``rng`` given) are memoized in the work-sharing
    blocking cache, keyed on graph fingerprint, model params, rival seeds,
    budgets, kernel, and RNG state; a hit returns the stored result and
    restores the post-run RNG state, so warm runs are bit-identical to
    cold ones.  The executor backend is deliberately not part of the key —
    batched results are backend-independent.
    """
    check_positive_int(k, "k")
    check_positive_int(rounds, "rounds")
    check_positive_int(candidate_pool, "candidate_pool")
    rival = [int(s) for s in rival_seeds]
    if not rival:
        raise SeedSelectionError("rival_seeds must be non-empty")
    for s in rival:
        if not 0 <= s < graph.num_nodes:
            raise SeedSelectionError(f"rival seed {s} out of range")

    generator = as_rng(rng)
    memo = blocking_memo() if rng is not None and cache_enabled() else None
    key: Any = None
    if memo is not None:
        key = (
            graph.fingerprint,
            params_token(model),
            tuple(rival),
            int(k),
            int(rounds),
            int(candidate_pool),
            resolve_kernel(kernel),
            rng_token(generator),
        )
        hit = memo.get(key)
        if hit is not None:
            result, end_state = hit
            set_rng_state(generator, end_state)
            assert isinstance(result, BlockingResult)
            return result
    crn_base = int(generator.integers(0, 2**62))
    runner = resolve_executor(executor)

    degrees = graph.out_degrees().astype(float)
    degrees += generator.random(graph.num_nodes) * 1e-9
    pool = set(np.argsort(-degrees)[: min(candidate_pool, graph.num_nodes)].tolist())
    for s in rival:
        pool.update(int(v) for v in graph.out_neighbors(s))
    pool.difference_update(rival)
    candidates = sorted(int(c) for c in pool)
    if len(candidates) < k:
        raise SeedSelectionError(
            f"only {len(candidates)} candidates available for budget k={k}"
        )

    baseline_job = _blocking_job(graph, model, rival, [], rounds, crn_base, kernel)
    baseline = runner.estimates([baseline_job], rng=generator)[0][0].mean

    blockers: list[int] = []
    for _ in range(k):
        remaining = [c for c in candidates if c not in blockers]
        jobs = [
            _blocking_job(
                graph, model, rival, blockers + [c], rounds, crn_base, kernel
            )
            for c in remaining
        ]
        results = runner.estimates(jobs, rng=generator)
        best_candidate = -1
        best_spread = float("inf")
        for c, estimates in zip(remaining, results):
            spread = estimates[0].mean
            if spread < best_spread:
                best_spread = spread
                best_candidate = c
        blockers.append(best_candidate)

    final_job = _blocking_job(graph, model, rival, blockers, rounds, crn_base, kernel)
    final = runner.estimates([final_job], rng=generator)[0]
    result = BlockingResult(
        blockers=blockers,
        rival_spread_before=baseline,
        rival_spread_after=final[0].mean,
        blocker_spread=final[1].mean,
    )
    if memo is not None:
        memo.put(key, (result, rng_state(generator)), nbytes=8 * len(blockers) + 512)
    return result
