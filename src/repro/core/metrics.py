"""Seed-overlap and coefficient metrics (Theorem 1, Corollary 1, Figures 3/4/10).

The paper characterizes the competitive payoff entries through four
coefficients relative to the non-competitive spreads ``g`` (strategy φ1)
and ``h`` (strategy φ2)::

    σ1(φ1, φ1) = λ·g        λ ∈ [1/2, 1 − ε1/(2g)]
    σ1(φ2, φ2) = γ·h        γ ∈ [1/2, 1 − ε2/(2h)]
    σ1(φ1, φ2) = α·g        α + β ∈ [1, 1 + (g − ε)/h]
    σ2(φ1, φ2) = β·h

This module estimates all of them — plus the Jaccard seed overlaps of
Figures 3 and 4 — by Monte-Carlo simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.algorithms.base import SeedSelector
from repro.cascade.base import CascadeModel
from repro.cascade.simulate import (
    SpreadEstimate,
    estimate_competitive_spread,
    estimate_spread,
)
from repro.graphs.digraph import DiGraph
from repro.utils.rng import RandomSource, as_rng
from repro.utils.validation import check_positive_int


def jaccard(first: Sequence[int], second: Sequence[int]) -> float:
    """Jaccard similarity ``|S1 ∩ S2| / |S1 ∪ S2|`` of two seed sets."""
    a, b = set(first), set(second)
    union = a | b
    if not union:
        return 1.0
    return len(a & b) / len(union)


def seed_overlap_profile(
    graph: DiGraph,
    first: SeedSelector,
    second: SeedSelector,
    k: int,
    repeats: int = 5,
    rng: RandomSource = None,
) -> SpreadEstimate:
    """Average Jaccard similarity of independently drawn seed sets.

    Each repeat draws fresh seeds from both algorithms, reproducing the
    sampling the paper averages over in Figures 3 and 4.
    """
    check_positive_int(k, "k")
    check_positive_int(repeats, "repeats")
    generator = as_rng(rng)
    values = []
    for _ in range(repeats):
        s1 = first.select(graph, k, generator)
        s2 = second.select(graph, k, generator)
        values.append(jaccard(s1, s2))
    return SpreadEstimate.from_values(values)


@dataclass(frozen=True)
class CoefficientEstimates:
    """Estimated g, h, λ, γ, α, β (and the overlap terms ε) for a strategy pair."""

    g: float
    h: float
    lam: float
    gamma: float
    alpha: float
    beta: float
    epsilon_same_1: float
    epsilon_same_2: float
    epsilon_cross: float

    @property
    def alpha_plus_beta(self) -> float:
        return self.alpha + self.beta

    def theorem1_bounds(self) -> dict[str, tuple[float, float]]:
        """The intervals Theorem 1 / Corollary 1 predict for λ, γ, α+β."""
        lam_hi = 1.0 - self.epsilon_same_1 / (2.0 * self.g) if self.g > 0 else 1.0
        gamma_hi = 1.0 - self.epsilon_same_2 / (2.0 * self.h) if self.h > 0 else 1.0
        ab_hi = (
            1.0 + (self.g - self.epsilon_cross) / self.h if self.h > 0 else float("inf")
        )
        return {
            "lambda": (0.5, lam_hi),
            "gamma": (0.5, gamma_hi),
            "alpha+beta": (1.0, ab_hi),
        }

    def as_row(self) -> dict[str, object]:
        return {
            "g": self.g,
            "h": self.h,
            "lambda": self.lam,
            "gamma": self.gamma,
            "alpha": self.alpha,
            "beta": self.beta,
            "alpha+beta": self.alpha_plus_beta,
        }


def estimate_coefficients(
    graph: DiGraph,
    model: CascadeModel,
    phi1: SeedSelector,
    phi2: SeedSelector,
    k: int,
    rounds: int = 30,
    rng: RandomSource = None,
) -> CoefficientEstimates:
    """Estimate the paper's coefficients for the pair (φ1, φ2) at budget *k*.

    One independent seed draw per group per strategy; *rounds* simulations
    per quantity.  The ε terms are the non-competitive spreads of the seed
    intersections, matching ``ε_i = E(σ0(S1 ∩ S2))`` in Theorem 1.
    """
    check_positive_int(k, "k")
    generator = as_rng(rng)
    s1_a = phi1.select(graph, k, generator)
    s1_b = phi1.select(graph, k, generator)
    s2_a = phi2.select(graph, k, generator)
    s2_b = phi2.select(graph, k, generator)
    return estimate_coefficients_from_seeds(
        graph, model, s1_a, s1_b, s2_a, s2_b, rounds, generator
    )


def coefficient_sweep(
    graph: DiGraph,
    model: CascadeModel,
    phi1: SeedSelector,
    phi2: SeedSelector,
    ks: Sequence[int],
    rounds: int = 30,
    rng: RandomSource = None,
) -> list[tuple[int, CoefficientEstimates]]:
    """Coefficients for every budget in *ks* from one seed draw at ``max(ks)``.

    Exploits the prefix-consistency contract of seed selectors (the first
    ``k`` seeds of a ``k_max`` run are the ``k``-budget answer), so the
    expensive greedy selection runs once per strategy instead of once per
    budget — the same trick the paper's figures rely on when sweeping k.
    """
    if not ks:
        return []
    generator = as_rng(rng)
    k_max = max(ks)
    s1_a = phi1.select(graph, k_max, generator)
    s1_b = phi1.select(graph, k_max, generator)
    s2_a = phi2.select(graph, k_max, generator)
    s2_b = phi2.select(graph, k_max, generator)
    results = []
    for k in ks:
        coeff = estimate_coefficients_from_seeds(
            graph,
            model,
            s1_a[:k],
            s1_b[:k],
            s2_a[:k],
            s2_b[:k],
            rounds,
            generator,
        )
        results.append((k, coeff))
    return results


def estimate_coefficients_from_seeds(
    graph: DiGraph,
    model: CascadeModel,
    s1_a: Sequence[int],
    s1_b: Sequence[int],
    s2_a: Sequence[int],
    s2_b: Sequence[int],
    rounds: int = 30,
    rng: RandomSource = None,
) -> CoefficientEstimates:
    """Coefficient estimation from pre-drawn seed sets.

    ``s1_a``/``s1_b`` are two independent draws of strategy φ1 (one per
    group), ``s2_a``/``s2_b`` of φ2.
    """
    check_positive_int(rounds, "rounds")
    generator = as_rng(rng)

    g = estimate_spread(graph, model, s1_a, rounds, generator).mean
    h = estimate_spread(graph, model, s2_a, rounds, generator).mean

    same1 = estimate_competitive_spread(
        graph, model, [s1_a, s1_b], rounds, generator
    )
    same2 = estimate_competitive_spread(
        graph, model, [s2_a, s2_b], rounds, generator
    )
    cross = estimate_competitive_spread(
        graph, model, [s1_a, s2_a], rounds, generator
    )

    def overlap_spread(first: Sequence[int], second: Sequence[int]) -> float:
        shared = sorted(set(first) & set(second))
        if not shared:
            return 0.0
        return estimate_spread(graph, model, shared, rounds, generator).mean

    lam = same1[0].mean / g if g > 0 else 0.5
    gamma = same2[0].mean / h if h > 0 else 0.5
    alpha = cross[0].mean / g if g > 0 else 0.5
    beta = cross[1].mean / h if h > 0 else 0.5

    return CoefficientEstimates(
        g=g,
        h=h,
        lam=lam,
        gamma=gamma,
        alpha=alpha,
        beta=beta,
        epsilon_same_1=overlap_spread(s1_a, s1_b),
        epsilon_same_2=overlap_spread(s2_a, s2_b),
        epsilon_cross=overlap_spread(s1_a, s2_a),
    )
