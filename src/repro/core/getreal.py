"""The GetReal algorithm (Algorithm 1 of the paper).

Given a competitive network, a group space Ψ of size *r* and a strategy
space Φ of size *z*:

1. estimate the expected influence ``σ_i(φ_t1 .. φ_tr)`` of every group
   under every r-order strategy profile (Monte-Carlo, lines 2–4);
2. look for a **symmetric pure-strategy Nash equilibrium**: a diagonal
   profile ``(φ_i, .., φ_i)`` from which no group gains by deviating
   (lines 5–7; Nash's symmetry theorem justifies checking only diagonals);
3. otherwise solve the indifference equation system for the **symmetric
   mixed equilibrium** (lines 8–10; Equation (3) in the 2×2 case).

The returned :class:`GetRealResult` carries the recommended
:class:`MixedStrategy` (one-hot for a pure equilibrium), the estimated
payoff table, and the NE-search time — the quantity the paper's Table 4
reports.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.algorithms.base import SeedSelector
from repro.cascade.base import CascadeModel
from repro.cascade.competitive import ClaimRule, TieBreakRule
from repro.cascade.kernels import resolve_kernel
from repro.core.payoff import PayoffTable, estimate_payoff_table, resolve_symmetry
from repro.core.strategy import MixedStrategy, StrategySpace
from repro.exec.executor import Executor
from repro.game.mixed import (
    regret_of_symmetric_mixture,
    symmetric_mixed_equilibrium,
)
from repro.game.normal_form import NormalFormGame
from repro.game.pure import is_pure_equilibrium
from repro.graphs.digraph import DiGraph
from repro.obs.journal import RunJournal, current_journal
from repro.obs.log import get_logger
from repro.obs.metrics import counter
from repro.obs.trace import span
from repro.utils.rng import RandomSource
from repro.utils.timing import Stopwatch

_LOG = get_logger("core.getreal")

_RUNS = counter("getreal.runs")


@dataclass(frozen=True)
class GetRealResult:
    """Outcome of a GetReal run.

    Attributes
    ----------
    kind:
        ``"pure"`` if a symmetric pure NE was found, else ``"mixed"``.
    mixture:
        The recommended strategy for every group (one-hot when pure).
    game:
        The estimated normal-form game the equilibrium was computed on.
    payoff_table:
        Full Monte-Carlo table (None when solving a pre-built game).
    pure_index:
        Index of the pure equilibrium strategy, or None.
    solve_seconds:
        Wall-clock time of the NE search alone (Algorithm 1 lines 5–11) —
        the paper's Table 4 quantity.
    regret:
        Residual max-deviation gain at the returned mixture (0 for an exact
        pure equilibrium); a noise diagnostic for estimated games.
    """

    kind: str
    mixture: MixedStrategy
    game: NormalFormGame
    payoff_table: PayoffTable | None
    pure_index: int | None
    solve_seconds: float
    regret: float

    def describe(self) -> str:
        """One-line human-readable summary."""
        if self.kind == "pure":
            name = self.mixture.space[self.pure_index].name
            return f"pure NE: every group plays {name}"
        return f"mixed NE: {self.mixture.describe()}"


def symmetrize(game: NormalFormGame) -> NormalFormGame:
    """Average out estimation noise by enforcing player symmetry.

    For a symmetric game, player *i*'s payoff depends only on its own action
    and the *multiset* of rivals' actions; Monte-Carlo estimates break the
    identity by noise.  Pooling every (own action, rival multiset) cell
    yields the symmetric game closest to the estimates.
    """
    z_counts = set(game.payoffs.shape[:-1])
    if len(z_counts) != 1:
        raise ValueError("symmetrize requires equal action counts")
    r = game.num_players

    sums: dict[tuple[int, tuple[int, ...]], float] = {}
    counts: dict[tuple[int, tuple[int, ...]], int] = {}
    for profile in game.profiles():
        for i in range(r):
            others = tuple(sorted(profile[:i] + profile[i + 1:]))
            key = (profile[i], others)
            sums[key] = sums.get(key, 0.0) + game.payoffs[profile][i]
            counts[key] = counts.get(key, 0) + 1

    tensor = np.zeros_like(game.payoffs)
    for profile in game.profiles():
        for i in range(r):
            others = tuple(sorted(profile[:i] + profile[i + 1:]))
            key = (profile[i], others)
            tensor[profile + (i,)] = sums[key] / counts[key]
    return NormalFormGame(tensor, action_labels=game.action_labels)


def solve_strategy_game(
    game: NormalFormGame,
    space: StrategySpace,
    payoff_table: PayoffTable | None = None,
    atol: float = 1e-9,
) -> GetRealResult:
    """Algorithm 1 lines 5–11: find the symmetric pure or mixed NE of *game*."""
    if game.num_actions(0) != space.size:
        raise ValueError(
            f"game has {game.num_actions(0)} actions but the space has "
            f"{space.size} strategies"
        )
    watch = Stopwatch()
    symmetric_game: NormalFormGame | None = None
    with watch:
        # Lines 5-7: examine the z diagonal profiles for a pure equilibrium.
        z = space.size
        r = game.num_players
        pure_candidates = [
            a for a in range(z) if is_pure_equilibrium(game, (a,) * r, atol)
        ]
        if pure_candidates:
            # Several diagonal equilibria can coexist (coordination games);
            # recommend the one with the highest expected influence.
            best = max(
                pure_candidates, key=lambda a: game.payoff((a,) * r, 0)
            )
            mixture = MixedStrategy.pure(space, best)
            kind, pure_index = "pure", best
        else:
            # Lines 8-10: symmetric mixed equilibrium via indifference.
            symmetric_game = symmetrize(game)
            weights = symmetric_mixed_equilibrium(symmetric_game)
            mixture = MixedStrategy(space, weights)
            if mixture.is_pure:
                # The indifference solver landed on a corner: a diagonal
                # profile that is an equilibrium of the *symmetrized* game
                # even though estimation noise hid it from the raw check.
                # Report it as the pure strategy it is.
                kind = "pure"
                pure_index = int(np.argmax(weights))
            else:
                kind, pure_index = "mixed", None
    # Regret is always evaluated on the symmetrized game; reuse the mixed
    # branch's tensor instead of recomputing it (the pure branch, which
    # never symmetrized, builds it here once).
    if symmetric_game is None:
        symmetric_game = symmetrize(game)
    regret = regret_of_symmetric_mixture(symmetric_game, mixture.probabilities)
    return GetRealResult(
        kind=kind,
        mixture=mixture,
        game=game,
        payoff_table=payoff_table,
        pure_index=pure_index,
        solve_seconds=watch.elapsed,
        regret=max(0.0, regret),
    )


def get_real(
    graph: DiGraph,
    model: CascadeModel,
    strategies: StrategySpace | Sequence[SeedSelector],
    num_groups: int = 2,
    k: int = 30,
    rounds: int = 30,
    seed_draws: int = 1,
    rng: RandomSource = None,
    tie_break: TieBreakRule = TieBreakRule.UNIFORM,
    claim_rule: ClaimRule = ClaimRule.PROPORTIONAL,
    journal: RunJournal | None = None,
    executor: Executor | None = None,
    kernel: str | None = None,
    symmetry: str | None = None,
) -> GetRealResult:
    """Run the full GetReal pipeline: estimate payoffs, then find the NE.

    Parameters mirror the paper's setting: *num_groups* rival companies
    each picking *k* seeds using some strategy from *strategies*, diffusing
    under *model* on *graph*.  *symmetry* selects full-profile vs
    symmetric-reduced payoff estimation (argument > ``REPRO_SYMMETRY`` >
    full; see :func:`repro.core.payoff.estimate_payoff_table`).

    When *journal* is given (or attached via
    :func:`repro.obs.attach_journal`), the run is journalled end to end:
    ``run_start`` with the full parameterization, one
    ``profile_start``/``profile_done`` pair per strategy profile,
    ``equilibrium_found`` with the recommendation, and ``run_end``.
    """
    space = (
        strategies
        if isinstance(strategies, StrategySpace)
        else StrategySpace(list(strategies))
    )
    sink = journal if journal is not None else current_journal()
    _RUNS.inc()
    _LOG.info(
        "get_real: %d nodes / %d arcs, strategies=%s, r=%d, k=%d, rounds=%d",
        graph.num_nodes,
        graph.num_edges,
        space.labels,
        num_groups,
        k,
        rounds,
    )
    started = time.perf_counter()
    if sink is not None:
        sink.run_start(
            "get_real",
            graph_nodes=graph.num_nodes,
            graph_edges=graph.num_edges,
            model=type(model).__name__,
            strategies=space.labels,
            num_groups=num_groups,
            k=k,
            rounds=rounds,
            seed_draws=seed_draws,
            tie_break=tie_break.value,
            claim_rule=claim_rule.value,
            kernel=resolve_kernel(kernel),
            symmetry=resolve_symmetry(symmetry),
        )
    try:
        # The run-level root span: every batch span (and, transitively,
        # every exec.job span on any backend) parents under this one, so
        # ``repro obs trace`` shows the whole pipeline as a single tree.
        with span(
            "getreal.run",
            journal=True,
            strategies=len(space.labels),
            num_groups=num_groups,
            k=k,
            rounds=rounds,
        ):
            table = estimate_payoff_table(
                graph,
                model,
                space,
                num_groups=num_groups,
                k=k,
                rounds=rounds,
                seed_draws=seed_draws,
                rng=rng,
                tie_break=tie_break,
                claim_rule=claim_rule,
                journal=sink,
                executor=executor,
                kernel=kernel,
                symmetry=symmetry,
            )
            result = solve_strategy_game(
                table.to_game(), space, payoff_table=table
            )
    except Exception as exc:
        if sink is not None:
            sink.run_end(
                status="error",
                duration_seconds=time.perf_counter() - started,  # reprolint: disable=RP009
                error=f"{type(exc).__name__}: {exc}",
            )
        raise
    _LOG.info(
        "equilibrium: %s (regret=%.4f, NE search %.2f ms)",
        result.describe(),
        result.regret,
        result.solve_seconds * 1000,
    )
    if sink is not None:
        sink.equilibrium_found(
            kind=result.kind,
            probabilities=result.mixture.probabilities,
            labels=space.labels,
            regret=result.regret,
            solve_seconds=result.solve_seconds,
        )
        sink.run_end(
            status="ok",
            duration_seconds=time.perf_counter() - started,  # reprolint: disable=RP009
        )
    return result
