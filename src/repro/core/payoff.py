"""Monte-Carlo estimation of the expected-influence table Σ(Ψr, Φr).

This is lines 2–4 of Algorithm 1: for every r-order strategy profile
``(φ_t1, .., φ_tr)`` estimate the expected competitive influence of every
group.  Two sources of randomness are integrated over:

* **algorithm randomness** — each group draws its *own* seed set from its
  strategy (crucial: two groups playing the same greedy algorithm get
  overlapping but distinct seeds, which is what makes λ > 1/2 in Theorem 1);
* **diffusion randomness** — initiator assignment for contested seeds and
  the cascade itself.

``seed_draws`` controls how many independent seed-set draws are averaged;
``rounds`` is the total number of diffusion simulations per profile, split
as evenly as possible across the draws (the first ``rounds % seed_draws``
draws run one extra simulation, so all *rounds* simulations always run).

**Work sharing.**  Two reductions cut the simulation bill without changing
semantics:

* *Shared snapshot pools* — phase 1 hands one
  :class:`~repro.cascade.pools.SnapshotPool` per ``(draw, group)`` to every
  strategy of that group, so MixGreedy and CELFGreedy sample live edges and
  compute NewGreedy initial gains once per group instead of once per
  strategy.  Pools are never shared *across* groups: identical strategies in
  different groups keep independently randomized seed sets (Theorem 1).
* *Symmetric-profile reduction* (``symmetry="reduce"``, or the
  ``REPRO_SYMMETRY`` env var) — the game is player-symmetric, so only the
  ``C(z+r-1, r)`` sorted-multiset profiles carry distinct information.  In
  reduce mode only canonical profiles are simulated, with the ``rounds``
  budget reallocated onto them (see :func:`symmetric_profile_plan`), and the
  remaining ``z^r − C(z+r-1, r)`` cells are filled by player permutation of
  the pooled estimates.  The resulting :meth:`PayoffTable.to_game` tensor is
  *exactly* player-symmetric.  Precedence matches the kernel switch:
  explicit ``symmetry=`` argument > ``REPRO_SYMMETRY`` > ``"full"``.

All profile simulations are independent, so they are fanned out as **one
batch** through the execution engine: seed sets are drawn sequentially up
front (they consume the caller's generator), then one
:class:`~repro.exec.jobs.CompetitiveJob` per (draw, profile) cell is
submitted and the per-draw estimates are pooled exactly via
:meth:`SpreadEstimate.__add__`.  Results are bit-identical across
backends and worker counts for a fixed master seed; phase 1 is identical
in both symmetry modes, so full and reduce runs consume the caller's
generator in the same way.
"""

from __future__ import annotations

import math
import os
from collections import Counter
from dataclasses import dataclass
from itertools import combinations_with_replacement, product
from collections.abc import Sequence

import numpy as np

from repro.cascade.base import CascadeModel
from repro.cascade.competitive import ClaimRule, TieBreakRule
from repro.cascade.pools import SnapshotPool
from repro.cascade.simulate import SpreadEstimate
from repro.core.strategy import StrategySpace
from repro.errors import PayoffEstimationError
from repro.exec.executor import Executor, resolve_executor
from repro.exec.jobs import CompetitiveJob
from repro.game.normal_form import NormalFormGame
from repro.graphs.digraph import DiGraph
from repro.graphs.store import maybe_ref
from repro.lint import contracts
from repro.obs.journal import RunJournal, current_journal
from repro.obs.log import get_logger
from repro.obs.metrics import counter, histogram
from repro.utils.rng import RandomSource, as_rng
from repro.utils.validation import check_positive_int

_LOG = get_logger("core.payoff")

_TABLES = counter("payoff.tables_estimated")
_PROFILES = counter("payoff.profiles_estimated")
_PROFILES_FILLED = counter("payoff.profiles_filled")
_PROFILE_SECONDS = histogram("payoff.profile_seconds")

#: Environment variable selecting the process-wide default symmetry mode.
SYMMETRY_ENV_VAR = "REPRO_SYMMETRY"

#: Known symmetry modes, in documentation order.
SYMMETRY_MODES = ("full", "reduce")


def resolve_symmetry(symmetry: str | None = None) -> str:
    """Resolve the symmetry mode: explicit arg > ``REPRO_SYMMETRY`` > full.

    Mirrors :func:`repro.cascade.kernels.resolve_kernel` exactly, so the two
    switches compose predictably from the CLI, env vars, and config fields.
    """
    resolved = symmetry or os.environ.get(SYMMETRY_ENV_VAR, "").strip() or "full"
    if resolved not in SYMMETRY_MODES:
        raise PayoffEstimationError(
            f"unknown symmetry mode {resolved!r}; known: {SYMMETRY_MODES}"
        )
    return resolved


def canonical_profile(profile: Sequence[int]) -> tuple[int, ...]:
    """The sorted-multiset representative of *profile*'s permutation class."""
    return tuple(sorted(int(a) for a in profile))


def profile_multiplicity(profile: Sequence[int]) -> int:
    """Number of distinct permutations of *profile* (multinomial count)."""
    counts = Counter(int(a) for a in profile)
    mult = math.factorial(len(tuple(profile)))
    for c in counts.values():
        mult //= math.factorial(c)
    return mult


def symmetric_profile_plan(
    z: int, r: int, rounds: int, seed_draws: int = 1
) -> list[tuple[tuple[int, ...], int, int]]:
    """Budget plan for ``symmetry="reduce"``: (profile, weight, rounds) triples.

    One triple per canonical profile (``C(z+r-1, r)`` of them).  *weight* is
    the number of ``z^r`` tensor cells the profile represents.  Its round
    budget is ``max(ceil(rounds/2), ceil(rounds·weight/r!), seed_draws)``:
    the middle term reallocates the freed budget proportionally to how many
    cells a canonical estimate serves (a cell filled from a ``weight``-way
    pooled estimate would otherwise over-sample relative to the full mode's
    per-cell ``rounds``), and the ``rounds/2`` floor caps the per-cell
    standard-error inflation of rare profiles at ``sqrt(2)``.  At
    ``z = r = 3`` the plan totals ``5.5·rounds`` simulated rounds against
    the full mode's ``27·rounds``.
    """
    check_positive_int(z, "z")
    check_positive_int(r, "r")
    check_positive_int(rounds, "rounds")
    check_positive_int(seed_draws, "seed_draws")
    total_perms = math.factorial(r)
    floor_rounds = math.ceil(rounds / 2)
    plan = []
    for profile in combinations_with_replacement(range(z), r):
        weight = profile_multiplicity(profile)
        alloc = max(floor_rounds, math.ceil(rounds * weight / total_perms), seed_draws)
        plan.append((profile, weight, alloc))
    return plan


def _canonical_assignment(
    profile: tuple[int, ...],
) -> tuple[tuple[int, ...], list[int]]:
    """Map *profile* onto its canonical representative, position by position.

    Returns ``(canonical, mapping)`` where player *i* of *profile* takes the
    estimate of player ``mapping[i]`` in the canonical profile.  Repeated
    actions are assigned in order of appearance, so the mapping is a
    well-defined permutation and the canonical profile maps to itself with
    the identity.
    """
    canonical = canonical_profile(profile)
    pos_by_action: dict[int, list[int]] = {}
    for j, action in enumerate(canonical):
        pos_by_action.setdefault(action, []).append(j)
    used = dict.fromkeys(pos_by_action, 0)
    mapping = []
    for action in profile:
        j = pos_by_action[action][used[action]]
        used[action] += 1
        mapping.append(j)
    return canonical, mapping


def _split_rounds(total: int, parts: int) -> list[int]:
    """Split *total* rounds as evenly as possible over *parts* draws.

    The first ``total % parts`` draws run one extra simulation, so the parts
    always sum to exactly *total*.
    """
    base, remainder = divmod(total, parts)
    return [base + (1 if draw < remainder else 0) for draw in range(parts)]


@dataclass(frozen=True)
class PayoffTable:
    """Estimated Σ(Ψr, Φr) with sampling metadata.

    ``estimates[profile][player]`` is a :class:`SpreadEstimate`;
    :meth:`to_game` converts the means into a :class:`NormalFormGame` for
    the equilibrium machinery.  Under ``symmetry="reduce"`` the dict still
    holds every ``z^r`` profile, but permutation-equivalent cells share the
    same pooled estimate objects.
    """

    space: StrategySpace
    num_groups: int
    k: int
    estimates: dict[tuple[int, ...], tuple[SpreadEstimate, ...]]
    rounds: int
    seed_draws: int
    symmetry: str = "full"

    def estimate(self, profile: Sequence[int], player: int) -> SpreadEstimate:
        """The spread estimate for *player* under *profile*."""
        return self.estimates[tuple(int(a) for a in profile)][player]

    def to_game(self) -> NormalFormGame:
        """Means of the estimates as a normal-form game tensor."""
        z, r = self.space.size, self.num_groups
        tensor = np.zeros((z,) * r + (r,))
        for profile, per_player in self.estimates.items():
            for i, est in enumerate(per_player):
                tensor[profile + (i,)] = est.mean
        return NormalFormGame(tensor, action_labels=self.space.labels)

    def max_stderr(self) -> float:
        """Largest standard error in the table — a noise diagnostic."""
        return max(
            est.stderr
            for per_player in self.estimates.values()
            for est in per_player
        )

    def rows(self) -> list[dict[str, object]]:
        """Row dicts (one per profile/player) for text-table rendering."""
        out = []
        for profile in sorted(self.estimates):
            labels = "-".join(self.space[a].name for a in profile)
            for i, est in enumerate(self.estimates[profile]):
                out.append(
                    {
                        "profile": labels,
                        "group": f"p{i + 1}",
                        "spread": est.mean,
                        "stderr": est.stderr,
                    }
                )
        return out


def estimate_payoff_table(
    graph: DiGraph,
    model: CascadeModel,
    space: StrategySpace,
    num_groups: int = 2,
    k: int = 30,
    rounds: int = 30,
    seed_draws: int = 1,
    rng: RandomSource = None,
    tie_break: TieBreakRule = TieBreakRule.UNIFORM,
    claim_rule: ClaimRule = ClaimRule.PROPORTIONAL,
    journal: RunJournal | None = None,
    executor: Executor | None = None,
    kernel: str | None = None,
    symmetry: str | None = None,
) -> PayoffTable:
    """Estimate the full payoff table for *num_groups* groups over *space*.

    In the default ``symmetry="full"`` mode every profile in ``Φ^r`` is
    simulated; for games of GetReal scale (``z, r ≤ 3``) this is at most 27
    profiles.  Per profile, *rounds* competitive diffusions are run, split
    as evenly as possible over *seed_draws* independent seed-set draws per
    (group, strategy) pair — when ``rounds % seed_draws != 0`` the first
    ``rounds % seed_draws`` draws run one extra simulation, so exactly
    *rounds* simulations run per profile.  Under ``symmetry="reduce"``
    (argument > ``REPRO_SYMMETRY`` env var > full) only the canonical
    sorted-multiset profiles are simulated, with per-profile budgets from
    :func:`symmetric_profile_plan`, and the remaining cells are filled by
    player permutation — see the module docstring.  All cells are submitted
    to *executor* (or the env-configured default) as a single batch, each
    running the diffusion *kernel* (``None``: ``REPRO_KERNEL`` fallback).

    Phase 1 (seed selection) is identical in both modes: every strategy of
    every group draws its seed set per draw, against a per-(draw, group)
    shared :class:`~repro.cascade.pools.SnapshotPool`.

    When *journal* is given (or a journal is attached via
    :func:`repro.obs.attach_journal`), a ``profile_start`` event is
    emitted when each simulated profile is first submitted and a
    ``profile_done`` event — per-player mean/stderr plus summed per-job
    wall-clock duration — once its estimates are pooled.
    """
    r = check_positive_int(num_groups, "num_groups")
    check_positive_int(k, "k")
    check_positive_int(rounds, "rounds")
    check_positive_int(seed_draws, "seed_draws")
    if rounds < seed_draws:
        raise PayoffEstimationError(
            f"rounds={rounds} must be >= seed_draws={seed_draws}"
        )
    resolved_symmetry = resolve_symmetry(symmetry)
    generator = as_rng(rng)
    z = space.size
    sink = journal if journal is not None else current_journal()

    # The profile plan: which profiles are simulated, at what total budget.
    profiles = list(product(range(z), repeat=r))
    if resolved_symmetry == "reduce":
        simulated = [
            (profile, alloc)
            for profile, _weight, alloc in symmetric_profile_plan(
                z, r, rounds, seed_draws
            )
        ]
    else:
        simulated = [(profile, rounds) for profile in profiles]
    _LOG.info(
        "estimating payoff table: z=%d strategies, r=%d groups, "
        "%d/%d profiles simulated [%s], %d total rounds "
        "(k=%d, %d seed draws)",
        z,
        r,
        len(simulated),
        len(profiles),
        resolved_symmetry,
        sum(alloc for _p, alloc in simulated),
        k,
        seed_draws,
    )

    # Phase 1 (sequential): draw seed sets.  S[draw][i][j] is what group i
    # would seed if it played strategy j in this draw.  These consume the
    # caller's generator in a fixed order, independent of the backend and
    # of the symmetry mode.  One snapshot pool per (draw, group) shares the
    # live-edge sample among that group's strategies; pools stay private to
    # their group so identical strategies across groups remain
    # independently randomized (Theorem 1).
    all_seed_sets = []
    for _draw in range(seed_draws):
        draw_sets = []
        for _group in range(r):
            group_pool = SnapshotPool(graph)
            draw_sets.append(
                [space[j].select(graph, k, generator, pool=group_pool) for j in range(z)]
            )
        all_seed_sets.append(draw_sets)

    # Phase 2: one job per (draw, simulated profile) cell, in deterministic
    # order.
    job_cells: list[tuple[int, tuple[int, ...]]] = []
    jobs: list[CompetitiveJob] = []
    payload = maybe_ref(graph)  # O(1) GraphRef when REPRO_GRAPH_STORE is set
    for draw in range(seed_draws):
        seed_sets = all_seed_sets[draw]
        for profile, profile_rounds in simulated:
            if sink is not None and draw == 0:
                labels = [space[a].name for a in profile]
                sink.profile_start(profile, labels)
            jobs.append(
                CompetitiveJob(
                    graph=payload,
                    model=model,
                    seed_sets=tuple(
                        tuple(int(s) for s in seed_sets[i][profile[i]])
                        for i in range(r)
                    ),
                    rounds=_split_rounds(profile_rounds, seed_draws)[draw],
                    tie_break=tie_break,
                    claim_rule=claim_rule,
                    kernel=kernel,
                )
            )
            job_cells.append((draw, profile))
    outcomes = resolve_executor(executor).run(jobs, rng=generator)

    # Phase 3: pool the per-draw estimates per profile (exact — pooling
    # via ``__add__`` equals estimating from the concatenated samples).
    accumulated: dict[tuple[int, ...], list[SpreadEstimate]] = {}
    durations: dict[tuple[int, ...], float] = {}
    for (_draw, profile), outcome in zip(job_cells, outcomes):
        ests = outcome.estimates
        durations[profile] = durations.get(profile, 0.0) + outcome.job_seconds
        if profile in accumulated:
            accumulated[profile] = [
                prev + new for prev, new in zip(accumulated[profile], ests)
            ]
        else:
            accumulated[profile] = list(ests)

    for profile, _profile_rounds in simulated:
        pooled = accumulated[profile]
        labels = [space[a].name for a in profile]
        # Once per pooled profile (not per (draw, profile) job), so the
        # counter reports the number of *simulated* profiles regardless of
        # seed_draws.
        _PROFILES.inc()
        _PROFILE_SECONDS.observe(durations[profile])
        if contracts.enabled():
            contracts.check_spreads(
                [est.mean for est in pooled], graph.num_nodes, "mean spreads"
            )
        _LOG.debug(
            "profile %s done: means=%s (%.3fs)",
            "-".join(labels),
            [round(est.mean, 2) for est in pooled],
            durations[profile],
        )
        if sink is not None:
            sink.profile_done(
                profile,
                labels,
                players=[
                    {
                        "group": i,
                        "mean": est.mean,
                        "stderr": est.stderr,
                        "std": est.std,
                        "samples": est.samples,
                    }
                    for i, est in enumerate(pooled)
                ],
                duration_seconds=durations[profile],
            )

    # Phase 4 (reduce mode only): fill the non-canonical cells by player
    # permutation of the pooled canonical estimates.  The per-player
    # assignment is order-preserving, so the filled tensor is exactly
    # player-symmetric and permutation-consistent.
    if resolved_symmetry == "reduce":
        for profile in profiles:
            if profile in accumulated:
                continue
            canonical, mapping = _canonical_assignment(profile)
            source = accumulated[canonical]
            accumulated[profile] = [source[j] for j in mapping]
            _PROFILES_FILLED.inc()

    _TABLES.inc()
    estimates = {
        profile: tuple(ests) for profile, ests in accumulated.items()
    }
    return PayoffTable(
        space=space,
        num_groups=r,
        k=k,
        estimates=estimates,
        rounds=rounds,
        seed_draws=seed_draws,
        symmetry=resolved_symmetry,
    )
