"""Monte-Carlo estimation of the expected-influence table Σ(Ψr, Φr).

This is lines 2–4 of Algorithm 1: for every r-order strategy profile
``(φ_t1, .., φ_tr)`` estimate the expected competitive influence of every
group.  Two sources of randomness are integrated over:

* **algorithm randomness** — each group draws its *own* seed set from its
  strategy (crucial: two groups playing the same greedy algorithm get
  overlapping but distinct seeds, which is what makes λ > 1/2 in Theorem 1);
* **diffusion randomness** — initiator assignment for contested seeds and
  the cascade itself.

``seed_draws`` controls how many independent seed-set draws are averaged;
``rounds`` is the total number of diffusion simulations per profile, split
as evenly as possible across the draws (the first ``rounds % seed_draws``
draws run one extra simulation, so all *rounds* simulations always run).

All ``z^r x seed_draws`` profile simulations are independent, so they are
fanned out as **one batch** through the execution engine: seed sets are
drawn sequentially up front (they consume the caller's generator), then
one :class:`~repro.exec.jobs.CompetitiveJob` per (draw, profile) cell is
submitted and the per-draw estimates are pooled exactly via
:meth:`SpreadEstimate.__add__`.  Results are bit-identical across
backends and worker counts for a fixed master seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from collections.abc import Sequence

import numpy as np

from repro.cascade.base import CascadeModel
from repro.cascade.competitive import ClaimRule, TieBreakRule
from repro.cascade.simulate import SpreadEstimate
from repro.core.strategy import StrategySpace
from repro.errors import PayoffEstimationError
from repro.exec.executor import Executor, resolve_executor
from repro.exec.jobs import CompetitiveJob
from repro.game.normal_form import NormalFormGame
from repro.graphs.digraph import DiGraph
from repro.lint import contracts
from repro.obs.journal import RunJournal, current_journal
from repro.obs.log import get_logger
from repro.obs.metrics import counter, histogram
from repro.utils.rng import RandomSource, as_rng
from repro.utils.validation import check_positive_int

_LOG = get_logger("core.payoff")

_TABLES = counter("payoff.tables_estimated")
_PROFILES = counter("payoff.profiles_estimated")
_PROFILE_SECONDS = histogram("payoff.profile_seconds")


@dataclass(frozen=True)
class PayoffTable:
    """Estimated Σ(Ψr, Φr) with sampling metadata.

    ``estimates[profile][player]`` is a :class:`SpreadEstimate`;
    :meth:`to_game` converts the means into a :class:`NormalFormGame` for
    the equilibrium machinery.
    """

    space: StrategySpace
    num_groups: int
    k: int
    estimates: dict[tuple[int, ...], tuple[SpreadEstimate, ...]]
    rounds: int
    seed_draws: int

    def estimate(self, profile: Sequence[int], player: int) -> SpreadEstimate:
        """The spread estimate for *player* under *profile*."""
        return self.estimates[tuple(int(a) for a in profile)][player]

    def to_game(self) -> NormalFormGame:
        """Means of the estimates as a normal-form game tensor."""
        z, r = self.space.size, self.num_groups
        tensor = np.zeros((z,) * r + (r,))
        for profile, per_player in self.estimates.items():
            for i, est in enumerate(per_player):
                tensor[profile + (i,)] = est.mean
        return NormalFormGame(tensor, action_labels=self.space.labels)

    def max_stderr(self) -> float:
        """Largest standard error in the table — a noise diagnostic."""
        return max(
            est.stderr
            for per_player in self.estimates.values()
            for est in per_player
        )

    def rows(self) -> list[dict[str, object]]:
        """Row dicts (one per profile/player) for text-table rendering."""
        out = []
        for profile in sorted(self.estimates):
            labels = "-".join(self.space[a].name for a in profile)
            for i, est in enumerate(self.estimates[profile]):
                out.append(
                    {
                        "profile": labels,
                        "group": f"p{i + 1}",
                        "spread": est.mean,
                        "stderr": est.stderr,
                    }
                )
        return out


def estimate_payoff_table(
    graph: DiGraph,
    model: CascadeModel,
    space: StrategySpace,
    num_groups: int = 2,
    k: int = 30,
    rounds: int = 30,
    seed_draws: int = 1,
    rng: RandomSource = None,
    tie_break: TieBreakRule = TieBreakRule.UNIFORM,
    claim_rule: ClaimRule = ClaimRule.PROPORTIONAL,
    journal: RunJournal | None = None,
    executor: Executor | None = None,
    kernel: str | None = None,
) -> PayoffTable:
    """Estimate the full payoff table for *num_groups* groups over *space*.

    Every profile in ``Φ^r`` is simulated; for games of GetReal scale
    (``z, r ≤ 3``) this is at most 27 profiles.  Per profile, *rounds*
    competitive diffusions are run, split as evenly as possible over
    *seed_draws* independent seed-set draws per (group, strategy) pair —
    when ``rounds % seed_draws != 0`` the first ``rounds % seed_draws``
    draws run one extra simulation, so exactly *rounds* simulations run
    per profile.  The ``seed_draws x z^r`` cells are submitted to
    *executor* (or the env-configured default) as a single batch, each
    running the diffusion *kernel* (``None``: ``REPRO_KERNEL`` fallback).

    When *journal* is given (or a journal is attached via
    :func:`repro.obs.attach_journal`), a ``profile_start`` event is
    emitted when each profile is first submitted and a ``profile_done``
    event — per-player mean/stderr plus summed per-job wall-clock
    duration — once its estimates are pooled.
    """
    r = check_positive_int(num_groups, "num_groups")
    check_positive_int(k, "k")
    check_positive_int(rounds, "rounds")
    check_positive_int(seed_draws, "seed_draws")
    if rounds < seed_draws:
        raise PayoffEstimationError(
            f"rounds={rounds} must be >= seed_draws={seed_draws}"
        )
    generator = as_rng(rng)
    z = space.size
    # Distribute rounds over draws without silently dropping the remainder:
    # draws 0..remainder-1 run one extra simulation each, so the per-profile
    # simulation count is exactly ``rounds`` for any seed_draws.
    rounds_per_draw, remainder = divmod(rounds, seed_draws)
    draw_rounds = [
        rounds_per_draw + (1 if draw < remainder else 0)
        for draw in range(seed_draws)
    ]
    sink = journal if journal is not None else current_journal()
    _LOG.info(
        "estimating payoff table: z=%d strategies, r=%d groups, "
        "%d profiles x %d rounds (k=%d, %d seed draws)",
        z,
        r,
        z**r,
        rounds,
        k,
        seed_draws,
    )

    # Phase 1 (sequential): draw seed sets.  S[draw][i][j] is what group i
    # would seed if it played strategy j in this draw.  These consume the
    # caller's generator in a fixed order, independent of the backend.
    all_seed_sets = [
        [
            [space[j].select(graph, k, generator) for j in range(z)]
            for i in range(r)
        ]
        for draw in range(seed_draws)
    ]

    # Phase 2: one job per (draw, profile) cell, in deterministic order.
    profiles = list(product(range(z), repeat=r))
    job_cells: list[tuple[int, tuple[int, ...]]] = []
    jobs: list[CompetitiveJob] = []
    for draw in range(seed_draws):
        seed_sets = all_seed_sets[draw]
        for profile in profiles:
            if sink is not None and draw == 0:
                labels = [space[a].name for a in profile]
                sink.profile_start(profile, labels)
            jobs.append(
                CompetitiveJob(
                    graph=graph,
                    model=model,
                    seed_sets=tuple(
                        tuple(int(s) for s in seed_sets[i][profile[i]])
                        for i in range(r)
                    ),
                    rounds=draw_rounds[draw],
                    tie_break=tie_break,
                    claim_rule=claim_rule,
                    kernel=kernel,
                )
            )
            job_cells.append((draw, profile))
    outcomes = resolve_executor(executor).run(jobs, rng=generator)

    # Phase 3: pool the per-draw estimates per profile (exact — pooling
    # via ``__add__`` equals estimating from the concatenated samples).
    accumulated: dict[tuple[int, ...], list[SpreadEstimate]] = {}
    durations: dict[tuple[int, ...], float] = {}
    for (_draw, profile), outcome in zip(job_cells, outcomes):
        ests = outcome.estimates
        durations[profile] = durations.get(profile, 0.0) + outcome.job_seconds
        if profile in accumulated:
            accumulated[profile] = [
                prev + new for prev, new in zip(accumulated[profile], ests)
            ]
        else:
            accumulated[profile] = list(ests)

    for profile in profiles:
        pooled = accumulated[profile]
        labels = [space[a].name for a in profile]
        # Once per pooled profile (not per (draw, profile) job), so the
        # counter reports z^r regardless of seed_draws.
        _PROFILES.inc()
        _PROFILE_SECONDS.observe(durations[profile])
        if contracts.enabled():
            contracts.check_spreads(
                [est.mean for est in pooled], graph.num_nodes, "mean spreads"
            )
        _LOG.debug(
            "profile %s done: means=%s (%.3fs)",
            "-".join(labels),
            [round(est.mean, 2) for est in pooled],
            durations[profile],
        )
        if sink is not None:
            sink.profile_done(
                profile,
                labels,
                players=[
                    {
                        "group": i,
                        "mean": est.mean,
                        "stderr": est.stderr,
                        "std": est.std,
                        "samples": est.samples,
                    }
                    for i, est in enumerate(pooled)
                ],
                duration_seconds=durations[profile],
            )

    _TABLES.inc()
    estimates = {
        profile: tuple(ests) for profile, ests in accumulated.items()
    }
    return PayoffTable(
        space=space,
        num_groups=r,
        k=k,
        estimates=estimates,
        rounds=rounds,
        seed_draws=seed_draws,
    )
