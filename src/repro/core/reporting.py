"""Serialization of GetReal results to and from plain JSON-able dicts.

Long experiment campaigns (the paper's R = 50-round sweeps) want payoff
tables persisted so equilibrium analysis can be re-run without re-paying
the Monte-Carlo cost.  Everything round-trips through ``dict``s containing
only JSON-native types; :func:`save_result` / :func:`load_payoff_table`
add the file layer.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.algorithms.base import SeedSelector, get_algorithm
from repro.cascade.simulate import SpreadEstimate
from repro.core.getreal import GetRealResult
from repro.core.payoff import PayoffTable
from repro.core.strategy import StrategySpace
from repro.errors import ReproError

PathLike = str | Path


def payoff_table_to_dict(table: PayoffTable) -> dict:
    """JSON-able representation of a payoff table."""
    return {
        "labels": table.space.labels,
        "num_groups": table.num_groups,
        "k": table.k,
        "rounds": table.rounds,
        "seed_draws": table.seed_draws,
        "estimates": [
            {
                "profile": list(profile),
                "per_group": [
                    {"mean": e.mean, "std": e.std, "samples": e.samples}
                    for e in per_group
                ],
            }
            for profile, per_group in sorted(table.estimates.items())
        ],
    }


def payoff_table_from_dict(
    data: dict,
    selectors: list[SeedSelector] | None = None,
) -> PayoffTable:
    """Rebuild a :class:`PayoffTable` from :func:`payoff_table_to_dict` output.

    *selectors* overrides the strategy objects; by default each label is
    re-instantiated from the algorithm registry (which works for all
    built-in strategy names).
    """
    labels = data["labels"]
    if selectors is None:
        try:
            selectors = [get_algorithm(name) for name in labels]
        except Exception as exc:
            raise ReproError(
                f"cannot re-instantiate strategies {labels}; pass `selectors`"
            ) from exc
    space = StrategySpace(selectors)
    if space.labels != labels:
        raise ReproError(
            f"provided selectors {space.labels} do not match stored {labels}"
        )
    estimates = {}
    for entry in data["estimates"]:
        profile = tuple(int(a) for a in entry["profile"])
        estimates[profile] = tuple(
            SpreadEstimate(
                mean=float(e["mean"]),
                std=float(e["std"]),
                samples=int(e["samples"]),
            )
            for e in entry["per_group"]
        )
    return PayoffTable(
        space=space,
        num_groups=int(data["num_groups"]),
        k=int(data["k"]),
        estimates=estimates,
        rounds=int(data["rounds"]),
        seed_draws=int(data["seed_draws"]),
    )


def result_to_dict(result: GetRealResult) -> dict:
    """JSON-able summary of a :class:`GetRealResult`."""
    return {
        "kind": result.kind,
        "labels": result.mixture.space.labels,
        "probabilities": [float(p) for p in result.mixture.probabilities],
        "pure_index": result.pure_index,
        "regret": result.regret,
        "solve_seconds": result.solve_seconds,
        "payoff_table": (
            payoff_table_to_dict(result.payoff_table)
            if result.payoff_table is not None
            else None
        ),
    }


def save_result(result: GetRealResult, path: PathLike) -> None:
    """Write a :class:`GetRealResult` summary as JSON."""
    Path(path).write_text(json.dumps(result_to_dict(result), indent=2))


def load_payoff_table(
    path: PathLike,
    selectors: list[SeedSelector] | None = None,
) -> PayoffTable:
    """Load the payoff table embedded in a saved result (or a bare table)."""
    data = json.loads(Path(path).read_text())
    if "payoff_table" in data:
        data = data["payoff_table"]
    if data is None:
        raise ReproError(f"{path} contains no payoff table")
    return payoff_table_from_dict(data, selectors)
