"""Iterated best-response dynamics in *seed space*.

The game-theoretic competitive-IM line the paper criticizes (Fazeli &
Jadbabaie; Tzoumas et al.) has companies select seeds *alternately*, each
observing and best-responding to the other's current choice "like playing
chess".  GetReal rejects the realism of that protocol; this module
implements it anyway so the two paradigms can be compared head to head:

* each round, one group replaces its entire seed set with the
  :class:`FollowerBestResponse` to the rival's current seeds;
* the process stops when a full round changes nobody's seeds (a pure
  Nash equilibrium *of the seed-selection game*) or after ``max_rounds``.

Convergence is not guaranteed (the seed game need not be a potential
game); the result records whether a fixed point was reached, and the
bench compares the dynamics' outcome with the GetReal equilibrium.

Each follower response goes through ``SeedSelector.select`` and therefore
through the work-sharing selection cache (:mod:`repro.cache`): when the
dynamics revisit a seed configuration already responded to at the same RNG
state — common once the process starts cycling — the response is served
from the memo, RNG state restored, bit-identically to a cold run.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.algorithms.follower import FollowerBestResponse
from repro.cascade.base import CascadeModel
from repro.cascade.simulate import estimate_competitive_spread
from repro.errors import SeedSelectionError
from repro.exec.executor import Executor
from repro.graphs.digraph import DiGraph
from repro.utils.rng import RandomSource, as_rng
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class BestResponseOutcome:
    """Result of iterated seed-space best response between two groups."""

    seeds: tuple[list[int], list[int]]
    rounds_played: int
    converged: bool
    spreads: tuple[float, float]
    history: list[tuple[float, float]]

    def describe(self) -> str:
        state = "converged" if self.converged else "cycled"
        return (
            f"best-response dynamics {state} after {self.rounds_played} "
            f"rounds; spreads {self.spreads[0]:.1f} / {self.spreads[1]:.1f}"
        )


def best_response_dynamics(
    graph: DiGraph,
    model: CascadeModel,
    initial_seeds: Sequence[Sequence[int]],
    k: int,
    max_rounds: int = 6,
    response_rounds: int = 8,
    candidate_pool: int = 60,
    eval_rounds: int = 30,
    rng: RandomSource = None,
    executor: Executor | None = None,
) -> BestResponseOutcome:
    """Run alternate seed selection until fixed point or *max_rounds*.

    Parameters
    ----------
    initial_seeds:
        Two starting seed sets (e.g. both groups' non-competitive picks).
    k:
        Budget per group; best responses always use the full budget.
    max_rounds:
        Full alternation rounds (each round both groups respond once).
    response_rounds / candidate_pool:
        Passed to :class:`FollowerBestResponse` per response.
    eval_rounds:
        Monte-Carlo simulations for the final/per-round spread report.
    executor:
        Execution engine for the batched follower sweeps and spread
        evaluations (defaults to the env-configured process-wide one).
    """
    if len(initial_seeds) != 2:
        raise SeedSelectionError("best-response dynamics is two-group")
    check_positive_int(k, "k")
    check_positive_int(max_rounds, "max_rounds")
    generator = as_rng(rng)

    seeds = [list(dict.fromkeys(int(v) for v in s)) for s in initial_seeds]
    for group in seeds:
        if len(group) != k:
            raise SeedSelectionError(
                f"initial seed sets must have k={k} distinct nodes"
            )

    history: list[tuple[float, float]] = []
    converged = False
    rounds_played = 0
    for _ in range(max_rounds):
        rounds_played += 1
        changed = False
        for mover in (0, 1):
            rival = seeds[1 - mover]
            responder = FollowerBestResponse(
                model,
                rival,
                rounds=response_rounds,
                candidate_pool=candidate_pool,
                executor=executor,
            )
            new_seeds = responder.select(graph, k, generator)
            if set(new_seeds) != set(seeds[mover]):
                changed = True
            seeds[mover] = new_seeds
        ests = estimate_competitive_spread(
            graph, model, seeds, eval_rounds, generator, executor=executor
        )
        history.append((ests[0].mean, ests[1].mean))
        if not changed:
            converged = True
            break

    final = estimate_competitive_spread(
        graph, model, seeds, eval_rounds, generator, executor=executor
    )
    return BestResponseOutcome(
        seeds=(seeds[0], seeds[1]),
        rounds_played=rounds_played,
        converged=converged,
        spreads=(final[0].mean, final[1].mean),
        history=history,
    )
