"""Asymmetric budgets — the paper's footnote-5 extension.

The paper assumes all groups share one budget *k* "for simplicity" and
notes the technique "can be easily extended to arbitrary budgets".  This
module does that extension for two groups: with different budgets the game
is no longer symmetric, so the equilibrium machinery switches from the
symmetric indifference solver to the general bimatrix solvers (pure
enumeration, then Lemke–Howson).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

import numpy as np

from repro.cascade.base import CascadeModel
from repro.cascade.simulate import estimate_competitive_spread
from repro.core.strategy import MixedStrategy, StrategySpace
from repro.errors import EquilibriumError
from repro.game.lemke_howson import lemke_howson
from repro.game.normal_form import NormalFormGame
from repro.game.pure import pure_nash_equilibria
from repro.graphs.digraph import DiGraph
from repro.utils.rng import RandomSource, as_rng
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class AsymmetricBudgetResult:
    """Equilibrium of the two-group game with budgets ``(k1, k2)``.

    ``mixtures`` holds one (possibly degenerate) strategy mixture per
    group; ``kind`` is ``"pure"`` when a pure equilibrium was found,
    ``"mixed"`` when Lemke–Howson produced a mixed one.
    """

    budgets: tuple[int, int]
    game: NormalFormGame
    kind: str
    mixtures: tuple[MixedStrategy, MixedStrategy]
    values: tuple[float, float]

    def describe(self) -> str:
        p1, p2 = self.mixtures
        return (
            f"{self.kind} NE with budgets {self.budgets}: "
            f"p1 -> {p1.describe()}, p2 -> {p2.describe()}"
        )


def asymmetric_budget_game(
    graph: DiGraph,
    model: CascadeModel,
    space: StrategySpace,
    budgets: tuple[int, int],
    rounds: int = 20,
    rng: RandomSource = None,
) -> NormalFormGame:
    """Estimate the bimatrix game where group *i* selects ``budgets[i]`` seeds."""
    k1 = check_positive_int(budgets[0], "budgets[0]")
    k2 = check_positive_int(budgets[1], "budgets[1]")
    check_positive_int(rounds, "rounds")
    generator = as_rng(rng)
    z = space.size

    seeds1 = [space[j].select(graph, k1, generator) for j in range(z)]
    seeds2 = [space[j].select(graph, k2, generator) for j in range(z)]

    payoff = np.zeros((z, z, 2))
    for i, j in product(range(z), repeat=2):
        ests = estimate_competitive_spread(
            graph, model, [seeds1[i], seeds2[j]], rounds, generator
        )
        payoff[i, j, 0] = ests[0].mean
        payoff[i, j, 1] = ests[1].mean
    return NormalFormGame(payoff, action_labels=space.labels)


def solve_asymmetric_budget_game(
    game: NormalFormGame,
    space: StrategySpace,
    budgets: tuple[int, int],
) -> AsymmetricBudgetResult:
    """Pure-NE enumeration first, Lemke–Howson as the mixed fallback."""
    pure = pure_nash_equilibria(game)
    if pure:
        # Prefer the equilibrium with the highest total welfare; any pure
        # NE is self-enforcing, this just makes the report deterministic.
        best = max(pure, key=lambda prof: float(sum(game.payoff_vector(prof))))
        mixtures = (
            MixedStrategy.pure(space, best[0]),
            MixedStrategy.pure(space, best[1]),
        )
        values = tuple(float(v) for v in game.payoff_vector(best))
        return AsymmetricBudgetResult(
            budgets=budgets,
            game=game,
            kind="pure",
            mixtures=mixtures,
            values=values,  # type: ignore[arg-type]
        )

    try:
        x, y = lemke_howson(game)
    except EquilibriumError:
        # Degenerate estimated game: fall back to the uniform mixture so
        # the caller still gets an actionable (if conservative) answer.
        x = np.full(space.size, 1.0 / space.size)
        y = x.copy()
    a, b = game.bimatrix()
    values = (float(x @ a @ y), float(x @ b @ y))
    return AsymmetricBudgetResult(
        budgets=budgets,
        game=game,
        kind="mixed",
        mixtures=(MixedStrategy(space, x), MixedStrategy(space, y)),
        values=values,
    )


def asymmetric_budget_analysis(
    graph: DiGraph,
    model: CascadeModel,
    space: StrategySpace,
    budgets: tuple[int, int],
    rounds: int = 20,
    rng: RandomSource = None,
) -> AsymmetricBudgetResult:
    """Estimate and solve the asymmetric-budget game in one call."""
    game = asymmetric_budget_game(graph, model, space, budgets, rounds, rng)
    return solve_asymmetric_budget_game(game, space, budgets)
