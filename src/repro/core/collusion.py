"""Collusion analysis — the paper's Section 7 future-work scenario.

Two groups p1 and p2 secretly collude against p3: the coalition pools its
budget and behaves as a single player selecting ``2k`` seeds, while p3
plays *k* seeds on its own.  The resulting interaction is a 2-player
(asymmetric-budget) game between the coalition and the outsider; this
module estimates its payoff matrix and reports whether colluding beats
playing the symmetric 3-player equilibrium.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

import numpy as np

from repro.cascade.base import CascadeModel
from repro.cascade.simulate import estimate_competitive_spread
from repro.core.getreal import GetRealResult, get_real
from repro.core.strategy import StrategySpace
from repro.game.normal_form import NormalFormGame
from repro.game.pure import pure_nash_equilibria
from repro.graphs.digraph import DiGraph
from repro.utils.rng import RandomSource, as_rng
from repro.utils.validation import check_positive_int, nearly_zero


@dataclass(frozen=True)
class CollusionResult:
    """Outcome of the collusion-vs-independent comparison.

    Attributes
    ----------
    coalition_game:
        2-player game: coalition (2k seeds) vs outsider (k seeds); payoffs
        are the coalition's *total* spread and the outsider's spread.
    coalition_equilibria:
        Pure equilibria of that game, as (coalition action, outsider action).
    coalition_value:
        Coalition's spread at its best pure equilibrium (or best response
        row if no pure equilibrium exists).
    independent_value:
        Sum of two groups' spreads when all three play the symmetric
        GetReal equilibrium independently.
    outsider_value:
        Outsider's spread at the same coalition equilibrium.
    independent_result:
        The 3-player GetReal result used for the independent baseline.
    """

    coalition_game: NormalFormGame
    coalition_equilibria: list[tuple[int, ...]]
    coalition_value: float
    independent_value: float
    outsider_value: float
    independent_result: GetRealResult

    @property
    def collusion_pays(self) -> bool:
        """True when pooling budgets beats independent equilibrium play."""
        return self.coalition_value > self.independent_value


def collusion_analysis(
    graph: DiGraph,
    model: CascadeModel,
    space: StrategySpace,
    k: int = 20,
    rounds: int = 20,
    rng: RandomSource = None,
) -> CollusionResult:
    """Compare p1+p2 colluding (one 2k-seed player) against independent play."""
    check_positive_int(k, "k")
    check_positive_int(rounds, "rounds")
    generator = as_rng(rng)
    z = space.size

    # --- coalition game: coalition strategy i (2k seeds) vs outsider j (k).
    payoff = np.zeros((z, z, 2))
    for i, j in product(range(z), repeat=2):
        coalition_seeds = space[i].select(graph, 2 * k, generator)
        outsider_seeds = space[j].select(graph, k, generator)
        ests = estimate_competitive_spread(
            graph, model, [coalition_seeds, outsider_seeds], rounds, generator
        )
        payoff[i, j, 0] = ests[0].mean
        payoff[i, j, 1] = ests[1].mean
    game = NormalFormGame(payoff, action_labels=space.labels)

    equilibria = pure_nash_equilibria(game)
    if equilibria:
        best = max(equilibria, key=lambda prof: game.payoff(prof, 0))
        coalition_value = game.payoff(best, 0)
        outsider_value = game.payoff(best, 1)
    else:
        # No pure equilibrium: report the coalition's maximin row.
        row_worst = payoff[..., 0].min(axis=1)
        i = int(np.argmax(row_worst))
        j = int(np.argmin(payoff[i, :, 0]))
        coalition_value = float(payoff[i, j, 0])
        outsider_value = float(payoff[i, j, 1])

    # --- independent baseline: all three groups play the GetReal strategy.
    independent = get_real(
        graph,
        model,
        space,
        num_groups=3,
        k=k,
        rounds=rounds,
        rng=generator,
    )
    diag = independent.mixture.probabilities
    # Expected sum of p1's and p2's spreads when all three play `diag`:
    # enumerate pure profiles weighted by the product of probabilities.
    total = 0.0
    for profile in product(range(z), repeat=3):
        weight = diag[profile[0]] * diag[profile[1]] * diag[profile[2]]
        if nearly_zero(weight):
            continue
        payoffs = independent.game.payoff_vector(profile)
        total += weight * (payoffs[0] + payoffs[1])

    return CollusionResult(
        coalition_game=game,
        coalition_equilibria=equilibria,
        coalition_value=float(coalition_value),
        independent_value=float(total),
        outsider_value=float(outsider_value),
        independent_result=independent,
    )
