"""Equilibrium-efficiency analysis: welfare, price of anarchy/stability.

The paper recommends equilibrium play because no group can do better
*unilaterally*; these helpers quantify what that self-interest costs the
market as a whole — how much total influence is lost at the equilibrium
relative to the welfare-optimal strategy profile (the one a central
coordinator, cf. the Section-7 collusion discussion, would impose).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

import numpy as np

from repro.core.getreal import GetRealResult
from repro.errors import GameError
from repro.game.normal_form import NormalFormGame
from repro.utils.validation import nearly_zero


def profile_welfare(game: NormalFormGame, profile: tuple[int, ...]) -> float:
    """Sum of all players' payoffs at a pure *profile*."""
    return float(game.payoff_vector(profile).sum())


def optimal_welfare(game: NormalFormGame) -> tuple[float, tuple[int, ...]]:
    """The welfare-maximizing pure profile and its total payoff."""
    best_profile = None
    best_value = -np.inf
    for profile in game.profiles():
        value = profile_welfare(game, profile)
        if value > best_value:
            best_value = value
            best_profile = profile
    if best_profile is None:
        raise GameError("game has no profiles")
    return best_value, best_profile


def symmetric_mixture_welfare(game: NormalFormGame, mixture: np.ndarray) -> float:
    """Expected total payoff when every player independently plays *mixture*."""
    counts = set(game.payoffs.shape[:-1])
    if len(counts) != 1:
        raise GameError("symmetric welfare requires equal action counts")
    z = game.num_actions(0)
    mixture = np.asarray(mixture, dtype=float)
    if mixture.shape != (z,):
        raise GameError(f"mixture must have {z} entries")
    r = game.num_players
    total = 0.0
    for profile in product(range(z), repeat=r):
        weight = 1.0
        for a in profile:
            weight *= mixture[a]
        if nearly_zero(weight):
            continue
        total += weight * profile_welfare(game, profile)
    return total


@dataclass(frozen=True)
class EfficiencyReport:
    """Welfare accounting for one solved strategy game."""

    equilibrium_welfare: float
    optimal_welfare: float
    optimal_profile: tuple[int, ...]

    @property
    def price_of_anarchy(self) -> float:
        """optimal / equilibrium total influence (≥ 1; 1 = fully efficient).

        Strictly this is the inefficiency of the *returned* equilibrium —
        the price-of-stability flavour — since GetReal returns one
        symmetric equilibrium rather than the worst one.
        """
        if self.equilibrium_welfare <= 0:
            return float("inf")
        return self.optimal_welfare / self.equilibrium_welfare

    @property
    def efficiency(self) -> float:
        """equilibrium / optimal welfare, in [0, 1] for positive payoffs."""
        if self.optimal_welfare <= 0:
            return 1.0
        return self.equilibrium_welfare / self.optimal_welfare


def efficiency_report(result: GetRealResult) -> EfficiencyReport:
    """Welfare accounting for a :class:`GetRealResult`."""
    game = result.game
    best_value, best_profile = optimal_welfare(game)
    eq_welfare = symmetric_mixture_welfare(game, result.mixture.probabilities)
    return EfficiencyReport(
        equilibrium_welfare=eq_welfare,
        optimal_welfare=best_value,
        optimal_profile=best_profile,
    )
