"""Strategies and strategy spaces (Definition 1 of the paper).

A *pure strategy* is a single IM algorithm (:class:`SeedSelector`); a
*mixed strategy* ``φ* = {ρ1 φ1, .., ρz φz}`` selects an algorithm from the
space with the given probabilities each time seeds are chosen.
:class:`StrategySpace` is the ordered collection Φ shared by all groups.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterator, Sequence

import numpy as np

from repro.algorithms.base import SeedSelector
from repro.errors import SeedSelectionError
from repro.graphs.digraph import DiGraph
from repro.utils.rng import RandomSource, as_rng
from repro.utils.validation import check_distribution


@dataclass(frozen=True)
class StrategySpace:
    """The ordered strategy space Φ = {φ1, .., φz}."""

    selectors: tuple[SeedSelector, ...]

    def __init__(self, selectors: Sequence[SeedSelector]) -> None:
        if not selectors:
            raise SeedSelectionError("strategy space must not be empty")
        names = [s.name for s in selectors]
        if len(set(names)) != len(names):
            raise SeedSelectionError(
                f"strategy names must be unique, got {names}"
            )
        object.__setattr__(self, "selectors", tuple(selectors))

    @property
    def size(self) -> int:
        """z, the number of pure strategies."""
        return len(self.selectors)

    @property
    def labels(self) -> list[str]:
        return [s.name for s in self.selectors]

    def __iter__(self) -> Iterator[SeedSelector]:
        return iter(self.selectors)

    def __getitem__(self, index: int) -> SeedSelector:
        return self.selectors[index]

    def index_of(self, name: str) -> int:
        """Position of the strategy named *name*."""
        for i, s in enumerate(self.selectors):
            if s.name == name:
                return i
        raise SeedSelectionError(f"no strategy named {name!r} in {self.labels}")


@dataclass(frozen=True)
class MixedStrategy:
    """A probability mixture over a strategy space.

    ``probabilities[i]`` is the chance of running ``space[i]`` when seeds
    are selected.  A pure strategy is the degenerate one-hot case (use
    :meth:`pure`).
    """

    space: StrategySpace
    probabilities: np.ndarray = field(repr=False)

    def __init__(self, space: StrategySpace, probabilities: Sequence[float]) -> None:
        probs = check_distribution(probabilities, "probabilities")
        if probs.shape[0] != space.size:
            raise SeedSelectionError(
                f"mixture has {probs.shape[0]} weights for {space.size} strategies"
            )
        probs.setflags(write=False)
        object.__setattr__(self, "space", space)
        object.__setattr__(self, "probabilities", probs)

    @classmethod
    def pure(cls, space: StrategySpace, index: int) -> "MixedStrategy":
        """The degenerate mixture that always plays ``space[index]``."""
        weights = np.zeros(space.size)
        weights[index] = 1.0
        return cls(space, weights)

    @classmethod
    def uniform(cls, space: StrategySpace) -> "MixedStrategy":
        """The uniform-random mixture (the paper's "Random" baseline)."""
        return cls(space, np.full(space.size, 1.0 / space.size))

    @property
    def is_pure(self) -> bool:
        return bool(np.isclose(self.probabilities.max(), 1.0))

    @property
    def support(self) -> list[int]:
        """Indices of strategies played with positive probability."""
        return [i for i, p in enumerate(self.probabilities) if p > 1e-12]

    def sample(self, rng: RandomSource = None) -> SeedSelector:
        """Draw one algorithm according to the mixture."""
        generator = as_rng(rng)
        index = int(generator.choice(self.space.size, p=self.probabilities))
        return self.space[index]

    def select(self, graph: DiGraph, k: int, rng: RandomSource = None) -> list[int]:
        """Sample an algorithm, then select *k* seeds with it."""
        generator = as_rng(rng)
        return self.sample(generator).select(graph, k, generator)

    def describe(self) -> str:
        """Human-readable form, e.g. ``0.582*mgwc + 0.418*sdwc``."""
        parts = [
            f"{p:.3f}*{self.space[i].name}"
            for i, p in enumerate(self.probabilities)
            if p > 1e-12
        ]
        return " + ".join(parts)
