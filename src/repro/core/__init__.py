"""The paper's contribution: IM strategy selection via Nash equilibrium."""

from repro.core.strategy import MixedStrategy, StrategySpace
from repro.core.payoff import PayoffTable, estimate_payoff_table
from repro.core.metrics import (
    CoefficientEstimates,
    coefficient_sweep,
    estimate_coefficients,
    estimate_coefficients_from_seeds,
    jaccard,
    seed_overlap_profile,
)
from repro.core.getreal import GetRealResult, get_real, solve_strategy_game
from repro.core.collusion import CollusionResult, collusion_analysis
from repro.core.budgets import (
    AsymmetricBudgetResult,
    asymmetric_budget_analysis,
    asymmetric_budget_game,
    solve_asymmetric_budget_game,
)
from repro.core.analysis import (
    EfficiencyReport,
    efficiency_report,
    optimal_welfare,
    profile_welfare,
    symmetric_mixture_welfare,
)
from repro.core.blocking import BlockingResult, select_blockers
from repro.core.best_response import BestResponseOutcome, best_response_dynamics
from repro.core.reporting import (
    load_payoff_table,
    payoff_table_from_dict,
    payoff_table_to_dict,
    result_to_dict,
    save_result,
)

__all__ = [
    "MixedStrategy",
    "StrategySpace",
    "PayoffTable",
    "estimate_payoff_table",
    "CoefficientEstimates",
    "coefficient_sweep",
    "estimate_coefficients",
    "estimate_coefficients_from_seeds",
    "jaccard",
    "seed_overlap_profile",
    "GetRealResult",
    "get_real",
    "solve_strategy_game",
    "CollusionResult",
    "collusion_analysis",
    "AsymmetricBudgetResult",
    "asymmetric_budget_analysis",
    "asymmetric_budget_game",
    "solve_asymmetric_budget_game",
    "EfficiencyReport",
    "efficiency_report",
    "optimal_welfare",
    "profile_welfare",
    "symmetric_mixture_welfare",
    "BlockingResult",
    "select_blockers",
    "BestResponseOutcome",
    "best_response_dynamics",
    "payoff_table_to_dict",
    "payoff_table_from_dict",
    "result_to_dict",
    "save_result",
    "load_payoff_table",
]
