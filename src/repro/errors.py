"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing programming errors (``TypeError``/``ValueError`` raised
by Python itself) from domain failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """A graph is malformed or an operation received an invalid node/edge."""


class GraphFormatError(GraphError):
    """An edge-list file (SNAP format) could not be parsed."""


class CascadeError(ReproError):
    """A cascade model was configured or driven incorrectly."""


class SeedSelectionError(ReproError):
    """An IM algorithm could not produce a valid seed set."""


class GameError(ReproError):
    """A normal-form game is malformed (shape/player mismatch)."""


class EquilibriumError(GameError):
    """No equilibrium of the requested kind could be computed."""


class PayoffEstimationError(ReproError):
    """Monte-Carlo payoff estimation failed or was configured incorrectly."""


class ExperimentError(ReproError):
    """An experiment runner received an invalid configuration."""


class TrajectoryError(ExperimentError):
    """A benchmark trajectory file is corrupt or an entry is malformed."""


class GateError(ExperimentError):
    """A regression gate was misconfigured or lacked the data to run."""


class ExecutionError(ReproError):
    """The batched execution engine was misconfigured or a backend failed."""


class ObservabilityError(ReproError):
    """The observability layer was misconfigured."""


class JournalError(ObservabilityError):
    """A run journal could not be written or parsed."""
