"""reprolint: domain-aware static analysis for the GetReal reproduction.

The Monte-Carlo estimation layer is only trustworthy if it is
deterministic-under-seed and probabilistically sound.  An unseeded
``random.random()`` in a cascade, a float ``==`` on payoffs, or a metric
handle re-created per simulation silently degrades the payoff tensor and
hence the equilibrium Algorithm 1 returns.  These properties do not survive
refactors by reviewer vigilance alone, so this package enforces them
mechanically:

* :mod:`repro.lint.rules` — the RP001–RP007 AST rules;
* :mod:`repro.lint.engine` — file discovery, suppression handling
  (``# reprolint: disable=RPxxx``), and human/JSON rendering;
* :mod:`repro.lint.cli` — the ``python -m repro lint`` / ``tools/reprolint``
  front end;
* :mod:`repro.lint.contracts` — opt-in runtime contracts
  (``REPRO_CONTRACTS=1``) asserting cascade invariants during simulation.

See ``docs/static-analysis.md`` for the full rule catalogue with examples.
"""

from repro.lint.base import Finding, Rule
from repro.lint.engine import (
    format_findings,
    format_json,
    lint_paths,
    lint_source,
)
from repro.lint.rules import ALL_RULES, rule_by_code

__all__ = [
    "ALL_RULES",
    "Finding",
    "Rule",
    "format_findings",
    "format_json",
    "lint_paths",
    "lint_source",
    "rule_by_code",
]
