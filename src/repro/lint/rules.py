"""The RP001–RP009 rule catalogue.

Each rule is scoped to the packages where its invariant is load-bearing
(see :meth:`~repro.lint.base.Rule.applies_to`); scoping is by path parts so
test fixtures can opt into a rule simply by living under a directory with
the right name (``game/``, ``cascade/``, …).
"""

from __future__ import annotations

import ast
from typing import ClassVar

from repro.lint.base import (
    Rule,
    annotation_mentions,
    dotted_name,
    is_float_like,
    iter_arguments,
    module_matches,
    root_name,
)

#: np.random attributes that name types, not sampling entry points — using
#: them (annotations, isinstance checks) is exactly the discipline RP001 wants.
_RNG_TYPE_NAMES = frozenset({"Generator", "BitGenerator", "SeedSequence"})


class NoGlobalRandom(Rule):
    """RP001: all randomness flows through an injected numpy ``Generator``.

    Direct ``random.*`` / ``np.random.*`` calls draw from process-global
    state, so a top-level seed no longer determines every stream and the
    payoff tensor stops being reproducible.  Only ``utils/rng.py`` may touch
    the global entry points (it is the single place generators are built).
    """

    code: ClassVar[str] = "RP001"
    name: ClassVar[str] = "no-global-random"
    rationale: ClassVar[str] = (
        "global RNG state breaks determinism-under-seed: a single top-level "
        "seed must deterministically derive every random stream"
    )
    hint: ClassVar[str] = (
        "accept rng: RandomSource and normalize via repro.utils.rng.as_rng; "
        "only utils/rng.py may call the global numpy/stdlib entry points"
    )

    @classmethod
    def applies_to(cls, module: tuple[str, ...]) -> bool:
        return module[-2:] != ("utils", "rng.py")

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random" or alias.name.startswith("random."):
                self.report(node, "import of the stdlib 'random' module")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        mod = node.module or ""
        if mod == "random" or mod.startswith("random."):
            self.report(node, "import from the stdlib 'random' module")
        elif mod == "numpy.random" or mod.startswith("numpy.random."):
            names = {alias.name for alias in node.names}
            if not names <= _RNG_TYPE_NAMES:
                self.report(node, "import of numpy.random entry points")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name is not None:
            parts = name.split(".")
            if (
                len(parts) == 2
                and parts[0] == "random"
                and parts[1] not in _RNG_TYPE_NAMES
            ):
                self.report(node, f"call to global RNG {name!r}")
            elif (
                len(parts) == 3
                and parts[0] in ("np", "numpy")
                and parts[1] == "random"
                and parts[2] not in _RNG_TYPE_NAMES
            ):
                self.report(node, f"call to global RNG {name!r}")
        self.generic_visit(node)


class NoFloatEquality(Rule):
    """RP002: no exact ``==``/``!=`` against floats in payoff logic.

    Payoffs and mixture weights are Monte-Carlo estimates and products of
    probabilities; exact equality on them encodes an assumption about
    floating-point representation that refactors silently invalidate
    (e.g. a reordering that turns an exact 0.0 into 1e-17 flips a branch).
    """

    code: ClassVar[str] = "RP002"
    name: ClassVar[str] = "no-float-equality"
    rationale: ClassVar[str] = (
        "payoffs and mixture weights are estimates; exact float equality "
        "makes branch behaviour depend on rounding, not on the model"
    )
    hint: ClassVar[str] = (
        "use repro.utils.validation.nearly_zero / values_close (or "
        "math.isclose) with an explicit tolerance"
    )

    @classmethod
    def applies_to(cls, module: tuple[str, ...]) -> bool:
        return module_matches(module, "game", "core")

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op in node.ops:
            if isinstance(op, (ast.Eq, ast.NotEq)):
                if any(is_float_like(operand) for operand in operands):
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    self.report(node, f"exact float {symbol} comparison")
                    break
        self.generic_visit(node)


#: Method names that mutate their receiver — graph wrappers or the numpy
#: arrays they expose.  ``DiGraph`` is immutable by design; this list guards
#: against a future refactor adding mutators and a selector reaching for one.
_GRAPH_MUTATORS = frozenset(
    {
        "add_edge",
        "add_edges",
        "add_node",
        "add_nodes",
        "remove_edge",
        "remove_edges",
        "remove_node",
        "remove_nodes",
        "clear",
        "update",
        # in-place numpy mutations on arrays reached through the graph
        "fill",
        "sort",
        "partition",
        "put",
        "resize",
        "setfield",
    }
)


class NoGraphMutation(Rule):
    """RP003: seed selectors must treat the graph as read-only.

    Selectors run inside shared pipelines: the payoff estimator hands the
    *same* graph object to every (group, strategy) pair, so one selector
    mutating it corrupts every estimate that follows.  Work on copies
    (``graph.out_degrees().copy()``) instead.
    """

    code: ClassVar[str] = "RP003"
    name: ClassVar[str] = "no-graph-mutation"
    rationale: ClassVar[str] = (
        "the payoff estimator shares one graph across all selectors; a "
        "mutation by one strategy corrupts every later estimate"
    )
    hint: ClassVar[str] = (
        "copy before modifying (e.g. graph.out_degrees().copy()); never "
        "assign to, delete from, or call mutators on the graph parameter"
    )

    @classmethod
    def applies_to(cls, module: tuple[str, ...]) -> bool:
        return module_matches(module, "algorithms")

    def __init__(self, path: str, module: tuple[str, ...]):
        super().__init__(path, module)
        self._graph_params: list[set[str]] = []

    def _current_graphs(self) -> set[str]:
        return self._graph_params[-1] if self._graph_params else set()

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        graphs = set(self._current_graphs())
        for arg in iter_arguments(node.args):
            if arg.arg in ("graph", "g") or annotation_mentions(
                arg.annotation, "DiGraph"
            ):
                if arg.arg not in ("self", "cls"):
                    graphs.add(arg.arg)
        self._graph_params.append(graphs)
        self.generic_visit(node)
        self._graph_params.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def _check_target(self, target: ast.expr) -> None:
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            owner = root_name(target)
            if owner in self._current_graphs():
                self.report(
                    target,
                    f"in-place modification of graph parameter {owner!r}",
                )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_target(element)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_target(node.target)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_target(target)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _GRAPH_MUTATORS:
            owner = root_name(func.value)
            if owner in self._current_graphs():
                self.report(
                    node,
                    f"call to mutator {func.attr!r} on graph parameter {owner!r}",
                )
        self.generic_visit(node)


_METRIC_FACTORIES = frozenset({"counter", "gauge", "histogram"})


class CacheMetricHandles(Rule):
    """RP004: hot-path modules bind metric handles at import time.

    ``counter("x")`` is a registry lookup plus (on miss) a lock; the cascade
    inner loops run millions of iterations, so per-iteration registry calls
    — and the f-string name formatting that usually accompanies them — turn
    observability into measurable simulation cost.  Handles are stable
    across :func:`repro.obs.metrics.reset`, so module-level binding is safe.
    """

    code: ClassVar[str] = "RP004"
    name: ClassVar[str] = "cache-metric-handles"
    rationale: ClassVar[str] = (
        "registry lookups and metric-name formatting inside cascade loops "
        "tax every simulation; handles are stable and cacheable"
    )
    hint: ClassVar[str] = (
        "bind handles at module level (_SIMS = counter('cascade.simulations')) "
        "or memoize dynamic names in a module-level dict"
    )

    @classmethod
    def applies_to(cls, module: tuple[str, ...]) -> bool:
        if module_matches(module, "cascade"):
            return True
        return module[-2:] == ("core", "payoff.py")

    def __init__(self, path: str, module: tuple[str, ...]):
        super().__init__(path, module)
        self._factory_names: set[str] = set()
        self._module_aliases: set[str] = set()
        self._function_depth = 0

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        mod = node.module or ""
        if mod == "repro.obs.metrics":
            for alias in node.names:
                if alias.name in _METRIC_FACTORIES:
                    self._factory_names.add(alias.asname or alias.name)
        elif mod in ("repro.obs", "repro"):
            for alias in node.names:
                if alias.name == "metrics":
                    self._module_aliases.add(alias.asname or alias.name)
        self.generic_visit(node)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "repro.obs.metrics" and alias.asname:
                self._module_aliases.add(alias.asname)
        self.generic_visit(node)

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self._function_depth += 1
        self.generic_visit(node)
        self._function_depth -= 1

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_Call(self, node: ast.Call) -> None:
        if self._function_depth > 0:
            func = node.func
            factory: str | None = None
            if isinstance(func, ast.Name) and func.id in self._factory_names:
                factory = func.id
            elif (
                isinstance(func, ast.Attribute)
                and func.attr in _METRIC_FACTORIES
                and isinstance(func.value, ast.Name)
                and func.value.id in self._module_aliases
            ):
                factory = func.attr
            if factory is not None:
                self.report(
                    node,
                    f"metric factory {factory}(...) called inside a function "
                    "in a hot-path module",
                )
        self.generic_visit(node)


class PublicAPIAnnotations(Rule):
    """RP005: public functions in the estimation stack are fully annotated.

    ``core/``, ``game/``, and ``cascade/`` form the numerical core whose
    types (Generator vs seed, ndarray vs list) are exactly where silent
    corruption enters; full annotations keep ``mypy --strict`` meaningful
    there and make the rng-injection discipline visible in every signature.
    """

    code: ClassVar[str] = "RP005"
    name: ClassVar[str] = "public-api-annotations"
    rationale: ClassVar[str] = (
        "the numerical core's contracts (Generator vs seed, ndarray shapes) "
        "must be machine-checkable; unannotated APIs rot silently"
    )
    hint: ClassVar[str] = (
        "annotate every parameter and the return type; run "
        "'mypy --strict' (see pyproject [tool.mypy]) to verify"
    )

    @classmethod
    def applies_to(cls, module: tuple[str, ...]) -> bool:
        return module_matches(module, "core", "game", "cascade")

    def __init__(self, path: str, module: tuple[str, ...]):
        super().__init__(path, module)
        self._class_stack: list[str] = []
        self._function_depth = 0

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self._function_depth:
            return  # classes defined inside functions are not public API
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    @staticmethod
    def _is_public_name(name: str) -> bool:
        if name.startswith("__") and name.endswith("__"):
            return True  # dunders are API: __init__, __add__, __len__, ...
        return not name.startswith("_")

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        if self._function_depth:
            return  # nested helpers are implementation detail
        enclosing_private = any(name.startswith("_") for name in self._class_stack)
        if self._is_public_name(node.name) and not enclosing_private:
            missing: list[str] = []
            for arg in iter_arguments(node.args):
                if arg.arg in ("self", "cls"):
                    continue
                if arg.annotation is None:
                    missing.append(arg.arg)
            if node.returns is None:
                missing.append("return")
            if missing:
                self.report(
                    node,
                    f"public function {node.name!r} missing type annotations "
                    f"for: {', '.join(missing)}",
                )
        self._function_depth += 1
        self.generic_visit(node)
        self._function_depth -= 1

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function


class NoAdHocSimulationLoops(Rule):
    """RP006: Monte-Carlo repetition belongs to the execution engine.

    A hand-rolled loop over ``model.spread_once(...)`` or
    ``CompetitiveDiffusion(...).run(...)`` pins its simulations to one
    thread, draws from whatever generator happens to be in scope (so the
    result depends on call order, not just the master seed), and is
    invisible to the batch instrumentation.  Only the execution engine's
    job types (``repro/exec/``) and the thin estimation wrappers in
    ``cascade/simulate.py`` may run simulations directly.
    """

    code: ClassVar[str] = "RP006"
    name: ClassVar[str] = "no-adhoc-simulation-loops"
    rationale: ClassVar[str] = (
        "ad-hoc simulation loops bypass the batched executor: they cannot "
        "be parallelized, escape the batch metrics/journal, and break the "
        "one-entropy-draw-per-batch determinism scheme"
    )
    hint: ClassVar[str] = (
        "describe the repetition as SpreadJob/CompetitiveJob objects and "
        "submit one batch via repro.exec.Executor (estimate_spread / "
        "estimate_competitive_spread wrap the single-job case)"
    )

    @classmethod
    def applies_to(cls, module: tuple[str, ...]) -> bool:
        if "exec" in module[:-1]:
            return False
        return module[-2:] != ("cascade", "simulate.py")

    def __init__(self, path: str, module: tuple[str, ...]):
        super().__init__(path, module)
        self._loop_depth = 0
        self._engine_names: set[str] = set()

    @staticmethod
    def _is_engine_ctor(node: ast.expr) -> bool:
        if not isinstance(node, ast.Call):
            return False
        name = dotted_name(node.func)
        return name is not None and name.split(".")[-1] == "CompetitiveDiffusion"

    def _record_engine(self, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self._engine_names.add(target.id)
        elif isinstance(target, ast.Attribute):
            self._engine_names.add(target.attr)  # self.engine = ...

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._is_engine_ctor(node.value):
            for target in node.targets:
                self._record_engine(target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None and self._is_engine_ctor(node.value):
            self._record_engine(node.target)
        self.generic_visit(node)

    def _visit_loop(self, node: ast.AST) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    visit_For = _visit_loop
    visit_AsyncFor = _visit_loop
    visit_While = _visit_loop
    visit_ListComp = _visit_loop
    visit_SetComp = _visit_loop
    visit_DictComp = _visit_loop
    visit_GeneratorExp = _visit_loop

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if self._loop_depth > 0 and isinstance(func, ast.Attribute):
            if func.attr == "spread_once":
                self.report(
                    node, "simulation loop over spread_once(...) outside the engine"
                )
            elif func.attr == "run":
                owner: str | None = None
                if isinstance(func.value, ast.Name):
                    owner = func.value.id
                elif isinstance(func.value, ast.Attribute):
                    owner = func.value.attr
                if owner in self._engine_names or self._is_engine_ctor(func.value):
                    self.report(
                        node,
                        "simulation loop over CompetitiveDiffusion.run(...) "
                        "outside the engine",
                    )
        self.generic_visit(node)


class NoPerNodeDiffusionLoops(Rule):
    """RP007: per-node diffusion walks belong to ``cascade/kernels.py``.

    A Python loop that expands adjacency node by node
    (``out_neighbors``/``in_neighbors``/``out_edge_ids`` inside a
    ``for``/``while``) re-creates exactly the hardware-starved inner loop
    the kernel module replaces: it cannot be vectorized behind the
    ``kernel=`` switch, silently ignores ``REPRO_KERNEL``, and splits the
    diffusion semantics across modules.  New sweeps should be implemented
    as a kernel pair (python reference + numpy vectorization) in
    :mod:`repro.cascade.kernels`; model-specific dynamics that genuinely
    have no vectorized form carry an explicit suppression.
    """

    code: ClassVar[str] = "RP007"
    name: ClassVar[str] = "no-per-node-diffusion-loops"
    rationale: ClassVar[str] = (
        "per-node adjacency walks outside the kernel module bypass the "
        "kernel switch: they stay pure-Python regardless of REPRO_KERNEL "
        "and fork the diffusion semantics"
    )
    hint: ClassVar[str] = (
        "implement the sweep in repro/cascade/kernels.py as a python+numpy "
        "kernel pair and dispatch through its public functions; suppress "
        "with '# reprolint: disable=RP007' only for model-specific "
        "dynamics with no vectorized form"
    )

    #: adjacency expansions that mark a per-node walk when called in a loop
    _EXPANSIONS = frozenset({"out_neighbors", "in_neighbors", "out_edge_ids"})

    @classmethod
    def applies_to(cls, module: tuple[str, ...]) -> bool:
        if not module_matches(module, "cascade"):
            return False
        return module[-1] != "kernels.py"

    def __init__(self, path: str, module: tuple[str, ...]):
        super().__init__(path, module)
        self._loop_depth = 0

    def _visit_loop(self, node: ast.AST) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    visit_For = _visit_loop
    visit_AsyncFor = _visit_loop
    visit_While = _visit_loop
    visit_ListComp = _visit_loop
    visit_SetComp = _visit_loop
    visit_DictComp = _visit_loop
    visit_GeneratorExp = _visit_loop

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            self._loop_depth > 0
            and isinstance(func, ast.Attribute)
            and func.attr in self._EXPANSIONS
        ):
            self.report(
                node,
                f"per-node adjacency walk ({func.attr}(...) inside a loop) "
                "outside cascade/kernels.py",
            )
        self.generic_visit(node)


class UseSharedSnapshotPools(Rule):
    """RP008: strategies acquire live-edge pools via the shared-pool API.

    A direct ``sample_snapshots(...)`` call inside an algorithm module
    creates a private live-edge sample: it repeats the dominant selection
    cost once per strategy instead of once per group, and the sample is
    invisible to the work-sharing layer (no pool token, so the selection
    cache cannot key on it).  Snapshot-consuming strategies should declare
    ``uses_snapshots = True`` and take their masks, oracle, and initial
    gains from the :class:`repro.cascade.pools.SnapshotPool` passed to
    ``_select_pooled``.  Where an independently randomized private sample
    is semantically required (the no-pool fallback path preserving the
    Theorem 1 footnote behaviour), carry an explicit suppression.
    """

    code: ClassVar[str] = "RP008"
    name: ClassVar[str] = "use-shared-snapshot-pools"
    rationale: ClassVar[str] = (
        "private snapshot sampling in strategy code repeats the dominant "
        "selection cost per strategy and hides the sample from the "
        "work-sharing layer (pools, selection cache)"
    )
    hint: ClassVar[str] = (
        "implement _select_pooled and read masks/oracle/initial gains from "
        "the shared SnapshotPool; suppress with "
        "'# reprolint: disable=RP008' only where an independent private "
        "sample is semantically required"
    )

    @classmethod
    def applies_to(cls, module: tuple[str, ...]) -> bool:
        return module_matches(module, "algorithms")

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        name: str | None = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name == "sample_snapshots":
            self.report(
                node,
                "direct sample_snapshots(...) call in a strategy module; "
                "use the shared SnapshotPool API",
            )
        self.generic_visit(node)


class UseSpanTiming(Rule):
    """RP009: ad-hoc ``perf_counter()`` pairs bypass the tracing layer.

    ``t0 = time.perf_counter(); ...; elapsed = time.perf_counter() - t0``
    measures a duration that no one else can see: it has no trace id, no
    histogram, and no journal record, so the waterfall in ``repro obs
    trace`` and the monitor's span table silently omit it.  Wrapping the
    region in :func:`repro.obs.trace.span` (or a
    :class:`repro.utils.timing.Stopwatch` when a reusable timer object is
    wanted) yields the same number *and* feeds the telemetry pipeline.
    The ``repro/obs`` package and ``utils/timing.py`` implement the timing
    primitives themselves and are exempt; call sites where the raw float
    is the product (e.g. a journaled ``duration_seconds`` field) carry an
    explicit suppression.
    """

    code: ClassVar[str] = "RP009"
    name: ClassVar[str] = "use-span-timing"
    rationale: ClassVar[str] = (
        "raw perf_counter() timing pairs are invisible to the tracing "
        "layer: no span record, no histogram, no trace id — the duration "
        "exists only in a local variable"
    )
    hint: ClassVar[str] = (
        "wrap the timed region in repro.obs.trace.span(...) (or a "
        "utils.timing.Stopwatch); suppress with "
        "'# reprolint: disable=RP009' where the raw duration itself is "
        "the product (e.g. journaled duration_seconds fields)"
    )

    @classmethod
    def applies_to(cls, module: tuple[str, ...]) -> bool:
        if "obs" in module[:-1]:
            return False  # the timing primitives themselves live here
        return module[-2:] != ("utils", "timing.py")

    def __init__(self, path: str, module: tuple[str, ...]):
        super().__init__(path, module)
        self._clock_names: set[str] = set()

    @staticmethod
    def _is_clock_call(node: ast.expr) -> bool:
        if not isinstance(node, ast.Call):
            return False
        name = dotted_name(node.func)
        return name is not None and name.split(".")[-1] == "perf_counter"

    def _is_clock_value(self, node: ast.expr) -> bool:
        if self._is_clock_call(node):
            return True
        return isinstance(node, ast.Name) and node.id in self._clock_names

    def _record_clock(self, target: ast.expr, value: ast.expr | None) -> None:
        if value is None or not isinstance(target, ast.Name):
            return
        if self._is_clock_call(value):
            self._clock_names.add(target.id)
        elif target.id in self._clock_names:
            self._clock_names.discard(target.id)  # rebound to something else

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_clock(target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._record_clock(node.target, node.value)
        self.generic_visit(node)

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if (
            isinstance(node.op, ast.Sub)
            and self._is_clock_value(node.left)
            and self._is_clock_value(node.right)
        ):
            self.report(
                node,
                "ad-hoc perf_counter() timing pair; the duration is "
                "invisible to spans/metrics/journal",
            )
        self.generic_visit(node)


class NoWholeGraphInvalidation(Rule):
    """RP017: dropping cache entries by whole-graph fingerprint is too blunt.

    ``memo.invalidate(graph.fingerprint)`` outside the cache package throws
    away every entry keyed to the graph — including the per-shard snapshot
    samples whose reuse is the entire point of the incremental layer.  After
    an edge delta, the sanctioned entry point is
    :func:`repro.cache.invalidate_for_delta`: it drops the fingerprint-keyed
    selection/blocking entries *and only the dirty shards'* samples, so
    clean shards keep serving the patched graph through their unchanged
    structural hash.  The cache package itself (where that helper and the
    memo primitives live) is exempt.
    """

    code: ClassVar[str] = "RP017"
    name: ClassVar[str] = "no-whole-graph-invalidation"
    rationale: ClassVar[str] = (
        "invalidating by whole-graph fingerprint drops shard-scoped cache "
        "entries an edge delta did not dirty, defeating the warm-pool "
        "splice the incremental layer depends on"
    )
    hint: ClassVar[str] = (
        "call repro.cache.invalidate_for_delta(applied_delta) after graph "
        "edits; it scopes the drop to the delta's dirty shards"
    )

    @classmethod
    def applies_to(cls, module: tuple[str, ...]) -> bool:
        return not module_matches(module, "cache")

    @staticmethod
    def _mentions_fingerprint(node: ast.expr) -> bool:
        return any(
            isinstance(sub, ast.Attribute) and sub.attr == "fingerprint"
            for sub in ast.walk(node)
        )

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "invalidate"
            and any(self._mentions_fingerprint(arg) for arg in node.args)
        ):
            self.report(
                node,
                "whole-graph fingerprint invalidation; use "
                "repro.cache.invalidate_for_delta for shard-scoped drops",
            )
        self.generic_visit(node)


ALL_RULES: tuple[type[Rule], ...] = (
    NoGlobalRandom,
    NoFloatEquality,
    NoGraphMutation,
    CacheMetricHandles,
    PublicAPIAnnotations,
    NoAdHocSimulationLoops,
    NoPerNodeDiffusionLoops,
    UseSharedSnapshotPools,
    UseSpanTiming,
    NoWholeGraphInvalidation,
)


def rule_by_code(code: str) -> type[Rule]:
    """Look up a rule class by its ``RPxxx`` code."""
    for rule in ALL_RULES:
        if rule.code == code:
            return rule
    raise KeyError(f"unknown rule code {code!r}; known: "
                   f"{', '.join(r.code for r in ALL_RULES)}")
