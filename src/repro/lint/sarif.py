"""SARIF 2.1.0 output for reprolint findings.

SARIF (Static Analysis Results Interchange Format) is the interchange
format code-scanning UIs ingest (GitHub code scanning, VS Code SARIF
viewer).  One ``run`` per invocation, one ``result`` per finding; rule
metadata (name, rationale, fix hint) rides in the tool's rule descriptors
so viewers can show the catalogue inline.

Only the schema subset reprolint needs is emitted, but that subset is
valid against the official 2.1.0 schema: ``version``, ``$schema``,
``runs[].tool.driver`` with ``rules``, and ``runs[].results`` with
``ruleId``/``message``/``locations``.  Cross-module findings attach their
call-path trace as a ``codeFlow``-free ``message`` suffix plus a
``properties.trace`` bag (stable for tooling, ignored by viewers that
don't know it).
"""

from __future__ import annotations

import json
from collections.abc import Sequence
from typing import Protocol

from repro.lint.base import Finding


class RuleLike(Protocol):
    """Anything carrying the reprolint rule metadata (per-file or project)."""

    code: str
    name: str
    rationale: str
    hint: str

#: The canonical 2.1.0 schema URI (embedded in every document).
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
SARIF_VERSION = "2.1.0"

_TOOL_URI = "https://github.com/getreal-repro/repro/blob/main/docs/static-analysis.md"


def _rule_descriptor(rule: RuleLike) -> dict[str, object]:
    return {
        "id": rule.code,
        "name": rule.name,
        "shortDescription": {"text": rule.name},
        "fullDescription": {"text": rule.rationale or rule.name},
        "help": {"text": rule.hint or rule.rationale or rule.name},
        "helpUri": _TOOL_URI,
        "defaultConfiguration": {"level": "error"},
    }


def _result(finding: Finding) -> dict[str, object]:
    message = finding.message
    trace = getattr(finding, "trace", "")
    if trace:
        message = f"{message} [call path: {trace}]"
    result: dict[str, object] = {
        "ruleId": finding.code,
        "level": "error",
        "message": {"text": message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": max(finding.col, 1),
                    },
                }
            }
        ],
    }
    properties: dict[str, object] = {}
    if trace:
        properties["trace"] = trace
    if finding.hint:
        properties["hint"] = finding.hint
    if properties:
        result["properties"] = properties
    return result


def sarif_document(
    findings: Sequence[Finding],
    rules: Sequence[RuleLike],
    tool_name: str = "reprolint",
    tool_version: str = "2.0.0",
) -> dict[str, object]:
    """The SARIF log as a plain dict (see :func:`format_sarif` for text)."""
    used_codes = {f.code for f in findings}
    descriptors = [_rule_descriptor(rule) for rule in rules]
    known_codes = {rule.code for rule in rules}
    # Synthesize descriptors for codes without a catalogue entry (RP999).
    for code in sorted(used_codes - known_codes):
        descriptors.append(
            {
                "id": code,
                "name": "parse-error" if code.startswith("RP99") else code,
                "shortDescription": {"text": code},
                "defaultConfiguration": {"level": "error"},
            }
        )
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "version": tool_version,
                        "informationUri": _TOOL_URI,
                        "rules": descriptors,
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": [_result(f) for f in sorted(findings)],
            }
        ],
    }


def format_sarif(
    findings: Sequence[Finding],
    rules: Sequence[RuleLike],
    tool_name: str = "reprolint",
) -> str:
    """Serialized SARIF 2.1.0 log for ``--format sarif``."""
    return json.dumps(
        sarif_document(findings, rules, tool_name=tool_name), indent=2
    )
