"""Command-line front end: ``python -m repro lint`` and ``tools/reprolint``.

Exit codes: 0 — clean; 1 — findings; 2 — usage error (unknown rule code or
missing path).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.lint.engine import format_findings, format_json, lint_paths
from repro.lint.rules import ALL_RULES


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach reprolint's arguments to *parser* (shared with ``repro.cli``)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=["human", "json"],
        default="human",
        dest="output_format",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--no-hints",
        action="store_true",
        help="omit fix-it hints from human output",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )


def _split_codes(raw: str | None) -> list[str] | None:
    if raw is None:
        return None
    return [code.strip().upper() for code in raw.split(",") if code.strip()]


def list_rules() -> str:
    """The rule catalogue as an aligned text block."""
    lines = []
    for rule in ALL_RULES:
        lines.append(f"{rule.code}  {rule.name}")
        lines.append(f"       why : {rule.rationale}")
        lines.append(f"       fix : {rule.hint}")
    return "\n".join(lines)


def run(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the process exit code."""
    if args.list_rules:
        print(list_rules())
        return 0
    paths = [Path(p) for p in args.paths]
    for path in paths:
        if not path.exists():
            print(f"reprolint: no such file or directory: {path}", file=sys.stderr)
            return 2
    try:
        findings = lint_paths(
            paths,
            select=_split_codes(args.select),
            ignore=_split_codes(args.ignore),
        )
    except ValueError as exc:
        print(f"reprolint: {exc}", file=sys.stderr)
        return 2
    if args.output_format == "json":
        print(format_json(findings))
    else:
        print(format_findings(findings, show_hints=not args.no_hints))
    return 1 if findings else 0


def main(argv: list[str] | None = None) -> int:
    """Standalone entry point (``tools/reprolint``)."""
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="domain-aware static analysis for the GetReal reproduction",
    )
    add_lint_arguments(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
