"""Command-line front end: ``python -m repro lint`` and ``tools/reprolint``.

Two analysis modes share one argument surface:

* **per-file** (default) — the RP001–RP009 AST rules, one file at a time;
* **``--project``** — the whole-program engine: symbol table + call graph
  over the package, RP010–RP016 dataflow rules, baseline ratchet.

Exit codes: 0 — clean; 1 — findings (including parse errors and stale
baseline entries); 2 — usage error (unknown rule code, missing path,
malformed baseline).
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path
from collections.abc import Sequence

from repro.lint.base import Finding
from repro.lint.engine import (
    PARSE_ERROR_CODE,
    format_findings,
    format_json,
    iter_python_files,
    lint_paths,
)
from repro.lint.project import (
    DEFAULT_BASELINE,
    PROJECT_RULES,
    analyze_project,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.rules import ALL_RULES
from repro.lint.sarif import format_sarif

#: Every rule class, per-file and project, for --list-rules and SARIF.
_ALL_RULE_CLASSES = (*ALL_RULES, *PROJECT_RULES)


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach reprolint's arguments to *parser* (shared with ``repro.cli``)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src); with --project, "
        "one package root",
    )
    parser.add_argument(
        "--project",
        action="store_true",
        help="whole-program analysis (RP010-RP016): symbol table + call "
        "graph over the package, baseline ratchet",
    )
    parser.add_argument(
        "--format",
        choices=["human", "text", "json", "sarif"],
        default="human",
        dest="output_format",
        help="output format (default: human; 'text' is an alias)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="baseline file for --project (default: use "
        f"{DEFAULT_BASELINE} when it exists)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="with --project: snapshot the current findings as the new "
        "baseline and exit",
    )
    parser.add_argument(
        "--show-baselined",
        action="store_true",
        help="with --project: also print findings accepted by the baseline",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help="restrict the report to files changed vs git HEAD (plus "
        "untracked files); for pre-commit hooks",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for --project fact extraction "
        "(default: min(cpus, 8))",
    )
    parser.add_argument(
        "--no-hints",
        action="store_true",
        help="omit fix-it hints from human output",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )


def _split_codes(raw: str | None) -> list[str] | None:
    if raw is None:
        return None
    return [code.strip().upper() for code in raw.split(",") if code.strip()]


def list_rules() -> str:
    """The rule catalogue (per-file and project) as an aligned text block."""
    lines = []
    for rule in _ALL_RULE_CLASSES:
        scope = "project" if rule in PROJECT_RULES else "file"
        lines.append(f"{rule.code}  {rule.name}  [{scope}]")
        lines.append(f"       why : {rule.rationale}")
        lines.append(f"       fix : {rule.hint}")
    return "\n".join(lines)


def changed_files(cwd: Path | None = None) -> set[Path] | None:
    """Resolved paths of files changed vs HEAD plus untracked files.

    Returns ``None`` (meaning: no filtering, lint everything) when git is
    unavailable or the directory is not a repository — a pre-commit hook
    degrading to a full lint is safe; silently linting nothing is not.
    """
    try:
        top = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True,
            text=True,
            check=True,
            cwd=cwd,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return None
    root = Path(top) if top else Path.cwd()
    changed: set[Path] = set()
    for command in (
        ["git", "diff", "--name-only", "HEAD", "--diff-filter=ACMR"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        try:
            proc = subprocess.run(
                command, capture_output=True, text=True, check=True, cwd=cwd
            )
        except (OSError, subprocess.CalledProcessError):
            return None
        for line in proc.stdout.splitlines():
            if line.strip():
                changed.add((root / line.strip()).resolve())
    return changed


def _print_findings(
    findings: Sequence[Finding], args: argparse.Namespace
) -> None:
    if args.output_format == "sarif":
        print(format_sarif(findings, _ALL_RULE_CLASSES))
    elif args.output_format == "json":
        print(format_json(findings))
    else:
        print(format_findings(findings, show_hints=not args.no_hints))


def _run_per_file(args: argparse.Namespace) -> int:
    paths = [Path(p) for p in args.paths]
    for path in paths:
        if not path.exists():
            print(
                f"reprolint: no such file or directory: {path}", file=sys.stderr
            )
            return 2
    if args.changed_only:
        changed = changed_files()
        if changed is not None:
            paths = [
                f for f in iter_python_files(paths) if f.resolve() in changed
            ]
            if not paths:
                print("reprolint: no changed python files")
                return 0
    try:
        findings = lint_paths(
            paths,
            select=_split_codes(args.select),
            ignore=_split_codes(args.ignore),
        )
    except ValueError as exc:
        print(f"reprolint: {exc}", file=sys.stderr)
        return 2
    _print_findings(findings, args)
    return 1 if findings else 0


def _project_root(paths: list[Path]) -> Path | None:
    """The single package root for --project, or None on usage error.

    ``src`` (the default) descends into ``src/repro`` so the analyzed
    package is the one the import graph is rooted at.
    """
    if len(paths) != 1:
        return None
    root = paths[0]
    if not root.is_dir():
        return None
    if not (root / "__init__.py").exists() and (root / "repro").is_dir():
        root = root / "repro"
    return root


def _run_project(args: argparse.Namespace) -> int:
    select = _split_codes(args.select)
    ignore = _split_codes(args.ignore)
    known = {r.code for r in _ALL_RULE_CLASSES} | {PARSE_ERROR_CODE}
    for codes in (select, ignore):
        unknown = set(codes or ()) - known
        if unknown:
            print(
                f"reprolint: unknown rule code(s): {sorted(unknown)}",
                file=sys.stderr,
            )
            return 2
    root = _project_root([Path(p) for p in args.paths])
    if root is None:
        print(
            "reprolint: --project takes exactly one package root directory",
            file=sys.stderr,
        )
        return 2

    report = analyze_project(
        root, select=select, ignore=ignore, jobs=args.jobs
    )
    rule_findings = list(report.findings)
    parse_errors = list(report.parse_errors)

    if args.changed_only:
        changed = changed_files()
        if changed is not None:
            rule_findings = [
                f for f in rule_findings if Path(f.path).resolve() in changed
            ]
            parse_errors = [
                f for f in parse_errors if Path(f.path).resolve() in changed
            ]

    if args.update_baseline:
        # Parse errors are never baselined: a file that does not parse is
        # always a failure, not accepted debt.
        target = args.baseline or DEFAULT_BASELINE
        write_baseline(target, rule_findings)
        print(
            f"reprolint: baseline updated: {len(rule_findings)} finding(s) "
            f"-> {target}"
        )
        if parse_errors:
            _print_findings(parse_errors, args)
            return 1
        return 0

    baseline_path = args.baseline or (
        DEFAULT_BASELINE if Path(DEFAULT_BASELINE).exists() else None
    )
    new: list[Finding] = rule_findings
    accepted: list[Finding] = []
    stale: list[tuple[str, str, str]] = []
    if baseline_path is not None:
        try:
            baseline = load_baseline(baseline_path)
        except ValueError as exc:
            print(f"reprolint: {exc}", file=sys.stderr)
            return 2
        new, accepted, stale = apply_baseline(rule_findings, baseline)

    reported = [*new, *parse_errors]
    if args.show_baselined:
        reported.extend(accepted)
    _print_findings(sorted(reported), args)
    if accepted and args.output_format in ("human", "text"):
        print(f"reprolint: {len(accepted)} baselined finding(s) accepted")
    for key in stale:
        print(
            "reprolint: stale baseline entry (finding no longer present): "
            f"{key[0]}: {key[1]} {key[2]!r} — re-run --update-baseline",
            file=sys.stderr,
        )
    failed = bool(new or parse_errors or stale)
    return 1 if failed else 0


def run(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the process exit code."""
    if args.list_rules:
        print(list_rules())
        return 0
    if args.project:
        return _run_project(args)
    return _run_per_file(args)


def main(argv: list[str] | None = None) -> int:
    """Standalone entry point (``tools/reprolint``)."""
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="domain-aware static analysis for the GetReal reproduction",
    )
    add_lint_arguments(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
