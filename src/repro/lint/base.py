"""Shared vocabulary of the linter: findings and the rule interface.

A :class:`Rule` is an :class:`ast.NodeVisitor` subclass with class-level
metadata (code, rationale, fix-it hint) and a path predicate that scopes it
to the packages where its invariant matters.  Rules append :class:`Finding`
objects via :meth:`Rule.report`; the engine handles suppression comments and
rendering so rules stay pure AST logic.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from collections.abc import Sequence
from typing import ClassVar


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str
    hint: str

    def render(self) -> str:
        """``path:line:col: CODE message`` — the human-readable form."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def as_dict(self) -> dict[str, object]:
        """JSON-ready representation (stable key set; see docs)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "hint": self.hint,
        }


class Rule(ast.NodeVisitor):
    """Base class for reprolint rules.

    Subclasses set the class attributes and implement ``visit_*`` methods,
    calling :meth:`report` for each violation.  One rule instance is created
    per (rule, file) pair, so instance state never leaks across files.
    """

    #: stable identifier, ``RP`` + three digits
    code: ClassVar[str] = "RP000"
    #: short kebab-case name used in ``--list-rules`` output
    name: ClassVar[str] = "abstract-rule"
    #: why violating this rule corrupts the reproduction
    rationale: ClassVar[str] = ""
    #: how to fix a violation
    hint: ClassVar[str] = ""

    def __init__(self, path: str, module: tuple[str, ...]):
        self.path = path
        self.module = module
        self.findings: list[Finding] = []

    @classmethod
    def applies_to(cls, module: tuple[str, ...]) -> bool:
        """Whether this rule runs on the file with package-relative *module* parts."""
        raise NotImplementedError

    def report(self, node: ast.AST, message: str) -> None:
        """Record a violation anchored at *node*."""
        self.findings.append(
            Finding(
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                code=self.code,
                message=message,
                hint=self.hint,
            )
        )


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for an attribute chain rooted at a plain name, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def root_name(node: ast.expr) -> str | None:
    """The variable a chained attribute/subscript/call expression is rooted at.

    ``graph.out_degrees()[v]`` and ``graph.meta.weights`` both root at
    ``graph``; expressions rooted at literals or calls of plain names return
    that callee's name owner (``None`` for non-name roots).
    """
    while True:
        if isinstance(node, ast.Attribute):
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        elif isinstance(node, ast.Name):
            return node.id
        else:
            return None


def module_matches(module: tuple[str, ...], *packages: str) -> bool:
    """True if any directory component of *module* is one of *packages*."""
    return any(part in packages for part in module[:-1])


def is_float_like(node: ast.expr) -> bool:
    """Expressions that are statically known to be floats.

    Covers float literals (``0.0``), negated float literals (``-1.0``), and
    explicit ``float(...)`` conversions — the forms that appear on at least
    one side of virtually every exact-float-equality bug.
    """
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp):
        return is_float_like(node.operand)
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id == "float"
    return False


def annotation_mentions(annotation: ast.expr | None, *names: str) -> bool:
    """Whether *annotation* textually references any of *names* (e.g. DiGraph)."""
    if annotation is None:
        return False
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name) and node.id in names:
            return True
        if isinstance(node, ast.Attribute) and node.attr in names:
            return True
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            if any(name in node.value for name in names):
                return True
    return False


def iter_arguments(args: ast.arguments) -> Sequence[ast.arg]:
    """All argument nodes of a signature, in declaration order."""
    out: list[ast.arg] = []
    out.extend(args.posonlyargs)
    out.extend(args.args)
    if args.vararg is not None:
        out.append(args.vararg)
    out.extend(args.kwonlyargs)
    if args.kwarg is not None:
        out.append(args.kwarg)
    return out
