"""Opt-in runtime contracts for the simulation stack.

Static rules catch what is visible in the source; these contracts catch what
only manifests at runtime — a cascade model whose edge probabilities drift
outside ``[0, 1]``, an ownership array that re-assigns a claimed node, a
spread exceeding ``|V|``.  Any violation means the payoff tensor (and hence
the equilibrium) is garbage, so contract failures raise immediately.

Contracts are **off by default** (zero overhead beyond one dict lookup per
simulation) and enabled by setting ``REPRO_CONTRACTS=1`` in the
environment — CI runs one tier-1 pass with them on.  Checks are vectorized
and run once per simulation, not per node, so the enabled-mode overhead is
a few array comparisons per diffusion.
"""

from __future__ import annotations

import os
from collections.abc import Sequence

import numpy as np

#: Environment variable gating the contracts; truthy values: 1/true/on/yes.
ENV_VAR = "REPRO_CONTRACTS"

_FALSY = frozenset({"", "0", "false", "off", "no"})


class ContractViolation(AssertionError):
    """A runtime invariant of the simulation stack was violated.

    Derives from :class:`AssertionError` because a violation is a logic
    error in the library (or a hostile model implementation), never a
    recoverable domain condition.
    """


def enabled() -> bool:
    """Whether runtime contracts are active (``REPRO_CONTRACTS`` truthy)."""
    return os.environ.get(ENV_VAR, "").strip().lower() not in _FALSY


def check_probabilities(values: object, name: str = "probabilities") -> None:
    """Every entry of *values* must be a finite probability in ``[0, 1]``."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return
    if not np.all(np.isfinite(arr)):
        raise ContractViolation(f"{name} contain non-finite values")
    low = float(arr.min())
    high = float(arr.max())
    if low < 0.0 or high > 1.0:
        raise ContractViolation(
            f"{name} outside [0, 1]: min={low!r}, max={high!r}"
        )


def check_ownership(
    owner: np.ndarray,
    initiators: Sequence[Sequence[int]],
    num_groups: int,
) -> None:
    """Post-diffusion ownership invariants.

    * every owner value is ``-1`` (inactive) or a valid group index;
    * claimed nodes never switch groups — in particular every initiator of
      group *j* still belongs to *j* when the diffusion ends (initiators are
      the only nodes claimed before round 1, so this pins the paper's
      "once claimed, never re-claimed" assumption at both ends of the run).
    """
    owner = np.asarray(owner)
    if owner.size and (owner.min() < -1 or owner.max() >= num_groups):
        raise ContractViolation(
            f"owner array contains group ids outside [-1, {num_groups}): "
            f"min={int(owner.min())}, max={int(owner.max())}"
        )
    for group, nodes in enumerate(initiators):
        nodes = np.asarray(list(nodes), dtype=np.int64)
        if nodes.size == 0:
            continue
        switched = nodes[owner[nodes] != group]
        if switched.size:
            raise ContractViolation(
                f"claimed nodes switched groups: initiators {switched.tolist()} "
                f"of group {group} ended owned by "
                f"{owner[switched].tolist()}"
            )


def check_spreads(spreads: object, num_nodes: int, name: str = "spreads") -> None:
    """Per-group spreads must be non-negative and sum to at most ``|V|``."""
    arr = np.asarray(spreads, dtype=float)
    if arr.size == 0:
        return
    if float(arr.min()) < 0.0:
        raise ContractViolation(f"{name} contain negative entries: {arr.tolist()}")
    total = float(arr.sum())
    if total > num_nodes:
        raise ContractViolation(
            f"{name} sum to {total}, exceeding the graph's {num_nodes} nodes"
        )


def check_batch(
    results: Sequence[Sequence[object]],
    num_nodes: Sequence[int | None],
    name: str = "batch",
) -> None:
    """Post-batch invariants of the execution engine.

    * the backend returned exactly one result per submitted job;
    * every estimate of every job is finite and, when the job carries a
      graph bound, its mean lies in ``[0, |V|]`` — a garbage worker result
      (truncated pickle, mismatched stream) corrupts the payoff tensor as
      surely as a broken model does.
    """
    if len(results) != len(num_nodes):
        raise ContractViolation(
            f"{name}: backend returned {len(results)} results for "
            f"{len(num_nodes)} jobs"
        )
    for job_index, (estimates, bound) in enumerate(zip(results, num_nodes)):
        for estimate in estimates:
            mean = float(getattr(estimate, "mean", float("nan")))
            if not np.isfinite(mean):
                raise ContractViolation(
                    f"{name}: job {job_index} produced a non-finite mean"
                )
            if mean < 0.0 or (bound is not None and mean > bound):
                raise ContractViolation(
                    f"{name}: job {job_index} mean {mean} outside "
                    f"[0, {bound}]"
                )


def check_spread_estimate(mean: float, num_nodes: int, name: str = "spread") -> None:
    """A Monte-Carlo spread estimate must land in ``[0, |V|]``."""
    if not np.isfinite(mean):
        raise ContractViolation(f"{name} estimate is non-finite: {mean!r}")
    if mean < 0.0 or mean > num_nodes:
        raise ContractViolation(
            f"{name} estimate {mean} outside [0, {num_nodes}]"
        )
