"""Baseline ratchet: accepted findings are pinned, new ones block.

A baseline file is a checked-in JSON snapshot of the findings a codebase
already has.  CI compares the current run against it:

* a finding **matching** a baseline entry is *accepted* — reported only
  with ``--show-baselined``, never failing the build;
* a finding **not** in the baseline is *new* — it fails the build;
* a baseline entry with no matching finding is *stale* — the debt was paid
  down, and ``--update-baseline`` must be re-run to ratchet the file
  forward (CI treats stale entries as a failure too, so the baseline can
  only shrink or be deliberately regenerated, never silently rot).

Matching is by ``(path, code, message)``, **not** line number: unrelated
edits move lines constantly, and the messages are written to be stable
(qualnames, not positions).  Duplicate keys are counted — three accepted
findings with one key allow at most three current ones.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from collections.abc import Sequence

from repro.lint.base import Finding

#: Baseline document schema version; bump on any key change.
BASELINE_VERSION = 1

#: Default baseline location, repo-root-relative.
DEFAULT_BASELINE = ".reprolint-baseline.json"

BaselineKey = tuple[str, str, str]


def _key(finding: Finding) -> BaselineKey:
    return (finding.path, finding.code, finding.message)


def load_baseline(path: str | Path) -> Counter[BaselineKey]:
    """Parse a baseline file into a key→allowed-count counter.

    A missing file is an empty baseline (every finding is new); a malformed
    file raises ``ValueError`` so CI fails loudly instead of accepting
    everything.
    """
    path = Path(path)
    if not path.exists():
        return Counter()
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
        entries = document["entries"]
        counter: Counter[BaselineKey] = Counter()
        for entry in entries:
            counter[(entry["path"], entry["code"], entry["message"])] += int(
                entry.get("count", 1)
            )
    except (KeyError, TypeError, json.JSONDecodeError) as exc:
        raise ValueError(f"malformed baseline file {path}: {exc}") from exc
    return counter


def write_baseline(path: str | Path, findings: Sequence[Finding]) -> None:
    """Snapshot *findings* as the new baseline (sorted, line-free, stable)."""
    counter = Counter(_key(f) for f in findings)
    entries = [
        {"path": key[0], "code": key[1], "message": key[2], "count": count}
        for key, count in sorted(counter.items())
    ]
    document = {"version": BASELINE_VERSION, "entries": entries}
    Path(path).write_text(
        json.dumps(document, indent=2, sort_keys=False) + "\n", encoding="utf-8"
    )


def apply_baseline(
    findings: Sequence[Finding], baseline: Counter[BaselineKey]
) -> tuple[list[Finding], list[Finding], list[BaselineKey]]:
    """Split *findings* into (new, accepted) and report stale baseline keys.

    Findings are processed in sorted order so which duplicates get accepted
    is deterministic (the earliest in file order win the baseline slots).
    """
    remaining = Counter(baseline)
    new: list[Finding] = []
    accepted: list[Finding] = []
    for finding in sorted(findings):
        key = _key(finding)
        if remaining[key] > 0:
            remaining[key] -= 1
            accepted.append(finding)
        else:
            new.append(finding)
    stale = sorted(key for key, count in remaining.items() if count > 0)
    return new, accepted, stale
