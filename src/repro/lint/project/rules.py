"""The RP010–RP016 whole-program rule catalogue.

Unlike the per-file rules (RP001–RP009), these run over a :class:`Project`
— symbol table plus approximate call graph — so they can see an ambient
``default_rng()`` three call hops below a job, an unpicklable closure
captured into a process-backend payload, or a journal reader whose expected
keys drifted from every writer.  Each finding carries a ``trace`` (an
entry→site call path) when the evidence is cross-module.

The dataflow model is deliberately over-approximate (unknown-receiver calls
fan out to every same-named method; see ``docs/static-analysis.md`` for the
full list of approximations).  The baseline ratchet and line-scoped
suppressions absorb accepted findings, so the rules can stay sound-biased.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar

from repro.lint.base import Finding
from repro.lint.project.callgraph import CallGraph, render_trace
from repro.lint.project.facts import ModuleFacts
from repro.lint.project.symbols import SymbolTable

#: Envelope keys the journal transport stamps on every event.
JOURNAL_ENVELOPE_KEYS = frozenset({"event", "ts", "seq", "run_id"})

#: Function names that build cache/journal keys — wall-clock or id() taint
#: flowing into these makes cache keys and journal records nondeterministic.
KEY_BUILDER_NAMES = frozenset(
    {"params_token", "rng_token", "freeze", "fingerprint", "cache_key"}
)

#: Dataclass field annotations that cannot (or must not) cross a process
#: boundary inside a job payload.
UNPICKLABLE_ANNOTATIONS = ("Generator", "Lock", "RLock", "IO", "TextIO", "BinaryIO")


@dataclass(frozen=True, order=True)
class ProjectFinding(Finding):
    """A :class:`Finding` with an optional cross-module call-path trace."""

    trace: str = ""

    def as_dict(self) -> dict[str, object]:
        out = super().as_dict()
        if self.trace:
            out["trace"] = self.trace
        return out

    def render(self) -> str:
        base = super().render()
        if self.trace:
            return f"{base}\n    via: {self.trace}"
        return base


@dataclass
class Project:
    """Everything a project rule gets to look at."""

    modules: dict[str, ModuleFacts]
    symbols: SymbolTable
    callgraph: CallGraph
    _entry_cache: dict[str, list[str]] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # shared entry-point discovery
    # ------------------------------------------------------------------ #

    def job_run_entries(self) -> list[str]:
        """``run`` methods of every ``*Job`` payload class.

        These are the functions the execution backends invoke — on worker
        threads under the thread backend and in worker processes under the
        process backend — so they anchor both the RNG-provenance and the
        shared-state reachability analyses.
        """
        cached = self._entry_cache.get("job_run")
        if cached is None:
            cached = []
            for facts in self.modules.values():
                for name, cls in facts.classes.items():
                    if name.endswith("Job") and "run" in cls.methods:
                        cached.append(f"{facts.module}:{name}.run")
            self._entry_cache["job_run"] = sorted(cached)
        return cached

    def selector_entries(self) -> list[str]:
        """``select``/``_select``/``_select_pooled`` across the selector tree."""
        cached = self._entry_cache.get("select")
        if cached is None:
            cached = []
            roots = [
                f"{facts.module}:{name}"
                for facts in self.modules.values()
                for name in facts.classes
                if name == "SeedSelector"
            ]
            class_ids: set[str] = set(roots)
            for root in roots:
                class_ids.update(self.symbols.subclasses_of(root))
            for class_id in sorted(class_ids):
                module, _, cls_name = class_id.partition(":")
                facts = self.modules[module]
                for method in ("select", "_select", "_select_pooled"):
                    qual = f"{cls_name}.{method}"
                    if qual in facts.functions:
                        cached.append(f"{module}:{qual}")
            self._entry_cache["select"] = sorted(cached)
        return cached

    def determinism_entries(self) -> list[str]:
        """Union of job-run and selector entries."""
        return sorted({*self.job_run_entries(), *self.selector_entries()})

    def suppressed(self, facts: ModuleFacts, line: int, code: str) -> bool:
        if line not in facts.suppressions:
            return False
        codes = facts.suppressions[line]
        return codes is None or code in codes


class ProjectRule:
    """Base class: metadata + the ``check`` hook over a :class:`Project`."""

    code: ClassVar[str] = "RP000"
    name: ClassVar[str] = "abstract-project-rule"
    rationale: ClassVar[str] = ""
    hint: ClassVar[str] = ""

    def check(self, project: Project) -> list[ProjectFinding]:
        raise NotImplementedError

    def finding(
        self,
        facts: ModuleFacts,
        line: int,
        message: str,
        trace: str = "",
        col: int = 1,
    ) -> ProjectFinding:
        return ProjectFinding(
            path=facts.path,
            line=line,
            col=col,
            code=self.code,
            message=message,
            hint=self.hint,
            trace=trace,
        )


class RngProvenance(ProjectRule):
    """RP010: every Generator on a job/selector path derives from the seed.

    An ambient ``default_rng()`` (or ``random.*`` / ``np.random.*`` draw)
    anywhere in the call closure of an execution-engine job or a seed
    selector breaks determinism-under-seed: the stream no longer derives
    from the master seed through the ``SeedSequence.spawn`` chain, so two
    runs with the same seed diverge.  The per-file RP001 sees only direct
    call sites; this rule follows the call graph, including through the
    ``utils.rng.as_rng`` boundary module that RP001 exempts.
    """

    code: ClassVar[str] = "RP010"
    name: ClassVar[str] = "rng-provenance"
    rationale: ClassVar[str] = (
        "generators reachable from exec jobs or SeedSelector.select must "
        "derive from the SeedSequence.spawn chain; ambient RNG construction "
        "on those paths silently breaks bit-identical replay"
    )
    hint: ClassVar[str] = (
        "thread the caller's Generator (or a SeedSequence child) down to "
        "this call; if ambient entropy is the documented contract of the "
        "site, keep it behind one allowlisted boundary with a narrow "
        "'# reprolint: disable=RP010' and a comment citing the decision"
    )

    def check(self, project: Project) -> list[ProjectFinding]:
        findings: list[ProjectFinding] = []
        entries = project.determinism_entries()
        parents = project.callgraph.reachable_from(entries)
        for facts, fn, symbol_id in project.symbols.iter_functions():
            if not fn.ambient_rng or symbol_id not in parents:
                continue
            trace = render_trace(
                project.symbols, project.callgraph.trace(parents, symbol_id)
            )
            for site in fn.ambient_rng:
                if project.suppressed(facts, site.line, self.code):
                    continue
                findings.append(
                    self.finding(
                        facts,
                        site.line,
                        f"ambient RNG {site.name!r} in {fn.qualname} is "
                        "reachable from a job/selector entry point",
                        trace=trace,
                    )
                )
        for facts in project.modules.values():
            for site in facts.module_ambient_rng:
                if project.suppressed(facts, site.line, self.code):
                    continue
                findings.append(
                    self.finding(
                        facts,
                        site.line,
                        f"module-level ambient RNG {site.name!r} runs at "
                        "import time, outside any seed chain",
                    )
                )
        return findings


class NondeterminismSources(ProjectRule):
    """RP011: wall-clock, ``id()`` keys, and set iteration near keys/journal.

    Wall-clock reads and ``id()``-derived keys differ across runs, and set
    iteration order differs across *processes* (hash randomization), so any
    of them feeding a cache key, a journal record, or a job/selector path
    makes warm replay and cross-backend comparison lie.  A function is
    *sensitive* when it is reachable from a job/selector entry point or
    when it (transitively) feeds a key-builder or journal writer.
    """

    code: ClassVar[str] = "RP011"
    name: ClassVar[str] = "nondeterminism-sources"
    rationale: ClassVar[str] = (
        "wall-clock reads, id()-keyed lookups, and unordered-set iteration "
        "produce values that differ across runs/processes; on cache-key or "
        "journal paths they silently break replay and comparison"
    )
    hint: ClassVar[str] = (
        "use monotonic clocks for durations, content-derived keys instead "
        "of id(), and sorted(...) before iterating sets; wall-clock fields "
        "that are the product (e.g. a journal 'ts') carry a narrow "
        "'# reprolint: disable=RP011'"
    )

    def _sensitive_ids(self, project: Project) -> set[str]:
        forward = set(
            project.callgraph.reachable_from(project.determinism_entries())
        )
        # backward closure into key builders / journal writers
        sinks: set[str] = set()
        for facts, fn, symbol_id in project.symbols.iter_functions():
            if fn.emits or fn.name in KEY_BUILDER_NAMES:
                sinks.add(symbol_id)
        reverse: dict[str, set[str]] = {}
        for caller, callees in project.callgraph.edges.items():
            for callee in callees:
                reverse.setdefault(callee, set()).add(caller)
        backward: set[str] = set()
        stack = list(sinks)
        while stack:
            current = stack.pop()
            if current in backward:
                continue
            backward.add(current)
            stack.extend(reverse.get(current, ()))
        return forward | backward

    def check(self, project: Project) -> list[ProjectFinding]:
        findings: list[ProjectFinding] = []
        sensitive = self._sensitive_ids(project)
        for facts, fn, symbol_id in project.symbols.iter_functions():
            for id_site in fn.id_keys:
                if project.suppressed(facts, id_site.line, self.code):
                    continue
                findings.append(
                    self.finding(
                        facts,
                        id_site.line,
                        f"id(...) used as a key in {fn.qualname}; object "
                        "identity differs across runs and processes",
                    )
                )
            if symbol_id not in sensitive:
                continue
            for clock in fn.wall_clock:
                if project.suppressed(facts, clock.line, self.code):
                    continue
                findings.append(
                    self.finding(
                        facts,
                        clock.line,
                        f"wall-clock read {clock.name!r} in {fn.qualname} on "
                        "a cache-key/journal/job path",
                    )
                )
            for site in fn.set_iters:
                if project.suppressed(facts, site.line, self.code):
                    continue
                findings.append(
                    self.finding(
                        facts,
                        site.line,
                        f"iteration over unordered set ({site.expr}) in "
                        f"{fn.qualname} on a determinism-sensitive path; "
                        "order differs under hash randomization",
                    )
                )
        return findings


class PickleSafety(ProjectRule):
    """RP012: job payloads shipped to the process backend must pickle.

    A lambda, a locally-defined closure, a lock, an open handle, or a live
    ``Generator`` captured into a ``*Job`` construction works on the serial
    and thread backends and then fails — or worse, silently duplicates RNG
    state — the first time the process backend pickles the payload.
    """

    code: ClassVar[str] = "RP012"
    name: ClassVar[str] = "pickle-safe-job-payloads"
    rationale: ClassVar[str] = (
        "job payloads cross a pickle boundary on the process backend; "
        "closures, locks, handles, and live Generators either fail to "
        "pickle or duplicate state that must stay process-local"
    )
    hint: ClassVar[str] = (
        "pass module-level callables and plain data into jobs; derive "
        "per-job randomness from the executor's SeedSequence spawn, never "
        "by capturing a Generator into the payload"
    )

    _ARG_MESSAGES: ClassVar[dict[str, str]] = {
        "lambda": "a lambda",
        "local-function": "a locally-defined closure",
        "unpicklable": "an unpicklable object",
        "generator": "a live numpy Generator",
    }

    def check(self, project: Project) -> list[ProjectFinding]:
        findings: list[ProjectFinding] = []
        for facts, fn, _symbol_id in project.symbols.iter_functions():
            for ctor in fn.job_ctors:
                for arg in ctor.args:
                    if project.suppressed(facts, arg.line, self.code):
                        continue
                    what = self._ARG_MESSAGES.get(arg.kind, arg.kind)
                    findings.append(
                        self.finding(
                            facts,
                            arg.line,
                            f"{ctor.class_name}(...) in {fn.qualname} "
                            f"captures {what} ({arg.detail}) into a job "
                            "payload",
                        )
                    )
        for facts in project.modules.values():
            for name, cls in facts.classes.items():
                if not name.endswith("Job"):
                    continue
                for field_name, annotation in cls.field_annotations.items():
                    if any(tok in annotation for tok in UNPICKLABLE_ANNOTATIONS):
                        if project.suppressed(facts, cls.lineno, self.code):
                            continue
                        findings.append(
                            self.finding(
                                facts,
                                cls.lineno,
                                f"job class {name} declares field "
                                f"{field_name!r} of unpicklable/stateful "
                                f"type {annotation!r}",
                            )
                        )
        return findings


class SharedStateMutation(ProjectRule):
    """RP013: thread-backend code paths never mutate shared state un-locked.

    Under the thread backend every job's ``run`` executes concurrently in
    one process, so a write to a module-level or class-level mutable
    reachable from a job — a handle-memo dict, a registry list — races
    unless it happens under a lock.  The metrics registry's instruments
    carry their own lock; everything else needs an explicit ``with lock:``.
    """

    code: ClassVar[str] = "RP013"
    name: ClassVar[str] = "locked-shared-state"
    rationale: ClassVar[str] = (
        "the thread backend runs jobs concurrently in-process; un-locked "
        "writes to module/class-level mutables on those paths race and can "
        "drop or corrupt shared state"
    )
    hint: ClassVar[str] = (
        "guard the write with a module-level threading.Lock (with _LOCK:) "
        "or move the binding to import time; reads of immutable bindings "
        "need no lock"
    )

    def check(self, project: Project) -> list[ProjectFinding]:
        findings: list[ProjectFinding] = []
        entries = project.job_run_entries()
        parents = project.callgraph.reachable_from(entries)
        for facts, fn, symbol_id in project.symbols.iter_functions():
            if symbol_id not in parents or not fn.mutations:
                continue
            trace = render_trace(
                project.symbols, project.callgraph.trace(parents, symbol_id)
            )
            for site in fn.mutations:
                if site.locked:
                    continue
                if project.suppressed(facts, site.line, self.code):
                    continue
                findings.append(
                    self.finding(
                        facts,
                        site.line,
                        f"un-locked write ({site.via}) to shared mutable "
                        f"{site.target!r} in {fn.qualname}, reachable from "
                        "a thread-backend job",
                        trace=trace,
                    )
                )
        return findings


class ContractCoverage(ProjectRule):
    """RP014: sibling implementations carry the same runtime contracts.

    When one overload path — one subclass override, or the python half of a
    python/numpy kernel pair — validates with ``REPRO_CONTRACTS`` checks
    and its sibling does not, enabling contracts in CI only half-verifies
    the invariant: the unchecked path can corrupt the payoff tensor while
    the matrix stays green.
    """

    code: ClassVar[str] = "RP014"
    name: ClassVar[str] = "contract-coverage"
    rationale: ClassVar[str] = (
        "REPRO_CONTRACTS checks present on one overload path but absent "
        "from a sibling leave the sibling unverified while CI reports the "
        "invariant as covered"
    )
    hint: ClassVar[str] = (
        "add the same contracts.check_* call (behind contracts.enabled()) "
        "to the sibling path, or hoist the check into the shared caller"
    )

    _KERNEL_SUFFIXES: ClassVar[tuple[str, str]] = ("_python", "_numpy")

    @staticmethod
    def _is_contract_call(project: Project, module: str, callee: str) -> bool:
        """Whether a recorded ``check_*`` call lands in a contracts module.

        Resolution through the symbol table distinguishes
        ``contracts.check_spread`` from an unrelated ``check_positive_int``
        imported from a validation helper.
        """
        resolved = project.symbols.resolve(module, callee)
        if resolved is None:
            # unresolved (e.g. external) calls count only when the written
            # qualifier names a contracts module explicitly
            return "contracts" in callee.split(".")[:-1]
        return resolved.partition(":")[0].split(".")[-1] == "contracts"

    def _calls_contracts(self, project: Project, symbol_id: str) -> bool:
        fn = project.symbols.function(symbol_id)
        if fn is None:
            return False
        module = symbol_id.partition(":")[0]
        return any(
            self._is_contract_call(project, module, call.callee)
            for call in fn.contract_calls
        )

    def _has_contracts(self, project: Project, symbol_id: str) -> bool:
        if self._calls_contracts(project, symbol_id):
            return True
        return any(
            self._calls_contracts(project, callee)
            for callee in sorted(project.callgraph.edges.get(symbol_id, ()))
        )

    @staticmethod
    def _is_concrete(project: Project, member: str) -> bool:
        """Family members with real logic of their own.

        Abstract declarations, docstring/``pass``/``NotImplementedError``
        stubs, and one-line ``return self.meth(...)`` delegators have
        nothing to validate, so they neither need contracts nor count as a
        covered sibling.
        """
        fn = project.symbols.function(member)
        return (
            fn is not None
            and not fn.is_abstract
            and not fn.is_trivial
            and fn.delegates_to is None
        )

    def _families(self, project: Project) -> list[list[str]]:
        families: list[list[str]] = []
        # (a) same-named overrides below a common analyzed base class
        for facts in project.modules.values():
            for name, cls in facts.classes.items():
                base_id = f"{facts.module}:{name}"
                subclasses = project.symbols.subclasses_of(base_id)
                if not subclasses:
                    continue
                for method in cls.methods:
                    if method.startswith("__"):
                        continue
                    members = [f"{facts.module}:{name}.{method}"]
                    for sub_id in subclasses:
                        sub_module, _, sub_name = sub_id.partition(":")
                        sub_facts = project.modules[sub_module]
                        qual = f"{sub_name}.{method}"
                        if qual in sub_facts.functions:
                            members.append(f"{sub_module}:{qual}")
                    if len(members) > 1:
                        families.append(members)
        # (b) python/numpy kernel pairs in one module
        for facts in project.modules.values():
            by_stem: dict[str, list[str]] = {}
            for qual, fn in facts.functions.items():
                for suffix in self._KERNEL_SUFFIXES:
                    if fn.name.endswith(suffix):
                        stem = fn.name[: -len(suffix)]
                        by_stem.setdefault(stem, []).append(
                            f"{facts.module}:{qual}"
                        )
            families.extend(m for m in by_stem.values() if len(m) > 1)
        return families

    def check(self, project: Project) -> list[ProjectFinding]:
        findings: list[ProjectFinding] = []
        reported: set[str] = set()
        for family in self._families(project):
            concrete = [m for m in family if self._is_concrete(project, m)]
            if len(concrete) < 2:
                continue
            covered = [m for m in concrete if self._has_contracts(project, m)]
            if not covered or len(covered) == len(concrete):
                continue
            exemplar = covered[0]
            for member in concrete:
                if member in covered or member in reported:
                    continue
                fn = project.symbols.function(member)
                module = member.partition(":")[0]
                facts = project.modules[module]
                if fn is None:
                    continue
                if project.suppressed(facts, fn.lineno, self.code):
                    continue
                reported.add(member)
                findings.append(
                    self.finding(
                        facts,
                        fn.lineno,
                        f"{fn.qualname} lacks the REPRO_CONTRACTS checks its "
                        f"sibling path {exemplar} performs",
                    )
                )
        return findings


class JournalSchemaConsistency(ProjectRule):
    """RP015: journal readers only expect keys some writer actually emits.

    The JSONL journal is a producer/consumer contract with no schema file:
    writers emit keyword dicts, readers ``get`` keys back out.  When a
    reader's expected key drifts from every writer (a rename on one side),
    the reader silently sees ``None`` and the monitor/report/export tables
    quietly go blank — no error, just wrong dashboards.
    """

    code: ClassVar[str] = "RP015"
    name: ClassVar[str] = "journal-schema-consistency"
    rationale: ClassVar[str] = (
        "journal writers and readers share an implicit per-event key "
        "schema; a key read that no writer emits returns None forever and "
        "blanks dashboards without an error"
    )
    hint: ClassVar[str] = (
        "rename the reader key to match the writer (or vice versa); if the "
        "key is genuinely optional and sometimes absent, suppress with "
        "'# reprolint: disable=RP015' at the reader"
    )

    def check(self, project: Project) -> list[ProjectFinding]:
        writers: dict[str, set[str]] = {}
        open_events: set[str] = set()
        writer_sites: dict[str, list[str]] = {}
        for _facts, fn, symbol_id in project.symbols.iter_functions():
            for emit in fn.emits:
                if emit.event is None:
                    continue
                writers.setdefault(emit.event, set()).update(emit.keys)
                writer_sites.setdefault(emit.event, []).append(symbol_id)
                if emit.open_keyed:
                    open_events.add(emit.event)
        if not writers:
            return []
        findings: list[ProjectFinding] = []
        for facts, fn, _symbol_id in project.symbols.iter_functions():
            for read in fn.reads:
                if read.event not in writers:
                    continue  # reader of an event this project never writes
                if read.event in open_events:
                    continue  # writer key set is statically unknowable
                known = writers[read.event] | JOURNAL_ENVELOPE_KEYS
                for key, line in read.keys:
                    if key in known:
                        continue
                    if project.suppressed(facts, line, self.code):
                        continue
                    sites = ", ".join(sorted(set(writer_sites[read.event]))[:3])
                    findings.append(
                        self.finding(
                            facts,
                            line,
                            f"reader {fn.qualname} expects key {key!r} of "
                            f"event {read.event!r} that no writer emits "
                            f"(writers: {sites})",
                        )
                    )
        return findings


class GraphPayloadRefs(ProjectRule):
    """RP016: job graph fields must admit ``GraphRef`` payloads.

    On the process backend every job is pickled per submission; a ``graph``
    field annotated as a raw ``DiGraph`` ships the full CSR arrays —
    O(n+m) bytes per job, the dominant submit cost at million-node scale —
    where a :class:`~repro.graphs.store.GraphRef` handle pickles in O(1)
    and resolves worker-side through the per-process mmap cache.  A job
    class whose graph-typed field does not admit refs forces every call
    site back onto the O(n+m) path.
    """

    code: ClassVar[str] = "RP016"
    name: ClassVar[str] = "graph-payload-refs"
    rationale: ClassVar[str] = (
        "a *Job field annotated with a raw DiGraph pickles the whole CSR "
        "graph into every process-backend submission; annotating it "
        "'DiGraph | GraphRef' lets call sites ship an O(1) mmap handle "
        "instead"
    )
    hint: ClassVar[str] = (
        "annotate the field 'DiGraph | GraphRef', resolve it at the top of "
        "run() with repro.graphs.store.resolve_graph, and build payloads "
        "through maybe_ref(graph); a job that genuinely requires an "
        "in-memory graph carries a narrow '# reprolint: disable=RP016'"
    )

    def check(self, project: Project) -> list[ProjectFinding]:
        findings: list[ProjectFinding] = []
        for facts in project.modules.values():
            for name, cls in facts.classes.items():
                if not name.endswith("Job"):
                    continue
                for field_name, annotation in cls.field_annotations.items():
                    if "DiGraph" not in annotation or "GraphRef" in annotation:
                        continue
                    if project.suppressed(facts, cls.lineno, self.code):
                        continue
                    findings.append(
                        self.finding(
                            facts,
                            cls.lineno,
                            f"job class {name} annotates field "
                            f"{field_name!r} as {annotation!r}; a raw "
                            "DiGraph payload pickles O(n+m) bytes per "
                            "process-backend job — admit GraphRef "
                            "('DiGraph | GraphRef')",
                        )
                    )
        return findings


PROJECT_RULES: tuple[type[ProjectRule], ...] = (
    RngProvenance,
    NondeterminismSources,
    PickleSafety,
    SharedStateMutation,
    ContractCoverage,
    JournalSchemaConsistency,
    GraphPayloadRefs,
)


def project_rule_by_code(code: str) -> type[ProjectRule]:
    """Look up a project rule class by its ``RPxxx`` code."""
    for rule in PROJECT_RULES:
        if rule.code == code:
            return rule
    raise KeyError(
        f"unknown project rule code {code!r}; known: "
        f"{', '.join(r.code for r in PROJECT_RULES)}"
    )
