"""Whole-program analysis driver: extract → aggregate → check.

The pipeline has three stages:

1. **extract** — every ``.py`` file under the package root is parsed and
   reduced to a picklable :class:`~repro.lint.project.facts.ModuleFacts`.
   This stage is embarrassingly parallel and fans out over a process pool
   (``jobs`` workers) once the file count justifies the pool start-up cost;
2. **aggregate** — the facts become a
   :class:`~repro.lint.project.symbols.SymbolTable` and a
   :class:`~repro.lint.project.callgraph.CallGraph` (single process, cheap);
3. **check** — each RP010–RP016 rule inspects the aggregate and emits
   :class:`~repro.lint.project.rules.ProjectFinding` objects; line-scoped
   ``# reprolint: disable=RPxxx`` comments are honoured by the rules
   themselves (they carry per-module suppression maps).

Files that fail to parse are **never silently skipped**: each produces an
``RP999`` finding and still participates as an (empty) module, so the CLI
exits nonzero with a diagnostic.
"""

from __future__ import annotations

import concurrent.futures
import os
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Sequence

from repro.lint.base import Finding
from repro.lint.engine import PARSE_ERROR_CODE, iter_python_files
from repro.lint.project.callgraph import CallGraph
from repro.lint.project.facts import ModuleFacts, extract_facts
from repro.lint.project.rules import (
    PROJECT_RULES,
    Project,
    ProjectFinding,
    ProjectRule,
)
from repro.lint.project.symbols import SymbolTable

#: Below this file count the pool start-up dominates; extract serially.
_PARALLEL_THRESHOLD = 16


def module_name_for(path: Path, root: Path, package: str) -> str:
    """Dotted module name of *path* relative to the package *root*.

    ``<root>/exec/jobs.py`` → ``<package>.exec.jobs``;
    ``<root>/exec/__init__.py`` → ``<package>.exec``.
    """
    relative = path.resolve().relative_to(root.resolve())
    parts = [package, *relative.parts[:-1]]
    stem = relative.stem
    if stem != "__init__":
        parts.append(stem)
    return ".".join(parts)


def _extract_one(payload: tuple[str, str, str]) -> ModuleFacts:
    """Worker body: read + parse + extract one file (picklable in and out)."""
    path_str, module, display = payload
    try:
        source = Path(path_str).read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        facts = ModuleFacts(module=module, path=display)
        facts.parse_error = f"file unreadable: {exc}"
        return facts
    return extract_facts(source, module, display)


@dataclass
class ProjectReport:
    """Outcome of one whole-program analysis run (pre-baseline)."""

    findings: list[Finding] = field(default_factory=list)
    parse_errors: list[Finding] = field(default_factory=list)
    modules_analyzed: int = 0
    package: str = ""

    @property
    def all_findings(self) -> list[Finding]:
        """Rule findings plus parse errors, sorted for rendering."""
        return sorted([*self.findings, *self.parse_errors])


def _select_project_rules(
    select: Sequence[str] | None, ignore: Sequence[str] | None
) -> list[type[ProjectRule]]:
    known = {r.code for r in PROJECT_RULES}
    rules = list(PROJECT_RULES)
    if select:
        wanted = {c for c in select if c in known}
        # codes addressing per-file rules are simply absent here; only codes
        # unknown to *both* catalogues are a usage error, which the CLI
        # validates before calling in.
        rules = [r for r in rules if r.code in wanted]
    if ignore:
        rules = [r for r in rules if r.code not in set(ignore)]
    return rules


def default_jobs() -> int:
    """Worker-count default for the extraction pool."""
    return min(os.cpu_count() or 1, 8)


def extract_project(
    root: Path, package: str | None = None, jobs: int | None = None
) -> dict[str, ModuleFacts]:
    """Stage 1: per-file facts for every module under *root*."""
    root = Path(root)
    package = package or root.name
    files = list(iter_python_files([root]))
    payloads = [
        (str(f), module_name_for(f, root, package), str(f)) for f in files
    ]
    workers = default_jobs() if jobs is None else max(jobs, 1)
    results: list[ModuleFacts]
    if workers > 1 and len(payloads) >= _PARALLEL_THRESHOLD:
        with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
            chunk = max(len(payloads) // (workers * 4), 1)
            results = list(pool.map(_extract_one, payloads, chunksize=chunk))
    else:
        results = [_extract_one(p) for p in payloads]
    modules: dict[str, ModuleFacts] = {}
    for facts in results:
        # A package dir and a sibling module can collide only on broken
        # layouts; last write wins deterministically (sorted file order).
        modules[facts.module] = facts
    return modules


def analyze_project(
    root: Path | str,
    package: str | None = None,
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
    jobs: int | None = None,
) -> ProjectReport:
    """Run the full whole-program analysis over the package at *root*."""
    root = Path(root)
    package = package or root.name
    modules = extract_project(root, package=package, jobs=jobs)
    report = ProjectReport(modules_analyzed=len(modules), package=package)
    for facts in modules.values():
        if facts.parse_error is not None:
            report.parse_errors.append(
                ProjectFinding(
                    path=facts.path,
                    line=facts.parse_error_line,
                    col=1,
                    code=PARSE_ERROR_CODE,
                    message=f"file does not parse: {facts.parse_error}",
                    hint="fix the syntax error; the project analysis needs "
                    "a valid AST for every module",
                )
            )
    symbols = SymbolTable(modules)
    callgraph = CallGraph(symbols)
    project = Project(modules=modules, symbols=symbols, callgraph=callgraph)
    for rule_cls in _select_project_rules(select, ignore):
        report.findings.extend(rule_cls().check(project))
    report.findings.sort()
    report.parse_errors.sort()
    return report
