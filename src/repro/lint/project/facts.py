"""Per-file fact extraction: the picklable IR of the whole-program analyzer.

The project engine never ships ASTs between processes.  Instead, each file is
parsed exactly once (possibly in a worker process) and reduced to a
:class:`ModuleFacts` record — a plain-dataclass summary of everything the
cross-module rules need: definitions, imports, call sites, and the
rule-specific "interesting events" (ambient RNG construction, wall-clock
reads, ``id()`` keying, unordered-set iteration, shared-state mutation,
contract calls, journal emit/read sites, job constructions).  Facts pickle
cheaply, so the extraction fans out over a process pool and the single-
process aggregation step stays small.

Everything here is *approximate by design*: the extractor resolves nothing —
call strings are recorded as written (``self.run``, ``np.random.default_rng``)
and the symbol table / call graph layers interpret them later.  The
approximations are documented in ``docs/static-analysis.md``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.base import dotted_name
from repro.lint.engine import parse_suppressions

#: np.random attributes that name types, not sampling entry points.
RNG_TYPE_NAMES = frozenset({"Generator", "BitGenerator", "SeedSequence"})

#: Wall-clock entry points (nondeterministic across runs, unlike monotonic
#: clocks which only measure durations).
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Receiver methods that mutate a list/dict/set in place.
MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
    }
)

#: Constructors whose value is unpicklable (or picklable only by accident).
UNPICKLABLE_CTORS = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Event",
        "threading.Semaphore",
        "Lock",
        "RLock",
        "open",
    }
)

#: Calls that produce a live ``numpy.random.Generator``.
GENERATOR_CTORS = frozenset(
    {
        "as_rng",
        "spawn_rngs",
        "default_rng",
        "np.random.default_rng",
        "numpy.random.default_rng",
    }
)


@dataclass(frozen=True)
class CallSite:
    """One call expression, recorded as written (unresolved)."""

    callee: str
    line: int


@dataclass(frozen=True)
class RNGSite:
    """An ambient (seed-less, process-global) RNG construction or draw."""

    name: str
    line: int


@dataclass(frozen=True)
class ClockSite:
    """A wall-clock read (``time.time()``, ``datetime.now()``, ...)."""

    name: str
    line: int


@dataclass(frozen=True)
class IdKeySite:
    """An ``id(...)`` call used in a keying position (subscript/dict key)."""

    line: int


@dataclass(frozen=True)
class SetIterSite:
    """Iteration over an unordered set without a ``sorted(...)`` wrapper."""

    expr: str
    line: int


@dataclass(frozen=True)
class MutationSite:
    """A write to a module-level or class-level mutable binding.

    ``target`` is the name as written (``_CACHE`` or ``Cls.attr``);
    ``via`` is ``"subscript"``, ``"augassign"``, ``"assign"`` or the mutator
    method name; ``locked`` is True when the statement sits inside a
    ``with`` block whose context expression mentions a lock.
    """

    target: str
    via: str
    line: int
    locked: bool


@dataclass(frozen=True)
class EmitSite:
    """A journal write: ``<sink>.emit("<event>", k1=..., **rest)``.

    ``event`` is ``None`` when the event name is not a string literal;
    ``open_keyed`` is True when a ``**kwargs`` splat makes the key set
    unknowable statically.
    """

    event: str | None
    keys: tuple[str, ...]
    open_keyed: bool
    line: int


@dataclass(frozen=True)
class ReadSite:
    """A journal read: key accesses in a function that filters one event type.

    ``event`` is the literal the function compares against
    (``e.get("event") == "profile_done"``); ``keys`` are the
    ``.get("k")`` / ``["k"]`` accesses syntactically inside that function.
    """

    event: str
    keys: tuple[tuple[str, int], ...]
    line: int


@dataclass(frozen=True)
class JobArg:
    """One suspicious argument at a job construction site."""

    kind: str  # "lambda" | "local-function" | "unpicklable" | "generator"
    detail: str
    line: int


@dataclass(frozen=True)
class JobCtorSite:
    """A construction of a ``*Job`` payload class."""

    class_name: str  # as written, e.g. "CompetitiveJob" or "jobs.SpreadJob"
    args: tuple[JobArg, ...]
    line: int


@dataclass
class FunctionFacts:
    """Everything the project rules need to know about one function/method."""

    qualname: str  # "f" or "Cls.meth"
    name: str
    lineno: int
    class_name: str | None = None
    is_abstract: bool = False
    is_trivial: bool = False
    delegates_to: str | None = None  # "meth" when body is `return self.meth(...)`
    params: tuple[str, ...] = ()
    param_types: dict[str, str] = field(default_factory=dict)
    local_types: dict[str, str] = field(default_factory=dict)
    calls: list[CallSite] = field(default_factory=list)
    ambient_rng: list[RNGSite] = field(default_factory=list)
    wall_clock: list[ClockSite] = field(default_factory=list)
    id_keys: list[IdKeySite] = field(default_factory=list)
    set_iters: list[SetIterSite] = field(default_factory=list)
    mutations: list[MutationSite] = field(default_factory=list)
    contract_calls: list[CallSite] = field(default_factory=list)
    emits: list[EmitSite] = field(default_factory=list)
    reads: list[ReadSite] = field(default_factory=list)
    job_ctors: list[JobCtorSite] = field(default_factory=list)


@dataclass
class ClassFacts:
    """One class definition: bases (unresolved), methods, field annotations."""

    name: str
    lineno: int
    bases: tuple[str, ...] = ()
    methods: tuple[str, ...] = ()
    field_annotations: dict[str, str] = field(default_factory=dict)
    class_mutables: dict[str, int] = field(default_factory=dict)


@dataclass
class ModuleFacts:
    """The complete per-file summary the project engine aggregates."""

    module: str  # dotted, e.g. "repro.exec.jobs"
    path: str
    imports: dict[str, str] = field(default_factory=dict)  # alias -> target
    star_imports: tuple[str, ...] = ()
    functions: dict[str, FunctionFacts] = field(default_factory=dict)
    classes: dict[str, ClassFacts] = field(default_factory=dict)
    module_mutables: dict[str, int] = field(default_factory=dict)  # name -> line
    module_set_names: frozenset[str] = frozenset()
    module_ambient_rng: tuple[RNGSite, ...] = ()
    suppressions: dict[int, set[str] | None] = field(default_factory=dict)
    parse_error: str | None = None
    parse_error_line: int = 1


_MUTABLE_CTORS = frozenset({"dict", "list", "set", "defaultdict", "OrderedDict"})


def _is_abstract(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for decorator in node.decorator_list:
        name = dotted_name(decorator)
        if name is not None and name.split(".")[-1] in (
            "abstractmethod",
            "abstractproperty",
        ):
            return True
    return False


def _body_shape(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> tuple[bool, str | None]:
    """(is_trivial, delegates_to) from the statement body.

    *Trivial* bodies — docstring-only, ``pass``, ``...``, or a bare
    ``raise NotImplementedError`` — and single-statement
    ``return self.meth(...)`` delegators carry no logic of their own, so
    rules comparing sibling implementations (RP014) skip them.
    """
    body = list(node.body)
    if (
        body
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and isinstance(body[0].value.value, str)
    ):
        body = body[1:]  # drop the docstring
    if not body:
        return True, None
    if len(body) != 1:
        return False, None
    stmt = body[0]
    if isinstance(stmt, ast.Pass):
        return True, None
    if (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Constant)
        and stmt.value.value is Ellipsis
    ):
        return True, None
    if isinstance(stmt, ast.Raise):
        exc = stmt.exc
        name = (
            dotted_name(exc.func)
            if isinstance(exc, ast.Call)
            else dotted_name(exc)
            if exc is not None
            else None
        )
        if name is not None and name.split(".")[-1] == "NotImplementedError":
            return True, None
    if isinstance(stmt, ast.Return) and isinstance(stmt.value, ast.Call):
        callee = dotted_name(stmt.value.func)
        if callee is not None:
            parts = callee.split(".")
            if len(parts) == 2 and parts[0] == "self":
                return False, parts[1]
    return False, None


def _is_mutable_literal(node: ast.expr) -> str | None:
    """Kind of mutable a module/class-level assignment binds, or None."""
    if isinstance(node, ast.Dict):
        return "dict"
    if isinstance(node, ast.List):
        return "list"
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name is not None and name.split(".")[-1] in _MUTABLE_CTORS:
            return name.split(".")[-1]
        if name is not None and name.split(".")[-1] in ("frozenset",):
            return None  # immutable
    return None


def _ambient_rng_name(node: ast.Call) -> str | None:
    """The dotted name of an ambient RNG call, or None.

    Covers ``random.X(...)``, ``np.random.X(...)`` (X not a type name), and
    bare ``default_rng()`` **with no arguments** — seeded ``default_rng(seq)``
    derives from the caller's seed and is fine.
    """
    name = dotted_name(node.func)
    if name is None:
        return None
    parts = name.split(".")
    if parts[-1] in RNG_TYPE_NAMES:
        return None
    if len(parts) == 2 and parts[0] == "random":
        return name
    if len(parts) == 3 and parts[0] in ("np", "numpy") and parts[1] == "random":
        if parts[2] == "default_rng" and (node.args or node.keywords):
            return None
        return name
    if parts[-1] == "default_rng" and not node.args and not node.keywords:
        return name
    return None


class _Extractor(ast.NodeVisitor):
    """Single-pass AST walk filling a :class:`ModuleFacts`."""

    def __init__(self, facts: ModuleFacts) -> None:
        self.facts = facts
        self._class_stack: list[ClassFacts] = []
        self._func_stack: list[FunctionFacts] = []
        self._with_lock_depth = 0
        self._local_funcs: list[set[str]] = []

    # ------------------------------------------------------------------ #
    # scopes
    # ------------------------------------------------------------------ #

    def _current(self) -> FunctionFacts | None:
        return self._func_stack[-1] if self._func_stack else None

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self._func_stack:
            self.generic_visit(node)
            return
        cls = ClassFacts(
            name=node.name,
            lineno=node.lineno,
            bases=tuple(
                n for n in (dotted_name(b) for b in node.bases) if n is not None
            ),
        )
        # class-level field annotations and mutable bindings
        methods: list[str] = []
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                cls.field_annotations[stmt.target.id] = ast.unparse(stmt.annotation)
                if stmt.value is not None and _is_mutable_literal(stmt.value):
                    cls.class_mutables[stmt.target.id] = stmt.lineno
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and _is_mutable_literal(stmt.value):
                        cls.class_mutables[target.id] = stmt.lineno
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                methods.append(stmt.name)
        cls.methods = tuple(methods)
        self.facts.classes[node.name] = cls
        self._class_stack.append(cls)
        self.generic_visit(node)
        self._class_stack.pop()

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        if self._func_stack:
            # nested function: record its name so job-ctor args can tell a
            # local closure from a module-level callable, then walk its body
            # attributing facts to the *enclosing* function (it runs there).
            self._local_funcs[-1].add(node.name)
            self.generic_visit(node)
            return
        cls = self._class_stack[-1] if self._class_stack else None
        qual = f"{cls.name}.{node.name}" if cls is not None else node.name
        params: list[str] = []
        param_types: dict[str, str] = {}
        for arg in [*node.args.posonlyargs, *node.args.args, *node.args.kwonlyargs]:
            params.append(arg.arg)
            if arg.annotation is not None:
                param_types[arg.arg] = ast.unparse(arg.annotation)
        is_trivial, delegates_to = _body_shape(node)
        fn = FunctionFacts(
            qualname=qual,
            name=node.name,
            lineno=node.lineno,
            class_name=cls.name if cls is not None else None,
            is_abstract=_is_abstract(node),
            is_trivial=is_trivial,
            delegates_to=delegates_to,
            params=tuple(params),
            param_types=param_types,
        )
        self.facts.functions[qual] = fn
        self._func_stack.append(fn)
        self._local_funcs.append(set())
        self.generic_visit(node)
        self._detect_reads(node, fn)
        self._local_funcs.pop()
        self._func_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # ------------------------------------------------------------------ #
    # imports
    # ------------------------------------------------------------------ #

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.facts.imports[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )
            if alias.asname:
                self.facts.imports[alias.asname] = alias.name
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        mod = node.module or ""
        if node.level:
            # relative import: resolved against this module's package
            package = self.facts.module.rsplit(".", node.level)[0]
            mod = f"{package}.{mod}" if mod else package
        for alias in node.names:
            if alias.name == "*":
                self.facts.star_imports = (*self.facts.star_imports, mod)
            else:
                self.facts.imports[alias.asname or alias.name] = f"{mod}.{alias.name}"
        self.generic_visit(node)

    # ------------------------------------------------------------------ #
    # statements
    # ------------------------------------------------------------------ #

    def visit_Assign(self, node: ast.Assign) -> None:
        fn = self._current()
        if fn is None and not self._class_stack:
            kind = _is_mutable_literal(node.value)
            if kind is not None:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.facts.module_mutables[target.id] = node.lineno
                        if kind == "set":
                            self.facts.module_set_names = frozenset(
                                {*self.facts.module_set_names, target.id}
                            )
        if fn is not None:
            for target in node.targets:
                self._check_mutation_target(fn, target, "assign", node.lineno)
                if isinstance(target, ast.Name) and isinstance(node.value, ast.Call):
                    callee = dotted_name(node.value.func)
                    if callee is not None:
                        fn.local_types[target.id] = callee
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        fn = self._current()
        if fn is None and not self._class_stack:
            if isinstance(node.target, ast.Name) and node.value is not None:
                kind = _is_mutable_literal(node.value)
                if kind is not None:
                    self.facts.module_mutables[node.target.id] = node.lineno
                    if kind == "set":
                        self.facts.module_set_names = frozenset(
                            {*self.facts.module_set_names, node.target.id}
                        )
        if fn is not None:
            self._check_mutation_target(fn, node.target, "assign", node.lineno)
            if (
                isinstance(node.target, ast.Name)
                and isinstance(node.value, ast.Call)
            ):
                callee = dotted_name(node.value.func)
                if callee is not None:
                    fn.local_types[node.target.id] = callee
            elif isinstance(node.target, ast.Name) and node.annotation is not None:
                fn.local_types.setdefault(
                    node.target.id, ast.unparse(node.annotation)
                )
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        fn = self._current()
        if fn is not None:
            self._check_mutation_target(fn, node.target, "augassign", node.lineno)
        self.generic_visit(node)

    def _check_mutation_target(
        self, fn: FunctionFacts, target: ast.expr, via: str, line: int
    ) -> None:
        """Record writes whose base is a module/class-level mutable name."""
        if isinstance(target, ast.Subscript):
            base = target.value
            name = dotted_name(base)
            if name is not None and self._is_shared_name(fn, name):
                fn.mutations.append(
                    MutationSite(name, "subscript", line, self._locked())
                )
        elif isinstance(target, ast.Name) and via == "augassign":
            if self._is_shared_name(fn, target.id):
                fn.mutations.append(
                    MutationSite(target.id, via, line, self._locked())
                )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_mutation_target(fn, element, via, line)

    def _is_shared_name(self, fn: FunctionFacts, name: str) -> bool:
        """Whether *name* (as written) denotes a module/class-level mutable."""
        head = name.split(".")[0]
        if name in self.facts.module_mutables or head in self.facts.module_mutables:
            return head not in fn.params and head not in fn.local_types
        parts = name.split(".")
        if len(parts) == 2:
            cls = self.facts.classes.get(parts[0])
            if cls is not None and parts[1] in cls.class_mutables:
                return True
            if parts[0] == "self" and fn.class_name is not None:
                owner = self.facts.classes.get(fn.class_name)
                if owner is not None and parts[1] in owner.class_mutables:
                    return True
        return False

    def _locked(self) -> bool:
        return self._with_lock_depth > 0

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        is_lock = any(
            "lock" in (ast.unparse(item.context_expr)).lower()
            for item in node.items
        )
        if is_lock:
            self._with_lock_depth += 1
        self.generic_visit(node)
        if is_lock:
            self._with_lock_depth -= 1

    # ------------------------------------------------------------------ #
    # loops (unordered-set iteration)
    # ------------------------------------------------------------------ #

    def visit_For(self, node: ast.For) -> None:
        fn = self._current()
        if fn is not None:
            expr = self._set_valued(fn, node.iter)
            if expr is not None:
                fn.set_iters.append(SetIterSite(expr, node.iter.lineno))
        self.generic_visit(node)

    def _set_valued(self, fn: FunctionFacts, node: ast.expr) -> str | None:
        """An expression statically known to iterate an unordered set."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return ast.unparse(node)
        if isinstance(node, ast.Call):
            callee = dotted_name(node.func)
            if callee == "set":
                return ast.unparse(node)
            # list(S) / tuple(S) of a set is still unordered
            if callee in ("list", "tuple") and len(node.args) == 1:
                inner = self._set_valued(fn, node.args[0])
                if inner is not None:
                    return ast.unparse(node)
            return None
        if isinstance(node, ast.Name):
            if node.id in self.facts.module_set_names:
                return node.id
            if fn.local_types.get(node.id, "").split(".")[-1] == "set":
                return node.id
        return None

    # ------------------------------------------------------------------ #
    # calls
    # ------------------------------------------------------------------ #

    def visit_Call(self, node: ast.Call) -> None:
        fn = self._current()
        name = dotted_name(node.func)
        if name is not None:
            if fn is not None:
                fn.calls.append(CallSite(name, node.lineno))
                parts = name.split(".")
                # Candidate contract calls; RP014 resolves them through the
                # symbol table and keeps only the ones landing in a module
                # actually named "contracts".
                if parts[-1].startswith("check_"):
                    fn.contract_calls.append(CallSite(name, node.lineno))
                if name in WALL_CLOCK_CALLS or (
                    len(parts) >= 2
                    and parts[-2] in ("time", "datetime", "date")
                    and parts[-1] in ("time", "time_ns", "now", "utcnow", "today")
                ):
                    fn.wall_clock.append(ClockSite(name, node.lineno))
                mutator = parts[-1]
                if mutator in MUTATOR_METHODS and len(parts) >= 2:
                    owner = ".".join(parts[:-1])
                    if self._is_shared_name(fn, owner):
                        fn.mutations.append(
                            MutationSite(owner, mutator, node.lineno, self._locked())
                        )
                if parts[-1] == "emit":
                    self._record_emit(fn, node)
                if parts[-1].endswith("Job") and parts[-1][0].isupper():
                    self._record_job_ctor(fn, node, name)
            rng_name = _ambient_rng_name(node)
            if rng_name is not None:
                site = RNGSite(rng_name, node.lineno)
                if fn is not None:
                    fn.ambient_rng.append(site)
                else:
                    self.facts.module_ambient_rng = (
                        *self.facts.module_ambient_rng,
                        site,
                    )
        # id(...) used as a subscript index or dict key is handled in
        # visit_Subscript / visit_Dict; a bare id() call is not a key use.
        self.generic_visit(node)

    @staticmethod
    def _is_id_call(node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "id"
        )

    def _contains_id_call(self, node: ast.expr) -> bool:
        if self._is_id_call(node):
            return True
        if isinstance(node, ast.Tuple):
            return any(self._contains_id_call(e) for e in node.elts)
        return False

    def visit_Subscript(self, node: ast.Subscript) -> None:
        fn = self._current()
        if fn is not None and self._contains_id_call(node.slice):
            fn.id_keys.append(IdKeySite(node.lineno))
        self.generic_visit(node)

    def visit_Dict(self, node: ast.Dict) -> None:
        fn = self._current()
        if fn is not None:
            for key in node.keys:
                if key is not None and self._contains_id_call(key):
                    fn.id_keys.append(IdKeySite(key.lineno))
        self.generic_visit(node)

    def _record_emit(self, fn: FunctionFacts, node: ast.Call) -> None:
        event: str | None = None
        if node.args and isinstance(node.args[0], ast.Constant):
            if isinstance(node.args[0].value, str):
                event = node.args[0].value
        keys = tuple(kw.arg for kw in node.keywords if kw.arg is not None)
        open_keyed = any(kw.arg is None for kw in node.keywords)
        fn.emits.append(EmitSite(event, keys, open_keyed, node.lineno))

    def _record_job_ctor(
        self, fn: FunctionFacts, node: ast.Call, name: str
    ) -> None:
        suspicious: list[JobArg] = []
        locals_here = self._local_funcs[-1] if self._local_funcs else set()

        def classify(value: ast.expr) -> None:
            if isinstance(value, ast.Lambda):
                suspicious.append(JobArg("lambda", "lambda", value.lineno))
                return
            if isinstance(value, ast.Name) and value.id in locals_here:
                suspicious.append(
                    JobArg("local-function", value.id, value.lineno)
                )
                return
            if isinstance(value, ast.Call):
                callee = dotted_name(value.func)
                if callee in UNPICKLABLE_CTORS:
                    suspicious.append(
                        JobArg("unpicklable", callee, value.lineno)
                    )
                    return
                if callee in GENERATOR_CTORS or (
                    callee is not None
                    and callee.split(".")[-1] in ("as_rng", "default_rng")
                ):
                    suspicious.append(JobArg("generator", callee, value.lineno))
                    return
            if isinstance(value, ast.Name):
                local_type = fn.local_types.get(value.id, "")
                tail = local_type.split(".")[-1]
                if local_type in UNPICKLABLE_CTORS or tail in ("Lock", "RLock"):
                    suspicious.append(
                        JobArg("unpicklable", local_type, value.lineno)
                    )
                elif local_type in GENERATOR_CTORS or tail in (
                    "as_rng",
                    "default_rng",
                ):
                    suspicious.append(
                        JobArg("generator", local_type, value.lineno)
                    )

        for arg in node.args:
            classify(arg)
        for kw in node.keywords:
            if kw.arg is not None:
                classify(kw.value)
        fn.job_ctors.append(JobCtorSite(name, tuple(suspicious), node.lineno))

    # ------------------------------------------------------------------ #
    # reader-side journal schema (per function, after the walk)
    # ------------------------------------------------------------------ #

    def _detect_reads(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef, fn: FunctionFacts
    ) -> None:
        """Pair an ``== "event"`` guard with the key accesses around it.

        Scope is the whole function body: if a function compares something
        to exactly one event-name literal and subscripts/gets string keys,
        those keys are assumed to describe that event's schema.  Functions
        comparing against several event names are skipped (too ambiguous).
        """
        events: set[str] = set()
        keys: list[tuple[str, int]] = []
        for sub in ast.walk(node):
            if isinstance(sub, ast.Compare) and len(sub.ops) == 1:
                if isinstance(sub.ops[0], ast.Eq):
                    operands = [sub.left, *sub.comparators]
                    literals = [
                        o.value
                        for o in operands
                        if isinstance(o, ast.Constant) and isinstance(o.value, str)
                    ]
                    guard = any(
                        isinstance(o, ast.Call)
                        and isinstance(o.func, ast.Attribute)
                        and o.func.attr == "get"
                        and o.args
                        and isinstance(o.args[0], ast.Constant)
                        and o.args[0].value == "event"
                        or isinstance(o, ast.Subscript)
                        and isinstance(o.slice, ast.Constant)
                        and o.slice.value == "event"
                        for o in operands
                    )
                    if guard:
                        events.update(literals)
            elif isinstance(sub, ast.Call):
                if (
                    isinstance(sub.func, ast.Attribute)
                    and sub.func.attr == "get"
                    and sub.args
                    and isinstance(sub.args[0], ast.Constant)
                    and isinstance(sub.args[0].value, str)
                ):
                    keys.append((sub.args[0].value, sub.lineno))
            elif isinstance(sub, ast.Subscript):
                if isinstance(sub.slice, ast.Constant) and isinstance(
                    sub.slice.value, str
                ):
                    keys.append((sub.slice.value, sub.lineno))
        if len(events) == 1 and keys:
            event = next(iter(events))
            fn.reads.append(
                ReadSite(
                    event,
                    tuple(k for k in keys if k[0] != "event"),
                    fn.lineno,
                )
            )


def extract_facts(source: str, module: str, path: str) -> ModuleFacts:
    """Parse *source* and reduce it to a :class:`ModuleFacts` record.

    Parse failures never raise: they are recorded on the returned facts
    (``parse_error`` / ``parse_error_line``) so the engine can surface them
    as findings and a nonzero exit instead of silently skipping the file.
    """
    facts = ModuleFacts(module=module, path=path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        facts.parse_error = exc.msg or "syntax error"
        facts.parse_error_line = exc.lineno or 1
        return facts
    facts.suppressions = parse_suppressions(source)
    _Extractor(facts).visit(tree)
    return facts
