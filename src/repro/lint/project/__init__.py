"""reprolint v2: whole-program determinism & concurrency analysis.

Where :mod:`repro.lint.rules` checks one file at a time, this package builds
a symbol table and approximate call graph over the entire ``repro`` package
and runs taint-style dataflow rules on top:

* :mod:`repro.lint.project.facts` — per-file picklable IR (extracted in
  parallel across a process pool);
* :mod:`repro.lint.project.symbols` — cross-module name resolution
  (imports, re-exports, star imports, aliases, base-class method lookup);
* :mod:`repro.lint.project.callgraph` — caller→callee edges, reachability,
  call-path traces for findings;
* :mod:`repro.lint.project.rules` — RP010–RP016;
* :mod:`repro.lint.project.baseline` — the checked-in ratchet that pins
  accepted findings while blocking new ones;
* :mod:`repro.lint.project.engine` — the extract → aggregate → check driver
  behind ``python -m repro lint --project``.
"""

from repro.lint.project.baseline import (
    DEFAULT_BASELINE,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.project.callgraph import CallGraph, render_trace
from repro.lint.project.engine import (
    ProjectReport,
    analyze_project,
    extract_project,
    module_name_for,
)
from repro.lint.project.facts import ModuleFacts, extract_facts
from repro.lint.project.rules import (
    PROJECT_RULES,
    Project,
    ProjectFinding,
    ProjectRule,
    project_rule_by_code,
)
from repro.lint.project.symbols import SymbolTable

__all__ = [
    "DEFAULT_BASELINE",
    "PROJECT_RULES",
    "CallGraph",
    "ModuleFacts",
    "Project",
    "ProjectFinding",
    "ProjectReport",
    "ProjectRule",
    "SymbolTable",
    "analyze_project",
    "apply_baseline",
    "extract_facts",
    "extract_project",
    "load_baseline",
    "module_name_for",
    "project_rule_by_code",
    "render_trace",
    "write_baseline",
]
