"""Project symbol table: resolving names across module boundaries.

Aggregates the per-file :class:`~repro.lint.project.facts.ModuleFacts` into
one table and answers the question every cross-module rule asks: *which
definition does this name, written in this module, actually denote?*

Resolution follows import chains (``from repro.cascade import
sample_snapshots`` where ``repro.cascade/__init__.py`` itself imports the
name from ``repro.cascade.snapshots``), ``*`` imports, and ``import x as y``
aliases.  The result is a **global symbol id** of the form
``"<module>:<qualname>"`` (``repro.utils.rng:as_rng``,
``repro.exec.jobs:CompetitiveJob.run``).

Deliberate approximations (see ``docs/static-analysis.md``):

* names that resolve outside the analyzed project (numpy, stdlib) return
  ``None`` — the rules treat external calls as opaque;
* conditional imports and ``importlib`` tricks are invisible;
* one name per module — shadowing a module-level name inside a function is
  not modelled (function locals are tracked separately in the facts layer).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lint.project.facts import ClassFacts, FunctionFacts, ModuleFacts


@dataclass(frozen=True)
class Symbol:
    """One resolved definition."""

    symbol_id: str  # "module:qualname"
    module: str
    qualname: str
    kind: str  # "function" | "class"
    path: str
    line: int


class SymbolTable:
    """Name resolution over a set of analyzed modules."""

    def __init__(self, modules: dict[str, ModuleFacts]) -> None:
        self.modules = modules
        self._symbols: dict[str, Symbol] = {}
        for facts in modules.values():
            for qual, fn in facts.functions.items():
                sid = f"{facts.module}:{qual}"
                self._symbols[sid] = Symbol(
                    sid, facts.module, qual, "function", facts.path, fn.lineno
                )
            for name, cls in facts.classes.items():
                sid = f"{facts.module}:{name}"
                self._symbols[sid] = Symbol(
                    sid, facts.module, name, "class", facts.path, cls.lineno
                )

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #

    def symbol(self, symbol_id: str) -> Symbol | None:
        """The :class:`Symbol` for a global id, or None."""
        return self._symbols.get(symbol_id)

    def function(self, symbol_id: str) -> FunctionFacts | None:
        """The facts of the function behind *symbol_id*, or None."""
        module, _, qual = symbol_id.partition(":")
        facts = self.modules.get(module)
        if facts is None:
            return None
        return facts.functions.get(qual)

    def class_facts(self, symbol_id: str) -> ClassFacts | None:
        """The facts of the class behind *symbol_id*, or None."""
        module, _, qual = symbol_id.partition(":")
        facts = self.modules.get(module)
        if facts is None:
            return None
        return facts.classes.get(qual)

    def iter_functions(self) -> list[tuple[ModuleFacts, FunctionFacts, str]]:
        """Every function in the project as (module facts, fn facts, id)."""
        out: list[tuple[ModuleFacts, FunctionFacts, str]] = []
        for facts in self.modules.values():
            for qual, fn in facts.functions.items():
                out.append((facts, fn, f"{facts.module}:{qual}"))
        return out

    # ------------------------------------------------------------------ #
    # resolution
    # ------------------------------------------------------------------ #

    def resolve(
        self, module: str, name: str, _seen: frozenset[str] = frozenset()
    ) -> str | None:
        """Resolve *name* (as written in *module*) to a global symbol id.

        Handles plain definitions, ``from x import y`` (chasing re-export
        chains through ``__init__`` modules), ``import x as y`` aliases,
        star imports, and dotted attribute paths rooted at any of those.
        Returns ``None`` for names the project does not define.
        """
        facts = self.modules.get(module)
        if facts is None:
            return None
        key = f"{module}|{name}"
        if key in _seen:  # import cycle
            return None
        _seen = _seen | {key}

        head, _, rest = name.partition(".")

        # 1. defined right here?
        if head in facts.functions or head in facts.classes:
            if not rest:
                return f"{module}:{head}"
            # Class.method
            cls = facts.classes.get(head)
            if cls is not None:
                return self.resolve_method(f"{module}:{head}", rest)
            return f"{module}:{head}"

        # 2. an import alias?
        target = facts.imports.get(head)
        if target is not None:
            dotted = f"{target}.{rest}" if rest else target
            return self._resolve_dotted(dotted, _seen)

        # 3. star imports
        for star in facts.star_imports:
            resolved = self.resolve(star, name, _seen)
            if resolved is not None:
                return resolved
        return None

    def _resolve_dotted(
        self, dotted: str, _seen: frozenset[str]
    ) -> str | None:
        """Resolve an absolute dotted path against the analyzed modules.

        Finds the longest module prefix, then resolves the remainder inside
        it (recursing so ``__init__`` re-exports chase through).
        """
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            module = ".".join(parts[:cut])
            if module in self.modules:
                remainder = ".".join(parts[cut:])
                if not remainder:
                    return None  # a bare module, not a definition
                return self.resolve(module, remainder, _seen)
        return None

    def resolve_method(self, class_id: str, method: str) -> str | None:
        """Resolve *method* on the class *class_id*, walking base classes."""
        seen: set[str] = set()
        stack = [class_id]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            cls = self.class_facts(current)
            if cls is None:
                continue
            module = current.partition(":")[0]
            facts = self.modules[module]
            qual = f"{cls.name}.{method}"
            if qual in facts.functions:
                return f"{module}:{qual}"
            for base in cls.bases:
                base_id = self.resolve(module, base)
                if base_id is not None:
                    stack.append(base_id)
        return None

    def mro_class_ids(self, class_id: str) -> list[str]:
        """*class_id* plus every resolvable base class id (BFS order)."""
        out: list[str] = []
        seen: set[str] = set()
        stack = [class_id]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            cls = self.class_facts(current)
            if cls is None:
                continue
            out.append(current)
            module = current.partition(":")[0]
            for base in cls.bases:
                base_id = self.resolve(module, base)
                if base_id is not None:
                    stack.append(base_id)
        return out

    def subclasses_of(self, class_id: str) -> list[str]:
        """Every analyzed class whose (transitive) bases include *class_id*."""
        out: list[str] = []
        for facts in self.modules.values():
            for name in facts.classes:
                candidate = f"{facts.module}:{name}"
                if candidate == class_id:
                    continue
                if class_id in self.mro_class_ids(candidate):
                    out.append(candidate)
        return out

    def classes_with_method(self, method: str) -> list[str]:
        """Ids of classes that define *method* directly."""
        out: list[str] = []
        for facts in self.modules.values():
            for name, cls in facts.classes.items():
                if method in cls.methods:
                    out.append(f"{facts.module}:{name}")
        return out
