"""Approximate call graph over the project symbol table.

Edges are derived from the unresolved call strings the facts layer recorded,
interpreted through the :class:`~repro.lint.project.symbols.SymbolTable`:

* ``foo(...)`` / ``pkg.mod.foo(...)`` — resolved through imports and
  re-export chains;
* ``self.meth(...)`` — resolved against the enclosing class and its bases;
* ``var.meth(...)`` where ``var`` was assigned from ``SomeClass(...)`` or is
  a parameter annotated with a project class — resolved against that class;
* ``ClassName(...)`` — an edge to ``ClassName.__init__`` when it exists;
* ``obj.meth(...)`` with an unknown receiver — conservatively linked to
  **every** project class that defines ``meth`` (over-approximate, which is
  the right bias for determinism analysis: a spurious edge can only add a
  finding that the baseline or a suppression then documents).

The graph is cycle-tolerant: reachability is a plain BFS with a visited set,
and :meth:`CallGraph.trace` rebuilds one shortest entry→target call path for
the finding messages.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable

from repro.lint.project.facts import FunctionFacts, ModuleFacts
from repro.lint.project.symbols import SymbolTable


class CallGraph:
    """Directed caller→callee edges between global symbol ids."""

    def __init__(self, symbols: SymbolTable) -> None:
        self.symbols = symbols
        self.edges: dict[str, set[str]] = {}
        self._method_index: dict[str, list[str]] = {}
        self._build_method_index()
        for facts, fn, symbol_id in symbols.iter_functions():
            self.edges[symbol_id] = self._resolve_calls(facts, fn)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    def _build_method_index(self) -> None:
        """method name -> every "module:Class.method" defining it."""
        for facts in self.symbols.modules.values():
            for cls in facts.classes.values():
                for method in cls.methods:
                    self._method_index.setdefault(method, []).append(
                        f"{facts.module}:{cls.name}.{method}"
                    )

    def _resolve_calls(
        self, facts: ModuleFacts, fn: FunctionFacts
    ) -> set[str]:
        out: set[str] = set()
        for call in fn.calls:
            for target in self._resolve_one(facts, fn, call.callee):
                out.add(target)
        return out

    def _resolve_one(
        self, facts: ModuleFacts, fn: FunctionFacts, callee: str
    ) -> Iterable[str]:
        head, _, rest = callee.partition(".")

        # self.meth(...) — enclosing class and bases
        if head == "self" and rest and fn.class_name is not None:
            class_id = f"{facts.module}:{fn.class_name}"
            resolved = self.symbols.resolve_method(class_id, rest.split(".")[0])
            return [resolved] if resolved is not None else []

        # receiver with a known constructor type or annotation
        if rest:
            receiver_type = fn.local_types.get(head) or fn.param_types.get(head)
            if receiver_type is not None:
                type_name = receiver_type.strip("'\"").split("[")[0]
                class_id = self.symbols.resolve(facts.module, type_name)
                if class_id is not None:
                    method = rest.split(".")[0]
                    resolved = self.symbols.resolve_method(class_id, method)
                    if resolved is not None:
                        return [resolved]

        direct = self.symbols.resolve(facts.module, callee)
        if direct is not None:
            symbol = self.symbols.symbol(direct)
            if symbol is not None and symbol.kind == "class":
                init = self.symbols.resolve_method(direct, "__init__")
                return [init] if init is not None else [direct]
            return [direct]

        # obj.meth(...) with an unknown receiver: every class defining meth
        if rest:
            method = rest.split(".")[-1]
            candidates = self._method_index.get(method, [])
            if 0 < len(candidates) <= 8:
                return candidates
        return []

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def reachable_from(self, entries: Iterable[str]) -> dict[str, str | None]:
        """BFS closure: reachable symbol id -> its BFS parent (entry -> None).

        Cycle-safe; entries not present in the graph are ignored.
        """
        parents: dict[str, str | None] = {}
        queue: deque[str] = deque()
        for entry in entries:
            if entry in self.edges and entry not in parents:
                parents[entry] = None
                queue.append(entry)
        while queue:
            current = queue.popleft()
            for callee in sorted(self.edges.get(current, ())):
                if callee not in parents:
                    parents[callee] = current
                    queue.append(callee)
        return parents

    @staticmethod
    def trace(parents: dict[str, str | None], target: str) -> list[str]:
        """The entry→*target* call path recorded by :meth:`reachable_from`."""
        if target not in parents:
            return []
        path = [target]
        seen = {target}
        current = parents[target]
        while current is not None and current not in seen:
            path.append(current)
            seen.add(current)
            current = parents[current]
        return list(reversed(path))

    def callers_of(self, target: str) -> list[str]:
        """Direct callers of *target* (sorted for stable output)."""
        return sorted(
            caller for caller, callees in self.edges.items() if target in callees
        )


def render_trace(symbols: SymbolTable, path: list[str]) -> str:
    """Human-readable ``a -> b -> c`` call path with source anchors."""
    parts: list[str] = []
    for symbol_id in path:
        symbol = symbols.symbol(symbol_id)
        if symbol is None:
            parts.append(symbol_id)
        else:
            parts.append(f"{symbol.module}:{symbol.qualname}")
    return " -> ".join(parts)
