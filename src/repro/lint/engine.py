"""Linter engine: discovery, suppressions, rendering.

The engine normalizes each file path to *module parts* relative to the
``repro`` package root (``src/repro/cascade/ic.py`` → ``("cascade",
"ic.py")``) so rules can scope themselves by package; paths outside the
package keep their path parts, which lets test fixtures opt into rules by
directory name.

Suppression: a line carrying ``# reprolint: disable=RP001`` silences those
codes on that line; ``# reprolint: disable=RP001,RP004`` silences several;
a bare ``# reprolint: disable`` silences every rule on the line.  A finding
is anchored at the statement that produced it (for RP005, the ``def`` line).
"""

from __future__ import annotations

import ast
import json
import re
from collections import Counter as TallyCounter
from pathlib import Path
from collections.abc import Iterable, Iterator, Sequence

from repro.lint.base import Finding, Rule
from repro.lint.rules import ALL_RULES

#: Finding code used for files the parser rejects (mirrors flake8's E999).
PARSE_ERROR_CODE = "RP999"

#: JSON output schema version; bump on any key change.
JSON_SCHEMA_VERSION = 1

_SUPPRESSION = re.compile(r"#\s*reprolint:\s*disable(?:=(?P<codes>[A-Z0-9,\s]+))?")


def module_parts(path: Path) -> tuple[str, ...]:
    """Path parts relative to the ``repro`` package root (or as given).

    The last ``repro`` directory component wins, so both the installed
    layout and ``src/repro/...`` normalize identically.
    """
    parts = path.parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return tuple(parts[i + 1:])
    return tuple(parts)


def iter_python_files(paths: Iterable[Path | str]) -> Iterator[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    seen: set[Path] = set()
    for target in paths:
        target = Path(target)
        if target.is_dir():
            candidates: Iterable[Path] = sorted(target.rglob("*.py"))
        else:
            candidates = [target]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def parse_suppressions(source: str) -> dict[int, set[str] | None]:
    """Map 1-based line numbers to suppressed codes (``None`` = all codes)."""
    out: dict[int, set[str] | None] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESSION.search(line)
        if match is None:
            continue
        codes = match.group("codes")
        if codes is None:
            out[lineno] = None
        else:
            out[lineno] = {c.strip() for c in codes.split(",") if c.strip()}
    return out


def _suppressed(finding: Finding, suppressions: dict[int, set[str] | None]) -> bool:
    if finding.line not in suppressions:
        return False
    codes = suppressions[finding.line]
    return codes is None or finding.code in codes


def _select_rules(
    select: Sequence[str] | None,
    ignore: Sequence[str] | None,
) -> list[type[Rule]]:
    rules = list(ALL_RULES)
    if select:
        wanted = set(select)
        unknown = wanted - {r.code for r in ALL_RULES}
        if unknown:
            raise ValueError(f"unknown rule code(s): {sorted(unknown)}")
        rules = [r for r in rules if r.code in wanted]
    if ignore:
        unwanted = set(ignore)
        unknown = unwanted - {r.code for r in ALL_RULES}
        if unknown:
            raise ValueError(f"unknown rule code(s): {sorted(unknown)}")
        rules = [r for r in rules if r.code not in unwanted]
    return rules


def lint_source(
    source: str,
    path: Path | str = "<string>",
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
) -> list[Finding]:
    """Lint *source*, scoping rules by *path*; returns sorted findings."""
    path = Path(path)
    module = module_parts(path)
    display = str(path)
    try:
        tree = ast.parse(source, filename=display)
    except SyntaxError as exc:
        return [
            Finding(
                path=display,
                line=exc.lineno or 1,
                col=(exc.offset or 0) or 1,
                code=PARSE_ERROR_CODE,
                message=f"file does not parse: {exc.msg}",
                hint="fix the syntax error; reprolint needs a valid AST",
            )
        ]
    suppressions = parse_suppressions(source)
    findings: list[Finding] = []
    for rule_cls in _select_rules(select, ignore):
        if not rule_cls.applies_to(module):
            continue
        rule = rule_cls(display, module)
        rule.visit(tree)
        findings.extend(
            f for f in rule.findings if not _suppressed(f, suppressions)
        )
    return sorted(findings)


def lint_paths(
    paths: Iterable[Path | str],
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
) -> list[Finding]:
    """Lint every ``.py`` file under *paths*; returns sorted findings."""
    _select_rules(select, ignore)  # validate codes even when no files match
    findings: list[Finding] = []
    for file_path in iter_python_files(paths):
        try:
            source = file_path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            # Unreadable files are findings, not crashes: the run completes,
            # reports the file, and exits nonzero like any other finding.
            findings.append(
                Finding(
                    path=str(file_path),
                    line=1,
                    col=1,
                    code=PARSE_ERROR_CODE,
                    message=f"file unreadable: {exc}",
                    hint="fix the file's permissions or encoding; reprolint "
                    "never skips files silently",
                )
            )
            continue
        findings.extend(lint_source(source, file_path, select, ignore))
    return sorted(findings)


def format_findings(findings: Sequence[Finding], show_hints: bool = True) -> str:
    """Human-readable report: one line per finding, hint indented below."""
    if not findings:
        return "reprolint: no findings"
    lines: list[str] = []
    for finding in findings:
        lines.append(finding.render())
        if show_hints and finding.hint:
            lines.append(f"    hint: {finding.hint}")
    tally = TallyCounter(f.code for f in findings)
    summary = ", ".join(f"{code}×{count}" for code, count in sorted(tally.items()))
    lines.append(f"reprolint: {len(findings)} finding(s) ({summary})")
    return "\n".join(lines)


def format_json(findings: Sequence[Finding]) -> str:
    """Stable JSON document (see ``JSON_SCHEMA_VERSION``) for tooling."""
    tally = TallyCounter(f.code for f in findings)
    document = {
        "version": JSON_SCHEMA_VERSION,
        "findings": [f.as_dict() for f in findings],
        "summary": {
            "total": len(findings),
            "by_code": dict(sorted(tally.items())),
            "files": len({f.path for f in findings}),
        },
    }
    return json.dumps(document, indent=2, sort_keys=False)
