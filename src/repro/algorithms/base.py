"""Seed-selector interface and registry.

A *pure strategy* in the paper is simply an IM algorithm (Definition 1); this
module defines the interface every algorithm implements plus a small string
registry so experiments can be configured by name (``"ddic"``, ``"mgwc"``…).

Two contract points matter for the game-theoretic layer:

* ``select`` returns seeds in **greedy order** — the prefix ``seeds[:k']``
  for ``k' < k`` is the algorithm's answer for the smaller budget.  The
  figure benches sweep ``k = 10..50`` from a single ``k = 50`` call.
* Algorithms may be randomized (all greedy variants are, via their sampled
  snapshots; the heuristics break ties randomly).  The paper's Theorem 1
  footnote leans on exactly this: two groups running the *same* algorithm do
  not necessarily pick identical seeds.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from collections.abc import Callable, Sequence

from repro.errors import SeedSelectionError
from repro.graphs.digraph import DiGraph
from repro.obs.log import get_logger
from repro.obs.metrics import Histogram, counter, histogram
from repro.utils.rng import RandomSource
from repro.utils.validation import check_positive_int

_LOG = get_logger("algorithms")

_SELECTIONS = counter("algorithms.selections")

# Per-algorithm wall-time histograms have dynamic names; memoize the handles
# so a selection inside the payoff loop never re-formats the metric name or
# re-enters the registry (same discipline reprolint RP004 enforces for the
# cascade hot paths).
_SELECT_SECONDS: dict[str, Histogram] = {}


def _select_seconds_histogram(name: str) -> Histogram:
    try:
        return _SELECT_SECONDS[name]
    except KeyError:
        handle = histogram(f"algorithms.{name}.select_seconds")
        _SELECT_SECONDS[name] = handle
        return handle


class SeedSelector(ABC):
    """An influence-maximization algorithm: graph × budget → ordered seed list.

    Subclasses implement :meth:`_select`; the public :meth:`select` wraps it
    with observability (selection counter, per-algorithm wall-time
    histogram, debug log) so every seed-set draw in the pipeline is
    measured uniformly.
    """

    #: short identifier used in strategy labels ("mgic", "ddic", ...)
    name: str = "abstract"

    def select(self, graph: DiGraph, k: int, rng: RandomSource = None) -> list[int]:
        """Return *k* distinct seed nodes in greedy (prefix-consistent) order."""
        started = time.perf_counter()
        seeds = self._select(graph, k, rng)
        elapsed = time.perf_counter() - started
        _SELECTIONS.inc()
        _select_seconds_histogram(self.name).observe(elapsed)
        _LOG.debug(
            "%s selected %d seeds on %d nodes in %.3fs",
            self.name,
            len(seeds),
            graph.num_nodes,
            elapsed,
        )
        return seeds

    @abstractmethod
    def _select(self, graph: DiGraph, k: int, rng: RandomSource = None) -> list[int]:
        """Algorithm body; see :meth:`select` for the contract."""

    def _check_budget(self, graph: DiGraph, k: int) -> int:
        check_positive_int(k, "k")
        if k > graph.num_nodes:
            raise SeedSelectionError(
                f"budget k={k} exceeds the graph's {graph.num_nodes} nodes"
            )
        return k

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


_REGISTRY: dict[str, Callable[..., SeedSelector]] = {}


def register_algorithm(name: str, factory: Callable[..., SeedSelector]) -> None:
    """Register *factory* under *name* for :func:`get_algorithm` lookup."""
    key = name.lower()
    if key in _REGISTRY:
        raise SeedSelectionError(f"algorithm {name!r} is already registered")
    _REGISTRY[key] = factory


def get_algorithm(name: str, **kwargs: object) -> SeedSelector:
    """Instantiate a registered algorithm by name (case-insensitive)."""
    try:
        factory = _REGISTRY[name.lower()]
    except KeyError:
        raise SeedSelectionError(
            f"unknown algorithm {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None
    return factory(**kwargs)


def registered_algorithms() -> list[str]:
    """Names currently in the registry."""
    return sorted(_REGISTRY)


def validate_seed_list(seeds: Sequence[int], k: int, num_nodes: int) -> list[int]:
    """Check a selector's output: k distinct in-range nodes. Returns a list."""
    seeds = [int(s) for s in seeds]
    if len(seeds) != k:
        raise SeedSelectionError(f"expected {k} seeds, got {len(seeds)}")
    if len(set(seeds)) != len(seeds):
        raise SeedSelectionError("seed list contains duplicates")
    for s in seeds:
        if not 0 <= s < num_nodes:
            raise SeedSelectionError(f"seed {s} out of range [0, {num_nodes})")
    return seeds
