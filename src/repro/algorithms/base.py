"""Seed-selector interface and registry.

A *pure strategy* in the paper is simply an IM algorithm (Definition 1); this
module defines the interface every algorithm implements plus a small string
registry so experiments can be configured by name (``"ddic"``, ``"mgwc"``…).

Two contract points matter for the game-theoretic layer:

* ``select`` returns seeds in **greedy order** — the prefix ``seeds[:k']``
  for ``k' < k`` is the algorithm's answer for the smaller budget.  The
  figure benches sweep ``k = 10..50`` from a single ``k = 50`` call.
* Algorithms may be randomized (all greedy variants are, via their sampled
  snapshots; the heuristics break ties randomly).  The paper's Theorem 1
  footnote leans on exactly this: two groups running the *same* algorithm do
  not necessarily pick identical seeds.
"""

from __future__ import annotations

import threading
import time
from abc import ABC, abstractmethod
from collections.abc import Callable, Sequence
from typing import TYPE_CHECKING, Any, ClassVar

import numpy as np

from repro.cache import (
    cache_enabled,
    params_token,
    rng_state,
    rng_token,
    selection_memo,
    set_rng_state,
)
from repro.cascade.kernels import resolve_kernel
from repro.errors import SeedSelectionError
from repro.graphs.digraph import DiGraph
from repro.obs.log import get_logger
from repro.obs.metrics import Histogram, counter, histogram
from repro.utils.rng import RandomSource, as_rng
from repro.utils.validation import check_positive_int

if TYPE_CHECKING:
    from repro.cascade.pools import SnapshotPool

_LOG = get_logger("algorithms")

_SELECTIONS = counter("algorithms.selections")

# Per-algorithm wall-time histograms have dynamic names; memoize the handles
# so a selection inside the payoff loop never re-formats the metric name or
# re-enters the registry (same discipline reprolint RP004 enforces for the
# cascade hot paths).
_SELECT_SECONDS: dict[str, Histogram] = {}
_SELECT_SECONDS_LOCK = threading.Lock()


def _select_seconds_histogram(name: str) -> Histogram:
    try:
        return _SELECT_SECONDS[name]
    except KeyError:
        with _SELECT_SECONDS_LOCK:
            handle = _SELECT_SECONDS.get(name)
            if handle is None:
                handle = histogram(f"algorithms.{name}.select_seconds")
                _SELECT_SECONDS[name] = handle
            return handle


class SeedSelector(ABC):
    """An influence-maximization algorithm: graph × budget → ordered seed list.

    Subclasses implement :meth:`_select`; the public :meth:`select` wraps it
    with observability (selection counter, per-algorithm wall-time
    histogram, debug log) so every seed-set draw in the pipeline is
    measured uniformly.
    """

    #: short identifier used in strategy labels ("mgic", "ddic", ...)
    name: str = "abstract"

    #: whether the algorithm consumes live-edge snapshot pools; pool-aware
    #: callers only hand a shared pool to selectors that declare True.
    uses_snapshots: ClassVar[bool] = False

    def select(
        self,
        graph: DiGraph,
        k: int,
        rng: RandomSource = None,
        pool: SnapshotPool | None = None,
    ) -> list[int]:
        """Return *k* distinct seed nodes in greedy (prefix-consistent) order.

        *pool*, when given and the algorithm declares ``uses_snapshots``,
        supplies shared live-edge masks and initial gains via
        :meth:`_select_pooled`; other algorithms ignore it.

        When *rng* is provided (reproducible call) and the work-sharing
        cache is enabled, the result is memoized on (graph fingerprint,
        selector params, ``k``, kernel, RNG state, pool token).  A hit
        returns the cached seeds and restores the post-selection RNG state
        into the caller's generator, so warm runs are bit-identical to cold
        ones.
        """
        started = time.perf_counter()
        generator = as_rng(rng)
        use_pool = pool is not None and self.uses_snapshots
        # Seeding the pool draws (at most) one integer from the caller's
        # generator — unconditionally, so the RNG stream does not depend on
        # whether the cache is enabled or warm.
        pool_token = pool.token(generator) if use_pool and pool is not None else None
        memo = selection_memo() if rng is not None and cache_enabled() else None
        key: Any = None
        if memo is not None:
            key = (
                graph.fingerprint,
                params_token(self),
                int(k),
                resolve_kernel(getattr(self, "kernel", None)),
                rng_token(generator),
                pool_token,
            )
            hit = memo.get(key)
            if hit is not None:
                seeds, end_state = hit
                set_rng_state(generator, end_state)
                _SELECTIONS.inc()
                _LOG.debug(
                    "%s reused cached selection of %d seeds on %d nodes",
                    self.name,
                    len(seeds),
                    graph.num_nodes,
                )
                return list(seeds)
        if use_pool and pool is not None:
            seeds = self._select_pooled(graph, k, generator, pool)
        else:
            seeds = self._select(graph, k, generator)
        if memo is not None:
            memo.put(
                key,
                (tuple(seeds), rng_state(generator)),
                nbytes=8 * len(seeds) + 256,
            )
        elapsed = time.perf_counter() - started  # reprolint: disable=RP009
        _SELECTIONS.inc()
        _select_seconds_histogram(self.name).observe(elapsed)
        _LOG.debug(
            "%s selected %d seeds on %d nodes in %.3fs",
            self.name,
            len(seeds),
            graph.num_nodes,
            elapsed,
        )
        return seeds

    @abstractmethod
    def _select(self, graph: DiGraph, k: int, rng: RandomSource = None) -> list[int]:
        """Algorithm body; see :meth:`select` for the contract."""

    def _select_pooled(
        self,
        graph: DiGraph,
        k: int,
        rng: np.random.Generator,
        pool: SnapshotPool,
    ) -> list[int]:
        """Pool-aware body; the default ignores the pool (no snapshots used)."""
        return self._select(graph, k, rng)

    def _check_budget(self, graph: DiGraph, k: int) -> int:
        check_positive_int(k, "k")
        if k > graph.num_nodes:
            raise SeedSelectionError(
                f"budget k={k} exceeds the graph's {graph.num_nodes} nodes"
            )
        return k

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


_REGISTRY: dict[str, Callable[..., SeedSelector]] = {}


def register_algorithm(name: str, factory: Callable[..., SeedSelector]) -> None:
    """Register *factory* under *name* for :func:`get_algorithm` lookup."""
    key = name.lower()
    if key in _REGISTRY:
        raise SeedSelectionError(f"algorithm {name!r} is already registered")
    _REGISTRY[key] = factory


def get_algorithm(name: str, **kwargs: object) -> SeedSelector:
    """Instantiate a registered algorithm by name (case-insensitive)."""
    try:
        factory = _REGISTRY[name.lower()]
    except KeyError:
        raise SeedSelectionError(
            f"unknown algorithm {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None
    return factory(**kwargs)


def registered_algorithms() -> list[str]:
    """Names currently in the registry."""
    return sorted(_REGISTRY)


def validate_seed_list(seeds: Sequence[int], k: int, num_nodes: int) -> list[int]:
    """Check a selector's output: k distinct in-range nodes. Returns a list."""
    seeds = [int(s) for s in seeds]
    if len(seeds) != k:
        raise SeedSelectionError(f"expected {k} seeds, got {len(seeds)}")
    if len(set(seeds)) != len(seeds):
        raise SeedSelectionError("seed list contains duplicates")
    for s in seeds:
        if not 0 <= s < num_nodes:
            raise SeedSelectionError(f"seed {s} out of range [0, {num_nodes})")
    return seeds
