"""SingleDiscount heuristic (Chen, Wang & Yang, KDD'09).

The ``sdwc`` strategy of the paper: repeatedly pick the node with the
highest remaining degree, discounting each neighbour's degree by one for
every selected seed adjacent to it.  Model-agnostic (the paper pairs it with
the weighted-cascade experiments).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import SeedSelector
from repro.graphs.digraph import DiGraph
from repro.utils.rng import RandomSource, as_rng


class SingleDiscount(SeedSelector):
    """SingleDiscount with random tie-breaking among equal degrees."""

    name = "sdwc"

    def _select(self, graph: DiGraph, k: int, rng: RandomSource = None) -> list[int]:
        k = self._check_budget(graph, k)
        generator = as_rng(rng)
        n = graph.num_nodes

        remaining = graph.out_degrees().astype(float)
        selected = np.zeros(n, dtype=bool)
        jitter = generator.random(n) * 1e-9

        seeds: list[int] = []
        for _ in range(k):
            masked = np.where(selected, -np.inf, remaining + jitter)
            u = int(np.argmax(masked))
            selected[u] = True
            seeds.append(u)
            for v in graph.out_neighbors(u):
                if not selected[v]:
                    remaining[v] -= 1.0
        return seeds
