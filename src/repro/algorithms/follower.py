"""Follower best-response seed selection (Carnes et al., ICEC'07 setting).

The pre-GetReal competitive-IM literature (Carnes et al.; Bharathi et al.)
assumes the *follower* knows the rival's already-chosen seeds and greedily
maximizes its own spread under the competitive dynamics — the "unrealistic
assumption" the paper's introduction criticizes, since platforms do not
expose rivals' seed sets.

It is implemented here for two reasons:

* as the strongest possible baseline — a follower with perfect information
  upper-bounds what any realistic strategy can achieve, so the gap to the
  GetReal equilibrium quantifies the *value of the information the paper
  argues one cannot have* (see ``benchmarks/bench_ext_follower.py``);
* as the building block for best-response dynamics over seed sets.

The greedy step uses lazy (CELF-style) evaluation of competitive marginal
gains, each estimated by Monte-Carlo runs of the shared competitive
engine; monotonicity of the follower objective (Carnes et al. prove
submodularity in their models) makes lazy evaluation safe up to MC noise.

Candidate evaluations are expressed as
:class:`~repro.exec.jobs.CompetitiveJob` objects carrying the common
random-number base, so the initial sweep over the whole candidate pool —
the dominant cost — fans out through the execution engine as one batch,
while the inherently sequential CELF re-evaluations run the same jobs
in-process.
"""

from __future__ import annotations

import heapq
from collections.abc import Sequence

import numpy as np

from repro.algorithms.base import SeedSelector
from repro.cascade.base import CascadeModel
from repro.cascade.competitive import ClaimRule, TieBreakRule
from repro.errors import SeedSelectionError
from repro.exec.executor import Executor, resolve_executor
from repro.exec.jobs import CompetitiveJob
from repro.graphs.digraph import DiGraph
from repro.graphs.store import maybe_ref
from repro.utils.rng import RandomSource, as_rng
from repro.utils.validation import check_positive_int

#: Stride between the paired random streams of successive follower rounds.
FOLLOWER_CRN_STEP = 7919


class FollowerBestResponse(SeedSelector):
    """Greedy follower: maximize own spread given the rival's known seeds.

    Parameters
    ----------
    model:
        Cascade model shared with the rival.
    rival_seeds:
        The seeds the rival has already committed to (the information
        assumption of the follower literature).
    rounds:
        Monte-Carlo simulations per marginal-gain estimate.
    candidate_pool:
        Evaluate only the top-``candidate_pool`` nodes by degree (plus the
        rival's seeds' neighbours are implicitly covered by degree rank).
        Exhaustive evaluation is O(n · k · rounds) competitive simulations;
        the pool keeps the baseline tractable without changing outcomes on
        heavy-tailed graphs, where high-degree nodes dominate the answer.
    executor:
        Execution engine for the batched candidate sweep (defaults to the
        env-configured process-wide executor).
    """

    name = "follower"

    def __init__(
        self,
        model: CascadeModel,
        rival_seeds: Sequence[int],
        rounds: int = 10,
        candidate_pool: int = 100,
        tie_break: TieBreakRule = TieBreakRule.UNIFORM,
        claim_rule: ClaimRule = ClaimRule.PROPORTIONAL,
        executor: Executor | None = None,
    ) -> None:
        self.model = model
        self.rival_seeds = [int(s) for s in rival_seeds]
        if not self.rival_seeds:
            raise SeedSelectionError("follower needs non-empty rival seeds")
        self.rounds = check_positive_int(rounds, "rounds")
        self.candidate_pool = check_positive_int(candidate_pool, "candidate_pool")
        self.tie_break = tie_break
        self.claim_rule = claim_rule
        self.executor = executor

    def _spread_job(
        self, graph: DiGraph, seeds: Sequence[int], crn_base: int
    ) -> CompetitiveJob:
        """The follower-vs-rival evaluation of *seeds* as a CRN-paired job.

        Every candidate evaluation within one ``select`` call replays the
        same *rounds* random streams (seeded from ``crn_base``), so
        marginal-gain comparisons are paired: candidate A beats candidate B
        because of the seeds, not because of luckier coin flips.  Without
        this, greedy comparisons at feasible round counts are dominated by
        Monte-Carlo noise.
        """
        return CompetitiveJob(
            graph=maybe_ref(graph),
            model=self.model,
            seed_sets=(tuple(self.rival_seeds), tuple(int(s) for s in seeds)),
            rounds=self.rounds,
            tie_break=self.tie_break,
            claim_rule=self.claim_rule,
            crn_base=crn_base,
            crn_step=FOLLOWER_CRN_STEP,
        )

    def _follower_spread(
        self, graph: DiGraph, seeds: list[int], crn_base: int
    ) -> float:
        """In-process evaluation for the sequential CELF refinements."""
        job = self._spread_job(graph, seeds, crn_base)
        return job.run(as_rng(crn_base))[1].mean

    def _select(self, graph: DiGraph, k: int, rng: RandomSource = None) -> list[int]:
        k = self._check_budget(graph, k)
        for s in self.rival_seeds:
            if not 0 <= s < graph.num_nodes:
                raise SeedSelectionError(
                    f"rival seed {s} out of range [0, {graph.num_nodes})"
                )
        generator = as_rng(rng)
        crn_base = int(generator.integers(0, 2**62))

        degrees = graph.out_degrees().astype(float)
        degrees += generator.random(graph.num_nodes) * 1e-9
        pool_size = min(self.candidate_pool, graph.num_nodes)
        candidates = np.argsort(-degrees)[:pool_size].tolist()
        if len(candidates) < k:
            raise SeedSelectionError(
                f"candidate_pool={pool_size} smaller than budget k={k}"
            )

        # Batched initial sweep: one CRN-paired job per singleton candidate.
        # The jobs ignore their spawned generators (CRN pins every stream),
        # so the batch is deterministic on any backend.
        jobs = [
            self._spread_job(graph, [int(v)], crn_base) for v in candidates
        ]
        results = resolve_executor(self.executor).estimates(jobs, rng=generator)

        # CELF heap over competitive marginal gains (paired by CRN).
        seeds: list[int] = []
        heap: list[tuple[float, int, int]] = []
        current_value = 0.0
        for v, estimates in zip(candidates, results):
            heapq.heappush(heap, (-estimates[1].mean, int(v), 0))

        iteration = 0
        while len(seeds) < k and heap:
            neg_gain, v, stamp = heapq.heappop(heap)
            if v in seeds:
                continue
            if stamp == iteration:
                seeds.append(v)
                current_value = self._follower_spread(graph, seeds, crn_base)
                iteration += 1
            else:
                value_with = self._follower_spread(graph, seeds + [v], crn_base)
                heapq.heappush(heap, (-(value_with - current_value), v, iteration))
        if len(seeds) < k:
            raise SeedSelectionError("ran out of candidates before reaching k")
        return seeds

    def __repr__(self) -> str:
        return (
            f"FollowerBestResponse(rival={len(self.rival_seeds)} seeds, "
            f"rounds={self.rounds})"
        )
