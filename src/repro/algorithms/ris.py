"""Reverse Influence Sampling (RIS) seed selection.

The modern IM workhorse (Borgs et al.; Tang et al., SIGMOD'14 — cited as
[30] in the paper): sample many *reverse-reachable (RR) sets* — the set of
nodes that could have influenced a uniformly random target under one
live-edge possible world — then greedily pick the ``k`` seeds covering the
most RR sets.  The fraction of covered sets is an unbiased estimator of
spread / n, so maximizing coverage maximizes expected influence.

Included here as an additional strategy for Φ beyond the paper's four
(GetReal is explicitly open to any IM algorithm) and as an independent
cross-check of the snapshot-greedy implementations: both maximize the same
objective, so their spreads agree within sampling noise.
"""

from __future__ import annotations

from typing import ClassVar

import numpy as np

from repro.algorithms.base import SeedSelector
from repro.cascade.base import CascadeModel
from repro.graphs.digraph import DiGraph
from repro.utils.rng import RandomSource, as_rng
from repro.utils.validation import check_positive_int


class RISGreedy(SeedSelector):
    """Greedy max-coverage over sampled reverse-reachable sets.

    Parameters
    ----------
    model:
        Any triggering cascade model; its per-edge probabilities drive the
        reverse sampling.
    num_samples:
        Number of RR sets.  More samples → less noise; the IMM-style
        auto-scaling of Tang et al. is deliberately out of scope (GetReal
        treats the algorithm as a black-box strategy).
    """

    # RIS samples *reverse-reachable* sets, not forward live-edge snapshots,
    # so it sits outside the shared-pool API (RP008) and ignores any pool
    # passed to select().
    uses_snapshots: ClassVar[bool] = False

    def __init__(self, model: CascadeModel, num_samples: int = 2_000) -> None:
        self.model = model
        self.num_samples = check_positive_int(num_samples, "num_samples")
        self.name = f"ris{model.name}"

    def _reverse_edge_layout(
        self, graph: DiGraph
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """In-edges grouped by destination, with their success probabilities.

        Returns ``(indptr, sources, probs, order)`` where for node *v* the
        in-edges occupy ``[indptr[v], indptr[v+1])`` of ``sources``/``probs``.
        """
        probs_by_id = self.model.edge_probabilities(graph)
        src, dst = graph.edge_array()
        order = np.argsort(dst, kind="stable")
        sources = src[order]
        probs = probs_by_id[order]
        indptr = np.searchsorted(dst[order], np.arange(graph.num_nodes + 1))
        return indptr, sources, probs, order

    def _sample_rr_set(
        self,
        graph: DiGraph,
        indptr: np.ndarray,
        sources: np.ndarray,
        probs: np.ndarray,
        root: int,
        rng: np.random.Generator,
    ) -> list[int]:
        """One RR set: reverse BFS from *root*, sampling each in-edge live."""
        visited = {root}
        stack = [root]
        while stack:
            v = stack.pop()
            lo, hi = indptr[v], indptr[v + 1]
            if lo == hi:
                continue
            live = rng.random(hi - lo) < probs[lo:hi]
            for u in sources[lo:hi][live]:
                u = int(u)
                if u not in visited:
                    visited.add(u)
                    stack.append(u)
        return list(visited)

    def _select(self, graph: DiGraph, k: int, rng: RandomSource = None) -> list[int]:
        k = self._check_budget(graph, k)
        generator = as_rng(rng)
        n = graph.num_nodes
        indptr, sources, probs, _ = self._reverse_edge_layout(graph)

        # Sample RR sets; keep both directions of the bipartite incidence
        # (node -> sets it covers, set -> its member nodes) so the greedy
        # coverage counts update in time linear in the sets actually hit.
        rr_sets: list[list[int]] = []
        covers: list[list[int]] = [[] for _ in range(n)]
        for set_id in range(self.num_samples):
            root = int(generator.integers(0, n))
            members = self._sample_rr_set(
                graph, indptr, sources, probs, root, generator
            )
            rr_sets.append(members)
            for u in members:
                covers[u].append(set_id)

        # Greedy max coverage with jittered ties (keeps the algorithm
        # randomized even when counts tie, matching the library contract).
        counts = np.array([len(c) for c in covers], dtype=float)
        counts += generator.random(n) * 1e-9
        covered = np.zeros(self.num_samples, dtype=bool)
        selected = np.zeros(n, dtype=bool)
        seeds: list[int] = []
        for _ in range(k):
            u = int(np.argmax(np.where(selected, -np.inf, counts)))
            seeds.append(u)
            selected[u] = True
            for set_id in covers[u]:
                if covered[set_id]:
                    continue
                covered[set_id] = True
                for v in rr_sets[set_id]:
                    counts[v] -= 1.0
        return seeds

    def estimated_spread(self, graph: DiGraph, seeds: list[int], rng: RandomSource = None) -> float:
        """RIS estimate of σ(seeds): n × fraction of fresh RR sets hit."""
        generator = as_rng(rng)
        n = graph.num_nodes
        indptr, sources, probs, _ = self._reverse_edge_layout(graph)
        seed_set = set(int(s) for s in seeds)
        hits = 0
        for _ in range(self.num_samples):
            root = int(generator.integers(0, n))
            rr = self._sample_rr_set(graph, indptr, sources, probs, root, generator)
            if seed_set.intersection(rr):
                hits += 1
        return n * hits / self.num_samples
