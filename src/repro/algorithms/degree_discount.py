"""DegreeDiscountIC heuristic (Chen, Wang & Yang, KDD'09).

The ``ddic`` strategy of the paper.  Maintains for every node *v* a
discounted degree

    dd_v = d_v − 2·t_v − (d_v − t_v)·t_v·p

where ``d_v`` is *v*'s degree, ``t_v`` the number of already-selected seeds
among its neighbours and ``p`` the IC edge probability; repeatedly picks the
node with the highest ``dd_v``.  Designed for IC with uniform small *p*, but
usable as a degree-style heuristic under any model.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import SeedSelector
from repro.graphs.digraph import DiGraph
from repro.utils.rng import RandomSource, as_rng
from repro.utils.validation import check_probability


class DegreeDiscount(SeedSelector):
    """DegreeDiscountIC with random tie-breaking among equal scores."""

    name = "ddic"

    def __init__(self, probability: float = 0.01) -> None:
        self.probability = check_probability(probability, "probability")

    def _select(self, graph: DiGraph, k: int, rng: RandomSource = None) -> list[int]:
        k = self._check_budget(graph, k)
        generator = as_rng(rng)
        n = graph.num_nodes
        p = self.probability

        degree = graph.out_degrees().astype(float)
        dd = degree.copy()
        t = np.zeros(n)
        selected = np.zeros(n, dtype=bool)
        # Random jitter breaks ties between equal discounted degrees, so the
        # heuristic is randomized the way the paper's footnote assumes.
        jitter = generator.random(n) * 1e-9

        seeds: list[int] = []
        for _ in range(k):
            masked = np.where(selected, -np.inf, dd + jitter)
            u = int(np.argmax(masked))
            selected[u] = True
            seeds.append(u)
            for v in graph.out_neighbors(u):
                if selected[v]:
                    continue
                t[v] += 1.0
                dd[v] = degree[v] - 2.0 * t[v] - (degree[v] - t[v]) * t[v] * p
        return seeds

    def __repr__(self) -> str:
        return f"DegreeDiscount(p={self.probability})"
