"""Simple baseline strategies: high degree, PageRank, and random seeds.

These extend the paper's strategy space beyond the four algorithms of its
evaluation — GetReal is explicitly agnostic to which IM algorithms populate
Φ ("Other IM techniques ... can be chosen as well").
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import SeedSelector
from repro.graphs.digraph import DiGraph
from repro.utils.rng import RandomSource, as_rng
from repro.utils.validation import check_fraction, check_positive_int


class HighDegree(SeedSelector):
    """Top-*k* nodes by out-degree, ties broken randomly."""

    name = "degree"

    def _select(self, graph: DiGraph, k: int, rng: RandomSource = None) -> list[int]:
        k = self._check_budget(graph, k)
        generator = as_rng(rng)
        scores = graph.out_degrees().astype(float) + generator.random(graph.num_nodes) * 1e-9
        order = np.argsort(-scores, kind="stable")
        return [int(v) for v in order[:k]]


class RandomSeeds(SeedSelector):
    """Uniformly random distinct seeds — the weakest sensible strategy."""

    name = "random"

    def _select(self, graph: DiGraph, k: int, rng: RandomSource = None) -> list[int]:
        k = self._check_budget(graph, k)
        generator = as_rng(rng)
        # A full permutation (not rng.choice) keeps the selection
        # prefix-consistent: the same seed yields the same ordering for
        # every budget, so select(k_max)[:k] == select(k).
        return [int(v) for v in generator.permutation(graph.num_nodes)[:k]]


class PageRankSeeds(SeedSelector):
    """Top-*k* nodes by PageRank (power iteration, damping 0.85).

    PageRank favours nodes *pointed at* by important nodes; for influence
    maximization the natural variant ranks by PageRank of the **reversed**
    graph (influence flows outward), which is what ``reverse=True`` (the
    default) computes.
    """

    name = "pagerank"

    def __init__(
        self,
        damping: float = 0.85,
        max_iterations: int = 100,
        tolerance: float = 1e-10,
        reverse: bool = True,
    ) -> None:
        self.damping = check_fraction(damping, "damping")
        self.max_iterations = check_positive_int(max_iterations, "max_iterations")
        self.tolerance = float(tolerance)
        self.reverse = bool(reverse)

    def scores(self, graph: DiGraph) -> np.ndarray:
        """PageRank vector over nodes (sums to 1)."""
        target = graph.reverse() if self.reverse else graph
        n = target.num_nodes
        if n == 0:
            return np.zeros(0)
        out_deg = target.out_degrees().astype(float)
        dangling = out_deg == 0
        inv_out = np.where(dangling, 0.0, 1.0 / np.maximum(out_deg, 1.0))

        rank = np.full(n, 1.0 / n)
        src, dst = target.edge_array()
        for _ in range(self.max_iterations):
            contrib = rank * inv_out
            incoming = np.zeros(n)
            np.add.at(incoming, dst, contrib[src])
            dangling_mass = rank[dangling].sum() / n
            new_rank = (1.0 - self.damping) / n + self.damping * (
                incoming + dangling_mass
            )
            if np.abs(new_rank - rank).sum() < self.tolerance:
                rank = new_rank
                break
            rank = new_rank
        return rank / rank.sum()

    def _select(self, graph: DiGraph, k: int, rng: RandomSource = None) -> list[int]:
        k = self._check_budget(graph, k)
        generator = as_rng(rng)
        scores = self.scores(graph) + generator.random(graph.num_nodes) * 1e-15
        order = np.argsort(-scores, kind="stable")
        return [int(v) for v in order[:k]]
