"""Greedy IM algorithms: MixGreedy (NewGreedy + CELF) and plain CELF.

``MixGreedy`` is the algorithm of Chen, Wang & Yang (KDD'09) the paper uses
as its strong strategy (MGIC under IC, MGWC under WC): sample ``R``
live-edge snapshots once, compute the exact first-round spread of *every*
node on them via SCC-condensation reachability (the NewGreedy step), then
run CELF lazy-greedy for the remaining ``k−1`` picks against the same
snapshots.  Because the snapshots are freshly sampled per ``select`` call,
the algorithm is randomized — two groups running MixGreedy independently
get overlapping but not identical seed sets, which is exactly the behaviour
the paper's Theorem 1 footnote relies on.

The NewGreedy step dominates the cost and is embarrassingly parallel per
snapshot, so it is fanned out through the execution engine as a batch of
:class:`~repro.exec.jobs.SnapshotGainsJob` chunks (fixed chunk size, so the
split — and therefore the result — never depends on the worker count).
The CELF refinement stays in-process: its lazy re-evaluations are
sequential by construction.

``CELFGreedy`` is the classical lazy-greedy of Leskovec et al. (KDD'07),
implemented against the same snapshot oracle but initializing from the
same exact reach-size computation; it is provided as an extra strategy and
for cross-checking MixGreedy (both maximize the same monotone submodular
estimate, so their spreads agree within noise).

When a shared :class:`~repro.cascade.pools.SnapshotPool` is passed to
``select`` (the payoff estimator creates one per ``(draw, group)``), both
algorithms draw their masks, oracle, and initial gains from the pool via
``_select_pooled`` instead of resampling privately — the work-sharing path
reprolint rule RP008 steers strategy code towards.
"""

from __future__ import annotations

import heapq
from typing import ClassVar

import numpy as np

from repro.algorithms.base import SeedSelector
from repro.cascade.base import CascadeModel
from repro.cascade.pools import MASKS_PER_JOB, SnapshotPool, snapshot_initial_gains
from repro.cascade.snapshots import SnapshotOracle, sample_snapshots
from repro.exec.executor import Executor
from repro.graphs.digraph import DiGraph
from repro.utils.rng import RandomSource, as_rng
from repro.utils.validation import check_positive_int

#: Snapshots per gains job — canonical value lives with the shared-pool
#: machinery in :mod:`repro.cascade.pools`; re-exported for compatibility.
_MASKS_PER_JOB = MASKS_PER_JOB


class _SnapshotGreedyBase(SeedSelector):
    """Shared CELF machinery over a live-edge snapshot oracle."""

    uses_snapshots: ClassVar[bool] = True

    def __init__(
        self,
        model: CascadeModel,
        num_snapshots: int = 100,
        executor: Executor | None = None,
        kernel: str | None = None,
    ) -> None:
        self.model = model
        self.num_snapshots = check_positive_int(num_snapshots, "num_snapshots")
        self.executor = executor
        self.kernel = kernel

    def _initial_gains(
        self, graph: DiGraph, oracle: SnapshotOracle
    ) -> list[float]:
        """Average exact reach size of every singleton seed over the snapshots.

        Delegates to :func:`repro.cascade.pools.snapshot_initial_gains` —
        the same batched computation a shared :class:`SnapshotPool` caches —
        so pooled and private selection paths agree bit for bit.
        """
        return snapshot_initial_gains(graph, oracle.masks, self.executor)

    def _select(self, graph: DiGraph, k: int, rng: RandomSource = None) -> list[int]:
        k = self._check_budget(graph, k)
        generator = as_rng(rng)
        # A private, freshly sampled pool is semantically required here:
        # without a shared pool each select call must stay independently
        # randomized (the Theorem 1 footnote behaviour).
        masks = sample_snapshots(  # reprolint: disable=RP008
            graph, self.model, self.num_snapshots, generator
        )
        oracle = SnapshotOracle(graph, masks, kernel=self.kernel)
        gains = self._initial_gains(graph, oracle)
        return self._run_celf(k, oracle, gains)

    def _select_pooled(
        self,
        graph: DiGraph,
        k: int,
        rng: np.random.Generator,
        pool: SnapshotPool,
    ) -> list[int]:
        """Select against the group's shared masks and shared initial gains."""
        k = self._check_budget(graph, k)
        oracle = pool.oracle(self.model, self.num_snapshots, kernel=self.kernel)
        gains = pool.initial_gains(self.model, self.num_snapshots, self.executor)
        return self._run_celf(k, oracle, gains)

    def _run_celf(
        self, k: int, oracle: SnapshotOracle, gains: list[float]
    ) -> list[int]:
        # CELF heap: (-gain, node, iteration the gain was computed at).
        heap: list[tuple[float, int, int]] = [
            (-gain, v, 0) for v, gain in enumerate(gains)
        ]
        heapq.heapify(heap)

        seeds: list[int] = []
        reached = oracle.reach([])
        iteration = 0
        while len(seeds) < k:
            neg_gain, v, stamp = heapq.heappop(heap)
            if stamp == iteration:
                seeds.append(v)
                oracle.extend_reach(reached, v)
                iteration += 1
            else:
                fresh = oracle.marginal_gain(v, reached)
                heapq.heappush(heap, (-fresh, v, iteration))
        return seeds


class MixGreedy(_SnapshotGreedyBase):
    """MixGreedy of Chen et al. — NewGreedy first round, CELF afterwards.

    The paper's strategy labels follow the cascade model: ``mgic`` with
    :class:`~repro.cascade.ic.IndependentCascade`, ``mgwc`` with
    :class:`~repro.cascade.wc.WeightedCascade`.
    """

    def __init__(
        self,
        model: CascadeModel,
        num_snapshots: int = 100,
        executor: Executor | None = None,
        kernel: str | None = None,
    ) -> None:
        super().__init__(model, num_snapshots, executor, kernel)
        self.name = f"mg{model.name}"


class CELFGreedy(_SnapshotGreedyBase):
    """Classical CELF lazy greedy against the same snapshot oracle.

    The first-pick gains of CELF are the singleton spreads — identical
    integers to the NewGreedy reach sizes — so it shares the batched
    initial-gains computation and differs from MixGreedy only in name
    (both then run the same lazy refinement).
    """

    def __init__(
        self,
        model: CascadeModel,
        num_snapshots: int = 100,
        executor: Executor | None = None,
        kernel: str | None = None,
    ) -> None:
        super().__init__(model, num_snapshots, executor, kernel)
        self.name = f"celf{model.name}"
