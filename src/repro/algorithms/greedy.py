"""Greedy IM algorithms: MixGreedy (NewGreedy + CELF) and plain CELF.

``MixGreedy`` is the algorithm of Chen, Wang & Yang (KDD'09) the paper uses
as its strong strategy (MGIC under IC, MGWC under WC): sample ``R``
live-edge snapshots once, compute the exact first-round spread of *every*
node on them via SCC-condensation reachability (the NewGreedy step), then
run CELF lazy-greedy for the remaining ``k−1`` picks against the same
snapshots.  Because the snapshots are freshly sampled per ``select`` call,
the algorithm is randomized — two groups running MixGreedy independently
get overlapping but not identical seed sets, which is exactly the behaviour
the paper's Theorem 1 footnote relies on.

The NewGreedy step dominates the cost and is embarrassingly parallel per
snapshot, so it is fanned out through the execution engine as a batch of
:class:`~repro.exec.jobs.SnapshotGainsJob` chunks (fixed chunk size, so the
split — and therefore the result — never depends on the worker count).
The CELF refinement stays in-process: its lazy re-evaluations are
sequential by construction.

``CELFGreedy`` is the classical lazy-greedy of Leskovec et al. (KDD'07),
implemented against the same snapshot oracle but initializing from the
same exact reach-size computation; it is provided as an extra strategy and
for cross-checking MixGreedy (both maximize the same monotone submodular
estimate, so their spreads agree within noise).

When a shared :class:`~repro.cascade.pools.SnapshotPool` is passed to
``select`` (the payoff estimator creates one per ``(draw, group)``), both
algorithms draw their masks, oracle, and initial gains from the pool via
``_select_pooled`` instead of resampling privately — the work-sharing path
reprolint rule RP008 steers strategy code towards.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import ClassVar

import numpy as np

from repro.algorithms.base import SeedSelector
from repro.cascade.base import CascadeModel
from repro.cascade.pools import MASKS_PER_JOB, SnapshotPool, snapshot_initial_gains
from repro.cascade.snapshots import SnapshotOracle, sample_snapshots
from repro.exec.executor import Executor
from repro.graphs.digraph import DiGraph
from repro.utils.rng import RandomSource, as_rng
from repro.utils.validation import check_positive_int

#: Snapshots per gains job — canonical value lives with the shared-pool
#: machinery in :mod:`repro.cascade.pools`; re-exported for compatibility.
_MASKS_PER_JOB = MASKS_PER_JOB


@dataclass
class CelfTrace:
    """What one CELF run decided: the picks and their accepted marginal gains.

    The trace is the input to :func:`repair_celf` — after an edge delta, the
    repair re-validates each cached pick against the patched oracle and only
    re-runs lazy greedy from the first depth whose decision no longer holds.
    """

    picks: list[int] = field(default_factory=list)
    pick_gains: list[float] = field(default_factory=list)


@dataclass(frozen=True)
class RepairOutcome:
    """Result of :func:`repair_celf`.

    ``repair_depth`` is the first pick depth that had to be recomputed
    (``k`` when every cached pick re-validated); ``evaluations`` counts the
    oracle ``marginal_gain`` calls spent; ``fallback`` is set when the
    evaluation budget ran out before the seed set was complete — the caller
    should then do a full reselection (which, against the same oracle,
    produces the same seeds the repair would have).
    """

    seeds: list[int]
    repair_depth: int
    evaluations: int
    fallback: bool
    trace: CelfTrace


def run_celf(oracle: SnapshotOracle, k: int, gains: list[float]) -> tuple[list[int], CelfTrace]:
    """CELF lazy greedy over *oracle* from per-node initial *gains*.

    Returns the seed set and a :class:`CelfTrace` for later incremental
    repair.  The accepted pick of every iteration is the minimum-id
    maximizer of the true marginal gain at that iteration (heap tuples break
    gain ties by node id, and a pick is only accepted once its gain is
    certified fresh), which is the exactness property :func:`repair_celf`
    relies on.
    """
    heap: list[tuple[float, int, int]] = [
        (-gain, v, 0) for v, gain in enumerate(gains)
    ]
    heapq.heapify(heap)
    trace = CelfTrace()
    reached = oracle.reach([])
    iteration = 0
    while len(trace.picks) < k:
        neg_gain, v, stamp = heapq.heappop(heap)
        if stamp == iteration:
            trace.picks.append(v)
            trace.pick_gains.append(-neg_gain)
            oracle.extend_reach(reached, v)
            iteration += 1
        else:
            fresh = oracle.marginal_gain(v, reached)
            heapq.heappush(heap, (-fresh, v, iteration))
    return list(trace.picks), trace


def repair_celf(
    oracle: SnapshotOracle,
    k: int,
    gains: list[float],
    trace: CelfTrace,
    tolerance: float = 1e-9,
    budget: int | None = None,
) -> RepairOutcome:
    """Repair a cached CELF seed set against a patched snapshot oracle.

    Walks the cached picks in order.  At depth ``d`` the cached pick ``v``
    is kept iff its *fresh* marginal gain still dominates the best possible
    gain of every other unseeded node — bounded by the patched initial
    *gains* via submodularity, ties broken by node id exactly as the CELF
    heap breaks them — and moved from its cached value by at most
    *tolerance*.  A kept pick is therefore provably the pick a cold CELF run
    on the patched oracle would make; the first failing depth re-enters lazy
    greedy with a fresh heap, which reproduces the cold picks from that
    depth onward.  Either way the returned seeds are bit-identical to a full
    cold reselection — repair only changes how much work certifying them
    takes.

    *budget* caps the total ``marginal_gain`` evaluations; when exhausted
    the outcome is flagged ``fallback`` with whatever partial seeds were
    certified, and the caller should reselect from scratch.
    """
    arr = np.asarray(gains, dtype=float)
    n = arr.shape[0]
    # Top-(k+1) candidates by (gain desc, id asc): enough that at every
    # depth at least one candidate is neither the cached pick nor seeded,
    # giving the tightest available bound on "the best other node".
    order = [int(u) for u in np.lexsort((np.arange(n), -arr))[: k + 1]]
    evaluations = 0
    trace_out = CelfTrace()
    reached = oracle.reach([])
    depth = 0
    exhausted = False
    while depth < min(k, len(trace.picks)):
        v = trace.picks[depth]
        if budget is not None and evaluations >= budget:
            exhausted = True
            break
        fresh = oracle.marginal_gain(v, reached)
        evaluations += 1
        seeded = set(trace_out.picks)
        best_other = next(u for u in order if u != v and u not in seeded)
        bound = float(arr[best_other])
        dominant = fresh > bound or (fresh == bound and v < best_other)
        if not dominant or abs(fresh - trace.pick_gains[depth]) > tolerance:
            break
        trace_out.picks.append(v)
        trace_out.pick_gains.append(fresh)
        oracle.extend_reach(reached, v)
        depth += 1

    repair_depth = depth
    if exhausted or len(trace_out.picks) >= k:
        return RepairOutcome(
            seeds=list(trace_out.picks),
            repair_depth=repair_depth,
            evaluations=evaluations,
            fallback=exhausted,
            trace=trace_out,
        )

    # Re-run lazy greedy from the failing depth: a fresh heap of initial
    # gains (stamp -1 == always stale) over unseeded nodes.  The accepted
    # picks depend only on the reached state, not the heap's history, so
    # this continuation equals the cold run's picks from this depth on.
    seeded = set(trace_out.picks)
    heap: list[tuple[float, int, int]] = [
        (-float(arr[v]), v, -1) for v in range(n) if v not in seeded
    ]
    heapq.heapify(heap)
    iteration = len(trace_out.picks)
    while len(trace_out.picks) < k:
        neg_gain, v, stamp = heapq.heappop(heap)
        if stamp == iteration:
            trace_out.picks.append(v)
            trace_out.pick_gains.append(-neg_gain)
            oracle.extend_reach(reached, v)
            iteration += 1
            continue
        if budget is not None and evaluations >= budget:
            exhausted = True
            break
        fresh = oracle.marginal_gain(v, reached)
        evaluations += 1
        heapq.heappush(heap, (-fresh, v, iteration))
    return RepairOutcome(
        seeds=list(trace_out.picks),
        repair_depth=repair_depth,
        evaluations=evaluations,
        fallback=exhausted,
        trace=trace_out,
    )


class _SnapshotGreedyBase(SeedSelector):
    """Shared CELF machinery over a live-edge snapshot oracle."""

    uses_snapshots: ClassVar[bool] = True

    def __init__(
        self,
        model: CascadeModel,
        num_snapshots: int = 100,
        executor: Executor | None = None,
        kernel: str | None = None,
    ) -> None:
        self.model = model
        self.num_snapshots = check_positive_int(num_snapshots, "num_snapshots")
        self.executor = executor
        self.kernel = kernel

    def _initial_gains(
        self, graph: DiGraph, oracle: SnapshotOracle
    ) -> list[float]:
        """Average exact reach size of every singleton seed over the snapshots.

        Delegates to :func:`repro.cascade.pools.snapshot_initial_gains` —
        the same batched computation a shared :class:`SnapshotPool` caches —
        so pooled and private selection paths agree bit for bit.
        """
        return snapshot_initial_gains(graph, oracle.masks, self.executor)

    def _select(self, graph: DiGraph, k: int, rng: RandomSource = None) -> list[int]:
        k = self._check_budget(graph, k)
        generator = as_rng(rng)
        # A private, freshly sampled pool is semantically required here:
        # without a shared pool each select call must stay independently
        # randomized (the Theorem 1 footnote behaviour).
        masks = sample_snapshots(  # reprolint: disable=RP008
            graph, self.model, self.num_snapshots, generator
        )
        oracle = SnapshotOracle(graph, masks, kernel=self.kernel)
        gains = self._initial_gains(graph, oracle)
        return self._run_celf(k, oracle, gains)

    def _select_pooled(
        self,
        graph: DiGraph,
        k: int,
        rng: np.random.Generator,
        pool: SnapshotPool,
    ) -> list[int]:
        """Select against the group's shared masks and shared initial gains."""
        k = self._check_budget(graph, k)
        oracle = pool.oracle(self.model, self.num_snapshots, kernel=self.kernel)
        gains = pool.initial_gains(self.model, self.num_snapshots, self.executor)
        return self._run_celf(k, oracle, gains)

    def _run_celf(
        self, k: int, oracle: SnapshotOracle, gains: list[float]
    ) -> list[int]:
        seeds, _ = run_celf(oracle, k, gains)
        return seeds


class MixGreedy(_SnapshotGreedyBase):
    """MixGreedy of Chen et al. — NewGreedy first round, CELF afterwards.

    The paper's strategy labels follow the cascade model: ``mgic`` with
    :class:`~repro.cascade.ic.IndependentCascade`, ``mgwc`` with
    :class:`~repro.cascade.wc.WeightedCascade`.
    """

    def __init__(
        self,
        model: CascadeModel,
        num_snapshots: int = 100,
        executor: Executor | None = None,
        kernel: str | None = None,
    ) -> None:
        super().__init__(model, num_snapshots, executor, kernel)
        self.name = f"mg{model.name}"


class CELFGreedy(_SnapshotGreedyBase):
    """Classical CELF lazy greedy against the same snapshot oracle.

    The first-pick gains of CELF are the singleton spreads — identical
    integers to the NewGreedy reach sizes — so it shares the batched
    initial-gains computation and differs from MixGreedy only in name
    (both then run the same lazy refinement).
    """

    def __init__(
        self,
        model: CascadeModel,
        num_snapshots: int = 100,
        executor: Executor | None = None,
        kernel: str | None = None,
    ) -> None:
        super().__init__(model, num_snapshots, executor, kernel)
        self.name = f"celf{model.name}"
