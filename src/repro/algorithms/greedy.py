"""Greedy IM algorithms: MixGreedy (NewGreedy + CELF) and plain CELF.

``MixGreedy`` is the algorithm of Chen, Wang & Yang (KDD'09) the paper uses
as its strong strategy (MGIC under IC, MGWC under WC): sample ``R``
live-edge snapshots once, compute the exact first-round spread of *every*
node on them via SCC-condensation reachability (the NewGreedy step), then
run CELF lazy-greedy for the remaining ``k−1`` picks against the same
snapshots.  Because the snapshots are freshly sampled per ``select`` call,
the algorithm is randomized — two groups running MixGreedy independently
get overlapping but not identical seed sets, which is exactly the behaviour
the paper's Theorem 1 footnote relies on.

``CELFGreedy`` is the classical lazy-greedy of Leskovec et al. (KDD'07),
implemented against the same snapshot oracle but skipping the NewGreedy
first-round shortcut; it is provided as an extra strategy and for
cross-checking MixGreedy (both maximize the same monotone submodular
estimate, so their spreads agree within noise).
"""

from __future__ import annotations

import heapq

from repro.algorithms.base import SeedSelector
from repro.cascade.base import CascadeModel
from repro.cascade.reachability import all_reach_sizes
from repro.cascade.snapshots import SnapshotOracle, sample_snapshots
from repro.graphs.digraph import DiGraph
from repro.utils.rng import RandomSource, as_rng
from repro.utils.validation import check_positive_int


class _SnapshotGreedyBase(SeedSelector):
    """Shared CELF machinery over a live-edge snapshot oracle."""

    def __init__(self, model: CascadeModel, num_snapshots: int = 100) -> None:
        self.model = model
        self.num_snapshots = check_positive_int(num_snapshots, "num_snapshots")

    def _initial_gains(
        self, graph: DiGraph, oracle: SnapshotOracle
    ) -> list[float]:
        """Spread estimate of every singleton seed; overridden by MixGreedy."""
        raise NotImplementedError

    def _select(self, graph: DiGraph, k: int, rng: RandomSource = None) -> list[int]:
        k = self._check_budget(graph, k)
        generator = as_rng(rng)
        masks = sample_snapshots(graph, self.model, self.num_snapshots, generator)
        oracle = SnapshotOracle(graph, masks)

        gains = self._initial_gains(graph, oracle)
        # CELF heap: (-gain, node, iteration the gain was computed at).
        heap: list[tuple[float, int, int]] = [
            (-gain, v, 0) for v, gain in enumerate(gains)
        ]
        heapq.heapify(heap)

        seeds: list[int] = []
        reached = oracle.reach([])
        iteration = 0
        while len(seeds) < k:
            neg_gain, v, stamp = heapq.heappop(heap)
            if stamp == iteration:
                seeds.append(v)
                oracle.extend_reach(reached, v)
                iteration += 1
            else:
                fresh = oracle.marginal_gain(v, reached)
                heapq.heappush(heap, (-fresh, v, iteration))
        return seeds


class MixGreedy(_SnapshotGreedyBase):
    """MixGreedy of Chen et al. — NewGreedy first round, CELF afterwards.

    The paper's strategy labels follow the cascade model: ``mgic`` with
    :class:`~repro.cascade.ic.IndependentCascade`, ``mgwc`` with
    :class:`~repro.cascade.wc.WeightedCascade`.
    """

    def __init__(self, model: CascadeModel, num_snapshots: int = 100) -> None:
        super().__init__(model, num_snapshots)
        self.name = f"mg{model.name}"

    def _initial_gains(self, graph: DiGraph, oracle: SnapshotOracle) -> list[float]:
        # NewGreedy: exact per-snapshot reach size of every node via the
        # SCC-condensation DP, averaged over snapshots.
        totals = [0.0] * graph.num_nodes
        for mask in oracle.masks:
            sizes = all_reach_sizes(graph, mask)
            for v in range(graph.num_nodes):
                totals[v] += float(sizes[v])
        return [t / oracle.num_snapshots for t in totals]


class CELFGreedy(_SnapshotGreedyBase):
    """Classical CELF lazy greedy against the same snapshot oracle."""

    def __init__(self, model: CascadeModel, num_snapshots: int = 100) -> None:
        super().__init__(model, num_snapshots)
        self.name = f"celf{model.name}"

    def _initial_gains(self, graph: DiGraph, oracle: SnapshotOracle) -> list[float]:
        empty = oracle.reach([])
        return [
            oracle.marginal_gain(v, empty) for v in range(graph.num_nodes)
        ]
