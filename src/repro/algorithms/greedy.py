"""Greedy IM algorithms: MixGreedy (NewGreedy + CELF) and plain CELF.

``MixGreedy`` is the algorithm of Chen, Wang & Yang (KDD'09) the paper uses
as its strong strategy (MGIC under IC, MGWC under WC): sample ``R``
live-edge snapshots once, compute the exact first-round spread of *every*
node on them via SCC-condensation reachability (the NewGreedy step), then
run CELF lazy-greedy for the remaining ``k−1`` picks against the same
snapshots.  Because the snapshots are freshly sampled per ``select`` call,
the algorithm is randomized — two groups running MixGreedy independently
get overlapping but not identical seed sets, which is exactly the behaviour
the paper's Theorem 1 footnote relies on.

The NewGreedy step dominates the cost and is embarrassingly parallel per
snapshot, so it is fanned out through the execution engine as a batch of
:class:`~repro.exec.jobs.SnapshotGainsJob` chunks (fixed chunk size, so the
split — and therefore the result — never depends on the worker count).
The CELF refinement stays in-process: its lazy re-evaluations are
sequential by construction.

``CELFGreedy`` is the classical lazy-greedy of Leskovec et al. (KDD'07),
implemented against the same snapshot oracle but initializing from the
same exact reach-size computation; it is provided as an extra strategy and
for cross-checking MixGreedy (both maximize the same monotone submodular
estimate, so their spreads agree within noise).
"""

from __future__ import annotations

import heapq

from repro.algorithms.base import SeedSelector
from repro.cascade.base import CascadeModel
from repro.cascade.snapshots import SnapshotOracle, sample_snapshots
from repro.exec.executor import Executor, resolve_executor
from repro.exec.jobs import SnapshotGainsJob
from repro.graphs.digraph import DiGraph
from repro.utils.rng import RandomSource, as_rng
from repro.utils.validation import check_positive_int

#: Snapshots per gains job.  Fixed (never derived from the worker count) so
#: chunking — and hence floating-point pooling order — is deterministic.
_MASKS_PER_JOB = 8


class _SnapshotGreedyBase(SeedSelector):
    """Shared CELF machinery over a live-edge snapshot oracle."""

    def __init__(
        self,
        model: CascadeModel,
        num_snapshots: int = 100,
        executor: Executor | None = None,
        kernel: str | None = None,
    ) -> None:
        self.model = model
        self.num_snapshots = check_positive_int(num_snapshots, "num_snapshots")
        self.executor = executor
        self.kernel = kernel

    def _initial_gains(
        self, graph: DiGraph, oracle: SnapshotOracle
    ) -> list[float]:
        """Average exact reach size of every singleton seed over the snapshots.

        Fanned out as one batch of per-chunk :class:`SnapshotGainsJob`s;
        chunk estimates are pooled per node with
        :meth:`SpreadEstimate.__add__`.  Reach sizes are integers (sums are
        exact in float64), so the pooled means match the serial
        computation bit for bit at any worker count.
        """
        masks = oracle.masks
        jobs = [
            SnapshotGainsJob(graph=graph, masks=tuple(masks[i: i + _MASKS_PER_JOB]))
            for i in range(0, len(masks), _MASKS_PER_JOB)
        ]
        per_chunk = resolve_executor(self.executor).estimates(jobs)
        pooled = list(per_chunk[0])
        for chunk in per_chunk[1:]:
            pooled = [prev + new for prev, new in zip(pooled, chunk)]
        return [est.mean for est in pooled]

    def _select(self, graph: DiGraph, k: int, rng: RandomSource = None) -> list[int]:
        k = self._check_budget(graph, k)
        generator = as_rng(rng)
        masks = sample_snapshots(graph, self.model, self.num_snapshots, generator)
        oracle = SnapshotOracle(graph, masks, kernel=self.kernel)

        gains = self._initial_gains(graph, oracle)
        # CELF heap: (-gain, node, iteration the gain was computed at).
        heap: list[tuple[float, int, int]] = [
            (-gain, v, 0) for v, gain in enumerate(gains)
        ]
        heapq.heapify(heap)

        seeds: list[int] = []
        reached = oracle.reach([])
        iteration = 0
        while len(seeds) < k:
            neg_gain, v, stamp = heapq.heappop(heap)
            if stamp == iteration:
                seeds.append(v)
                oracle.extend_reach(reached, v)
                iteration += 1
            else:
                fresh = oracle.marginal_gain(v, reached)
                heapq.heappush(heap, (-fresh, v, iteration))
        return seeds


class MixGreedy(_SnapshotGreedyBase):
    """MixGreedy of Chen et al. — NewGreedy first round, CELF afterwards.

    The paper's strategy labels follow the cascade model: ``mgic`` with
    :class:`~repro.cascade.ic.IndependentCascade`, ``mgwc`` with
    :class:`~repro.cascade.wc.WeightedCascade`.
    """

    def __init__(
        self,
        model: CascadeModel,
        num_snapshots: int = 100,
        executor: Executor | None = None,
        kernel: str | None = None,
    ) -> None:
        super().__init__(model, num_snapshots, executor, kernel)
        self.name = f"mg{model.name}"


class CELFGreedy(_SnapshotGreedyBase):
    """Classical CELF lazy greedy against the same snapshot oracle.

    The first-pick gains of CELF are the singleton spreads — identical
    integers to the NewGreedy reach sizes — so it shares the batched
    initial-gains computation and differs from MixGreedy only in name
    (both then run the same lazy refinement).
    """

    def __init__(
        self,
        model: CascadeModel,
        num_snapshots: int = 100,
        executor: Executor | None = None,
        kernel: str | None = None,
    ) -> None:
        super().__init__(model, num_snapshots, executor, kernel)
        self.name = f"celf{model.name}"
