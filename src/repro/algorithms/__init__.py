"""IM seed-selection algorithms — the strategy space Φ of the paper.

The registry pre-populates the paper's four strategies plus the extra
baselines, so experiments can be configured by the short names used in the
paper's figure legends:

>>> from repro.algorithms import get_algorithm
>>> get_algorithm("ddic").name
'ddic'
"""

from repro.algorithms.base import (
    SeedSelector,
    get_algorithm,
    register_algorithm,
    registered_algorithms,
)
from repro.algorithms.greedy import CELFGreedy, MixGreedy
from repro.algorithms.degree_discount import DegreeDiscount
from repro.algorithms.single_discount import SingleDiscount
from repro.algorithms.heuristics import HighDegree, PageRankSeeds, RandomSeeds
from repro.algorithms.ris import RISGreedy
from repro.algorithms.follower import FollowerBestResponse

__all__ = [
    "SeedSelector",
    "get_algorithm",
    "register_algorithm",
    "registered_algorithms",
    "CELFGreedy",
    "MixGreedy",
    "DegreeDiscount",
    "SingleDiscount",
    "HighDegree",
    "PageRankSeeds",
    "RandomSeeds",
    "RISGreedy",
    "FollowerBestResponse",
]


def _register_defaults() -> None:
    from repro.cascade.ic import IndependentCascade
    from repro.cascade.wc import WeightedCascade

    register_algorithm(
        "mgic",
        lambda probability=0.01, num_snapshots=100: MixGreedy(
            IndependentCascade(probability), num_snapshots
        ),
    )
    register_algorithm(
        "mgwc",
        lambda num_snapshots=100: MixGreedy(WeightedCascade(), num_snapshots),
    )
    register_algorithm(
        "celfic",
        lambda probability=0.01, num_snapshots=100: CELFGreedy(
            IndependentCascade(probability), num_snapshots
        ),
    )
    register_algorithm(
        "celfwc",
        lambda num_snapshots=100: CELFGreedy(WeightedCascade(), num_snapshots),
    )
    register_algorithm(
        "risic",
        lambda probability=0.01, num_samples=2000: RISGreedy(
            IndependentCascade(probability), num_samples
        ),
    )
    register_algorithm(
        "riswc",
        lambda num_samples=2000: RISGreedy(WeightedCascade(), num_samples),
    )
    register_algorithm("ddic", DegreeDiscount)
    register_algorithm("sdwc", SingleDiscount)
    register_algorithm("degree", HighDegree)
    register_algorithm("random", RandomSeeds)
    register_algorithm("pagerank", PageRankSeeds)


_register_defaults()
