"""Fictitious play for symmetric games.

A second learning dynamic beside :mod:`repro.game.replicator`: each round
the (representative) player best-responds to the *empirical distribution*
of all past play.  The empirical distribution converges to a Nash
equilibrium in 2×2 games, zero-sum games and potential games — a useful
independent check on the indifference solver when payoffs are noisy
Monte-Carlo estimates, and an ablation point for the solver bench.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GameError
from repro.game.normal_form import NormalFormGame
from repro.utils.rng import RandomSource, as_rng


def fictitious_play(
    game: NormalFormGame,
    steps: int = 5_000,
    rng: RandomSource = None,
) -> np.ndarray:
    """Run symmetric fictitious play; returns the empirical play mixture.

    All players share one belief (the empirical mixture of past best
    responses, seeded with one uniform pseudo-round); ties between best
    responses are broken uniformly at random.
    """
    counts_shape = set(game.payoffs.shape[:-1])
    if len(counts_shape) != 1:
        raise GameError("fictitious play requires equal action counts")
    if steps <= 0:
        raise GameError(f"steps must be positive, got {steps}")
    z = game.num_actions(0)
    generator = as_rng(rng)

    from repro.game.mixed import expected_payoff_against_symmetric

    # Pseudo-count prior: one uniform round avoids a degenerate start.
    counts = np.full(z, 1.0 / z)
    for _ in range(steps):
        belief = counts / counts.sum()
        payoffs = np.array(
            [
                expected_payoff_against_symmetric(game, a, belief)
                for a in range(z)
            ]
        )
        best = payoffs.max()
        candidates = np.flatnonzero(payoffs >= best - 1e-12)
        action = int(candidates[generator.integers(0, candidates.shape[0])])
        counts[action] += 1.0
    return counts / counts.sum()
