"""Normal-form games with tensor payoffs.

A game with *r* players, player *i* having ``z_i`` actions, is stored as a
single numpy tensor of shape ``(z_1, .., z_r, r)``: the last axis indexes
the player whose payoff is read.  The paper's Table 2 is the special case
``r = z = 2``.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator, Sequence

import numpy as np

from repro.errors import GameError


class NormalFormGame:
    """An *r*-player normal-form game.

    Parameters
    ----------
    payoffs:
        Array of shape ``(z_1, .., z_r, r)``; ``payoffs[a][i]`` is player
        *i*'s payoff under the pure action profile ``a``.
    action_labels:
        Optional human-readable action names, shared by all players (only
        allowed when all players have the same action count).
    """

    def __init__(
        self,
        payoffs: np.ndarray,
        action_labels: Sequence[str] | None = None,
    ) -> None:
        payoffs = np.asarray(payoffs, dtype=float)
        if payoffs.ndim < 2:
            raise GameError(
                f"payoff tensor must have shape (z_1..z_r, r), got {payoffs.shape}"
            )
        r = payoffs.ndim - 1
        if payoffs.shape[-1] != r:
            raise GameError(
                f"last axis ({payoffs.shape[-1]}) must equal the number of "
                f"players ({r})"
            )
        if not np.all(np.isfinite(payoffs)):
            raise GameError("payoffs must be finite")
        self.payoffs = payoffs
        self.payoffs.setflags(write=False)

        if action_labels is not None:
            counts = set(payoffs.shape[:-1])
            if len(counts) != 1:
                raise GameError("action_labels require equal action counts")
            if len(action_labels) != payoffs.shape[0]:
                raise GameError(
                    f"expected {payoffs.shape[0]} labels, got {len(action_labels)}"
                )
        self.action_labels = list(action_labels) if action_labels else None

    # ------------------------------------------------------------------ #

    @property
    def num_players(self) -> int:
        return self.payoffs.ndim - 1

    def num_actions(self, player: int) -> int:
        self._check_player(player)
        return self.payoffs.shape[player]

    def _check_player(self, player: int) -> None:
        if not 0 <= player < self.num_players:
            raise GameError(f"player {player} out of range [0, {self.num_players})")

    def _check_profile(self, profile: Sequence[int]) -> tuple[int, ...]:
        profile = tuple(int(a) for a in profile)
        if len(profile) != self.num_players:
            raise GameError(
                f"profile length {len(profile)} != {self.num_players} players"
            )
        for i, a in enumerate(profile):
            if not 0 <= a < self.payoffs.shape[i]:
                raise GameError(
                    f"action {a} out of range for player {i} "
                    f"(has {self.payoffs.shape[i]} actions)"
                )
        return profile

    def payoff(self, profile: Sequence[int], player: int) -> float:
        """Payoff of *player* under a pure action *profile*."""
        self._check_player(player)
        profile = self._check_profile(profile)
        return float(self.payoffs[profile][player])

    def payoff_vector(self, profile: Sequence[int]) -> np.ndarray:
        """All players' payoffs under *profile*."""
        return np.array(self.payoffs[self._check_profile(profile)])

    def profiles(self) -> Iterator[tuple[int, ...]]:
        """Iterate over every pure action profile."""
        return itertools.product(*(range(z) for z in self.payoffs.shape[:-1]))

    # ------------------------------------------------------------------ #
    # 2-player conveniences
    # ------------------------------------------------------------------ #

    @classmethod
    def from_bimatrix(
        cls,
        row_payoffs: np.ndarray,
        col_payoffs: np.ndarray | None = None,
        action_labels: Sequence[str] | None = None,
    ) -> "NormalFormGame":
        """Build a 2-player game from row/column payoff matrices.

        Omitting *col_payoffs* builds the symmetric game ``B = Aᵀ``.
        """
        a = np.asarray(row_payoffs, dtype=float)
        if a.ndim != 2:
            raise GameError(f"row_payoffs must be a matrix, got shape {a.shape}")
        b = a.T if col_payoffs is None else np.asarray(col_payoffs, dtype=float)
        if b.shape != a.shape:
            raise GameError(
                f"payoff matrices must share a shape, got {a.shape} vs {b.shape}"
            )
        return cls(np.stack([a, b], axis=-1), action_labels=action_labels)

    def bimatrix(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(A, B)`` for a 2-player game."""
        if self.num_players != 2:
            raise GameError(
                f"bimatrix view requires 2 players, game has {self.num_players}"
            )
        return np.array(self.payoffs[..., 0]), np.array(self.payoffs[..., 1])

    # ------------------------------------------------------------------ #
    # symmetry
    # ------------------------------------------------------------------ #

    def is_symmetric(self, atol: float = 1e-9) -> bool:
        """True if all players are interchangeable.

        A game is symmetric when every player has the same action set and
        ``u_{π(i)}(π(a)) = u_i(a)`` for every permutation π of players.  It
        suffices to check transpositions of player 0 with each other player.
        """
        shape = self.payoffs.shape[:-1]
        if len(set(shape)) != 1:
            return False
        r = self.num_players
        for j in range(1, r):
            # Swap players 0 and j: permute profile axes and payoff entries.
            axes = list(range(r))
            axes[0], axes[j] = axes[j], axes[0]
            swapped = np.transpose(self.payoffs, axes + [r])
            reindex = list(range(r))
            reindex[0], reindex[j] = j, 0
            swapped = swapped[..., reindex]
            if not np.allclose(swapped, self.payoffs, atol=atol):
                return False
        return True

    def label(self, action: int) -> str:
        """Human-readable name of *action*."""
        if self.action_labels is not None:
            return self.action_labels[action]
        return f"a{action}"

    def __repr__(self) -> str:
        shape = "x".join(str(z) for z in self.payoffs.shape[:-1])
        return f"NormalFormGame(players={self.num_players}, actions={shape})"
