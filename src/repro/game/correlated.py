"""Correlated equilibria by linear programming.

A correlated equilibrium (CE) is a distribution over *joint* action
profiles such that, after a mediator privately recommends each player its
component, no player gains by deviating from the recommendation.  Every
Nash equilibrium is a CE, and CEs are computable by a single LP even for
r players — no NP-hardness.

GetReal's setting deliberately has *no* mediator (groups cannot even see
each other's strategies), so CE is not a drop-in replacement for the
paper's solution concept.  It is included because the paper's Section 7
raises collusion/coordination between groups as future work: the
welfare-maximizing CE quantifies exactly how much expected influence a
trusted coordinator could add on top of the Nash outcome.
"""

from __future__ import annotations

from itertools import product

import numpy as np
from scipy.optimize import linprog

from repro.errors import EquilibriumError, GameError
from repro.game.normal_form import NormalFormGame


def correlated_equilibrium(
    game: NormalFormGame,
    objective: str = "welfare",
) -> dict[tuple[int, ...], float]:
    """A correlated equilibrium of *game*, as profile -> probability.

    *objective* selects which CE the LP returns: ``"welfare"`` maximizes
    the sum of payoffs; ``"any"`` just finds a feasible point.
    """
    if objective not in {"welfare", "any"}:
        raise GameError(f"objective must be 'welfare' or 'any', got {objective!r}")
    r = game.num_players
    shapes = game.payoffs.shape[:-1]
    profiles = list(game.profiles())
    index = {profile: pos for pos, profile in enumerate(profiles)}
    num_vars = len(profiles)

    # Incentive constraints: for each player i and pair (a_i -> b_i),
    #   sum_{a_{-i}} p(a_i, a_{-i}) [u_i(a) - u_i(b_i, a_{-i})] >= 0.
    rows = []
    for i in range(r):
        z = shapes[i]
        other_ranges = [range(shapes[j]) for j in range(r) if j != i]
        for a_i in range(z):
            for b_i in range(z):
                if a_i == b_i:
                    continue
                row = np.zeros(num_vars)
                for others in product(*other_ranges):
                    profile = list(others)
                    profile.insert(i, a_i)
                    deviated = list(others)
                    deviated.insert(i, b_i)
                    gain = game.payoff(profile, i) - game.payoff(deviated, i)
                    row[index[tuple(profile)]] = gain
                rows.append(row)
    # linprog uses <=; our constraints are row . p >= 0.
    a_ub = -np.array(rows) if rows else None
    b_ub = np.zeros(len(rows)) if rows else None

    a_eq = np.ones((1, num_vars))
    b_eq = np.ones(1)

    if objective == "welfare":
        welfare = np.array(
            [float(game.payoff_vector(profile).sum()) for profile in profiles]
        )
        c = -welfare  # maximize welfare
    else:
        c = np.zeros(num_vars)

    result = linprog(
        c,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=[(0.0, None)] * num_vars,
        method="highs",
    )
    if not result.success:
        raise EquilibriumError(f"correlated-equilibrium LP failed: {result.message}")
    probs = np.clip(result.x, 0.0, None)
    probs /= probs.sum()
    return {
        profile: float(probs[pos])
        for pos, profile in enumerate(profiles)
        if probs[pos] > 1e-12
    }


def is_correlated_equilibrium(
    game: NormalFormGame,
    distribution: dict[tuple[int, ...], float],
    atol: float = 1e-8,
) -> bool:
    """Verify the CE incentive constraints for *distribution*."""
    r = game.num_players
    shapes = game.payoffs.shape[:-1]
    total = sum(distribution.values())
    if abs(total - 1.0) > 1e-6 or any(p < -atol for p in distribution.values()):
        return False
    for i in range(r):
        z = shapes[i]
        for a_i in range(z):
            for b_i in range(z):
                if a_i == b_i:
                    continue
                gain = 0.0
                for profile, p in distribution.items():
                    if profile[i] != a_i:
                        continue
                    deviated = list(profile)
                    deviated[i] = b_i
                    gain += p * (
                        game.payoff(profile, i) - game.payoff(deviated, i)
                    )
                if gain < -atol:
                    return False
    return True


def expected_payoffs(
    game: NormalFormGame,
    distribution: dict[tuple[int, ...], float],
) -> np.ndarray:
    """Per-player expected payoffs under a joint distribution."""
    out = np.zeros(game.num_players)
    for profile, p in distribution.items():
        out += p * game.payoff_vector(profile)
    return out
