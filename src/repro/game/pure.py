"""Pure-strategy equilibrium analysis.

Implements the checks of the paper's Section 4.2 / Algorithm 1 lines 5–7:
best responses, (weak) dominance, full pure-NE enumeration, and the
symmetric diagonal check GetReal uses (in a symmetric game, the paper
restricts attention to equilibria where every group plays the same
strategy).
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence

import numpy as np

from repro.errors import GameError
from repro.game.normal_form import NormalFormGame


def best_responses(
    game: NormalFormGame,
    player: int,
    others: Sequence[int],
    atol: float = 1e-9,
) -> list[int]:
    """Actions of *player* maximizing payoff given the *others*' pure actions.

    *others* lists the remaining players' actions in player order (player
    *player* skipped).
    """
    r = game.num_players
    if len(others) != r - 1:
        raise GameError(
            f"expected {r - 1} opponent actions, got {len(others)}"
        )
    payoffs = []
    for a in range(game.num_actions(player)):
        profile = list(others)
        profile.insert(player, a)
        payoffs.append(game.payoff(profile, player))
    best = max(payoffs)
    return [a for a, u in enumerate(payoffs) if u >= best - atol]


def is_pure_equilibrium(
    game: NormalFormGame,
    profile: Sequence[int],
    atol: float = 1e-9,
) -> bool:
    """True if no player can strictly gain by a unilateral deviation."""
    profile = list(profile)
    for i in range(game.num_players):
        current = game.payoff(profile, i)
        for a in range(game.num_actions(i)):
            if a == profile[i]:
                continue
            deviated = list(profile)
            deviated[i] = a
            if game.payoff(deviated, i) > current + atol:
                return False
    return True


def pure_nash_equilibria(
    game: NormalFormGame,
    atol: float = 1e-9,
) -> list[tuple[int, ...]]:
    """Enumerate all pure-strategy Nash equilibria."""
    return [
        profile for profile in game.profiles() if is_pure_equilibrium(game, profile, atol)
    ]


def dominant_actions(
    game: NormalFormGame,
    player: int,
    strict: bool = False,
    atol: float = 1e-9,
) -> list[int]:
    """Actions of *player* that (weakly or strictly) dominate all others.

    An action *a* weakly dominates when, against every combination of
    opponent actions, it does at least as well as every alternative; strict
    dominance requires strictly better against every combination.
    """
    game._check_player(player)
    z = game.num_actions(player)
    opponent_ranges = [
        range(game.num_actions(j)) for j in range(game.num_players) if j != player
    ]
    winners = []
    for a in range(z):
        dominates = True
        for b in range(z):
            if a == b:
                continue
            for others in itertools.product(*opponent_ranges):
                pa = list(others)
                pa.insert(player, a)
                pb = list(others)
                pb.insert(player, b)
                ua = game.payoff(pa, player)
                ub = game.payoff(pb, player)
                if strict and ua <= ub + atol:
                    dominates = False
                    break
                if not strict and ua < ub - atol:
                    dominates = False
                    break
            if not dominates:
                break
        if dominates:
            winners.append(a)
    return winners


def symmetric_pure_equilibria(
    game: NormalFormGame,
    atol: float = 1e-9,
) -> list[int]:
    """Diagonal equilibria of a symmetric game: actions *a* with (a,..,a) a NE.

    This is the check GetReal performs (Algorithm 1 line 5 examines only the
    *z* diagonal profiles; Nash's symmetry theorem guarantees a symmetric
    equilibrium exists, possibly mixed).
    """
    counts = set(game.payoffs.shape[:-1])
    if len(counts) != 1:
        raise GameError("symmetric check requires equal action counts")
    z = game.payoffs.shape[0]
    result = []
    for a in range(z):
        profile = (a,) * game.num_players
        if is_pure_equilibrium(game, profile, atol):
            result.append(a)
    return result


def iterated_elimination_strictly_dominated(
    game: NormalFormGame,
    atol: float = 1e-9,
) -> list[list[int]]:
    """Surviving action sets after iterated strict-dominance elimination.

    Provided for analysis/ablation; GetReal itself does not need it, but it
    is a useful diagnostic on estimated payoff tables (a strategy eliminated
    here can never appear in any equilibrium support).
    """
    surviving: list[list[int]] = [
        list(range(game.num_actions(i))) for i in range(game.num_players)
    ]
    changed = True
    while changed:
        changed = False
        for i in range(game.num_players):
            if len(surviving[i]) <= 1:
                continue
            opponent_profiles = list(
                itertools.product(
                    *(surviving[j] for j in range(game.num_players) if j != i)
                )
            )
            eliminated: list[int] = []
            for b in surviving[i]:
                for a in surviving[i]:
                    if a == b:
                        continue
                    strictly_better = True
                    for others in opponent_profiles:
                        pa = list(others)
                        pa.insert(i, a)
                        pb = list(others)
                        pb.insert(i, b)
                        if game.payoff(pa, i) <= game.payoff(pb, i) + atol:
                            strictly_better = False
                            break
                    if strictly_better:
                        eliminated.append(b)
                        break
            if eliminated:
                surviving[i] = [a for a in surviving[i] if a not in eliminated]
                changed = True
    return surviving
