"""Support enumeration for two-player games.

Enumerates all Nash equilibria of a nondegenerate bimatrix game by trying
every pair of equal-size supports, solving the two indifference systems, and
keeping solutions that are valid distributions and mutual best responses.
Exponential in the action counts, which is irrelevant at GetReal scale
(z ≤ 4) and makes it a trustworthy oracle for cross-checking Lemke–Howson
and the symmetric solvers.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.errors import GameError
from repro.game.normal_form import NormalFormGame


def _solve_indifference(
    payoff: np.ndarray,
    own_support: tuple[int, ...],
    opp_support: tuple[int, ...],
) -> np.ndarray | None:
    """Opponent mixture over *opp_support* equalizing *own_support* payoffs.

    *payoff* is the deciding player's matrix with own actions on axis 0.
    Returns a full-length mixture or None if the system is singular or the
    solution leaves the simplex.
    """
    s = len(own_support)
    # Unknowns: weights over opp_support (s of them).  Equations: payoffs of
    # consecutive own-support actions are equal (s-1), plus normalization.
    rows = []
    rhs = []
    for i in range(s - 1):
        a, b = own_support[i], own_support[i + 1]
        rows.append(payoff[a, list(opp_support)] - payoff[b, list(opp_support)])
        rhs.append(0.0)
    rows.append(np.ones(s))
    rhs.append(1.0)
    matrix = np.array(rows)
    try:
        weights = np.linalg.solve(matrix, np.array(rhs))
    except np.linalg.LinAlgError:
        return None
    if np.any(weights < -1e-9):
        return None
    weights = np.clip(weights, 0.0, None)
    total = weights.sum()
    if total <= 0:
        return None
    weights /= total
    full = np.zeros(payoff.shape[1])
    full[list(opp_support)] = weights
    return full


def _is_best_response(
    payoff: np.ndarray,
    own_support: tuple[int, ...],
    opp_mixture: np.ndarray,
    atol: float,
) -> bool:
    """All support actions optimal against *opp_mixture*."""
    expected = payoff @ opp_mixture
    best = expected.max()
    return bool(np.all(expected[list(own_support)] >= best - atol))


def support_enumeration(
    game: NormalFormGame,
    atol: float = 1e-9,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """All equilibria ``(x, y)`` of a 2-player game via support enumeration."""
    if game.num_players != 2:
        raise GameError(
            f"support enumeration handles 2 players, game has {game.num_players}"
        )
    a, b = game.bimatrix()
    m, n = a.shape
    equilibria: list[tuple[np.ndarray, np.ndarray]] = []
    for size in range(1, min(m, n) + 1):
        for row_support in itertools.combinations(range(m), size):
            for col_support in itertools.combinations(range(n), size):
                y = _solve_indifference(a, row_support, col_support)
                if y is None:
                    continue
                # Column player's indifference over col_support is driven by
                # the row mixture; transpose B so own actions are on axis 0.
                x = _solve_indifference(b.T, col_support, row_support)
                if x is None:
                    continue
                if not _is_best_response(a, row_support, y, atol):
                    continue
                if not _is_best_response(b.T, col_support, x, atol):
                    continue
                if not any(
                    np.allclose(x, ex) and np.allclose(y, ey)
                    for ex, ey in equilibria
                ):
                    equilibria.append((x, y))
    return equilibria
