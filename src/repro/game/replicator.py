"""Discrete-time replicator dynamics for symmetric games.

An evolutionary fallback solver: start from (a perturbation of) the uniform
mixture and repeatedly reweight each action by its fitness — its expected
payoff against the current population mixture.  Fixed points of the
dynamics that attract from the interior are symmetric Nash equilibria; the
GetReal pipeline uses this only when the direct indifference solvers fail
on noisy Monte-Carlo payoffs, and the ablation bench compares all solvers.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GameError
from repro.game.normal_form import NormalFormGame
from repro.utils.rng import RandomSource, as_rng


def replicator_dynamics(
    game: NormalFormGame,
    steps: int = 5_000,
    initial: np.ndarray | None = None,
    perturbation: float = 1e-3,
    rng: RandomSource = None,
    average: bool = False,
) -> np.ndarray:
    """Run replicator dynamics; returns the final population mixture.

    Payoffs are shifted to be strictly positive first (the discrete
    replicator map requires positive fitness).  A tiny random perturbation
    of the uniform start avoids sitting on unstable symmetric fixed points.

    With ``average=True`` the *time-averaged* trajectory is returned
    instead of the endpoint — the right choice for cyclic games (e.g.
    rock-paper-scissors), where the discrete map orbits or spirals away
    from the interior equilibrium but its time average converges to it.
    """
    counts = set(game.payoffs.shape[:-1])
    if len(counts) != 1:
        raise GameError("replicator dynamics requires equal action counts")
    z = game.num_actions(0)
    generator = as_rng(rng)

    from repro.game.mixed import expected_payoff_against_symmetric

    shift = 1.0 - float(game.payoffs.min())

    if initial is None:
        mixture = np.full(z, 1.0 / z)
        mixture = mixture + perturbation * generator.random(z)
        mixture /= mixture.sum()
    else:
        mixture = np.asarray(initial, dtype=float)
        if mixture.shape != (z,):
            raise GameError(f"initial mixture must have {z} entries")
        mixture = mixture / mixture.sum()

    running_sum = np.zeros(z)
    taken = 0
    for _ in range(steps):
        fitness = np.array(
            [
                expected_payoff_against_symmetric(game, a, mixture) + shift
                for a in range(z)
            ]
        )
        new_mixture = mixture * fitness
        total = new_mixture.sum()
        if total <= 0:
            break
        new_mixture /= total
        running_sum += new_mixture
        taken += 1
        if np.abs(new_mixture - mixture).sum() < 1e-12:
            mixture = new_mixture
            break
        mixture = new_mixture
    if average and taken:
        return running_sum / taken
    return mixture
