"""Zero-sum bimatrix games: exact minimax solution by linear programming.

Competitive influence maximization is *not* zero-sum in general (the total
activated population varies with the profile), but the zero-sum solver is
a useful reference point: it computes each group's guaranteed spread
(security level) under fully adversarial assumptions, and for games that
happen to be (close to) constant-sum it coincides with the Nash solution.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog

from repro.errors import EquilibriumError, GameError
from repro.game.normal_form import NormalFormGame


def minimax_strategy(payoff_matrix: np.ndarray) -> tuple[np.ndarray, float]:
    """Row player's maximin mixture and game value for payoff matrix *A*.

    Solves  max_x min_j (xᵀA)_j  with x on the simplex, via the standard
    LP (variables x and the value v; maximize v subject to xᵀA ≥ v·1).
    """
    a = np.asarray(payoff_matrix, dtype=float)
    if a.ndim != 2:
        raise GameError(f"payoff matrix must be 2-D, got shape {a.shape}")
    m, n = a.shape
    # Variables: [x_1..x_m, v].  linprog minimizes, so use -v.
    c = np.zeros(m + 1)
    c[-1] = -1.0
    # v - (xᵀA)_j <= 0  for every column j.
    a_ub = np.concatenate([-a.T, np.ones((n, 1))], axis=1)
    b_ub = np.zeros(n)
    a_eq = np.concatenate([np.ones((1, m)), np.zeros((1, 1))], axis=1)
    b_eq = np.ones(1)
    bounds = [(0.0, None)] * m + [(None, None)]
    result = linprog(
        c, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq, bounds=bounds,
        method="highs",
    )
    if not result.success:
        raise EquilibriumError(f"minimax LP failed: {result.message}")
    x = np.clip(result.x[:m], 0.0, None)
    x /= x.sum()
    return x, float(result.x[-1])


def solve_zero_sum(game: NormalFormGame) -> tuple[np.ndarray, np.ndarray, float]:
    """Equilibrium ``(x, y, value)`` of a 2-player zero-sum game.

    Requires ``B = -A`` (checked).  The column player's strategy is the
    row player's maximin mixture on ``-Aᵀ``.
    """
    if game.num_players != 2:
        raise GameError("zero-sum solver handles 2 players")
    a, b = game.bimatrix()
    if not np.allclose(a, -b, atol=1e-9):
        raise GameError("game is not zero-sum (B != -A)")
    x, value = minimax_strategy(a)
    y, neg_value = minimax_strategy(-a.T)
    if abs(value + neg_value) > 1e-6:
        raise EquilibriumError(
            f"minimax duality gap: {value} vs {-neg_value}"
        )
    return x, y, value


def security_levels(game: NormalFormGame) -> tuple[float, float]:
    """Each player's guaranteed (maximin) payoff in a general bimatrix game.

    The spread a group can secure no matter what the rival does — a lower
    bound on its equilibrium payoff and a useful robustness summary for
    estimated competitive games.
    """
    if game.num_players != 2:
        raise GameError("security levels are defined for 2 players here")
    a, b = game.bimatrix()
    _, value_row = minimax_strategy(a)
    _, value_col = minimax_strategy(b.T)
    return value_row, value_col
