"""Lemke–Howson path following for bimatrix games.

Finds one Nash equilibrium of a two-player game by complementary pivoting —
polynomial-behaved in practice and the standard workhorse when support
enumeration's exhaustive sweep is unnecessary.  The implementation uses the
labelled-tableau formulation: labels ``0..m-1`` are the row player's
actions, ``m..m+n-1`` the column player's.  The *x*-tableau encodes
``xᵀB ≤ 1`` (row-player variables, column-player slacks) and the
*y*-tableau ``Ay ≤ 1``; dropping an initial label and alternating min-ratio
pivots between the tableaus until the initial label reappears yields a
completely labelled — i.e. equilibrium — pair.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EquilibriumError, GameError
from repro.game.normal_form import NormalFormGame


class _Tableau:
    """A pivoting tableau with explicit basis bookkeeping.

    Columns ``0..m+n-1`` carry variable labels; the final column is the
    right-hand side.  ``basis[row]`` records which label's variable is basic
    in each row.
    """

    def __init__(self, matrix: np.ndarray, slack_labels: range):
        rows = matrix.shape[0]
        self.data = np.concatenate([matrix, np.ones((rows, 1))], axis=1)
        self.basis = list(slack_labels)

    def pivot(self, entering_label: int) -> int:
        """Bring *entering_label* into the basis; return the departing label."""
        rhs = self.data[:, -1]
        col = self.data[:, entering_label]
        with np.errstate(divide="ignore", invalid="ignore"):
            ratios = np.where(col > 1e-12, rhs / col, np.inf)
        row = int(np.argmin(ratios))
        if not np.isfinite(ratios[row]):
            raise EquilibriumError("Lemke-Howson pivot failed: unbounded ray")

        self.data[row] /= self.data[row, entering_label]
        for r in range(self.data.shape[0]):
            if r != row:
                self.data[r] -= self.data[r, entering_label] * self.data[row]

        departing = self.basis[row]
        self.basis[row] = entering_label
        return departing

    def strategy(self, labels: range, size: int) -> np.ndarray:
        """Normalized basic solution restricted to *labels*."""
        result = np.zeros(size)
        for row, label in enumerate(self.basis):
            if label in labels:
                result[label - labels.start] = max(0.0, self.data[row, -1])
        total = result.sum()
        if total <= 0:
            raise EquilibriumError("Lemke-Howson produced a zero strategy")
        return result / total


def lemke_howson(
    game: NormalFormGame,
    initial_label: int = 0,
    max_pivots: int = 10_000,
) -> tuple[np.ndarray, np.ndarray]:
    """One Nash equilibrium ``(x, y)`` of a 2-player game.

    *initial_label* (``0..m+n-1``) selects the complementary path; different
    labels can reach different equilibria of the same game.
    """
    if game.num_players != 2:
        raise GameError(
            f"Lemke-Howson handles 2 players, game has {game.num_players}"
        )
    a, b = game.bimatrix()
    m, n = a.shape
    if not 0 <= initial_label < m + n:
        raise GameError(f"initial_label must be in [0, {m + n})")

    # Shift payoffs strictly positive (equilibria are shift-invariant).
    shift = 1.0 - min(a.min(), b.min())
    a = a + shift
    b = b + shift

    row_labels = range(0, m)
    col_labels = range(m, m + n)

    # x-tableau: n rows of xᵀB ≤ 1.  Variable columns 0..m-1 hold Bᵀ (the x
    # variables); columns m..m+n-1 are the column player's slacks.
    x_tab = _Tableau(np.concatenate([b.T, np.eye(n)], axis=1), slack_labels=col_labels)
    # y-tableau: m rows of Ay ≤ 1.  Columns 0..m-1 are the row player's
    # slacks; columns m..m+n-1 hold A (the y variables).
    y_tab = _Tableau(np.concatenate([np.eye(m), a], axis=1), slack_labels=row_labels)

    # A row label is an x variable, so it enters in the x-tableau.
    current = initial_label
    tableau = x_tab if current in row_labels else y_tab
    for _ in range(max_pivots):
        current = tableau.pivot(current)
        if current == initial_label:
            break
        tableau = y_tab if tableau is x_tab else x_tab
    else:
        raise EquilibriumError(
            f"Lemke-Howson did not converge within {max_pivots} pivots"
        )

    x = x_tab.strategy(row_labels, m)
    y = y_tab.strategy(col_labels, n)
    return x, y
