"""Game-theory substrate: normal-form games and equilibrium computation.

Implemented from scratch (no nashpy dependency): pure-NE enumeration and
dominance checks, the paper's 2×2 symmetric closed form, general symmetric
indifference solving, support enumeration and Lemke–Howson for bimatrix
games, and replicator dynamics for symmetric games of any size.
"""

from repro.game.normal_form import NormalFormGame
from repro.game.pure import (
    best_responses,
    dominant_actions,
    is_pure_equilibrium,
    pure_nash_equilibria,
    symmetric_pure_equilibria,
)
from repro.game.mixed import (
    expected_payoff_against_symmetric,
    mixed_equilibrium_2x2_symmetric,
    symmetric_mixed_equilibrium,
)
from repro.game.support_enum import support_enumeration
from repro.game.lemke_howson import lemke_howson
from repro.game.replicator import replicator_dynamics
from repro.game.fictitious_play import fictitious_play
from repro.game.zero_sum import minimax_strategy, security_levels, solve_zero_sum
from repro.game.correlated import (
    correlated_equilibrium,
    expected_payoffs,
    is_correlated_equilibrium,
)
from repro.game.potential import (
    is_potential_game,
    potential_function,
    potential_maximizer,
)

__all__ = [
    "NormalFormGame",
    "best_responses",
    "dominant_actions",
    "is_pure_equilibrium",
    "pure_nash_equilibria",
    "symmetric_pure_equilibria",
    "expected_payoff_against_symmetric",
    "mixed_equilibrium_2x2_symmetric",
    "symmetric_mixed_equilibrium",
    "support_enumeration",
    "lemke_howson",
    "replicator_dynamics",
    "fictitious_play",
    "minimax_strategy",
    "security_levels",
    "solve_zero_sum",
    "correlated_equilibrium",
    "is_correlated_equilibrium",
    "expected_payoffs",
    "is_potential_game",
    "potential_function",
    "potential_maximizer",
]
