"""Symmetric mixed-strategy equilibria.

Nash (1951) proved every finite symmetric game has a symmetric equilibrium;
the paper (Section 4.3) leans on this to guarantee GetReal always returns a
strategy.  This module computes such equilibria:

* :func:`mixed_equilibrium_2x2_symmetric` — the closed form of the paper's
  Equation (3) for ``r = z = 2``;
* :func:`symmetric_mixed_equilibrium` — general symmetric games: polynomial
  root finding for two actions (any number of players), support enumeration
  with indifference solving for more actions, and replicator dynamics as a
  last resort.
"""

from __future__ import annotations

import itertools

import numpy as np
from scipy import optimize

from repro.errors import EquilibriumError, GameError
from repro.game.normal_form import NormalFormGame
from repro.utils.validation import nearly_zero


def expected_payoff_against_symmetric(
    game: NormalFormGame,
    action: int,
    mixture: np.ndarray,
) -> float:
    """Player 0's expected payoff for *action* when all rivals play *mixture*.

    Computed exactly by enumerating the ``z^(r-1)`` opponent profiles —
    cheap for the game sizes GetReal targets (z, r ≤ 4, cf. the paper's
    NP-completeness discussion for larger games).
    """
    z = game.num_actions(0)
    if not 0 <= action < z:
        raise GameError(f"action {action} out of range [0, {z})")
    mixture = np.asarray(mixture, dtype=float)
    if mixture.shape != (z,):
        raise GameError(f"mixture must have {z} entries, got shape {mixture.shape}")
    r = game.num_players
    total = 0.0
    for others in itertools.product(range(z), repeat=r - 1):
        weight = 1.0
        for a in others:
            weight *= mixture[a]
        if nearly_zero(weight):
            continue
        total += weight * game.payoff((action, *others), 0)
    return total


def regret_of_symmetric_mixture(game: NormalFormGame, mixture: np.ndarray) -> float:
    """Max gain any player gets by deviating from everyone playing *mixture*."""
    z = game.num_actions(0)
    payoffs = np.array(
        [expected_payoff_against_symmetric(game, a, mixture) for a in range(z)]
    )
    current = float(np.dot(mixture, payoffs))
    return float(payoffs.max() - current)


def mixed_equilibrium_2x2_symmetric(
    game: NormalFormGame,
    atol: float = 1e-9,
) -> np.ndarray:
    """The paper's Equation (3): ρ = (γh − αg) / (γh − αg + λg − βh).

    In bimatrix notation with row-player matrix ``A``::

        ρ = (A[1,1] − A[0,1]) / ((A[1,1] − A[0,1]) + (A[0,0] − A[1,0]))

    Raises :class:`EquilibriumError` when the game has no interior mixed
    equilibrium (ρ outside (0, 1) or a degenerate denominator) — the pure
    analysis should be used in that case.
    """
    if game.num_players != 2 or game.num_actions(0) != 2 or game.num_actions(1) != 2:
        raise GameError("closed form applies to 2-player, 2-action games only")
    a = game.payoffs[..., 0]
    numerator = a[1, 1] - a[0, 1]
    denominator = (a[1, 1] - a[0, 1]) + (a[0, 0] - a[1, 0])
    if abs(denominator) <= atol:
        raise EquilibriumError(
            "degenerate game: indifference holds for every mixture (or none)"
        )
    rho = numerator / denominator
    if not 0.0 <= rho <= 1.0:
        raise EquilibriumError(
            f"no interior mixed equilibrium: closed form gives rho={rho:.6f}"
        )
    return np.array([rho, 1.0 - rho])


def _two_action_symmetric(game: NormalFormGame, atol: float) -> np.ndarray | None:
    """Symmetric equilibrium of a z=2 symmetric game (any r): root of a polynomial."""

    def diff(rho: float) -> float:
        mixture = np.array([rho, 1.0 - rho])
        return expected_payoff_against_symmetric(
            game, 0, mixture
        ) - expected_payoff_against_symmetric(game, 1, mixture)

    # Pure ends first: all-0 is an equilibrium iff deviating to 1 doesn't pay.
    if diff(1.0) >= -atol:
        return np.array([1.0, 0.0])
    if diff(0.0) <= atol:
        return np.array([0.0, 1.0])
    # diff(1) < 0 < diff(0) is impossible here (we just returned); the
    # remaining case diff(1) < 0, diff(0) > 0... note diff(0) > atol and
    # diff(1) < -atol, so a sign change exists.
    root = optimize.brentq(diff, 0.0, 1.0, xtol=1e-12)
    return np.array([root, 1.0 - root])


def _support_solve(
    game: NormalFormGame,
    support: tuple[int, ...],
    atol: float,
) -> np.ndarray | None:
    """Solve the indifference conditions restricted to *support*; verify NE."""
    z = game.num_actions(0)
    s = len(support)

    def residual(free: np.ndarray) -> np.ndarray:
        mixture = np.zeros(z)
        weights = np.concatenate([free, [1.0 - free.sum()]])
        for idx, a in enumerate(support):
            mixture[a] = weights[idx]
        payoffs = [
            expected_payoff_against_symmetric(game, a, mixture) for a in support
        ]
        return np.array([payoffs[i] - payoffs[-1] for i in range(s - 1)])

    if s == 1:
        mixture = np.zeros(z)
        mixture[support[0]] = 1.0
        return mixture if regret_of_symmetric_mixture(game, mixture) <= atol else None

    start = np.full(s - 1, 1.0 / s)
    try:
        solution, info, ier, _ = optimize.fsolve(
            residual, start, full_output=True, xtol=1e-12
        )
    except Exception:  # numerical failure inside fsolve
        return None
    if ier != 1:
        return None
    weights = np.concatenate([solution, [1.0 - solution.sum()]])
    if np.any(weights < -1e-9):
        return None
    weights = np.clip(weights, 0.0, None)
    if weights.sum() <= 0:
        return None
    weights /= weights.sum()
    mixture = np.zeros(z)
    for idx, a in enumerate(support):
        mixture[a] = weights[idx]
    if regret_of_symmetric_mixture(game, mixture) <= max(atol, 1e-6):
        return mixture
    return None


def symmetric_mixed_equilibrium(
    game: NormalFormGame,
    atol: float = 1e-8,
    prefer_interior: bool = True,
) -> np.ndarray:
    """A symmetric (possibly degenerate) equilibrium mixture of a symmetric game.

    Strategy: exact closed form / root finding for two actions; support
    enumeration (largest supports first when *prefer_interior*) with
    indifference solving otherwise; replicator dynamics as a fallback.
    Raises :class:`EquilibriumError` only if every method fails, which for a
    genuinely symmetric game indicates numerically hostile payoffs.
    """
    counts = set(game.payoffs.shape[:-1])
    if len(counts) != 1:
        raise GameError("symmetric equilibrium requires equal action counts")
    z = game.num_actions(0)

    if z == 1:
        return np.array([1.0])
    if z == 2:
        result = _two_action_symmetric(game, atol)
        if result is not None:
            return result

    supports = [
        support
        for size in range(z, 0, -1)
        for support in itertools.combinations(range(z), size)
    ]
    if not prefer_interior:
        supports = sorted(supports, key=len)
    for support in supports:
        mixture = _support_solve(game, support, atol)
        if mixture is not None:
            return mixture

    from repro.game.replicator import replicator_dynamics

    mixture = replicator_dynamics(game)
    if regret_of_symmetric_mixture(game, mixture) <= 1e-4:
        return mixture
    raise EquilibriumError(
        "failed to locate a symmetric equilibrium; payoffs may be too noisy"
    )
