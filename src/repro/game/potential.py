"""Exact potential-game diagnostics.

A finite game is an *exact potential game* when there exists a function
Φ over profiles such that every unilateral deviation changes the
deviator's payoff by exactly ΔΦ.  Potential games always possess a pure
Nash equilibrium (any Φ-maximizer) and best-response dynamics converge.

For GetReal this is a diagnostic: if an estimated competitive game is
(numerically close to) a potential game, the pure branch of Algorithm 1
is guaranteed to succeed, and seed-space best-response dynamics
(:mod:`repro.core.best_response`) cannot cycle at the strategy level.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GameError
from repro.game.normal_form import NormalFormGame


def potential_function(
    game: NormalFormGame,
    atol: float = 1e-8,
) -> np.ndarray | None:
    """The exact potential over profiles, or None if no potential exists.

    Built constructively: fix Φ(0,..,0) = 0 and propagate along
    single-coordinate deviations; then verify every deviation edge (the
    construction is path-dependent, so verification is what certifies the
    potential exists).  Returned as an array indexed like the payoff
    tensor without its player axis.
    """
    shape = game.payoffs.shape[:-1]
    potential = np.full(shape, np.nan)
    origin = (0,) * game.num_players
    potential[origin] = 0.0

    # BFS over the profile graph along unilateral deviations.
    frontier = [origin]
    while frontier:
        next_frontier = []
        for profile in frontier:
            base = potential[profile]
            for i in range(game.num_players):
                for a in range(shape[i]):
                    if a == profile[i]:
                        continue
                    neighbour = list(profile)
                    neighbour[i] = a
                    neighbour = tuple(neighbour)
                    delta = game.payoff(neighbour, i) - game.payoff(profile, i)
                    value = base + delta
                    if np.isnan(potential[neighbour]):
                        potential[neighbour] = value
                        next_frontier.append(neighbour)
        frontier = next_frontier

    if np.any(np.isnan(potential)):
        raise GameError("profile graph unexpectedly disconnected")

    # Verification pass: every deviation must match the potential delta.
    for profile in game.profiles():
        for i in range(game.num_players):
            for a in range(shape[i]):
                if a == profile[i]:
                    continue
                neighbour = list(profile)
                neighbour[i] = a
                neighbour = tuple(neighbour)
                payoff_delta = game.payoff(neighbour, i) - game.payoff(profile, i)
                potential_delta = potential[neighbour] - potential[profile]
                if abs(payoff_delta - potential_delta) > atol:
                    return None
    return potential


def is_potential_game(game: NormalFormGame, atol: float = 1e-8) -> bool:
    """True when an exact potential function exists (within *atol*)."""
    return potential_function(game, atol) is not None


def potential_maximizer(game: NormalFormGame) -> tuple[int, ...]:
    """The Φ-maximizing profile — a pure Nash equilibrium of a potential game."""
    potential = potential_function(game)
    if potential is None:
        raise GameError("game is not an exact potential game")
    flat_index = int(np.argmax(potential))
    return tuple(int(i) for i in np.unravel_index(flat_index, potential.shape))
