"""Observability layer: structured logging, metrics, trace spans, run journal.

Three independent sinks with one import surface:

* :mod:`repro.obs.log` — per-module loggers, silent until
  :func:`configure_logging` attaches a handler (text or JSONL);
* :mod:`repro.obs.metrics` — process-wide counters/gauges/histograms with
  :func:`metrics_snapshot` / :func:`metrics_reset`;
* :mod:`repro.obs.journal` — typed JSONL run journal written by
  ``estimate_payoff_table`` / ``get_real`` and read back into per-profile
  timing/variance reports;
* :mod:`repro.obs.trace` — :func:`span` blocks feeding all of the above.
"""

from repro.obs.log import (
    JsonLineFormatter,
    configure_logging,
    get_logger,
    logging_configured,
    reset_logging,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    get_registry,
    histogram,
)
from repro.obs.metrics import reset as metrics_reset
from repro.obs.metrics import snapshot as metrics_snapshot
from repro.obs.journal import (
    EVENT_TYPES,
    RunJournal,
    RunRecord,
    attach_journal,
    attached,
    current_journal,
    detach_journal,
    journal_summary_rows,
    read_journal,
    reconstruct_runs,
    render_journal_report,
)
from repro.obs.trace import Span, span

__all__ = [
    # log
    "configure_logging",
    "get_logger",
    "logging_configured",
    "reset_logging",
    "JsonLineFormatter",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter",
    "gauge",
    "histogram",
    "get_registry",
    "metrics_snapshot",
    "metrics_reset",
    # journal
    "EVENT_TYPES",
    "RunJournal",
    "RunRecord",
    "attach_journal",
    "detach_journal",
    "attached",
    "current_journal",
    "read_journal",
    "reconstruct_runs",
    "journal_summary_rows",
    "render_journal_report",
    # trace
    "Span",
    "span",
]
