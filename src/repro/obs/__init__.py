"""Observability layer: structured logging, metrics, trace spans, run journal.

Three independent sinks with one import surface:

* :mod:`repro.obs.log` — per-module loggers, silent until
  :func:`configure_logging` attaches a handler (text or JSONL);
* :mod:`repro.obs.metrics` — process-wide counters/gauges/histograms with
  :func:`metrics_snapshot` / :func:`metrics_reset`;
* :mod:`repro.obs.journal` — typed JSONL run journal written by
  ``estimate_payoff_table`` / ``get_real`` and read back into per-profile
  timing/variance reports;
* :mod:`repro.obs.trace` — hierarchical :func:`span` blocks feeding all of
  the above; spans carry ``trace_id``/``span_id``/``parent_id`` and the
  context crosses execution backends (:func:`trace_scope`);
* :mod:`repro.obs.tracetree` — reassemble journaled spans into per-trace
  waterfalls (``repro obs trace``);
* :mod:`repro.obs.export` — Prometheus text-format / JSON metric export
  (``repro obs export``);
* :mod:`repro.obs.monitor` — live journal tail-follower and in-terminal
  dashboard (``repro monitor``).
"""

from repro.obs.log import (
    JsonLineFormatter,
    configure_logging,
    get_logger,
    logging_configured,
    reset_logging,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsState,
    counter,
    delta_state,
    gauge,
    get_registry,
    histogram,
)
from repro.obs.metrics import reset as metrics_reset
from repro.obs.metrics import snapshot as metrics_snapshot
from repro.obs.journal import (
    EVENT_TYPES,
    RunJournal,
    RunRecord,
    attach_journal,
    attached,
    current_journal,
    detach_journal,
    journal_summary_rows,
    read_journal,
    reconstruct_runs,
    render_journal_report,
)
from repro.obs.trace import (
    Span,
    TraceContext,
    collect_spans,
    current_trace_context,
    span,
    trace_scope,
)
from repro.obs.tracetree import SpanNode, Trace, build_traces, render_trace_tree
from repro.obs.export import (
    parse_prometheus_text,
    registry_from_journal,
    render_export,
    to_json,
    to_prometheus,
)
from repro.obs.monitor import (
    JournalTailer,
    MonitorState,
    render_dashboard,
    run_monitor,
)

__all__ = [
    # log
    "configure_logging",
    "get_logger",
    "logging_configured",
    "reset_logging",
    "JsonLineFormatter",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsState",
    "counter",
    "delta_state",
    "gauge",
    "histogram",
    "get_registry",
    "metrics_snapshot",
    "metrics_reset",
    # journal
    "EVENT_TYPES",
    "RunJournal",
    "RunRecord",
    "attach_journal",
    "detach_journal",
    "attached",
    "current_journal",
    "read_journal",
    "reconstruct_runs",
    "journal_summary_rows",
    "render_journal_report",
    # trace
    "Span",
    "TraceContext",
    "span",
    "trace_scope",
    "collect_spans",
    "current_trace_context",
    # trace tree
    "SpanNode",
    "Trace",
    "build_traces",
    "render_trace_tree",
    # export
    "to_prometheus",
    "to_json",
    "parse_prometheus_text",
    "registry_from_journal",
    "render_export",
    # monitor
    "JournalTailer",
    "MonitorState",
    "render_dashboard",
    "run_monitor",
]
