"""Process-wide metrics registry: counters, gauges, and histograms.

The simulation stack increments these from its hot paths (simulations run,
nodes activated, seed collisions resolved, frontier sizes, per-profile wall
time).  The design goals are:

* **cheap, thread-safe increments** — every instrument shares its
  registry's lock (one uncontended lock acquire per update; no string
  formatting, no I/O), so concurrent jobs on the thread backend can never
  drop increments;
* **stable handles** — modules cache ``counter("cascade.simulations")`` at
  import time; :meth:`MetricsRegistry.reset` zeroes instruments *in place*
  so cached handles stay live across resets;
* **one snapshot call** — :func:`snapshot` returns a plain nested dict
  ready for JSON, tables, or assertions in tests;
* **mergeable state** — :meth:`MetricsRegistry.state`,
  :func:`delta_state`, and :meth:`MetricsRegistry.merge_delta` let the
  execution engine harvest the metric activity of a worker process and
  fold it into the parent registry, making snapshots backend-invariant
  (see ``docs/observability.md``).

Instrument names are dotted paths (``layer.subject[.detail]``), e.g.
``cascade.simulations``, ``payoff.profile_seconds``,
``algorithms.ddic.select_seconds``.
"""

from __future__ import annotations

import math
import threading
from collections.abc import Iterator, Mapping
from typing import Any

#: Raw-state type: what ``MetricsRegistry.state`` returns and what
#: ``delta_state`` / ``merge_delta`` consume.  Plain nested dicts of floats
#: so states pickle cheaply across the process-backend boundary.
MetricsState = dict[str, dict[str, Any]]


class Counter:
    """Monotonically increasing count (resettable to zero)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.RLock | None = None):
        self.name = name
        self.value: int | float = 0
        self._lock = lock if lock is not None else threading.RLock()

    def inc(self, amount: int | float = 1) -> None:
        with self._lock:
            self.value += amount

    def reset(self) -> None:
        with self._lock:
            self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """Last-written value (e.g. current graph size, active journal).

    ``writes`` counts :meth:`set` calls so a state diff can tell "written
    during the window" apart from "still holding the same value" — the
    last-write-wins merge only transfers gauges the worker actually set.
    """

    __slots__ = ("name", "value", "writes", "_lock")

    def __init__(self, name: str, lock: threading.RLock | None = None):
        self.name = name
        self.value = 0.0
        self.writes = 0
        self._lock = lock if lock is not None else threading.RLock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)
            self.writes += 1

    def reset(self) -> None:
        with self._lock:
            self.value = 0.0
            self.writes = 0

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value})"


class Histogram:
    """Streaming aggregate of observed values (count/mean/std/min/max).

    Keeps O(1) state — count, running mean, sum of squared deviations
    (Welford's online algorithm), extrema — rather than samples, so
    observing from a loop that runs thousands of times per second is safe.
    Welford's recurrence avoids the catastrophic cancellation of the naive
    ``E[x²] − mean²`` estimator for large-offset values (e.g. epoch
    timestamps), and the (count, mean, M2) triple merges exactly across
    registries via Chan's parallel combination.
    """

    __slots__ = ("name", "count", "_mean", "_m2", "min", "max", "_lock")

    def __init__(self, name: str, lock: threading.RLock | None = None):
        self.name = name
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._lock = lock if lock is not None else threading.RLock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            delta = value - self._mean
            self._mean += delta / self.count
            self._m2 += delta * (value - self._mean)
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def total(self) -> float:
        return self._mean * self.count

    @property
    def std(self) -> float:
        if self.count < 2:
            return 0.0
        return math.sqrt(max(0.0, self._m2 / self.count))

    def reset(self) -> None:
        with self._lock:
            self.count = 0
            self._mean = 0.0
            self._m2 = 0.0
            self.min = math.inf
            self.max = -math.inf

    def state(self) -> dict[str, float]:
        """Raw (count, mean, M2, min, max) tuple as a picklable dict."""
        with self._lock:
            return {
                "count": self.count,
                "mean": self._mean,
                "m2": self._m2,
                "min": self.min,
                "max": self.max,
            }

    def merge_state(self, other: Mapping[str, float]) -> None:
        """Fold another histogram's raw state in (Chan's parallel merge)."""
        n_b = int(other.get("count", 0))
        if n_b <= 0:
            return
        mean_b = float(other.get("mean", 0.0))
        m2_b = float(other.get("m2", 0.0))
        with self._lock:
            n_a = self.count
            n = n_a + n_b
            delta = mean_b - self._mean
            self._mean += delta * n_b / n
            self._m2 += m2_b + delta * delta * n_a * n_b / n
            self.count = n
            self.min = min(self.min, float(other.get("min", math.inf)))
            self.max = max(self.max, float(other.get("max", -math.inf)))

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "std": self.std,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count}, mean={self.mean:.4g})"


class MetricsRegistry:
    """Named instruments with get-or-create semantics.

    One re-entrant lock per registry guards instrument creation *and* every
    update on the instruments it hands out, so thread-backend jobs racing
    on ``Counter.inc`` can never drop increments.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        try:
            return self._counters[name]
        except KeyError:
            with self._lock:
                return self._counters.setdefault(name, Counter(name, self._lock))

    def gauge(self, name: str) -> Gauge:
        try:
            return self._gauges[name]
        except KeyError:
            with self._lock:
                return self._gauges.setdefault(name, Gauge(name, self._lock))

    def histogram(self, name: str) -> Histogram:
        try:
            return self._histograms[name]
        except KeyError:
            with self._lock:
                return self._histograms.setdefault(
                    name, Histogram(name, self._lock)
                )

    def snapshot(self) -> dict[str, dict[str, object]]:
        """Plain-dict view of every instrument (JSON/table ready)."""
        with self._lock:
            return {
                "counters": {n: c.value for n, c in sorted(self._counters.items())},
                "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
                "histograms": {
                    n: h.as_dict() for n, h in sorted(self._histograms.items())
                },
            }

    # ------------------------------------------------------------------ #
    # cross-process harvest: state / delta / merge
    # ------------------------------------------------------------------ #

    def state(self) -> MetricsState:
        """Raw mergeable state of every instrument (picklable).

        Unlike :meth:`snapshot` (a human/JSON view), the state keeps the
        internal accumulators (Welford M2, gauge write counts) that
        :func:`delta_state` and :meth:`merge_delta` need for exact
        cross-process accounting.
        """
        with self._lock:
            return {
                "counters": {n: c.value for n, c in self._counters.items()},
                "gauges": {
                    n: {"value": g.value, "writes": g.writes}
                    for n, g in self._gauges.items()
                },
                "histograms": {
                    n: h.state() for n, h in self._histograms.items()
                },
            }

    def merge_delta(self, delta: MetricsState) -> None:
        """Fold a :func:`delta_state` result into this registry.

        Counters add, gauges take the delta's value (last write wins),
        histograms merge their (count, mean, M2, min, max) state exactly.
        """
        for name, amount in delta.get("counters", {}).items():
            self.counter(name).inc(amount)
        for name, payload in delta.get("gauges", {}).items():
            self.gauge(name).set(float(payload["value"]))
        for name, payload in delta.get("histograms", {}).items():
            self.histogram(name).merge_state(payload)

    def reset(self) -> None:
        """Zero every instrument **in place** (cached handles stay valid)."""
        with self._lock:
            for instrument in self._iter_instruments():
                instrument.reset()

    def _iter_instruments(self) -> Iterator[Counter | Gauge | Histogram]:
        yield from self._counters.values()
        yield from self._gauges.values()
        yield from self._histograms.values()

    def rows(self) -> list[dict[str, object]]:
        """Counter/histogram rows for :func:`repro.utils.tables.format_table`."""
        out: list[dict[str, object]] = []
        for name, ctr in sorted(self._counters.items()):
            out.append({"metric": name, "kind": "counter", "value": ctr.value})
        for name, gauge in sorted(self._gauges.items()):
            out.append({"metric": name, "kind": "gauge", "value": gauge.value})
        for name, hist in sorted(self._histograms.items()):
            out.append(
                {
                    "metric": name,
                    "kind": "histogram",
                    "value": hist.count,
                    "mean": hist.mean,
                    "min": hist.min if hist.count else 0.0,
                    "max": hist.max if hist.count else 0.0,
                }
            )
        return out


def delta_state(before: MetricsState, after: MetricsState) -> MetricsState:
    """The metric activity between two :meth:`MetricsRegistry.state` calls.

    Returns a sparse state containing only what changed: counter
    *increments*, gauges whose write count moved (carrying their final
    value), and per-histogram (count, mean, M2, min, max) deltas obtained
    by inverting Chan's combination formula.  The result feeds
    :meth:`MetricsRegistry.merge_delta` in another process.

    The histogram min/max fields carry the *after* extrema: a window-exact
    minimum is not recoverable from aggregates, but re-merging a worker's
    lifetime extremum is idempotent (``min`` of mins), so parent-side
    extrema still converge to the true values.
    """
    delta: MetricsState = {"counters": {}, "gauges": {}, "histograms": {}}
    before_counters = before.get("counters", {})
    for name, value in after.get("counters", {}).items():
        moved = value - before_counters.get(name, 0)
        if moved:
            delta["counters"][name] = moved
    before_gauges = before.get("gauges", {})
    for name, payload in after.get("gauges", {}).items():
        prior = before_gauges.get(name)
        if prior is None or payload["writes"] != prior["writes"]:
            delta["gauges"][name] = {"value": payload["value"]}
    before_hists = before.get("histograms", {})
    for name, payload in after.get("histograms", {}).items():
        prior = before_hists.get(
            name, {"count": 0, "mean": 0.0, "m2": 0.0}
        )
        n_a = int(prior["count"])
        n_ab = int(payload["count"])
        n_b = n_ab - n_a
        if n_b <= 0:
            continue
        mean_a = float(prior["mean"])
        mean_ab = float(payload["mean"])
        # Invert Chan's merge: recover the window's (mean, M2) from the
        # combined and the prior aggregates.
        mean_b = (n_ab * mean_ab - n_a * mean_a) / n_b
        m2_b = (
            float(payload["m2"])
            - float(prior["m2"])
            - (mean_b - mean_a) ** 2 * n_a * n_b / n_ab
        )
        delta["histograms"][name] = {
            "count": n_b,
            "mean": mean_b,
            "m2": max(0.0, m2_b),
            "min": float(payload["min"]),
            "max": float(payload["max"]),
        }
    return delta


#: The process-wide default registry used by the simulation stack.
_DEFAULT = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _DEFAULT


def counter(name: str) -> Counter:
    """Get-or-create a counter in the default registry."""
    return _DEFAULT.counter(name)


def gauge(name: str) -> Gauge:
    """Get-or-create a gauge in the default registry."""
    return _DEFAULT.gauge(name)


def histogram(name: str) -> Histogram:
    """Get-or-create a histogram in the default registry."""
    return _DEFAULT.histogram(name)


def snapshot() -> dict[str, dict[str, object]]:
    """Snapshot of the default registry."""
    return _DEFAULT.snapshot()


def reset() -> None:
    """Zero every instrument in the default registry."""
    _DEFAULT.reset()
