"""Process-wide metrics registry: counters, gauges, and histograms.

The simulation stack increments these from its hot paths (simulations run,
nodes activated, seed collisions resolved, frontier sizes, per-profile wall
time).  The design goals are:

* **negligible overhead when nobody is looking** — an increment is a couple
  of attribute updates on a plain Python object; no locks on the hot path,
  no string formatting, no I/O;
* **stable handles** — modules cache ``counter("cascade.simulations")`` at
  import time; :meth:`MetricsRegistry.reset` zeroes instruments *in place*
  so cached handles stay live across resets;
* **one snapshot call** — :func:`snapshot` returns a plain nested dict
  ready for JSON, tables, or assertions in tests.

Instrument names are dotted paths (``layer.subject[.detail]``), e.g.
``cascade.simulations``, ``payoff.profile_seconds``,
``algorithms.ddic.select_seconds``.
"""

from __future__ import annotations

import math
import threading
from collections.abc import Iterator


class Counter:
    """Monotonically increasing count (resettable to zero)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """Last-written value (e.g. current graph size, active journal)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def reset(self) -> None:
        self.value = 0.0

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value})"


class Histogram:
    """Streaming aggregate of observed values (count/mean/std/min/max).

    Keeps O(1) state — count, total, sum of squares, extrema — rather than
    samples, so observing from a loop that runs thousands of times per
    second is safe.
    """

    __slots__ = ("name", "count", "total", "sum_squares", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.sum_squares = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.sum_squares += value * value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def std(self) -> float:
        if self.count < 2:
            return 0.0
        variance = self.sum_squares / self.count - self.mean**2
        return math.sqrt(max(0.0, variance))

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.sum_squares = 0.0
        self.min = math.inf
        self.max = -math.inf

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "std": self.std,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count}, mean={self.mean:.4g})"


class MetricsRegistry:
    """Named instruments with get-or-create semantics.

    Creation takes a lock (it happens once per instrument); increments on
    the returned objects are lock-free.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        try:
            return self._counters[name]
        except KeyError:
            with self._lock:
                return self._counters.setdefault(name, Counter(name))

    def gauge(self, name: str) -> Gauge:
        try:
            return self._gauges[name]
        except KeyError:
            with self._lock:
                return self._gauges.setdefault(name, Gauge(name))

    def histogram(self, name: str) -> Histogram:
        try:
            return self._histograms[name]
        except KeyError:
            with self._lock:
                return self._histograms.setdefault(name, Histogram(name))

    def snapshot(self) -> dict[str, dict[str, object]]:
        """Plain-dict view of every instrument (JSON/table ready)."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.as_dict() for n, h in sorted(self._histograms.items())
            },
        }

    def reset(self) -> None:
        """Zero every instrument **in place** (cached handles stay valid)."""
        with self._lock:
            for instrument in self._iter_instruments():
                instrument.reset()

    def _iter_instruments(self) -> Iterator[Counter | Gauge | Histogram]:
        yield from self._counters.values()
        yield from self._gauges.values()
        yield from self._histograms.values()

    def rows(self) -> list[dict[str, object]]:
        """Counter/histogram rows for :func:`repro.utils.tables.format_table`."""
        out: list[dict[str, object]] = []
        for name, ctr in sorted(self._counters.items()):
            out.append({"metric": name, "kind": "counter", "value": ctr.value})
        for name, gauge in sorted(self._gauges.items()):
            out.append({"metric": name, "kind": "gauge", "value": gauge.value})
        for name, hist in sorted(self._histograms.items()):
            out.append(
                {
                    "metric": name,
                    "kind": "histogram",
                    "value": hist.count,
                    "mean": hist.mean,
                    "min": hist.min if hist.count else 0.0,
                    "max": hist.max if hist.count else 0.0,
                }
            )
        return out


#: The process-wide default registry used by the simulation stack.
_DEFAULT = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _DEFAULT


def counter(name: str) -> Counter:
    """Get-or-create a counter in the default registry."""
    return _DEFAULT.counter(name)


def gauge(name: str) -> Gauge:
    """Get-or-create a gauge in the default registry."""
    return _DEFAULT.gauge(name)


def histogram(name: str) -> Histogram:
    """Get-or-create a histogram in the default registry."""
    return _DEFAULT.histogram(name)


def snapshot() -> dict[str, dict[str, object]]:
    """Snapshot of the default registry."""
    return _DEFAULT.snapshot()


def reset() -> None:
    """Zero every instrument in the default registry."""
    _DEFAULT.reset()
