"""Hierarchical trace spans: causally-linked timed blocks across processes.

A span is the glue between the observability sinks: it debug-logs
entry/exit, observes its duration into a ``span.<name>.seconds`` histogram,
and — when asked — appends a ``span`` event to the active run journal::

    from repro.obs import span

    with span("payoff.table", profiles=9):
        ...

Every span carries **identity**: a ``trace_id`` shared by all spans of one
causal tree, its own ``span_id``, and the ``parent_id`` of the span that
was open when it started.  The current span is tracked on a
:mod:`contextvars` stack, so nesting works across ``async`` boundaries and
the execution engine can serialize the ambient context into each
:data:`~repro.exec.backends.JobPayload` — spans opened inside thread or
process workers parent correctly under the submitting batch span (see
:func:`trace_scope`).

``repro obs trace <journal.jsonl>`` renders the journaled spans back into a
per-run tree with self-time vs child-time (:mod:`repro.obs.tracetree`).

Worker processes have no journal attached; :func:`collect_spans` redirects
journal-worthy span records into an in-memory list instead, which the
executor ships back with the job result and replays into the parent's
journal.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from collections.abc import Iterator, Mapping
from typing import Any

from repro.obs import metrics as _metrics
from repro.obs.journal import current_journal
from repro.obs.log import get_logger

_LOG = get_logger("obs.trace")


def new_id() -> str:
    """A fresh 64-bit hex identifier (not drawn from the seeded RNG streams)."""
    return os.urandom(8).hex()


@dataclass(frozen=True)
class TraceContext:
    """The (trace, span) coordinates an in-flight span hands to its children.

    Serializable to a plain dict so it can ride a pickled job payload into
    a worker process and re-anchor the trace there.
    """

    trace_id: str
    span_id: str

    def as_dict(self) -> dict[str, str]:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_dict(cls, payload: Mapping[str, str] | None) -> "TraceContext | None":
        if not payload:
            return None
        return cls(
            trace_id=str(payload["trace_id"]), span_id=str(payload["span_id"])
        )


#: Stack of open spans' contexts for the current execution context.
_SPAN_STACK: ContextVar[tuple[TraceContext, ...]] = ContextVar(
    "repro_obs_span_stack", default=()
)

#: When set, journal-worthy span records append here instead of the journal.
_COLLECTOR: ContextVar[list[dict[str, Any]] | None] = ContextVar(
    "repro_obs_span_collector", default=None
)


def current_trace_context() -> TraceContext | None:
    """The innermost open span's (trace_id, span_id), or ``None``."""
    stack = _SPAN_STACK.get()
    return stack[-1] if stack else None


@contextmanager
def trace_scope(context: TraceContext | Mapping[str, str] | None) -> Iterator[None]:
    """Anchor spans opened in this block under a foreign parent context.

    Used by the execution engine's worker entry point: the submitting
    process serializes :func:`current_trace_context` into the job payload,
    and the worker re-activates it here so the job's spans parent under the
    batch span even across a process boundary.  ``None`` is a no-op.
    """
    if context is not None and not isinstance(context, TraceContext):
        context = TraceContext.from_dict(context)
    if context is None:
        yield
        return
    token = _SPAN_STACK.set(_SPAN_STACK.get() + (context,))
    try:
        yield
    finally:
        _SPAN_STACK.reset(token)


@contextmanager
def collect_spans(into: list[dict[str, Any]] | None = None) -> Iterator[list[dict[str, Any]]]:
    """Redirect journal-worthy span records into a list for this block.

    Yields the collecting list.  While active, ``span(..., journal=True)``
    appends its event record here instead of emitting to the attached
    journal — the execution engine runs every job under a collector and
    replays the records into the parent-side journal, so journals look the
    same no matter which backend (or process) ran the span.
    """
    records: list[dict[str, Any]] = [] if into is None else into
    token = _COLLECTOR.set(records)
    try:
        yield records
    finally:
        _COLLECTOR.reset(token)


class Span:
    """Handle yielded by :func:`span`; ``elapsed`` is set on exit."""

    __slots__ = (
        "name",
        "fields",
        "elapsed",
        "trace_id",
        "span_id",
        "parent_id",
        "start_ts",
    )

    def __init__(
        self,
        name: str,
        fields: dict[str, Any],
        trace_id: str,
        span_id: str,
        parent_id: str | None,
    ):
        self.name = name
        self.fields = fields
        self.elapsed = 0.0
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_ts = 0.0

    @property
    def context(self) -> TraceContext:
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id)

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, span_id={self.span_id!r}, "
            f"elapsed={self.elapsed:.4f}s)"
        )


@contextmanager
def span(
    name: str, journal: bool = False, **fields: Any
) -> Iterator[Span]:
    """Time a block under *name*, parented under the enclosing span.

    Parameters
    ----------
    name:
        Dotted span name; the duration lands in the
        ``span.<name>.seconds`` histogram.
    journal:
        Also record a ``span`` event — to the active span collector if one
        is installed (worker side), else to the attached run journal.  The
        event carries ``trace_id``/``span_id``/``parent_id``/``start_ts``
        so ``repro obs trace`` can rebuild the tree.
    fields:
        Extra context logged at debug level and copied into the journal
        event.
    """
    parent = current_trace_context()
    handle = Span(
        name,
        fields,
        trace_id=parent.trace_id if parent else new_id(),
        span_id=new_id(),
        parent_id=parent.span_id if parent else None,
    )
    token = _SPAN_STACK.set(_SPAN_STACK.get() + (handle.context,))
    _LOG.debug("span %s started %s", name, fields or "")
    # Wall-clock start is a journaled product field (durations use the
    # perf_counter below); same decision as RunJournal.emit's "ts".
    handle.start_ts = time.time()  # reprolint: disable=RP011
    started = time.perf_counter()
    try:
        yield handle
    finally:
        handle.elapsed = time.perf_counter() - started
        _SPAN_STACK.reset(token)
        _metrics.histogram(f"span.{name}.seconds").observe(handle.elapsed)
        _LOG.debug("span %s finished in %.4fs", name, handle.elapsed)
        if journal:
            record: dict[str, Any] = {
                "name": name,
                "duration_seconds": handle.elapsed,
                "trace_id": handle.trace_id,
                "span_id": handle.span_id,
                "parent_id": handle.parent_id,
                "start_ts": handle.start_ts,
                **fields,
            }
            collector = _COLLECTOR.get()
            if collector is not None:
                collector.append(record)
            else:
                sink = current_journal()
                if sink is not None:
                    sink.emit("span", **record)
