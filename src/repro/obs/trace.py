"""Trace spans: timed blocks that feed the log, metrics, and journal layers.

A span is the cheap glue between the three sinks: it debug-logs entry/exit,
observes its duration into a ``span.<name>.seconds`` histogram, and — when
asked — appends a ``span`` event to the active run journal::

    from repro.obs import span

    with span("payoff.table", profiles=9):
        ...

Nesting is fine; spans are independent of each other.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from collections.abc import Iterator
from typing import Any

from repro.obs import metrics as _metrics
from repro.obs.journal import current_journal
from repro.obs.log import get_logger

_LOG = get_logger("obs.trace")


class Span:
    """Handle yielded by :func:`span`; ``elapsed`` is set on exit."""

    __slots__ = ("name", "fields", "elapsed")

    def __init__(self, name: str, fields: dict[str, Any]):
        self.name = name
        self.fields = fields
        self.elapsed = 0.0

    def __repr__(self) -> str:
        return f"Span({self.name!r}, elapsed={self.elapsed:.4f}s)"


@contextmanager
def span(
    name: str, journal: bool = False, **fields: Any
) -> Iterator[Span]:
    """Time a block under *name*.

    Parameters
    ----------
    name:
        Dotted span name; the duration lands in the
        ``span.<name>.seconds`` histogram.
    journal:
        Also append a ``span`` event to the active run journal (if one is
        attached).
    fields:
        Extra context logged at debug level and copied into the journal
        event.
    """
    handle = Span(name, fields)
    _LOG.debug("span %s started %s", name, fields or "")
    started = time.perf_counter()
    try:
        yield handle
    finally:
        handle.elapsed = time.perf_counter() - started
        _metrics.histogram(f"span.{name}.seconds").observe(handle.elapsed)
        _LOG.debug("span %s finished in %.4fs", name, handle.elapsed)
        if journal:
            sink = current_journal()
            if sink is not None:
                sink.emit(
                    "span",
                    name=name,
                    duration_seconds=handle.elapsed,
                    **fields,
                )
