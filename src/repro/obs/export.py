"""Metric export: Prometheus text-format exposition and JSON snapshots.

Turns a :func:`repro.obs.metrics.snapshot` into the two formats external
consumers want:

* :func:`to_prometheus` — the Prometheus text exposition format (0.0.4):
  counters as ``<name>_total``, gauges as ``<name>``, histograms as
  summaries (``_count``/``_sum``) plus ``_min``/``_max``/``_mean`` gauges.
  Dotted instrument names sanitize to the Prometheus charset.
* :func:`to_json` — the snapshot verbatim plus an ``exported_ts`` stamp.

Both back ``repro obs export --format prom|json``.  Because a fresh CLI
process has an empty registry, the command also accepts ``--journal`` and
replays a recorded run journal into a synthetic registry first
(:func:`registry_from_journal`) — span durations, batch/job counts, and
per-event-type counters — so a finished run can be scraped after the fact.

:func:`parse_prometheus_text` is a strict parser for the subset we emit;
tests and the CI obs job use it to validate exposition output.
"""

from __future__ import annotations

import json
import re
import time
from collections.abc import Mapping, Sequence
from typing import Any

from repro.errors import JournalError
from repro.obs.metrics import MetricsRegistry

#: Prometheus metric-name charset ([a-zA-Z_:][a-zA-Z0-9_:]*).
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)\s+(?P<value>\S+)$"
)
_TYPE_RE = re.compile(
    r"^# TYPE (?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*) "
    r"(?P<kind>counter|gauge|summary|histogram|untyped)$"
)

_VALID_TYPES = frozenset({"counter", "gauge", "summary", "histogram", "untyped"})


def sanitize_metric_name(name: str, prefix: str = "repro_") -> str:
    """Map a dotted instrument name onto the Prometheus charset."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    full = f"{prefix}{cleaned}"
    if not _NAME_RE.match(full):
        full = f"{prefix}_{re.sub(r'[^a-zA-Z0-9_]', '_', name)}"
    return full


def _fmt(value: float) -> str:
    value = float(value)
    if value != value:  # NaN
        return "NaN"
    return repr(value)


def to_prometheus(
    snapshot: Mapping[str, Mapping[str, Any]], prefix: str = "repro_"
) -> str:
    """Render a metrics snapshot in the Prometheus text exposition format."""
    lines: list[str] = []
    for name, value in snapshot.get("counters", {}).items():
        metric = sanitize_metric_name(name, prefix) + "_total"
        lines.append(f"# HELP {metric} repro counter {name}")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_fmt(value)}")
    for name, value in snapshot.get("gauges", {}).items():
        metric = sanitize_metric_name(name, prefix)
        lines.append(f"# HELP {metric} repro gauge {name}")
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt(value)}")
    for name, stats in snapshot.get("histograms", {}).items():
        metric = sanitize_metric_name(name, prefix)
        lines.append(f"# HELP {metric} repro histogram {name}")
        lines.append(f"# TYPE {metric} summary")
        lines.append(f"{metric}_count {_fmt(stats['count'])}")
        lines.append(f"{metric}_sum {_fmt(stats['total'])}")
        for suffix in ("min", "max", "mean"):
            aux = f"{metric}_{suffix}"
            lines.append(f"# TYPE {aux} gauge")
            lines.append(f"{aux} {_fmt(stats[suffix])}")
    return "\n".join(lines) + "\n"


def to_json(snapshot: Mapping[str, Mapping[str, Any]]) -> str:
    """Render a metrics snapshot as a JSON document with an export stamp."""
    payload = {"exported_ts": time.time(), **{k: dict(v) for k, v in snapshot.items()}}
    return json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n"


def parse_prometheus_text(text: str) -> dict[str, float]:
    """Parse (and validate) the exposition subset :func:`to_prometheus` emits.

    Returns ``{metric_name: value}``.  Raises :class:`ValueError` on any
    malformed line, unknown TYPE, or sample whose value does not parse as a
    float — the CI obs job runs exported output through this.
    """
    samples: dict[str, float] = {}
    typed: dict[str, str] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            match = _TYPE_RE.match(line)
            if match is None:
                raise ValueError(f"line {lineno}: malformed TYPE line: {raw!r}")
            typed[match.group("name")] = match.group("kind")
            continue
        if line.startswith("#"):
            raise ValueError(f"line {lineno}: unknown comment form: {raw!r}")
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample: {raw!r}")
        name = match.group("name")
        try:
            value = float(match.group("value"))
        except ValueError as exc:
            raise ValueError(
                f"line {lineno}: non-numeric sample value: {raw!r}"
            ) from exc
        if name in samples:
            raise ValueError(f"line {lineno}: duplicate sample for {name!r}")
        samples[name] = value
    for name, kind in typed.items():
        if kind not in _VALID_TYPES:
            raise ValueError(f"unknown metric type {kind!r} for {name!r}")
    return samples


def registry_from_journal(
    events: Sequence[Mapping[str, Any]],
) -> MetricsRegistry:
    """Rebuild a synthetic metrics registry from a recorded run journal.

    The journal does not carry raw metric state, but its typed events are
    enough to reconstruct the scrape-worthy aggregates: per-event-type
    counters, ``span.<name>.seconds`` histograms from ``span`` events,
    batch/job totals and batch-duration histograms from ``batch_done``,
    profile timings from ``profile_done``, and cache hit/miss counters
    from ``cache`` events.
    """
    registry = MetricsRegistry()
    for event in events:
        kind = str(event.get("event", "?"))
        registry.counter(f"journal.events_{kind}").inc()
        if kind == "span":
            name = str(event.get("name", "?"))
            registry.histogram(f"span.{name}.seconds").observe(
                float(event.get("duration_seconds", 0.0))
            )
        elif kind == "batch_done":
            registry.counter("exec.batches").inc()
            registry.counter("exec.jobs_completed").inc(
                int(event.get("jobs", 0))
            )
            registry.histogram("exec.batch_seconds").observe(
                float(event.get("duration_seconds", 0.0))
            )
        elif kind == "profile_done":
            registry.counter("payoff.profiles_estimated").inc()
            registry.histogram("payoff.profile_seconds").observe(
                float(event.get("duration_seconds", 0.0))
            )
        elif kind == "cache":
            op = str(event.get("op", "?"))
            registry.counter(f"cache.journal_{op}").inc()
    return registry


def render_export(
    snapshot: Mapping[str, Mapping[str, Any]], fmt: str
) -> str:
    """Dispatch on the CLI ``--format`` value (``prom`` or ``json``)."""
    if fmt == "prom":
        return to_prometheus(snapshot)
    if fmt == "json":
        return to_json(snapshot)
    raise JournalError(f"unknown export format {fmt!r}; use 'prom' or 'json'")
