"""Span-tree reconstruction and rendering for ``repro obs trace``.

Takes the flat ``span`` events of a run journal (each carrying
``trace_id``/``span_id``/``parent_id``/``start_ts``/``duration_seconds``
since the hierarchical-tracing refactor) and rebuilds the causal tree, then
renders a per-trace waterfall with **total** time, **self** time (total
minus direct children), and each span's share of its trace.

Legacy journals whose span events predate the id fields degrade gracefully:
id-less spans render as independent single-node traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence
from typing import Any

#: Children rendered per node before eliding the rest into a summary line.
DEFAULT_MAX_CHILDREN = 20


@dataclass
class SpanNode:
    """One reconstructed span plus its children."""

    record: dict[str, Any]
    children: list["SpanNode"] = field(default_factory=list)
    orphaned: bool = False

    @property
    def name(self) -> str:
        return str(self.record.get("name", "?"))

    @property
    def span_id(self) -> str | None:
        value = self.record.get("span_id")
        return str(value) if value is not None else None

    @property
    def start_ts(self) -> float:
        return float(self.record.get("start_ts", self.record.get("ts", 0.0)))

    @property
    def duration(self) -> float:
        return float(self.record.get("duration_seconds", 0.0))

    @property
    def self_time(self) -> float:
        """Duration not accounted for by direct children (clamped at 0)."""
        return max(0.0, self.duration - sum(c.duration for c in self.children))


@dataclass
class Trace:
    """All spans sharing one ``trace_id``, as a forest of roots."""

    trace_id: str
    roots: list[SpanNode]

    @property
    def span_count(self) -> int:
        def count(node: SpanNode) -> int:
            return 1 + sum(count(child) for child in node.children)

        return sum(count(root) for root in self.roots)

    @property
    def duration(self) -> float:
        return sum(root.duration for root in self.roots)


def build_traces(events: Sequence[Mapping[str, Any]]) -> list[Trace]:
    """Group span *events* by trace id and link children to parents.

    Spans whose ``parent_id`` never appears in the stream (the parent span
    was not journaled, or the line was lost) are kept as extra roots and
    flagged ``orphaned``; spans without ids at all become single-node
    traces keyed ``"untraced"``.
    """
    spans = [dict(e) for e in events if e.get("event") == "span"]
    by_trace: dict[str, list[SpanNode]] = {}
    for record in spans:
        trace_id = str(record.get("trace_id") or "untraced")
        by_trace.setdefault(trace_id, []).append(SpanNode(record))
    traces: list[Trace] = []
    for trace_id, nodes in by_trace.items():
        by_id = {
            node.span_id: node for node in nodes if node.span_id is not None
        }
        roots: list[SpanNode] = []
        for node in nodes:
            parent_id = node.record.get("parent_id")
            parent = by_id.get(str(parent_id)) if parent_id else None
            if parent is not None and parent is not node:
                parent.children.append(node)
            else:
                node.orphaned = parent_id is not None
                roots.append(node)
        for node in nodes:
            node.children.sort(key=lambda n: n.start_ts)
        roots.sort(key=lambda n: n.start_ts)
        traces.append(Trace(trace_id=trace_id, roots=roots))
    traces.sort(key=lambda t: min((r.start_ts for r in t.roots), default=0.0))
    return traces


def _render_node(
    node: SpanNode,
    depth: int,
    trace_duration: float,
    lines: list[str],
    max_children: int,
) -> None:
    share = node.duration / trace_duration if trace_duration > 0 else 0.0
    marker = " (orphan)" if node.orphaned else ""
    label = f"{'  ' * depth}{node.name}{marker}"
    lines.append(
        f"{label:<48} {node.duration:>10.4f}s total "
        f"{node.self_time:>10.4f}s self {share:>6.1%}"
    )
    shown = node.children[:max_children]
    for child in shown:
        _render_node(child, depth + 1, trace_duration, lines, max_children)
    hidden = node.children[max_children:]
    if hidden:
        lines.append(
            f"{'  ' * (depth + 1)}... {len(hidden)} more child span(s), "
            f"{sum(c.duration for c in hidden):.4f}s"
        )


def render_trace_tree(
    events: Sequence[Mapping[str, Any]],
    max_children: int = DEFAULT_MAX_CHILDREN,
) -> str:
    """Human-readable span waterfall for every trace in *events*."""
    traces = build_traces(events)
    if not traces:
        return "(no span events in journal)"
    sections: list[str] = []
    for trace in traces:
        lines = [
            f"trace {trace.trace_id}  "
            f"({trace.span_count} span(s), {trace.duration:.4f}s)"
        ]
        for root in trace.roots:
            _render_node(root, 1, trace.duration, lines, max_children)
        sections.append("\n".join(lines))
    return "\n\n".join(sections)
