"""Structured logging for the :mod:`repro` package.

The library is silent by default: every module logs through a child of the
``repro`` logger, which carries only a :class:`logging.NullHandler` until
:func:`configure_logging` is called.  Applications (the CLI, the benchmark
harness, notebooks) opt in with::

    from repro.obs import configure_logging
    configure_logging("info")            # human-readable lines on stderr
    configure_logging("debug", json=True)  # one JSON object per line

``configure_logging`` is idempotent: repeated calls reconfigure the single
handler it owns instead of stacking duplicates, so test suites and REPL
sessions can call it freely.
"""

from __future__ import annotations

import json as _json
import logging
import sys
from typing import IO

#: Root of the library's logger hierarchy; every module logger is a child.
ROOT_LOGGER_NAME = "repro"

#: Attribute used to mark the handler owned by :func:`configure_logging`.
_HANDLER_TAG = "_repro_obs_handler"

#: ``logging`` record attributes that are *not* user-supplied extras.
_RESERVED_RECORD_FIELDS = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "taskName"}


class JsonLineFormatter(logging.Formatter):
    """Format each record as a single JSON object (JSONL-friendly).

    Standard fields: ``ts`` (ISO-8601), ``level``, ``logger``, ``message``.
    Anything passed via ``logger.info(..., extra={...})`` is merged in, so
    structured context survives into log processors.
    """

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, object] = {
            "ts": self.formatTime(record, "%Y-%m-%dT%H:%M:%S"),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key not in _RESERVED_RECORD_FIELDS and not key.startswith("_"):
                payload[key] = value
        if record.exc_info:
            payload["exception"] = self.formatException(record.exc_info)
        return _json.dumps(payload, default=str)


def get_logger(name: str | None = None) -> logging.Logger:
    """A logger under the ``repro`` hierarchy.

    ``get_logger("cascade.competitive")`` and
    ``get_logger("repro.cascade.competitive")`` return the same logger;
    ``get_logger()`` returns the library root.
    """
    if not name:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if name == ROOT_LOGGER_NAME or name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def _coerce_level(level: int | str) -> int:
    if isinstance(level, int):
        return level
    resolved = logging.getLevelName(str(level).upper())
    if not isinstance(resolved, int):
        raise ValueError(f"unknown log level {level!r}")
    return resolved


def _owned_handlers(root: logging.Logger) -> list[logging.Handler]:
    return [h for h in root.handlers if getattr(h, _HANDLER_TAG, False)]


def configure_logging(
    level: int | str = "INFO",
    json: bool = False,
    stream: IO[str] | None = None,
) -> logging.Logger:
    """Attach (or reconfigure) the library's log handler and set *level*.

    Parameters
    ----------
    level:
        Threshold as a :mod:`logging` constant or name (``"debug"``,
        ``"INFO"``, ...).
    json:
        Emit one JSON object per line instead of human-readable text.
    stream:
        Target stream; defaults to ``sys.stderr`` so tables printed on
        stdout stay machine-readable.

    Returns the root ``repro`` logger.  Calling this twice replaces the
    previous configuration rather than adding a second handler.
    """
    root = logging.getLogger(ROOT_LOGGER_NAME)
    for handler in _owned_handlers(root):
        root.removeHandler(handler)
        handler.close()

    handler = logging.StreamHandler(stream or sys.stderr)
    setattr(handler, _HANDLER_TAG, True)
    if json:
        handler.setFormatter(JsonLineFormatter())
    else:
        handler.setFormatter(
            logging.Formatter(
                "%(asctime)s %(levelname)-7s %(name)s: %(message)s",
                datefmt="%H:%M:%S",
            )
        )
    root.addHandler(handler)
    root.setLevel(_coerce_level(level))
    root.propagate = False
    return root


def logging_configured() -> bool:
    """True if :func:`configure_logging` has attached a handler."""
    return bool(_owned_handlers(logging.getLogger(ROOT_LOGGER_NAME)))


def reset_logging() -> None:
    """Detach the handler installed by :func:`configure_logging` (test helper)."""
    root = logging.getLogger(ROOT_LOGGER_NAME)
    for handler in _owned_handlers(root):
        root.removeHandler(handler)
        handler.close()
    root.setLevel(logging.NOTSET)
    root.propagate = True


# Silent-by-default: without configuration, records fall into a NullHandler
# instead of the lastResort stderr handler.
logging.getLogger(ROOT_LOGGER_NAME).addHandler(logging.NullHandler())
