"""JSONL run journal: typed events from the GetReal pipeline, plus a reader.

A :class:`RunJournal` appends one JSON object per line to a file as a run
progresses.  The event vocabulary mirrors Algorithm 1's phases:

=====================  ==========================================================
event                  emitted by / payload highlights
=====================  ==========================================================
``run_start``          :func:`repro.core.getreal.get_real` (or the CLI) —
                       graph size, strategy labels, ``r``/``k``/``rounds``
``profile_start``      :func:`repro.core.payoff.estimate_payoff_table`, first
                       time a profile is simulated
``profile_done``       same, once the profile's last seed draw finishes —
                       per-player ``mean``/``stderr``/``samples`` plus
                       ``duration_seconds``
``equilibrium_found``  :func:`repro.core.getreal.get_real` — ``kind``,
                       mixture probabilities, regret, NE-search seconds
``run_end``            pipeline exit — ``status`` (``ok``/``error``), duration
``span``               :func:`repro.obs.trace.span` with ``journal=True``
``cache``              :mod:`repro.cache` — ``namespace`` (``selection`` /
                       ``blocking``), ``op`` (``hit``/``clear``), ``entries``
=====================  ==========================================================

Every line also carries ``ts`` (epoch seconds), ``seq`` (per-journal
monotonic index) and ``run_id``.  The reader side —
:func:`read_journal`, :func:`reconstruct_runs`,
:func:`journal_summary_rows`, :func:`render_journal_report` — turns a
journal file back into per-profile timing/variance tables via
:mod:`repro.utils.tables`.

Estimation entry points look the journal up through a module-level stack
(:func:`attach_journal` / :func:`current_journal` / the :func:`attached`
context manager), so callers several layers up — the CLI, the benchmark
conftest — can observe a deep pipeline without threading a parameter
through every signature.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from threading import Lock
from collections.abc import Iterator, Mapping, Sequence
from typing import IO, Any

from repro.errors import JournalError
from repro.utils.tables import format_table

#: Known event types; unknown types are rejected at write time so typos in
#: instrumentation fail fast instead of corrupting downstream analysis.
EVENT_TYPES = (
    "run_start",
    "profile_start",
    "profile_done",
    "equilibrium_found",
    "run_end",
    "span",
    "note",
    "batch_start",
    "batch_done",
    "cache",
    "profile",
)


def _generate_run_id() -> str:
    return f"run-{time.strftime('%Y%m%d-%H%M%S')}-{os.getpid()}"


class RunJournal:
    """Append-only JSONL event sink for one observability session.

    >>> import tempfile, os
    >>> path = os.path.join(tempfile.mkdtemp(), "j.jsonl")
    >>> with RunJournal(path) as journal:
    ...     journal.emit("note", message="hello")
    >>> events = read_journal(path)
    >>> events[0]["event"], events[0]["message"]
    ('note', 'hello')
    """

    def __init__(self, path: str | Path, run_id: str | None = None) -> None:
        self.path = Path(path)
        self.run_id = run_id or _generate_run_id()
        self._handle: IO[str] | None = None
        self._seq = 0
        self._lock = Lock()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def _ensure_open(self) -> IO[str]:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        return self._handle

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # writing
    # ------------------------------------------------------------------ #

    def emit(self, event: str, **fields: Any) -> dict[str, Any]:
        """Append one typed event; returns the record written."""
        if event not in EVENT_TYPES:
            raise JournalError(
                f"unknown journal event {event!r}; known: {EVENT_TYPES}"
            )
        with self._lock:
            record: dict[str, Any] = {
                "event": event,
                # The timestamp IS the product here (journals record when
                # things happened); replay comparisons ignore the envelope.
                "ts": time.time(),  # reprolint: disable=RP011
                "seq": self._seq,
                "run_id": self.run_id,
            }
            record.update(fields)
            handle = self._ensure_open()
            handle.write(json.dumps(record, default=str) + "\n")
            handle.flush()
            self._seq += 1
        return record

    # Typed helpers keep call sites short and the schema greppable.

    def run_start(self, command: str, **params: Any) -> None:
        self.emit("run_start", command=command, **params)

    def profile_start(
        self, profile: Sequence[int], labels: Sequence[str]
    ) -> None:
        self.emit(
            "profile_start", profile=list(profile), labels=list(labels)
        )

    def profile_done(
        self,
        profile: Sequence[int],
        labels: Sequence[str],
        players: Sequence[Mapping[str, Any]],
        duration_seconds: float,
    ) -> None:
        self.emit(
            "profile_done",
            profile=list(profile),
            labels=list(labels),
            players=[dict(p) for p in players],
            duration_seconds=float(duration_seconds),
        )

    def batch_start(
        self,
        batch_id: int,
        jobs: int,
        backend: str,
        workers: int,
        kernel: str | None = None,
        payload_bytes: int | None = None,
    ) -> None:
        """A simulation batch was submitted to an execution backend.

        ``payload_bytes`` is the summed pickled size of the batch's job
        payloads; it is recorded only by backends that serialize jobs
        (process), so its absence means jobs were passed by reference.
        """
        self.emit(
            "batch_start",
            batch_id=int(batch_id),
            jobs=int(jobs),
            backend=backend,
            workers=int(workers),
            **({"kernel": kernel} if kernel is not None else {}),
            **(
                {"payload_bytes": int(payload_bytes)}
                if payload_bytes is not None
                else {}
            ),
        )

    def batch_done(
        self,
        batch_id: int,
        jobs: int,
        backend: str,
        workers: int,
        duration_seconds: float,
        kernel: str | None = None,
    ) -> None:
        """Every job of a simulation batch completed."""
        self.emit(
            "batch_done",
            batch_id=int(batch_id),
            jobs=int(jobs),
            backend=backend,
            workers=int(workers),
            duration_seconds=float(duration_seconds),
            **({"kernel": kernel} if kernel is not None else {}),
        )

    def equilibrium_found(
        self,
        kind: str,
        probabilities: Sequence[float],
        labels: Sequence[str],
        regret: float,
        solve_seconds: float,
    ) -> None:
        self.emit(
            "equilibrium_found",
            kind=kind,
            probabilities=[float(p) for p in probabilities],
            labels=list(labels),
            regret=float(regret),
            solve_seconds=float(solve_seconds),
        )

    def cache_event(self, namespace: str, op: str, entries: int) -> None:
        """A work-sharing cache event (``op`` is ``hit`` or ``clear``)."""
        self.emit("cache", namespace=namespace, op=op, entries=int(entries))

    def run_end(
        self,
        status: str = "ok",
        duration_seconds: float | None = None,
        error: str | None = None,
    ) -> None:
        fields: dict[str, Any] = {"status": status}
        if duration_seconds is not None:
            fields["duration_seconds"] = float(duration_seconds)
        if error is not None:
            fields["error"] = error
        self.emit("run_end", **fields)


# ---------------------------------------------------------------------- #
# active-journal stack
# ---------------------------------------------------------------------- #

_ACTIVE: list[RunJournal] = []


def attach_journal(journal: RunJournal) -> RunJournal:
    """Make *journal* the journal returned by :func:`current_journal`."""
    _ACTIVE.append(journal)
    return journal


def detach_journal(journal: RunJournal | None = None) -> None:
    """Pop the active journal (a specific one, or the top of the stack)."""
    if not _ACTIVE:
        return
    if journal is None:
        _ACTIVE.pop()
    elif journal in _ACTIVE:
        _ACTIVE.remove(journal)


def current_journal() -> RunJournal | None:
    """The innermost attached journal, or None."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def attached(journal: RunJournal) -> Iterator[RunJournal]:
    """Scope *journal* as the active journal for a ``with`` block."""
    attach_journal(journal)
    try:
        yield journal
    finally:
        detach_journal(journal)


# ---------------------------------------------------------------------- #
# reading / reconstruction
# ---------------------------------------------------------------------- #


def read_journal(path: str | Path, strict: bool = True) -> list[dict[str, Any]]:
    """Parse a JSONL journal file into a list of event dicts.

    With ``strict=False``, malformed lines — interleaved half-writes from a
    crashed process, or a truncated trailing line from a live writer — are
    skipped instead of raising, which is what journal-consuming tools
    (``repro obs trace``, the monitor, the exporter) want when pointed at a
    journal that is still being written.
    """
    path = Path(path)
    if not path.exists():
        raise JournalError(f"journal file not found: {path}")
    events: list[dict[str, Any]] = []
    with open(path, encoding="utf-8", errors="replace") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                if strict:
                    raise JournalError(
                        f"{path}:{lineno}: not valid JSON ({exc})"
                    ) from exc
                continue
            if not isinstance(record, dict) or "event" not in record:
                if strict:
                    raise JournalError(
                        f"{path}:{lineno}: journal records need an 'event' field"
                    )
                continue
            events.append(record)
    return events


@dataclass
class RunRecord:
    """One reconstructed pipeline run (a ``run_start`` .. ``run_end`` span)."""

    index: int
    start: dict[str, Any] | None = None
    end: dict[str, Any] | None = None
    profiles: list[dict[str, Any]] = field(default_factory=list)
    equilibrium: dict[str, Any] | None = None

    @property
    def command(self) -> str:
        return str(self.start.get("command", "?")) if self.start else "?"

    @property
    def status(self) -> str:
        if self.end is None:
            return "incomplete"
        return str(self.end.get("status", "?"))

    @property
    def duration_seconds(self) -> float | None:
        if self.end and "duration_seconds" in self.end:
            return float(self.end["duration_seconds"])
        if self.start and self.end:
            return float(self.end["ts"]) - float(self.start["ts"])
        return None


def reconstruct_runs(events: Sequence[Mapping[str, Any]]) -> list[RunRecord]:
    """Group a flat event stream into :class:`RunRecord` objects.

    Events arriving before any ``run_start`` (e.g. a bare
    ``estimate_payoff_table`` call with a journal attached but no
    surrounding ``get_real``) are collected into a synthetic run 0.

    Runs are matched by ``run_id``, so journals with **interleaved** runs —
    several processes appending to one file — reconstruct correctly:
    each event routes to the open run carrying its ``run_id``, falling back
    to the most recently opened run for id-less events.  Span events (which
    belong to the trace tree, not the run ledger) and unknown event types
    are tolerated and skipped.
    """
    runs: list[RunRecord] = []
    open_runs: dict[str, RunRecord] = {}
    last_opened: RunRecord | None = None

    def route(event: Mapping[str, Any]) -> RunRecord:
        nonlocal last_opened
        run_id = event.get("run_id")
        if run_id is not None and str(run_id) in open_runs:
            return open_runs[str(run_id)]
        if last_opened is not None and last_opened.end is None:
            return last_opened
        record = RunRecord(index=len(runs))
        runs.append(record)
        if run_id is not None:
            open_runs[str(run_id)] = record
        last_opened = record
        return record

    for event in events:
        kind = event.get("event")
        if kind == "run_start":
            record = RunRecord(index=len(runs), start=dict(event))
            runs.append(record)
            run_id = event.get("run_id")
            if run_id is not None:
                open_runs[str(run_id)] = record
            last_opened = record
            continue
        if kind == "profile_done":
            route(event).profiles.append(dict(event))
        elif kind == "equilibrium_found":
            route(event).equilibrium = dict(event)
        elif kind == "run_end":
            record = route(event)
            record.end = dict(event)
            run_id = event.get("run_id")
            if run_id is not None:
                open_runs.pop(str(run_id), None)
    return runs


def journal_summary_rows(
    events: Sequence[Mapping[str, Any]],
) -> list[dict[str, object]]:
    """Per-profile timing/variance rows across every run in *events*."""
    rows: list[dict[str, object]] = []
    for run in reconstruct_runs(events):
        for done in run.profiles:
            labels = done.get("labels") or [
                str(a) for a in done.get("profile", [])
            ]
            duration = float(done.get("duration_seconds", 0.0))
            for player in done.get("players", []):
                rows.append(
                    {
                        "run": run.index,
                        "profile": "-".join(labels),
                        "group": f"p{int(player.get('group', 0)) + 1}",
                        "mean": float(player.get("mean", float("nan"))),
                        "stderr": float(player.get("stderr", float("nan"))),
                        "samples": int(player.get("samples", 0)),
                        "seconds": duration,
                    }
                )
    return rows


def render_journal_report(events: Sequence[Mapping[str, Any]]) -> str:
    """Human-readable report for ``python -m repro journal <file.jsonl>``."""
    runs = reconstruct_runs(events)
    if not runs:
        return "(empty journal)"
    sections: list[str] = []

    run_rows: list[dict[str, object]] = []
    for run in runs:
        eq = run.equilibrium or {}
        mixture = ""
        if eq:
            mixture = ", ".join(
                f"{label}:{prob:.3f}"
                for label, prob in zip(
                    eq.get("labels", []), eq.get("probabilities", [])
                )
            )
        run_rows.append(
            {
                "run": run.index,
                "command": run.command,
                "status": run.status,
                "profiles": len(run.profiles),
                "equilibrium": eq.get("kind", ""),
                "mixture": mixture,
                "regret": float(eq["regret"]) if "regret" in eq else "",
                "seconds": (
                    round(run.duration_seconds, 4)
                    if run.duration_seconds is not None
                    else ""
                ),
            }
        )
    sections.append(format_table(run_rows, title="runs"))

    profile_rows = journal_summary_rows(events)
    if profile_rows:
        total = sum(
            float(e.get("duration_seconds", 0.0))
            for e in events
            if e.get("event") == "profile_done"
        ) or 1.0
        for row in profile_rows:
            row["time_share"] = float(row["seconds"]) / total
        sections.append(
            format_table(
                profile_rows, title="per-profile estimates (timing & variance)"
            )
        )

    batches = [e for e in events if e.get("event") == "batch_done"]
    if batches:
        batch_rows = [
            {
                "batch": int(b.get("batch_id", -1)),
                "backend": str(b.get("backend", "?")),
                "workers": int(b.get("workers", 1)),
                "jobs": int(b.get("jobs", 0)),
                "seconds": float(b.get("duration_seconds", 0.0)),
            }
            for b in batches
        ]
        sections.append(format_table(batch_rows, title="execution batches"))

    spans = [e for e in events if e.get("event") == "span"]
    if spans:
        span_rows = [
            {
                "span": s.get("name", "?"),
                "seconds": float(s.get("duration_seconds", 0.0)),
            }
            for s in spans
        ]
        sections.append(format_table(span_rows, title="spans"))
    return "\n\n".join(sections)
