"""Live run monitor: tail-follow a JSONL run journal and render a dashboard.

``python -m repro monitor <journal.jsonl>`` watches a journal as a run
writes it and redraws an in-terminal dashboard: run status, batch
throughput, cumulative span time, and cache hit rate.  This is the first
consumer of the journal *streaming* path (the future web dashboard reuses
:class:`JournalTailer` + :class:`MonitorState`), so the tailer is built for
real-world files:

* **partial lines** — a half-written JSON line stays buffered until its
  newline arrives; it is never parsed early and never corrupts the stream;
* **malformed lines** — counted and skipped, not fatal (a crashed writer
  can leave interleaved or truncated garbage);
* **rotation/truncation** — if the file is replaced (new inode) or
  truncated (size shrinks below the read offset), the tailer reopens from
  the start;
* **late creation** — monitoring a path that does not exist yet simply
  waits for it.
"""

from __future__ import annotations

import json
import os
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Callable, Iterable, Mapping
from typing import IO, Any

from repro.utils.tables import format_table

#: Sliding window (seconds) for the batch-throughput estimate.
THROUGHPUT_WINDOW_SECONDS = 60.0


class JournalTailer:
    """Incremental reader for a (possibly still growing) JSONL journal."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.malformed = 0
        self._handle: IO[str] | None = None
        self._buffer = ""
        self._inode: int | None = None

    @property
    def has_partial_line(self) -> bool:
        """A trailing line fragment is buffered, awaiting its newline."""
        return bool(self._buffer)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def _reopen(self) -> None:
        self.close()
        self._buffer = ""
        try:
            stat = os.stat(self.path)
        except FileNotFoundError:
            self._inode = None
            return
        self._handle = open(self.path, encoding="utf-8", errors="replace")
        self._inode = stat.st_ino

    def _detect_rotation(self) -> None:
        try:
            stat = os.stat(self.path)
        except FileNotFoundError:
            # Rotated away with no replacement yet: finish draining the old
            # handle; a later poll reopens when the path reappears.
            return
        if self._handle is None:
            self._reopen()
            return
        if stat.st_ino != self._inode or stat.st_size < self._handle.tell():
            self._reopen()

    def poll(self) -> list[dict[str, Any]]:
        """Parse and return every complete event line appended since last poll."""
        self._detect_rotation()
        if self._handle is None:
            return []
        chunk = self._handle.read()
        if not chunk and not self._buffer:
            return []
        self._buffer += chunk
        events: list[dict[str, Any]] = []
        while True:
            newline = self._buffer.find("\n")
            if newline < 0:
                break
            line, self._buffer = (
                self._buffer[:newline],
                self._buffer[newline + 1 :],
            )
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                self.malformed += 1
                continue
            if not isinstance(record, dict) or "event" not in record:
                self.malformed += 1
                continue
            events.append(record)
        return events

    def __enter__(self) -> "JournalTailer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


@dataclass
class _RunView:
    run_id: str
    command: str = "?"
    status: str = "running"
    profiles: int = 0
    equilibrium: str = ""
    duration_seconds: float | None = None


@dataclass
class MonitorState:
    """Streaming aggregation of journal events for the dashboard."""

    events: int = 0
    last_ts: float | None = None
    event_counts: dict[str, int] = field(default_factory=dict)
    runs: list[_RunView] = field(default_factory=list)
    batches: int = 0
    jobs_completed: int = 0
    batch_seconds_total: float = 0.0
    recent_batches: list[tuple[float, int]] = field(default_factory=list)
    span_totals: dict[str, tuple[int, float]] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    cache_entries: int = 0

    def _open_run(self, run_id: str) -> _RunView | None:
        for view in reversed(self.runs):
            if view.run_id == run_id and view.status == "running":
                return view
        return None

    def apply(self, event: Mapping[str, Any]) -> None:
        kind = str(event.get("event", "?"))
        self.events += 1
        self.event_counts[kind] = self.event_counts.get(kind, 0) + 1
        ts = event.get("ts")
        if ts is not None:
            self.last_ts = float(ts)
        run_id = str(event.get("run_id", "?"))
        if kind == "run_start":
            self.runs.append(
                _RunView(run_id=run_id, command=str(event.get("command", "?")))
            )
        elif kind == "profile_done":
            view = self._open_run(run_id)
            if view is None:
                view = _RunView(run_id=run_id)
                self.runs.append(view)
            view.profiles += 1
        elif kind == "equilibrium_found":
            view = self._open_run(run_id)
            if view is not None:
                view.equilibrium = str(event.get("kind", ""))
        elif kind == "run_end":
            view = self._open_run(run_id)
            if view is None:
                view = _RunView(run_id=run_id)
                self.runs.append(view)
            view.status = str(event.get("status", "?"))
            if "duration_seconds" in event:
                view.duration_seconds = float(event["duration_seconds"])
        elif kind == "batch_done":
            jobs = int(event.get("jobs", 0))
            self.batches += 1
            self.jobs_completed += jobs
            self.batch_seconds_total += float(
                event.get("duration_seconds", 0.0)
            )
            stamp = float(event.get("ts", 0.0))
            self.recent_batches.append((stamp, jobs))
        elif kind == "span":
            name = str(event.get("name", "?"))
            count, total = self.span_totals.get(name, (0, 0.0))
            self.span_totals[name] = (
                count + 1,
                total + float(event.get("duration_seconds", 0.0)),
            )
        elif kind == "cache":
            op = str(event.get("op", ""))
            if op == "hit":
                self.cache_hits += 1
            elif op == "miss":
                self.cache_misses += 1
            self.cache_entries = int(event.get("entries", self.cache_entries))

    def update(self, events: Iterable[Mapping[str, Any]]) -> None:
        for event in events:
            self.apply(event)

    def throughput_jobs_per_second(self, now: float | None = None) -> float:
        """Completed jobs/second over the recent sliding window."""
        if not self.recent_batches:
            return 0.0
        now = now if now is not None else time.time()
        horizon = now - THROUGHPUT_WINDOW_SECONDS
        self.recent_batches = [
            entry for entry in self.recent_batches if entry[0] >= horizon
        ]
        jobs = sum(jobs for _, jobs in self.recent_batches)
        if not jobs:
            return 0.0
        earliest = min(stamp for stamp, _ in self.recent_batches)
        elapsed = max(now - earliest, 1e-9)
        return jobs / elapsed

    @property
    def cache_hit_rate(self) -> float | None:
        lookups = self.cache_hits + self.cache_misses
        if not lookups:
            return None
        return self.cache_hits / lookups


def render_dashboard(
    state: MonitorState,
    path: str | Path,
    tailer: JournalTailer | None = None,
    top_spans: int = 10,
    now: float | None = None,
) -> str:
    """Plain-text dashboard panel for the current monitor state."""
    # Display-only staleness clock; tests inject `now` explicitly.
    now = now if now is not None else time.time()  # reprolint: disable=RP011
    lines: list[str] = [f"repro run monitor — {path}"]
    status = f"events: {state.events}"
    if tailer is not None and tailer.malformed:
        status += f" ({tailer.malformed} malformed line(s) skipped)"
    if tailer is not None and tailer.has_partial_line:
        status += "  [partial line buffered]"
    if state.last_ts is not None:
        status += f"   last event: {max(0.0, now - state.last_ts):.1f}s ago"
    lines.append(status)
    lines.append("")

    if state.runs:
        run_rows = [
            {
                "run": index,
                "command": view.command,
                "status": view.status,
                "profiles": view.profiles,
                "equilibrium": view.equilibrium,
                "seconds": (
                    round(view.duration_seconds, 3)
                    if view.duration_seconds is not None
                    else ""
                ),
            }
            for index, view in enumerate(state.runs)
        ]
        lines.append(format_table(run_rows, title="runs"))
    else:
        lines.append("(no runs yet)")
    lines.append("")

    rate = state.throughput_jobs_per_second(now=now)
    mean_batch = (
        state.batch_seconds_total / state.batches if state.batches else 0.0
    )
    lines.append(
        f"batches: {state.batches}   jobs: {state.jobs_completed}   "
        f"throughput: {rate:.1f} jobs/s (window {THROUGHPUT_WINDOW_SECONDS:.0f}s)   "
        f"mean batch: {mean_batch:.3f}s"
    )

    if state.span_totals:
        ranked = sorted(
            state.span_totals.items(), key=lambda kv: kv[1][1], reverse=True
        )[:top_spans]
        span_rows = [
            {"span": name, "count": count, "total_seconds": round(total, 4)}
            for name, (count, total) in ranked
        ]
        lines.append("")
        lines.append(format_table(span_rows, title="cumulative span time"))

    hit_rate = state.cache_hit_rate
    cache_line = (
        f"cache: {state.cache_hits} hit(s), {state.cache_misses} miss(es)"
    )
    if hit_rate is not None:
        cache_line += f", hit rate {hit_rate:.1%}"
    cache_line += f", {state.cache_entries} entrie(s)"
    lines.append("")
    lines.append(cache_line)
    return "\n".join(lines)


def run_monitor(
    path: str | Path,
    interval: float = 0.5,
    once: bool = False,
    duration: float | None = None,
    clear_screen: bool | None = None,
    top_spans: int = 10,
    stop: Callable[[], bool] | None = None,
    stream: IO[str] | None = None,
) -> int:
    """Drive the monitor loop (the ``repro monitor`` command body).

    ``once`` renders a single dashboard from the journal's current contents
    and returns (used by the CI smoke test); otherwise the loop follows the
    file until *duration* seconds elapse, *stop* returns true, or Ctrl-C.
    """
    out = stream if stream is not None else sys.stdout
    if clear_screen is None:
        clear_screen = not once and out.isatty()
    state = MonitorState()
    started = time.monotonic()
    with JournalTailer(path) as tailer:
        try:
            while True:
                state.update(tailer.poll())
                panel = render_dashboard(
                    state, path, tailer=tailer, top_spans=top_spans
                )
                if clear_screen:
                    out.write("\x1b[2J\x1b[H")
                out.write(panel + "\n")
                out.flush()
                if once:
                    break
                if stop is not None and stop():
                    break
                if (
                    duration is not None
                    and time.monotonic() - started >= duration
                ):
                    break
                time.sleep(interval)
        except KeyboardInterrupt:
            pass
    return 0
