"""Regenerate every table and figure of the paper from the command line.

A thin CLI over :mod:`repro.experiments` — the same runners the benchmark
suite uses.  Scale knobs come from the REPRO_BENCH_* environment variables
(see EXPERIMENTS.md); at the defaults the full set takes a few minutes.

Usage:
    python examples/reproduce_paper.py             # everything
    python examples/reproduce_paper.py table3 fig8 # selected experiments
    python examples/reproduce_paper.py fig8 --journal=run.jsonl --log-level=info
"""

import sys

from repro.obs import RunJournal, attached, configure_logging
from repro.experiments import (
    ExperimentConfig,
    coefficient_rows,
    jaccard_rows,
    mixed_vs_random_rows,
    profile_rows,
    response_time_rows,
    spread_rows,
    table3_rows,
)
from repro.utils.tables import format_table


def run_table3(config: ExperimentConfig) -> None:
    print(format_table(table3_rows(config), title="Table 3 - datasets"))


def run_fig3(config: ExperimentConfig) -> None:
    rows = jaccard_rows(config, "ic")
    print(format_table(rows, title="Figure 3 - Jaccard overlap (IC)"))


def run_fig4(config: ExperimentConfig) -> None:
    rows = jaccard_rows(config, "wc")
    print(format_table(rows, title="Figure 4 - Jaccard overlap (WC)"))


def run_fig5(config: ExperimentConfig) -> None:
    for model_kind in ("ic", "wc"):
        rows = spread_rows(config, "hep", model_kind)
        print(format_table(rows, title=f"Figure 5 - spread (hep, {model_kind})"))


def run_fig6(config: ExperimentConfig) -> None:
    for model_kind in ("ic", "wc"):
        rows = spread_rows(config, "phy", model_kind)
        print(format_table(rows, title=f"Figure 6 - spread (phy, {model_kind})"))


def run_fig7(config: ExperimentConfig) -> None:
    for model_kind in ("ic", "wc"):
        rows = spread_rows(config, "wiki", model_kind)
        print(format_table(rows, title=f"Figure 7 - spread (wiki, {model_kind})"))


def run_fig8(config: ExperimentConfig) -> None:
    rows = mixed_vs_random_rows(config)
    print(format_table(rows, title="Figure 8 - mixed vs random (hep, wc)"))


def run_fig9(config: ExperimentConfig) -> None:
    rows = profile_rows(config)
    print(format_table(rows, title="Figure 9 - profile spreads (hep, wc)"))


def run_table4(config: ExperimentConfig) -> None:
    rows = response_time_rows(config)
    print(format_table(rows, title="Table 4 - NE search response time"))


def run_fig10(config: ExperimentConfig) -> None:
    for dataset in ("hep", "phy", "wiki"):
        for model_kind in ("ic", "wc"):
            rows = coefficient_rows(config, dataset, model_kind)
            print(
                format_table(
                    rows,
                    title=f"Figure 10 - coefficients ({dataset}, {model_kind})",
                )
            )


EXPERIMENTS = {
    "table3": run_table3,
    "fig3": run_fig3,
    "fig4": run_fig4,
    "fig5": run_fig5,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "fig9": run_fig9,
    "table4": run_table4,
    "fig10": run_fig10,
}


def main(argv: list[str]) -> int:
    # Observability flags (--journal=PATH, --log-level=LEVEL) are parsed by
    # hand so plain experiment names keep their historical behavior.
    journal_path: str | None = None
    log_level: str | None = None
    requested = []
    for arg in argv:
        if arg.startswith("--journal="):
            journal_path = arg.split("=", 1)[1]
        elif arg.startswith("--log-level="):
            log_level = arg.split("=", 1)[1]
        else:
            requested.append(arg)
    requested = requested or list(EXPERIMENTS)
    unknown = [name for name in requested if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}")
        print(f"available: {', '.join(EXPERIMENTS)}")
        return 2
    if log_level:
        configure_logging(log_level)
    config = ExperimentConfig()
    print(
        f"config: nodes<={config.nodes_budget}, rounds={config.rounds}, "
        f"snapshots={config.snapshots}, ks={config.ks}, "
        f"ic_p={config.ic_probability}\n"
    )

    def run_all() -> None:
        for name in requested:
            EXPERIMENTS[name](config)
            print()

    if journal_path:
        with RunJournal(journal_path) as journal, attached(journal):
            run_all()
    else:
        run_all()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
