"""Three carriers, three strategies — GetReal beyond the 2x2 game.

The paper notes (Section 4, Table 4) that GetReal handles r = z = 3,
covering markets like Verizon / Sprint / AT&T.  This script:

1. runs GetReal with three groups and three strategies (27 profiles);
2. prints the diagonal payoffs and the equilibrium;
3. runs the Section-7 collusion extension: what if two carriers secretly
   pool their budgets against the third?

Run:  python examples/three_player_market.py     (~1-2 minutes)
"""

import repro
from repro.utils.tables import format_table

K = 20
ROUNDS = 24
SEED = 7


def main() -> None:
    graph = repro.hep(scale=0.06)
    model = repro.WeightedCascade()
    print(f"market network: {graph} (weighted-cascade model)\n")

    space = repro.StrategySpace(
        [
            repro.MixGreedy(model, num_snapshots=80),
            repro.SingleDiscount(),
            repro.PageRankSeeds(),
        ]
    )
    print(f"strategy space: {space.labels}")

    result = repro.get_real(
        graph, model, space, num_groups=3, k=K, rounds=ROUNDS, rng=SEED
    )

    diagonal = [
        {
            "profile": "-".join([space[a].name] * 3),
            "sigma_1": result.game.payoff((a, a, a), 0),
            "sigma_2": result.game.payoff((a, a, a), 1),
            "sigma_3": result.game.payoff((a, a, a), 2),
        }
        for a in range(space.size)
    ]
    print()
    print(format_table(diagonal, title="diagonal profiles (all-same-strategy)"))
    print()
    print(f"equilibrium: {result.describe()}")
    print(f"NE search  : {result.solve_seconds * 1000:.2f} ms "
          f"over {len(result.payoff_table.estimates)} profiles\n")

    # ------------------------------------------------------------------ #
    # Section-7 extension: carriers 1+2 collude against carrier 3.
    # ------------------------------------------------------------------ #
    two_strategy = repro.StrategySpace(
        [repro.SingleDiscount(), repro.PageRankSeeds()]
    )
    collusion = repro.collusion_analysis(
        graph, model, two_strategy, k=K, rounds=ROUNDS // 2, rng=SEED
    )
    print("-- collusion extension --")
    print(f"coalition (2k seeds) value : {collusion.coalition_value:8.1f}")
    print(f"independent p1+p2 value    : {collusion.independent_value:8.1f}")
    print(f"outsider value             : {collusion.outsider_value:8.1f}")
    verdict = "pays off" if collusion.collusion_pays else "does not pay off"
    print(f"=> secretly pooling budgets {verdict} on this network")


if __name__ == "__main__":
    main()
