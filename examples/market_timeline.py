"""Watch two campaigns race through a network, round by round.

Uses the competitive engine's activation-round tracking to show *when*
each company's influence lands, not just how much: the early rounds decide
the contested core, the tail rounds mop up the periphery.  Renders the
cumulative adoption curves as an ASCII chart.

Run:  python examples/market_timeline.py        (~30 seconds)
"""

import numpy as np

import repro
from repro.cascade.competitive import CompetitiveDiffusion
from repro.utils.charts import ascii_chart

K = 25
SIMULATIONS = 40


def main() -> None:
    graph = repro.hep(scale=0.08)
    model = repro.WeightedCascade()
    print(f"network: {graph} (weighted cascade)\n")

    mgwc = repro.MixGreedy(model, num_snapshots=80)
    sdwc = repro.SingleDiscount()
    samsung = mgwc.select(graph, K, rng=1)
    htc = sdwc.select(graph, K, rng=2)
    print(f"Samsung plays {mgwc.name}; HTC plays {sdwc.name}; k = {K}\n")

    engine = CompetitiveDiffusion(graph, model)
    rng = repro.utils.as_rng(7) if hasattr(repro, "utils") else None

    # Average the per-round adoption counts over many simulations.
    from repro.utils.rng import as_rng

    generator = as_rng(7)
    max_rounds = 0
    timelines = []
    for _ in range(SIMULATIONS):
        outcome = engine.run([samsung, htc], generator)
        timeline = outcome.timeline()
        timelines.append(timeline)
        max_rounds = max(max_rounds, timeline.shape[0])

    mean = np.zeros((max_rounds, 2))
    for timeline in timelines:
        padded = np.zeros((max_rounds, 2))
        padded[: timeline.shape[0]] = timeline
        mean += padded
    mean /= SIMULATIONS
    cumulative = mean.cumsum(axis=0)

    print("average cumulative adopters per round:")
    for t in range(max_rounds):
        print(
            f"  round {t:2d}: samsung {cumulative[t, 0]:7.1f}   "
            f"htc {cumulative[t, 1]:7.1f}"
        )

    chart = ascii_chart(
        {
            "samsung": [(t, float(cumulative[t, 0])) for t in range(max_rounds)],
            "htc": [(t, float(cumulative[t, 1])) for t in range(max_rounds)],
        },
        title="cumulative adopters vs round",
    )
    print()
    print(chart)

    share = cumulative[-1, 0] / cumulative[-1].sum()
    print(f"\nfinal market split: samsung {share:.1%} / htc {1 - share:.1%}")


if __name__ == "__main__":
    main()
