"""A tournament over the whole strategy shelf — beyond the paper's z = 2.

GetReal is agnostic to the strategy space; this script throws five very
different IM algorithms into one game on the Hep surrogate (under WC),
prints the diagonal of the payoff table and each strategy's average
performance, and reports the equilibrium over all five.  A weak strategy
(random seeding) is included deliberately: the equilibrium must assign it
zero weight.

Run:  python examples/strategy_tournament.py     (~2-3 minutes)
"""

import numpy as np

import repro
from repro.utils.tables import format_table

K = 20
ROUNDS = 16


def main() -> None:
    graph = repro.hep(scale=0.06)
    model = repro.WeightedCascade()
    print(f"arena: {graph} (weighted cascade, k={K})\n")

    space = repro.StrategySpace(
        [
            repro.MixGreedy(model, num_snapshots=60),
            repro.RISGreedy(model, num_samples=1200),
            repro.SingleDiscount(),
            repro.PageRankSeeds(),
            repro.RandomSeeds(),
        ]
    )
    print(f"contestants: {space.labels}\n")

    result = repro.get_real(
        graph, model, space, num_groups=2, k=K, rounds=ROUNDS, rng=2015
    )
    game = result.game

    # Average payoff of each strategy across all opponent choices.
    rows = []
    z = space.size
    for i in range(z):
        own = np.mean([game.payoff((i, j), 0) for j in range(z)])
        diag = game.payoff((i, i), 0)
        rows.append(
            {
                "strategy": space[i].name,
                "avg_vs_field": own,
                "mirror_match": diag,
                "equilibrium_weight": float(result.mixture.probabilities[i]),
            }
        )
    rows.sort(key=lambda r: -r["avg_vs_field"])
    print(format_table(rows, title="tournament standings"))
    print()
    print(f"equilibrium: {result.describe()}")

    random_index = space.index_of("random")
    weight = float(result.mixture.probabilities[random_index])
    print(f"weight on random seeding: {weight:.4f} (should be ~0)")

    report = repro.efficiency_report(result)
    print(
        f"equilibrium welfare {report.equilibrium_welfare:.1f} vs optimal "
        f"{report.optimal_welfare:.1f} -> price of anarchy "
        f"{report.price_of_anarchy:.3f}"
    )


if __name__ == "__main__":
    main()
