"""Quickstart: pick the best IM strategy in a competitive network.

Runs the full GetReal pipeline on a small built-in graph in a few seconds:

    python examples/quickstart.py

Steps shown:
1. load a network,
2. define the cascade model and the strategy space Φ,
3. estimate the competitive payoff table Σ(Ψr, Φr),
4. find the Nash equilibrium and read off the recommended strategy.
"""

import repro
from repro.utils.tables import format_table


def main() -> None:
    # 1. A small, well-known social network (34 members of a karate club).
    graph = repro.karate_like_fixture()
    print(f"network: {graph}")

    # 2. Two rival companies, each choosing between two IM algorithms under
    #    the independent-cascade model.
    model = repro.IndependentCascade(probability=0.1)
    space = repro.StrategySpace(
        [
            repro.MixGreedy(model, num_snapshots=100),  # expensive & strong
            repro.DegreeDiscount(probability=0.1),      # cheap heuristic
        ]
    )
    print(f"strategy space: {space.labels}")

    # 3 + 4. GetReal: estimate payoffs for every strategy profile, then
    # search for the Nash equilibrium.
    result = repro.get_real(
        graph,
        model,
        space,
        num_groups=2,   # two rivals
        k=4,            # each gives out 4 free samples
        rounds=60,      # Monte-Carlo simulations per profile
        rng=2015,
    )

    print()
    print(format_table(result.payoff_table.rows(), title="estimated payoffs"))
    print()
    print(f"equilibrium type : {result.kind}")
    print(f"recommendation   : {result.describe()}")
    print(f"NE search time   : {result.solve_seconds * 1000:.2f} ms")

    # The recommended (possibly mixed) strategy is directly usable:
    seeds = result.mixture.select(graph, 4, rng=7)
    print(f"seeds to target  : {sorted(seeds)}")


if __name__ == "__main__":
    main()
