"""The paper's motivating scenario: two phone makers launch simultaneously.

Samsung and HTC both run viral-marketing campaigns on the same network at
the same time (Section 1.1 of the paper).  This script shows, numerically:

1. **the competition-unaware trap** — the spread a classical IM algorithm
   *promises* vs what it actually delivers once the rival is seeding too;
2. **seed collisions** — how much the two campaigns' seed sets overlap when
   both run the same algorithm;
3. **GetReal's answer** — the equilibrium strategy each company should
   adopt without knowing the rival's choice.

Run:  python examples/smartphone_war.py          (~1-2 minutes)
"""

import repro
from repro.utils.tables import format_table

K = 30          # free phones each company gives out
ROUNDS = 40     # Monte-Carlo simulations per measurement
SEED = 42


def main() -> None:
    # A collaboration-network surrogate of the paper's Hep graph, scaled
    # for a quick run (raise `scale` toward 1.0 for the full 15k nodes).
    graph = repro.hep(scale=0.08)
    model = repro.IndependentCascade(probability=0.08)
    print(f"market network: {graph}\n")

    mixgreedy = repro.MixGreedy(model, num_snapshots=120)
    degree_discount = repro.DegreeDiscount(probability=0.08)

    # ---------------------------------------------------------------- #
    # 1. the competition-unaware trap
    # ---------------------------------------------------------------- #
    samsung = degree_discount.select(graph, K, rng=SEED)
    htc = degree_discount.select(graph, K, rng=SEED + 1)

    promised = repro.estimate_spread(graph, model, samsung, ROUNDS, rng=1)
    actual = repro.estimate_competitive_spread(
        graph, model, [samsung, htc], ROUNDS, rng=2
    )
    print("-- competition-unaware trap (both run DegreeDiscount) --")
    print(f"classical IM promises Samsung : {promised.mean:7.1f} adopters")
    print(f"with HTC competing, Samsung   : {actual[0].mean:7.1f} adopters")
    print(f"with HTC competing, HTC       : {actual[1].mean:7.1f} adopters")
    shortfall = 100 * (1 - actual[0].mean / promised.mean)
    print(f"Samsung's shortfall           : {shortfall:6.1f}%\n")

    # ---------------------------------------------------------------- #
    # 2. seed collisions
    # ---------------------------------------------------------------- #
    overlap = repro.jaccard(samsung, htc)
    print("-- seed collisions --")
    print(f"Jaccard(samsung seeds, htc seeds) = {overlap:.3f}")
    print("identical algorithms chase the same users; contested seeds are")
    print("split uniformly between the two campaigns (Section 3.2)\n")

    # ---------------------------------------------------------------- #
    # 3. GetReal's recommendation
    # ---------------------------------------------------------------- #
    space = repro.StrategySpace([mixgreedy, degree_discount])
    result = repro.get_real(
        graph, model, space, num_groups=2, k=K, rounds=ROUNDS, rng=SEED
    )
    print("-- GetReal --")
    print(format_table(result.payoff_table.rows(), title="payoff table"))
    print()
    print(f"equilibrium: {result.describe()}")
    print(
        "each company can commit to this strategy without knowing the "
        "rival's choice;\nno unilateral deviation improves its expected "
        "adopters."
    )


if __name__ == "__main__":
    main()
