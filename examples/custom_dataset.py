"""Run GetReal on your own network: SNAP edge lists in, equilibrium out.

This script writes a small SNAP-format edge list to a temp directory (to
stand in for a file you downloaded), loads it with the library's loader,
and runs the full pipeline — exactly what you would do with the real
wiki-Talk.txt from https://snap.stanford.edu/data/.

Run:  python examples/custom_dataset.py
"""

import tempfile
from pathlib import Path

import repro


def fabricate_snap_file(path: Path) -> None:
    """Write a graph in the wiki-Talk text format (comments + 'src\\tdst')."""
    graph = repro.community_powerlaw(500, 1800, rng=99)
    repro.save_edge_list(
        graph, path, header="Directed graph: example.txt\nFabricated demo data"
    )


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "example.txt"
        fabricate_snap_file(path)

        # 1. Load.  Node labels are compacted to 0..n-1; the mapping back
        #    to the file's original ids is returned alongside.
        graph, label_map = repro.load_edge_list(path, directed=True)
        print(f"loaded {path.name}: {graph}")
        print(f"summary: {repro.summarize(graph).as_row()}\n")

        # 2. Competitive analysis under the weighted-cascade model.
        model = repro.WeightedCascade()
        space = repro.StrategySpace(
            [
                repro.MixGreedy(model, num_snapshots=60),
                repro.SingleDiscount(),
                repro.PageRankSeeds(),
            ]
        )
        result = repro.get_real(
            graph, model, space, num_groups=2, k=15, rounds=20, rng=0
        )
        print(f"equilibrium: {result.describe()}")

        # 3. Map the recommended seeds back to the file's node ids.
        inverse = {dense: original for original, dense in label_map.items()}
        seeds = result.mixture.select(graph, 15, rng=1)
        original_ids = sorted(inverse[s] for s in seeds)
        print(f"seeds (original file ids): {original_ids}")


if __name__ == "__main__":
    main()
