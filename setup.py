"""Setuptools shim.

The metadata lives in pyproject.toml; this file exists so that offline
environments without the ``wheel`` package can still do an editable install
via ``python setup.py develop`` (pip's modern editable path requires
building a wheel).
"""

from setuptools import setup

setup()
