"""Tests for repro.graphs.digraph.DiGraph."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs.digraph import DiGraph


class TestConstruction:
    def test_counts(self, path_graph):
        assert path_graph.num_nodes == 5
        assert path_graph.num_edges == 4

    def test_len_is_node_count(self, path_graph):
        assert len(path_graph) == 5

    def test_empty_graph(self):
        g = DiGraph(0, [])
        assert g.num_nodes == 0
        assert g.num_edges == 0

    def test_isolated_nodes_allowed(self):
        g = DiGraph(10, [(0, 1)])
        assert g.num_nodes == 10
        assert g.num_edges == 1

    def test_self_loops_removed(self):
        g = DiGraph(3, [(0, 0), (0, 1), (2, 2)])
        assert g.num_edges == 1

    def test_duplicate_edges_removed(self):
        g = DiGraph(3, [(0, 1), (0, 1), (1, 2)])
        assert g.num_edges == 2

    def test_negative_node_rejected(self):
        with pytest.raises(GraphError, match="endpoints"):
            DiGraph(3, [(-1, 0)])

    def test_out_of_range_node_rejected(self):
        with pytest.raises(GraphError, match="endpoints"):
            DiGraph(3, [(0, 3)])

    def test_negative_num_nodes_rejected(self):
        with pytest.raises(GraphError, match="non-negative"):
            DiGraph(-1, [])

    def test_malformed_edges_rejected(self):
        with pytest.raises(GraphError, match="pairs"):
            DiGraph(3, [(0, 1, 2)])

    def test_repr(self, path_graph):
        assert repr(path_graph) == "DiGraph(n=5, m=4)"


class TestAdjacency:
    def test_out_neighbors(self, diamond_graph):
        assert sorted(diamond_graph.out_neighbors(0).tolist()) == [1, 2]
        assert diamond_graph.out_neighbors(3).size == 0

    def test_in_neighbors(self, diamond_graph):
        assert sorted(diamond_graph.in_neighbors(3).tolist()) == [1, 2]
        assert diamond_graph.in_neighbors(0).size == 0

    def test_degrees(self, diamond_graph):
        assert diamond_graph.out_degrees().tolist() == [2, 1, 1, 0]
        assert diamond_graph.in_degrees().tolist() == [0, 1, 1, 2]

    def test_single_degree_accessors(self, diamond_graph):
        assert diamond_graph.out_degree(0) == 2
        assert diamond_graph.in_degree(3) == 2

    def test_has_edge(self, path_graph):
        assert path_graph.has_edge(0, 1)
        assert not path_graph.has_edge(1, 0)

    def test_node_range_checked(self, path_graph):
        with pytest.raises(GraphError, match="out of range"):
            path_graph.out_neighbors(5)
        with pytest.raises(GraphError):
            path_graph.in_neighbors(-1)

    def test_edges_iteration(self, path_graph):
        assert sorted(path_graph.edges()) == [(0, 1), (1, 2), (2, 3), (3, 4)]

    def test_arrays_read_only(self, path_graph):
        with pytest.raises(ValueError):
            path_graph.out_indices[0] = 99


class TestEdgeIds:
    def test_edge_ids_are_permutation(self, karate):
        ids = np.concatenate(
            [karate.out_edge_ids(v) for v in karate.nodes()]
        )
        assert sorted(ids.tolist()) == list(range(karate.num_edges))

    def test_edge_array_matches_adjacency(self, diamond_graph):
        src, dst = diamond_graph.edge_array()
        pairs = set(zip(src.tolist(), dst.tolist()))
        assert pairs == set(diamond_graph.edges())

    def test_edge_ids_align_with_edge_array(self, karate):
        src, dst = karate.edge_array()
        for v in range(karate.num_nodes):
            for nbr, eid in zip(karate.out_neighbors(v), karate.out_edge_ids(v)):
                assert src[eid] == v
                assert dst[eid] == nbr


class TestReachability:
    def test_path_reach(self, path_graph):
        reached = path_graph.reachable_from([0])
        assert reached.all()

    def test_reach_from_middle(self, path_graph):
        reached = path_graph.reachable_from([2])
        assert reached.tolist() == [False, False, True, True, True]

    def test_multiple_sources(self, diamond_graph):
        reached = diamond_graph.reachable_from([1, 2])
        assert reached.tolist() == [False, True, True, True]

    def test_edge_mask_blocks_traversal(self, path_graph):
        mask = np.ones(path_graph.num_edges, dtype=bool)
        # Kill the edge leaving node 1.
        eid = path_graph.out_edge_ids(1)[0]
        mask[eid] = False
        reached = path_graph.reachable_from([0], mask)
        assert reached.tolist() == [True, True, False, False, False]

    def test_empty_mask_keeps_sources(self, path_graph):
        mask = np.zeros(path_graph.num_edges, dtype=bool)
        reached = path_graph.reachable_from([0, 3], mask)
        assert reached.sum() == 2

    def test_cycle_reach(self, cycle_graph):
        assert cycle_graph.reachable_from([2]).all()

    def test_invalid_source_rejected(self, path_graph):
        with pytest.raises(GraphError):
            path_graph.reachable_from([99])


class TestConstructors:
    def test_from_arrays(self):
        g = DiGraph.from_arrays(3, np.array([0, 1]), np.array([1, 2]))
        assert g.num_edges == 2

    def test_from_arrays_shape_mismatch(self):
        with pytest.raises(GraphError, match="equal length"):
            DiGraph.from_arrays(3, np.array([0]), np.array([1, 2]))

    def test_from_undirected_symmetrizes(self):
        g = DiGraph.from_undirected(3, [(0, 1), (1, 2)])
        assert g.num_edges == 4
        assert g.has_edge(0, 1) and g.has_edge(1, 0)

    def test_reverse(self, path_graph):
        rev = path_graph.reverse()
        assert rev.has_edge(1, 0)
        assert not rev.has_edge(0, 1)
        assert rev.num_edges == path_graph.num_edges

    def test_double_reverse_identity(self, karate):
        twice = karate.reverse().reverse()
        assert sorted(twice.edges()) == sorted(karate.edges())

    def test_networkx_round_trip(self, karate):
        nx_graph = karate.to_networkx()
        back = DiGraph.from_networkx(nx_graph)
        assert back.num_nodes == karate.num_nodes
        assert sorted(back.edges()) == sorted(karate.edges())

    def test_from_networkx_undirected(self):
        import networkx as nx

        g = DiGraph.from_networkx(nx.path_graph(4))
        assert g.num_edges == 6  # 3 undirected edges, both directions

    def test_from_networkx_rejects_non_graph(self):
        with pytest.raises(GraphError, match="networkx"):
            DiGraph.from_networkx([1, 2, 3])
