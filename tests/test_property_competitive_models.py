"""Property tests: competitive invariants hold under every cascade model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cascade.competitive import CompetitiveDiffusion
from repro.cascade.general_threshold import GeneralThreshold
from repro.cascade.ic import IndependentCascade
from repro.cascade.lt import LinearThreshold
from repro.cascade.wc import WeightedCascade
from repro.graphs.digraph import DiGraph
from repro.utils.rng import as_rng

MODELS = [
    IndependentCascade(0.3),
    WeightedCascade(),
    LinearThreshold(),
    GeneralThreshold(),
]


@st.composite
def small_competitive_instance(draw):
    n = draw(st.integers(min_value=3, max_value=12))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=30,
        )
    )
    seeds_a = draw(st.lists(st.integers(0, n - 1), min_size=1, max_size=3, unique=True))
    seeds_b = draw(st.lists(st.integers(0, n - 1), min_size=1, max_size=3, unique=True))
    seed = draw(st.integers(0, 2**31 - 1))
    return DiGraph(n, edges), [seeds_a, seeds_b], seed


class TestModelAgnosticInvariants:
    @pytest.mark.parametrize("model", MODELS, ids=lambda m: m.name)
    @given(instance=small_competitive_instance())
    @settings(max_examples=25, deadline=None)
    def test_partition_and_seed_activation(self, model, instance):
        graph, seed_sets, seed = instance
        engine = CompetitiveDiffusion(graph, model)
        outcome = engine.run(seed_sets, as_rng(seed))
        # Ownership partitions the activated set.
        assert outcome.spreads().sum() == outcome.total_activated
        # Every seed (union) is active under some owner.
        union = set(seed_sets[0]) | set(seed_sets[1])
        for v in union:
            assert outcome.owner[v] >= 0

    @pytest.mark.parametrize("model", MODELS, ids=lambda m: m.name)
    @given(instance=small_competitive_instance())
    @settings(max_examples=20, deadline=None)
    def test_timeline_consistency(self, model, instance):
        graph, seed_sets, seed = instance
        engine = CompetitiveDiffusion(graph, model)
        outcome = engine.run(seed_sets, as_rng(seed))
        timeline = outcome.timeline()
        assert timeline.shape == (outcome.rounds + 1, 2)
        assert np.array_equal(timeline.sum(axis=0), outcome.spreads())
        assert timeline[0].sum() == sum(len(g) for g in outcome.initiators)

    @pytest.mark.parametrize("model", MODELS, ids=lambda m: m.name)
    @given(instance=small_competitive_instance())
    @settings(max_examples=20, deadline=None)
    def test_activation_bounded_by_reachability(self, model, instance):
        graph, seed_sets, seed = instance
        engine = CompetitiveDiffusion(graph, model)
        outcome = engine.run(seed_sets, as_rng(seed))
        union = sorted(set(seed_sets[0]) | set(seed_sets[1]))
        reachable = graph.reachable_from(union)
        # Nothing outside the reachable closure can ever activate.
        active = outcome.owner >= 0
        assert not np.any(active & ~reachable)
