"""Meta tests: documentation, packaging, and public-API hygiene."""

import importlib
import pkgutil
from pathlib import Path

import pytest

import repro

REPO_ROOT = Path(repro.__file__).resolve().parents[2]


def _all_modules() -> list[str]:
    names = []
    for module_info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        # __main__ calls sys.exit(cli.main()) on import, by design.
        if module_info.name.endswith("__main__"):
            continue
        names.append(module_info.name)
    return names


class TestModuleHygiene:
    def test_every_module_imports(self):
        for name in _all_modules():
            importlib.import_module(name)

    def test_every_module_has_docstring(self):
        for name in _all_modules():
            module = importlib.import_module(name)
            assert module.__doc__, f"{name} lacks a module docstring"

    def test_public_classes_and_functions_documented(self):
        import inspect

        for name in _all_modules():
            module = importlib.import_module(name)
            for attr_name in getattr(module, "__all__", []) or []:
                obj = getattr(module, attr_name)
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    assert obj.__doc__, f"{name}.{attr_name} lacks a docstring"

    def test_top_level_all_is_sorted_into_sections(self):
        # Every __all__ entry resolves and is importable from the package.
        for name in repro.__all__:
            assert hasattr(repro, name)

    def test_py_typed_marker_present(self):
        assert (Path(repro.__file__).parent / "py.typed").exists()


class TestDocumentationFiles:
    @pytest.mark.parametrize(
        "relative",
        [
            "README.md",
            "DESIGN.md",
            "EXPERIMENTS.md",
            "docs/architecture.md",
            "docs/algorithms.md",
            "docs/game_theory.md",
            "docs/competitive_model.md",
            "docs/api.md",
            "docs/datasets.md",
            "CONTRIBUTING.md",
            "CHANGELOG.md",
        ],
    )
    def test_doc_exists_and_nontrivial(self, relative):
        path = REPO_ROOT / relative
        assert path.exists(), f"missing {relative}"
        assert len(path.read_text()) > 500

    def test_design_references_existing_benchmarks(self):
        text = (REPO_ROOT / "DESIGN.md").read_text()
        bench_dir = REPO_ROOT / "benchmarks"
        for line in text.splitlines():
            if "benchmarks/bench_" in line:
                for token in line.split("`"):
                    if token.startswith("benchmarks/bench_"):
                        assert (REPO_ROOT / token).exists(), token

    def test_readme_examples_exist(self):
        text = (REPO_ROOT / "README.md").read_text()
        for line in text.splitlines():
            if "examples/" in line and ".py" in line:
                for token in line.replace("`", " ").split():
                    if token.startswith("examples/") and token.endswith(".py"):
                        assert (REPO_ROOT / token).exists(), token


class TestBenchmarkCoverage:
    """Every table and figure of the paper has a benchmark file."""

    @pytest.mark.parametrize(
        "name",
        [
            "bench_table3_datasets.py",
            "bench_fig3_jaccard_ic.py",
            "bench_fig4_jaccard_wc.py",
            "bench_fig5_hep_spread.py",
            "bench_fig6_phy_spread.py",
            "bench_fig7_wiki_spread.py",
            "bench_fig8_mixed_vs_random.py",
            "bench_fig9_mixed_profiles.py",
            "bench_table4_response_time.py",
            "bench_fig10_coefficients.py",
        ],
    )
    def test_paper_experiment_bench_exists(self, name):
        assert (REPO_ROOT / "benchmarks" / name).exists()

    def test_ablation_and_extension_benches_exist(self):
        bench_dir = REPO_ROOT / "benchmarks"
        ablations = list(bench_dir.glob("bench_ablation_*.py"))
        extensions = list(bench_dir.glob("bench_ext_*.py"))
        assert len(ablations) >= 4
        assert len(extensions) >= 6
