"""Cross-backend determinism of the execution engine.

The seed-spawn scheme (one entropy draw per batch, one child
``SeedSequence`` per job, assembly by job index) promises **bit-identical
results on every backend at any worker count** for a fixed master seed.
These tests pin that promise at the two levels that matter: raw batches
and the full ``estimate_payoff_table`` fan-out, plus a regression test
that result assembly does not depend on job completion order.
"""

from __future__ import annotations

import pytest

from repro.algorithms import DegreeDiscount, RandomSeeds
from repro.cascade.estimate import SpreadEstimate
from repro.cascade.ic import IndependentCascade
from repro.core.payoff import estimate_payoff_table
from repro.core.strategy import StrategySpace
from repro.exec import Executor, SpreadJob
from repro.exec.backends import SerialBackend
from repro.graphs.generators import erdos_renyi


def _space():
    return StrategySpace([DegreeDiscount(0.2), RandomSeeds()])


def _table(executor):
    return estimate_payoff_table(
        erdos_renyi(50, 200, rng=3),
        IndependentCascade(0.2),
        _space(),
        num_groups=2,
        k=4,
        rounds=8,
        seed_draws=2,
        rng=2015,
        executor=executor,
    )


def _flatten(table):
    return {
        profile: [(e.mean, e.std, e.samples) for e in ests]
        for profile, ests in table.estimates.items()
    }


class TestPayoffTableDeterminism:
    def test_serial_vs_process_two_workers(self):
        serial = _flatten(_table(Executor("serial")))
        with Executor("process", workers=2) as ex:
            process = _flatten(_table(ex))
        assert serial == process

    def test_thread_backend_matches_serial(self):
        serial = _flatten(_table(Executor("serial")))
        with Executor("thread", workers=3) as ex:
            thread = _flatten(_table(ex))
        assert serial == thread

    def test_worker_count_is_irrelevant(self):
        with Executor("process", workers=1) as ex:
            one = _flatten(_table(ex))
        with Executor("process", workers=4) as ex:
            four = _flatten(_table(ex))
        assert one == four


class _ReversedBackend(SerialBackend):
    """Serial backend that completes jobs in reverse submission order."""

    def map_unordered(self, payloads):
        yield from reversed(list(super().map_unordered(payloads)))


class TestOrderIndependence:
    def test_out_of_order_completion_same_results(self, random_graph):
        model = IndependentCascade(0.15)
        jobs = [
            SpreadJob(graph=random_graph, model=model, seeds=(v,), rounds=5)
            for v in range(8)
        ]
        forward = Executor(SerialBackend()).estimates(jobs, rng=77)
        backward = Executor(_ReversedBackend()).estimates(jobs, rng=77)
        assert forward == backward

    def test_estimate_pooling_is_order_independent(self):
        a = SpreadEstimate.from_values([1.0, 2.0, 3.0])
        b = SpreadEstimate.from_values([10.0, 11.0])
        c = SpreadEstimate.from_values([5.0])
        pooled = SpreadEstimate.from_values([1.0, 2.0, 3.0, 10.0, 11.0, 5.0])
        left = (a + b) + c
        right = a + (b + c)
        swapped = (c + b) + a
        for combo in (left, right, swapped):
            assert combo.samples == pooled.samples
            assert combo.mean == pytest.approx(pooled.mean, rel=1e-12)
            assert combo.std == pytest.approx(pooled.std, rel=1e-12)

    def test_from_values_accepts_ndarray_without_copy(self):
        import numpy as np

        values = np.arange(6, dtype=float)
        est = SpreadEstimate.from_values(values)
        assert est.mean == pytest.approx(2.5)
        assert est.samples == 6
        # float64 input is consumed as-is: asarray must be a no-copy view.
        assert np.asarray(values, dtype=float) is values
