"""Tests for repro.graphs.generators."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs.generators import (
    _powerlaw_degrees,
    barabasi_albert,
    copying_model,
    erdos_renyi,
    karate_like_fixture,
    powerlaw_configuration,
)
from repro.utils.rng import as_rng


class TestPowerlawDegrees:
    def test_exact_sum(self):
        degrees = _powerlaw_degrees(100, 600, 2.5, as_rng(0))
        assert degrees.sum() == 600

    def test_min_degree_respected(self):
        degrees = _powerlaw_degrees(50, 300, 2.5, as_rng(1), min_degree=2)
        assert degrees.min() >= 2

    def test_infeasible_budget_rejected(self):
        with pytest.raises(GraphError, match="cannot support"):
            _powerlaw_degrees(100, 50, 2.5, as_rng(0))

    def test_heavy_tail_present(self):
        degrees = _powerlaw_degrees(2000, 12000, 2.3, as_rng(2))
        assert degrees.max() > 5 * degrees.mean()


class TestPowerlawConfiguration:
    def test_node_count(self):
        g = powerlaw_configuration(300, 900, rng=0)
        assert g.num_nodes == 300

    def test_edge_count_near_target(self):
        g = powerlaw_configuration(500, 2000, rng=0)
        # Symmetrized: ~2x undirected budget, minus collision losses.
        assert 0.75 * 4000 <= g.num_edges <= 4000

    def test_symmetric(self):
        g = powerlaw_configuration(100, 300, rng=3)
        for u, v in list(g.edges())[:50]:
            assert g.has_edge(v, u)

    def test_deterministic_for_seed(self):
        a = powerlaw_configuration(100, 300, rng=5)
        b = powerlaw_configuration(100, 300, rng=5)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_bad_exponent_rejected(self):
        with pytest.raises(GraphError, match="exponent"):
            powerlaw_configuration(100, 300, exponent=0.9)


class TestCommunityPowerlaw:
    def test_counts_hit_budget(self):
        from repro.graphs.generators import community_powerlaw

        g = community_powerlaw(600, 2400, rng=0)
        assert g.num_nodes == 600
        # Compensation loop lands within a few percent of 2x budget arcs.
        assert 0.95 * 4800 <= g.num_edges <= 4800 + 10

    def test_symmetric(self):
        from repro.graphs.generators import community_powerlaw

        g = community_powerlaw(200, 600, rng=1)
        for u, v in list(g.edges())[:60]:
            assert g.has_edge(v, u)

    def test_clustered_above_configuration_model(self):
        """Planted communities must produce real clustering, unlike the bare
        configuration model."""
        import networkx as nx

        from repro.graphs.generators import community_powerlaw

        g = community_powerlaw(500, 2000, mixing=0.05, rng=2)
        base = powerlaw_configuration(500, 2000, rng=2)
        cc_comm = nx.average_clustering(g.to_networkx().to_undirected())
        cc_base = nx.average_clustering(base.to_networkx().to_undirected())
        assert cc_comm > cc_base * 2

    def test_heavy_tail(self):
        from repro.graphs.generators import community_powerlaw

        g = community_powerlaw(1000, 4000, rng=3)
        degrees = g.out_degrees()
        assert degrees.max() > 4 * degrees.mean()

    def test_deterministic(self):
        from repro.graphs.generators import community_powerlaw

        a = community_powerlaw(200, 600, rng=5)
        b = community_powerlaw(200, 600, rng=5)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_mixing_validated(self):
        from repro.graphs.generators import community_powerlaw

        with pytest.raises(ValueError):
            community_powerlaw(100, 300, mixing=1.5)

    def test_explicit_community_count(self):
        from repro.graphs.generators import community_powerlaw

        g = community_powerlaw(300, 900, num_communities=3, rng=6)
        assert g.num_nodes == 300


class TestBarabasiAlbert:
    def test_counts(self):
        g = barabasi_albert(100, 3, rng=0)
        assert g.num_nodes == 100
        # (n - m) * m undirected edges, both directions.
        assert g.num_edges == 2 * (100 - 3) * 3

    def test_preferential_attachment_skew(self):
        g = barabasi_albert(500, 2, rng=1)
        degrees = g.out_degrees()
        assert degrees.max() > 4 * degrees.mean()

    def test_m_ge_n_rejected(self):
        with pytest.raises(GraphError, match="must be <"):
            barabasi_albert(3, 3)

    def test_deterministic(self):
        a = barabasi_albert(50, 2, rng=9)
        b = barabasi_albert(50, 2, rng=9)
        assert sorted(a.edges()) == sorted(b.edges())


class TestCopyingModel:
    def test_node_count(self):
        g = copying_model(200, rng=0)
        assert g.num_nodes == 200

    def test_in_degree_skew(self):
        g = copying_model(1000, out_edges=2, copy_probability=0.8, rng=1)
        in_deg = g.in_degrees()
        assert in_deg.max() > 8 * in_deg.mean()

    def test_out_edges_bounded(self):
        g = copying_model(300, out_edges=3, rng=2)
        # Beyond the bootstrap clique, each node adds at most 3 out-edges.
        assert g.out_degrees()[10:].max() <= 3

    def test_tiny_graph(self):
        g = copying_model(1, rng=0)
        assert g.num_nodes == 1
        assert g.num_edges == 0

    def test_copy_probability_validated(self):
        with pytest.raises(ValueError):
            copying_model(10, copy_probability=1.5)


class TestWattsStrogatz:
    def test_counts(self):
        from repro.graphs.generators import watts_strogatz

        g = watts_strogatz(100, neighbours=4, rewire_probability=0.0, rng=0)
        assert g.num_nodes == 100
        # Pure lattice: exactly n*k/2 undirected edges, both directions.
        assert g.num_edges == 2 * (100 * 4 // 2)

    def test_lattice_structure_without_rewiring(self):
        from repro.graphs.generators import watts_strogatz

        g = watts_strogatz(10, neighbours=2, rewire_probability=0.0, rng=1)
        for u in range(10):
            assert g.has_edge(u, (u + 1) % 10)

    def test_rewiring_changes_edges(self):
        from repro.graphs.generators import watts_strogatz

        lattice = watts_strogatz(60, 4, 0.0, rng=2)
        rewired = watts_strogatz(60, 4, 0.5, rng=2)
        assert sorted(lattice.edges()) != sorted(rewired.edges())

    def test_high_clustering_at_low_rewire(self):
        from repro.graphs.generators import watts_strogatz
        from repro.graphs.stats import clustering_coefficient

        g = watts_strogatz(200, 6, 0.05, rng=3)
        assert clustering_coefficient(g, samples=100, rng=4) > 0.3

    def test_odd_neighbours_rejected(self):
        from repro.graphs.generators import watts_strogatz

        with pytest.raises(GraphError, match="even"):
            watts_strogatz(20, 3)

    def test_neighbours_bounded(self):
        from repro.graphs.generators import watts_strogatz

        with pytest.raises(GraphError, match="must be <"):
            watts_strogatz(4, 4)

    def test_deterministic(self):
        from repro.graphs.generators import watts_strogatz

        a = watts_strogatz(50, 4, 0.2, rng=9)
        b = watts_strogatz(50, 4, 0.2, rng=9)
        assert sorted(a.edges()) == sorted(b.edges())


class TestErdosRenyi:
    def test_exact_edge_count(self):
        g = erdos_renyi(50, 200, rng=0)
        assert g.num_edges == 200

    def test_no_self_loops(self):
        g = erdos_renyi(20, 100, rng=1)
        for u, v in g.edges():
            assert u != v

    def test_max_density(self):
        g = erdos_renyi(5, 20, rng=2)
        assert g.num_edges == 20

    def test_over_max_rejected(self):
        with pytest.raises(GraphError, match="exceeds"):
            erdos_renyi(5, 21)

    def test_deterministic(self):
        a = erdos_renyi(30, 60, rng=4)
        b = erdos_renyi(30, 60, rng=4)
        assert sorted(a.edges()) == sorted(b.edges())


class TestKarateFixture:
    def test_canonical_counts(self):
        g = karate_like_fixture()
        assert g.num_nodes == 34
        assert g.num_edges == 156  # 78 undirected edges, both directions

    def test_symmetric(self):
        g = karate_like_fixture()
        for u, v in g.edges():
            assert g.has_edge(v, u)

    def test_hub_degrees(self):
        g = karate_like_fixture()
        degrees = g.out_degrees()
        # The two club leaders (nodes 33 and 0) are the highest-degree nodes.
        assert int(np.argmax(degrees)) in (0, 33)
        assert degrees[33] == 17
        assert degrees[0] == 16
