"""Symbol-table resolution tests: re-exports, star imports, aliases, cycles."""

from repro.lint.project.facts import extract_facts
from repro.lint.project.symbols import SymbolTable


def build_table(sources: dict[str, str]) -> SymbolTable:
    modules = {
        mod: extract_facts(src, mod, f"{mod.replace('.', '/')}.py")
        for mod, src in sources.items()
    }
    return SymbolTable(modules)


class TestDirectResolution:
    def test_local_definition(self):
        table = build_table({"pkg.mod": "def fn():\n    return 1\n"})
        assert table.resolve("pkg.mod", "fn") == "pkg.mod:fn"

    def test_class_method(self):
        table = build_table(
            {"pkg.mod": "class C:\n    def meth(self):\n        return 1\n"}
        )
        assert table.resolve("pkg.mod", "C.meth") == "pkg.mod:C.meth"

    def test_unknown_name_is_none(self):
        table = build_table({"pkg.mod": "x = 1\n"})
        assert table.resolve("pkg.mod", "missing") is None

    def test_external_module_is_none(self):
        table = build_table({"pkg.mod": "import numpy as np\n"})
        assert table.resolve("pkg.mod", "np.zeros") is None


class TestImports:
    def test_from_import(self):
        table = build_table(
            {
                "pkg.util": "def helper():\n    return 1\n",
                "pkg.main": "from pkg.util import helper\n",
            }
        )
        assert table.resolve("pkg.main", "helper") == "pkg.util:helper"

    def test_aliased_from_import(self):
        table = build_table(
            {
                "pkg.util": "def helper():\n    return 1\n",
                "pkg.main": "from pkg.util import helper as h\n",
            }
        )
        assert table.resolve("pkg.main", "h") == "pkg.util:helper"

    def test_module_alias_attribute(self):
        table = build_table(
            {
                "pkg.util": "def helper():\n    return 1\n",
                "pkg.main": "import pkg.util as u\n",
            }
        )
        assert table.resolve("pkg.main", "u.helper") == "pkg.util:helper"

    def test_relative_import(self):
        source = "from .util import helper\n"
        table = build_table(
            {
                "pkg.util": "def helper():\n    return 1\n",
                "pkg.main": source,
            }
        )
        assert table.resolve("pkg.main", "helper") == "pkg.util:helper"


class TestReExports:
    def test_init_reexport_chain(self):
        table = build_table(
            {
                "pkg.impl": "def thing():\n    return 1\n",
                "pkg": "from pkg.impl import thing\n",
                "pkg.user": "from pkg import thing\n",
            }
        )
        assert table.resolve("pkg.user", "thing") == "pkg.impl:thing"

    def test_two_hop_reexport(self):
        table = build_table(
            {
                "pkg.deep.impl": "def thing():\n    return 1\n",
                "pkg.deep": "from pkg.deep.impl import thing\n",
                "pkg": "from pkg.deep import thing\n",
                "pkg.user": "from pkg import thing\n",
            }
        )
        assert table.resolve("pkg.user", "thing") == "pkg.deep.impl:thing"

    def test_star_import_through_init(self):
        table = build_table(
            {
                "pkg.impl": "def thing():\n    return 1\n",
                "pkg": "from pkg.impl import *\n",
                "pkg.user": "from pkg import thing\n",
            }
        )
        assert table.resolve("pkg.user", "thing") == "pkg.impl:thing"

    def test_star_import_in_module_scope(self):
        table = build_table(
            {
                "pkg.impl": "def thing():\n    return 1\n",
                "pkg.user": "from pkg.impl import *\n",
            }
        )
        assert table.resolve("pkg.user", "thing") == "pkg.impl:thing"


class TestCycles:
    def test_import_cycle_terminates(self):
        table = build_table(
            {
                "pkg.a": "from pkg.b import missing\n",
                "pkg.b": "from pkg.a import missing\n",
            }
        )
        assert table.resolve("pkg.a", "missing") is None

    def test_star_import_cycle_terminates(self):
        table = build_table(
            {
                "pkg.a": "from pkg.b import *\n",
                "pkg.b": "from pkg.a import *\n",
            }
        )
        assert table.resolve("pkg.a", "anything") is None


class TestMethodResolution:
    def test_inherited_method_found_on_base(self):
        table = build_table(
            {
                "pkg.base": "class Base:\n    def meth(self):\n        return 1\n",
                "pkg.sub": (
                    "from pkg.base import Base\n"
                    "class Sub(Base):\n    pass\n"
                ),
            }
        )
        assert table.resolve_method("pkg.sub:Sub", "meth") == "pkg.base:Base.meth"

    def test_override_wins_over_base(self):
        table = build_table(
            {
                "pkg.base": "class Base:\n    def meth(self):\n        return 1\n",
                "pkg.sub": (
                    "from pkg.base import Base\n"
                    "class Sub(Base):\n"
                    "    def meth(self):\n        return 2\n"
                ),
            }
        )
        assert table.resolve_method("pkg.sub:Sub", "meth") == "pkg.sub:Sub.meth"

    def test_inheritance_cycle_terminates(self):
        table = build_table(
            {
                "pkg.a": "from pkg.b import B\nclass A(B):\n    pass\n",
                "pkg.b": "from pkg.a import A\nclass B(A):\n    pass\n",
            }
        )
        assert table.resolve_method("pkg.a:A", "missing") is None

    def test_subclasses_of(self):
        table = build_table(
            {
                "pkg.base": "class Base:\n    pass\n",
                "pkg.sub": (
                    "from pkg.base import Base\n"
                    "class Mid(Base):\n    pass\n"
                    "class Leaf(Mid):\n    pass\n"
                ),
            }
        )
        subs = set(table.subclasses_of("pkg.base:Base"))
        assert subs == {"pkg.sub:Mid", "pkg.sub:Leaf"}
