"""Tests for repro.graphs.loaders (SNAP edge-list I/O)."""

import gzip

import pytest

from repro.errors import GraphFormatError
from repro.graphs.digraph import DiGraph
from repro.graphs.loaders import load_edge_list, save_edge_list


class TestLoadEdgeList:
    def test_basic_load(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# comment\n0 1\n1 2\n")
        graph, labels = load_edge_list(path)
        assert graph.num_nodes == 3
        assert graph.num_edges == 2
        assert labels == {0: 0, 1: 1, 2: 2}

    def test_sparse_labels_compacted(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("100 5\n5 7\n")
        graph, labels = load_edge_list(path)
        assert graph.num_nodes == 3
        assert set(labels) == {5, 7, 100}
        assert graph.has_edge(labels[100], labels[5])

    def test_undirected_load(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n")
        graph, _ = load_edge_list(path, directed=False)
        assert graph.num_edges == 2

    def test_tab_separated(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0\t1\n")
        graph, _ = load_edge_list(path)
        assert graph.num_edges == 1

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("\n0 1\n\n")
        graph, _ = load_edge_list(path)
        assert graph.num_edges == 1

    def test_gzip_load(self, tmp_path):
        path = tmp_path / "g.txt.gz"
        with gzip.open(path, "wt") as handle:
            handle.write("0 1\n1 2\n")
        graph, _ = load_edge_list(path)
        assert graph.num_edges == 2

    def test_empty_file(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# only comments\n")
        graph, labels = load_edge_list(path)
        assert graph.num_nodes == 0
        assert labels == {}

    def test_malformed_line_reports_location(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\nonlyone\n")
        with pytest.raises(GraphFormatError, match=":2"):
            load_edge_list(path)

    def test_non_integer_label_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("a b\n")
        with pytest.raises(GraphFormatError, match="non-integer"):
            load_edge_list(path)


class TestSaveEdgeList:
    def test_round_trip(self, tmp_path, karate):
        path = tmp_path / "k.txt"
        save_edge_list(karate, path)
        loaded, _ = load_edge_list(path)
        assert loaded.num_nodes == karate.num_nodes
        assert sorted(loaded.edges()) == sorted(karate.edges())

    def test_header_written_as_comments(self, tmp_path):
        graph = DiGraph(2, [(0, 1)])
        path = tmp_path / "g.txt"
        save_edge_list(graph, path, header="hello\nworld")
        text = path.read_text()
        assert "# hello" in text
        assert "# world" in text
        assert "# Nodes: 2 Edges: 1" in text

    def test_gzip_round_trip(self, tmp_path):
        graph = DiGraph(3, [(0, 1), (2, 0)])
        path = tmp_path / "g.txt.gz"
        save_edge_list(graph, path)
        loaded, _ = load_edge_list(path)
        assert sorted(loaded.edges()) == sorted(graph.edges())
