"""Tests for support enumeration, Lemke-Howson, and replicator dynamics —
including cross-solver agreement on random games."""

import numpy as np
import pytest

from repro.errors import GameError
from repro.game.lemke_howson import lemke_howson
from repro.game.mixed import regret_of_symmetric_mixture
from repro.game.normal_form import NormalFormGame
from repro.game.replicator import replicator_dynamics
from repro.game.support_enum import support_enumeration


def matching_pennies() -> NormalFormGame:
    a = np.array([[1.0, -1.0], [-1.0, 1.0]])
    return NormalFormGame.from_bimatrix(a, -a)


def hawk_dove() -> NormalFormGame:
    return NormalFormGame.from_bimatrix(np.array([[0.0, 3.0], [1.0, 2.0]]))


def _is_equilibrium(game: NormalFormGame, x: np.ndarray, y: np.ndarray, tol=1e-6):
    a, b = game.bimatrix()
    row_payoffs = a @ y
    col_payoffs = x @ b
    value_x = x @ row_payoffs
    value_y = col_payoffs @ y
    return row_payoffs.max() <= value_x + tol and col_payoffs.max() <= value_y + tol


class TestSupportEnumeration:
    def test_matching_pennies_unique_mixed(self):
        eqs = support_enumeration(matching_pennies())
        assert len(eqs) == 1
        x, y = eqs[0]
        assert np.allclose(x, [0.5, 0.5])
        assert np.allclose(y, [0.5, 0.5])

    def test_pd_unique_pure(self):
        a = np.array([[3.0, 0.0], [5.0, 1.0]])
        eqs = support_enumeration(NormalFormGame.from_bimatrix(a))
        assert len(eqs) == 1
        x, y = eqs[0]
        assert np.allclose(x, [0, 1]) and np.allclose(y, [0, 1])

    def test_hawk_dove_three_equilibria(self):
        eqs = support_enumeration(hawk_dove())
        assert len(eqs) == 3  # two asymmetric pure + one symmetric mixed

    def test_all_results_are_equilibria(self):
        for game in (matching_pennies(), hawk_dove()):
            for x, y in support_enumeration(game):
                assert _is_equilibrium(game, x, y)

    def test_non_square_game(self):
        a = np.array([[1.0, 0.0, -1.0], [0.0, 1.0, 2.0]])
        b = np.array([[0.5, 1.0, 0.0], [1.0, 0.0, 0.3]])
        game = NormalFormGame(np.stack([a, b], axis=-1))
        eqs = support_enumeration(game)
        assert eqs  # at least one exists
        for x, y in eqs:
            assert _is_equilibrium(game, x, y)

    def test_rejects_three_players(self):
        with pytest.raises(GameError, match="2 players"):
            support_enumeration(NormalFormGame(np.zeros((2, 2, 2, 3))))


class TestLemkeHowson:
    def test_matching_pennies(self):
        x, y = lemke_howson(matching_pennies())
        assert np.allclose(x, [0.5, 0.5])
        assert np.allclose(y, [0.5, 0.5])

    def test_pd(self):
        a = np.array([[3.0, 0.0], [5.0, 1.0]])
        game = NormalFormGame.from_bimatrix(a)
        x, y = lemke_howson(game)
        assert np.allclose(x, [0, 1]) and np.allclose(y, [0, 1])

    def test_every_initial_label_yields_an_equilibrium(self):
        game = hawk_dove()
        for label in range(4):
            x, y = lemke_howson(game, initial_label=label)
            assert _is_equilibrium(game, x, y)

    def test_result_in_support_enumeration_set(self):
        game = hawk_dove()
        eqs = support_enumeration(game)
        x, y = lemke_howson(game)
        assert any(
            np.allclose(x, ex, atol=1e-6) and np.allclose(y, ey, atol=1e-6)
            for ex, ey in eqs
        )

    def test_negative_payoffs_handled(self):
        a = np.array([[-5.0, -1.0], [-2.0, -4.0]])
        b = np.array([[-1.0, -3.0], [-2.0, -1.0]])
        game = NormalFormGame(np.stack([a, b], axis=-1))
        x, y = lemke_howson(game)
        assert _is_equilibrium(game, x, y)

    def test_bad_label_rejected(self):
        with pytest.raises(GameError, match="initial_label"):
            lemke_howson(matching_pennies(), initial_label=9)

    def test_rejects_three_players(self):
        with pytest.raises(GameError, match="2 players"):
            lemke_howson(NormalFormGame(np.zeros((2, 2, 2, 3))))

    @pytest.mark.parametrize("seed", range(8))
    def test_random_games_agree_with_support_enum(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.random((3, 3))
        b = rng.random((3, 3))
        game = NormalFormGame(np.stack([a, b], axis=-1))
        x, y = lemke_howson(game)
        assert _is_equilibrium(game, x, y, tol=1e-5)
        eqs = support_enumeration(game, atol=1e-7)
        assert any(
            np.allclose(x, ex, atol=1e-4) and np.allclose(y, ey, atol=1e-4)
            for ex, ey in eqs
        )


class TestReplicatorDynamics:
    def test_rps_time_average_near_uniform(self):
        a = np.array([[0.0, -1.0, 1.0], [1.0, 0.0, -1.0], [-1.0, 1.0, 0.0]])
        game = NormalFormGame.from_bimatrix(a)
        # The discrete map spirals away from the unstable interior point,
        # but the time average converges to the equilibrium.
        mixture = replicator_dynamics(game, steps=3000, rng=0, average=True)
        assert np.allclose(mixture, [1 / 3, 1 / 3, 1 / 3], atol=0.1)
        assert mixture.sum() == pytest.approx(1.0)

    def test_rps_endpoint_leaves_interior(self):
        a = np.array([[0.0, -1.0, 1.0], [1.0, 0.0, -1.0], [-1.0, 1.0, 0.0]])
        game = NormalFormGame.from_bimatrix(a)
        endpoint = replicator_dynamics(game, steps=3000, rng=0)
        assert endpoint.min() < 0.05  # spiraled out, as theory predicts

    def test_dominant_strategy_absorbs(self):
        a = np.array([[3.0, 0.0], [5.0, 1.0]])
        game = NormalFormGame.from_bimatrix(a)
        mixture = replicator_dynamics(game, steps=2000, rng=1)
        assert mixture[1] > 0.99

    def test_hawk_dove_finds_interior(self):
        mixture = replicator_dynamics(hawk_dove(), steps=3000, rng=2)
        assert regret_of_symmetric_mixture(hawk_dove(), mixture) < 1e-3
        assert mixture[0] == pytest.approx(0.5, abs=0.01)

    def test_explicit_initial(self):
        mixture = replicator_dynamics(
            hawk_dove(), steps=500, initial=np.array([0.9, 0.1])
        )
        assert mixture.sum() == pytest.approx(1.0)

    def test_bad_initial_shape(self):
        with pytest.raises(GameError):
            replicator_dynamics(hawk_dove(), initial=np.array([1.0]))

    def test_requires_square(self):
        game = NormalFormGame.from_bimatrix(np.zeros((2, 3)), np.zeros((2, 3)))
        with pytest.raises(GameError):
            replicator_dynamics(game)

    def test_three_player_volunteers(self):
        from tests.test_game_mixed import volunteers_dilemma

        game = volunteers_dilemma(3)
        mixture = replicator_dynamics(game, steps=8000, rng=3)
        assert mixture[0] == pytest.approx(1 - 0.5**0.5, abs=0.01)
