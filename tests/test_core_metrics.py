"""Tests for jaccard overlap and the Theorem-1 coefficient estimators."""

import pytest

from repro.algorithms.degree_discount import DegreeDiscount
from repro.algorithms.heuristics import HighDegree, RandomSeeds
from repro.cascade.ic import IndependentCascade
from repro.core.metrics import (
    estimate_coefficients,
    jaccard,
    seed_overlap_profile,
)


class TestJaccard:
    def test_identical(self):
        assert jaccard([1, 2, 3], [3, 2, 1]) == 1.0

    def test_disjoint(self):
        assert jaccard([1, 2], [3, 4]) == 0.0

    def test_partial(self):
        assert jaccard([1, 2, 3], [2, 3, 4]) == pytest.approx(2 / 4)

    def test_empty_sets(self):
        assert jaccard([], []) == 1.0

    def test_one_empty(self):
        assert jaccard([1], []) == 0.0

    def test_duplicates_ignored(self):
        assert jaccard([1, 1, 2], [1, 2, 2]) == 1.0


class TestSeedOverlapProfile:
    def test_deterministic_algorithms_overlap_fully(self, karate):
        # HighDegree with the same rng stream still jitters ties, but the
        # top-degree karate nodes are unique, so overlap is high.
        est = seed_overlap_profile(
            karate, HighDegree(), HighDegree(), k=3, repeats=4, rng=0
        )
        assert est.mean > 0.9

    def test_random_vs_random_overlaps_little(self, karate):
        est = seed_overlap_profile(
            karate, RandomSeeds(), RandomSeeds(), k=3, repeats=20, rng=1
        )
        assert est.mean < 0.3

    def test_same_algorithm_overlaps_more_than_cross(self, karate):
        """The Figure 3/4 phenomenon: same-algorithm pairs have larger
        overlap than mixed pairs."""
        same = seed_overlap_profile(
            karate, DegreeDiscount(0.1), DegreeDiscount(0.1), 4, 15, rng=2
        )
        cross = seed_overlap_profile(
            karate, DegreeDiscount(0.1), RandomSeeds(), 4, 15, rng=3
        )
        assert same.mean > cross.mean

    def test_bounds(self, karate):
        est = seed_overlap_profile(
            karate, RandomSeeds(), HighDegree(), 5, 10, rng=4
        )
        assert 0.0 <= est.mean <= 1.0


class TestEstimateCoefficients:
    @pytest.fixture
    def coeff(self, karate):
        return estimate_coefficients(
            karate,
            IndependentCascade(0.15),
            DegreeDiscount(0.15),
            RandomSeeds(),
            k=4,
            rounds=150,
            rng=5,
        )

    def test_g_exceeds_h_for_stronger_strategy(self, coeff):
        # DegreeDiscount spreads more than random seeds.
        assert coeff.g > coeff.h

    def test_lambda_gamma_near_theorem_interval(self, coeff):
        # Theorem 1: lambda, gamma in [1/2, 1 - eps/2g]; allow MC slack.
        assert 0.4 <= coeff.lam <= 1.05
        assert 0.4 <= coeff.gamma <= 1.05

    def test_alpha_beta_sum_at_least_one(self, coeff):
        # Corollary 1 lower bound (with MC slack).
        assert coeff.alpha_plus_beta >= 0.9

    def test_bounds_structure(self, coeff):
        bounds = coeff.theorem1_bounds()
        assert set(bounds) == {"lambda", "gamma", "alpha+beta"}
        lo, hi = bounds["lambda"]
        assert lo == 0.5
        assert hi <= 1.0

    def test_as_row_keys(self, coeff):
        row = coeff.as_row()
        assert {"g", "h", "lambda", "gamma", "alpha", "beta", "alpha+beta"} == set(row)

    def test_epsilons_non_negative(self, coeff):
        assert coeff.epsilon_same_1 >= 0
        assert coeff.epsilon_same_2 >= 0
        assert coeff.epsilon_cross >= 0

    def test_identical_deterministic_seeds_give_half(self, karate):
        """When both groups pick exactly the same seeds, λ must be 1/2 (the
        paper's boundary case: 'if a network always generates the same
        initial seeds ... the values of λ and γ are 1/2')."""
        coeff = estimate_coefficients(
            karate,
            IndependentCascade(0.15),
            HighDegree(),  # deterministic top-degree picks
            RandomSeeds(),
            k=3,
            rounds=400,
            rng=6,
        )
        assert coeff.lam == pytest.approx(0.5, abs=0.07)
