"""Tests for repro.obs.metrics: counters, gauges, histograms, registry."""

import math

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    get_registry,
    histogram,
    reset,
    snapshot,
)


@pytest.fixture(autouse=True)
def _clean_registry():
    """Zero the process-wide registry around every test."""
    reset()
    yield
    reset()


class TestInstruments:
    def test_counter_accumulates(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5
        c.reset()
        assert c.value == 0

    def test_gauge_keeps_last_value(self):
        g = Gauge("x")
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5
        g.reset()
        assert g.value == 0.0

    def test_histogram_aggregates(self):
        h = Histogram("x")
        for value in (1.0, 2.0, 3.0, 4.0):
            h.observe(value)
        assert h.count == 4
        assert h.total == 10.0
        assert h.mean == pytest.approx(2.5)
        # Population std of {1,2,3,4}.
        assert h.std == pytest.approx(math.sqrt(1.25))
        assert h.min == 1.0
        assert h.max == 4.0

    def test_histogram_empty_is_well_defined(self):
        h = Histogram("x")
        assert h.mean == 0.0
        assert h.std == 0.0
        d = h.as_dict()
        assert d["count"] == 0
        assert d["min"] == 0.0 and d["max"] == 0.0

    def test_histogram_reset(self):
        h = Histogram("x")
        h.observe(7.0)
        h.reset()
        assert h.count == 0
        assert h.total == 0.0
        h.observe(2.0)
        assert h.mean == 2.0


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")
        assert reg.gauge("g") is reg.gauge("g")

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("sims").inc(3)
        reg.gauge("nodes").set(34)
        reg.histogram("secs").observe(0.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"sims": 3}
        assert snap["gauges"] == {"nodes": 34.0}
        assert snap["histograms"]["secs"]["count"] == 1
        assert snap["histograms"]["secs"]["mean"] == 0.5

    def test_reset_zeroes_in_place(self):
        # Modules cache handles at import time; reset() must keep those
        # handles live rather than replacing the instruments.
        reg = MetricsRegistry()
        handle = reg.counter("cached")
        handle.inc(10)
        reg.reset()
        assert handle.value == 0
        assert reg.counter("cached") is handle
        handle.inc()
        assert reg.snapshot()["counters"]["cached"] == 1

    def test_rows_for_table_rendering(self):
        reg = MetricsRegistry()
        reg.counter("b.count").inc(2)
        reg.histogram("a.secs").observe(1.0)
        rows = reg.rows()
        assert {row["metric"] for row in rows} == {"b.count", "a.secs"}
        kinds = {row["metric"]: row["kind"] for row in rows}
        assert kinds == {"b.count": "counter", "a.secs": "histogram"}


class TestDefaultRegistry:
    def test_module_helpers_hit_default_registry(self):
        counter("unit.test").inc(2)
        histogram("unit.secs").observe(1.5)
        snap = snapshot()
        assert snap["counters"]["unit.test"] == 2
        assert snap["histograms"]["unit.secs"]["count"] == 1
        assert get_registry().counter("unit.test").value == 2

    def test_reset_helper(self):
        handle = counter("unit.test")
        handle.inc(5)
        reset()
        assert handle.value == 0


class TestPipelineInstrumentation:
    def test_cascade_simulations_counted(self, karate):
        from repro.cascade.ic import IndependentCascade
        from repro.cascade.simulate import estimate_competitive_spread
        from repro.exec import Executor

        # Cascade-level metrics live in whichever process runs the
        # simulation; pin a serial executor so they land in this registry
        # regardless of the REPRO_BACKEND the suite runs under.
        estimate_competitive_spread(
            karate,
            IndependentCascade(0.2),
            [[0], [33]],
            rounds=7,
            rng=0,
            executor=Executor("serial"),
        )
        snap = snapshot()
        assert snap["counters"]["cascade.simulations"] == 7
        assert snap["counters"]["estimate.competitive_calls"] == 1
        assert snap["histograms"]["cascade.group1.spread"]["count"] == 7
        assert snap["histograms"]["cascade.group2.spread"]["count"] == 7

    def test_seed_collisions_counted(self, karate):
        from repro.cascade.ic import IndependentCascade
        from repro.cascade.simulate import estimate_competitive_spread
        from repro.exec import Executor

        # Identical seed sets: every seed is contested in every simulation.
        estimate_competitive_spread(
            karate,
            IndependentCascade(0.2),
            [[0, 1], [0, 1]],
            rounds=3,
            rng=0,
            executor=Executor("serial"),
        )
        assert snapshot()["counters"]["cascade.seed_collisions"] == 6

    def test_algorithm_selection_timed(self, karate):
        from repro.algorithms.heuristics import HighDegree

        HighDegree().select(karate, 3)
        snap = snapshot()
        assert snap["counters"]["algorithms.selections"] == 1
        assert snap["histograms"]["algorithms.degree.select_seconds"]["count"] == 1

    def test_payoff_table_profiles_counted(self, karate):
        from repro.algorithms.heuristics import HighDegree, RandomSeeds
        from repro.cascade.ic import IndependentCascade
        from repro.core.payoff import estimate_payoff_table
        from repro.core.strategy import StrategySpace

        space = StrategySpace([HighDegree(), RandomSeeds()])
        estimate_payoff_table(
            karate,
            IndependentCascade(0.1),
            space,
            num_groups=2,
            k=2,
            rounds=2,
            rng=0,
            symmetry="full",
        )
        snap = snapshot()
        assert snap["counters"]["payoff.tables_estimated"] == 1
        # Full enumeration: z^r = 2 strategies ^ 2 groups = 4 profiles.
        assert snap["counters"]["payoff.profiles_estimated"] == 4
        assert snap["histograms"]["payoff.profile_seconds"]["count"] == 4
