"""Tests for repro.obs.metrics: counters, gauges, histograms, registry."""

import math

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    get_registry,
    histogram,
    reset,
    snapshot,
)


@pytest.fixture(autouse=True)
def _clean_registry():
    """Zero the process-wide registry around every test."""
    reset()
    yield
    reset()


class TestInstruments:
    def test_counter_accumulates(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5
        c.reset()
        assert c.value == 0

    def test_gauge_keeps_last_value(self):
        g = Gauge("x")
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5
        g.reset()
        assert g.value == 0.0

    def test_histogram_aggregates(self):
        h = Histogram("x")
        for value in (1.0, 2.0, 3.0, 4.0):
            h.observe(value)
        assert h.count == 4
        assert h.total == 10.0
        assert h.mean == pytest.approx(2.5)
        # Population std of {1,2,3,4}.
        assert h.std == pytest.approx(math.sqrt(1.25))
        assert h.min == 1.0
        assert h.max == 4.0

    def test_histogram_empty_is_well_defined(self):
        h = Histogram("x")
        assert h.mean == 0.0
        assert h.std == 0.0
        d = h.as_dict()
        assert d["count"] == 0
        assert d["min"] == 0.0 and d["max"] == 0.0

    def test_histogram_reset(self):
        h = Histogram("x")
        h.observe(7.0)
        h.reset()
        assert h.count == 0
        assert h.total == 0.0
        h.observe(2.0)
        assert h.mean == 2.0


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")
        assert reg.gauge("g") is reg.gauge("g")

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("sims").inc(3)
        reg.gauge("nodes").set(34)
        reg.histogram("secs").observe(0.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"sims": 3}
        assert snap["gauges"] == {"nodes": 34.0}
        assert snap["histograms"]["secs"]["count"] == 1
        assert snap["histograms"]["secs"]["mean"] == 0.5

    def test_reset_zeroes_in_place(self):
        # Modules cache handles at import time; reset() must keep those
        # handles live rather than replacing the instruments.
        reg = MetricsRegistry()
        handle = reg.counter("cached")
        handle.inc(10)
        reg.reset()
        assert handle.value == 0
        assert reg.counter("cached") is handle
        handle.inc()
        assert reg.snapshot()["counters"]["cached"] == 1

    def test_rows_for_table_rendering(self):
        reg = MetricsRegistry()
        reg.counter("b.count").inc(2)
        reg.histogram("a.secs").observe(1.0)
        rows = reg.rows()
        assert {row["metric"] for row in rows} == {"b.count", "a.secs"}
        kinds = {row["metric"]: row["kind"] for row in rows}
        assert kinds == {"b.count": "counter", "a.secs": "histogram"}


class TestDefaultRegistry:
    def test_module_helpers_hit_default_registry(self):
        counter("unit.test").inc(2)
        histogram("unit.secs").observe(1.5)
        snap = snapshot()
        assert snap["counters"]["unit.test"] == 2
        assert snap["histograms"]["unit.secs"]["count"] == 1
        assert get_registry().counter("unit.test").value == 2

    def test_reset_helper(self):
        handle = counter("unit.test")
        handle.inc(5)
        reset()
        assert handle.value == 0


class TestPipelineInstrumentation:
    def test_cascade_simulations_counted(self, karate):
        from repro.cascade.ic import IndependentCascade
        from repro.cascade.simulate import estimate_competitive_spread
        from repro.exec import Executor

        # Cascade-level metrics live in whichever process runs the
        # simulation; pin a serial executor so they land in this registry
        # regardless of the REPRO_BACKEND the suite runs under.
        estimate_competitive_spread(
            karate,
            IndependentCascade(0.2),
            [[0], [33]],
            rounds=7,
            rng=0,
            executor=Executor("serial"),
        )
        snap = snapshot()
        assert snap["counters"]["cascade.simulations"] == 7
        assert snap["counters"]["estimate.competitive_calls"] == 1
        assert snap["histograms"]["cascade.group1.spread"]["count"] == 7
        assert snap["histograms"]["cascade.group2.spread"]["count"] == 7

    def test_seed_collisions_counted(self, karate):
        from repro.cascade.ic import IndependentCascade
        from repro.cascade.simulate import estimate_competitive_spread
        from repro.exec import Executor

        # Identical seed sets: every seed is contested in every simulation.
        estimate_competitive_spread(
            karate,
            IndependentCascade(0.2),
            [[0, 1], [0, 1]],
            rounds=3,
            rng=0,
            executor=Executor("serial"),
        )
        assert snapshot()["counters"]["cascade.seed_collisions"] == 6

    def test_algorithm_selection_timed(self, karate):
        from repro.algorithms.heuristics import HighDegree

        HighDegree().select(karate, 3)
        snap = snapshot()
        assert snap["counters"]["algorithms.selections"] == 1
        assert snap["histograms"]["algorithms.degree.select_seconds"]["count"] == 1

    def test_payoff_table_profiles_counted(self, karate):
        from repro.algorithms.heuristics import HighDegree, RandomSeeds
        from repro.cascade.ic import IndependentCascade
        from repro.core.payoff import estimate_payoff_table
        from repro.core.strategy import StrategySpace

        space = StrategySpace([HighDegree(), RandomSeeds()])
        estimate_payoff_table(
            karate,
            IndependentCascade(0.1),
            space,
            num_groups=2,
            k=2,
            rounds=2,
            rng=0,
            symmetry="full",
        )
        snap = snapshot()
        assert snap["counters"]["payoff.tables_estimated"] == 1
        # Full enumeration: z^r = 2 strategies ^ 2 groups = 4 profiles.
        assert snap["counters"]["payoff.profiles_estimated"] == 4
        assert snap["histograms"]["payoff.profile_seconds"]["count"] == 4


class TestWelfordNumerics:
    def test_std_survives_catastrophic_cancellation(self):
        # The naive sum/sumsq formula returns garbage (often 0 or NaN, and
        # historically ~32768 here) for large-offset data; Welford keeps
        # the exact answer: population std of {0,1,2} shifted by 1e9.
        h = Histogram("x")
        for value in (1e9 + 0.0, 1e9 + 1.0, 1e9 + 2.0):
            h.observe(value)
        assert h.mean == pytest.approx(1e9 + 1.0)
        assert h.std == pytest.approx(math.sqrt(2.0 / 3.0), rel=1e-9)

    def test_as_dict_keys_are_stable(self):
        h = Histogram("x")
        h.observe(2.0)
        assert set(h.as_dict()) == {
            "count", "total", "mean", "std", "min", "max",
        }

    def test_merge_state_matches_single_stream(self):
        a, b, c = Histogram("x"), Histogram("x"), Histogram("x")
        left, right = (1e9, 1e9 + 1.0, 3.0), (2.5, 1e9 + 2.0)
        for v in left:
            a.observe(v)
        for v in right:
            b.observe(v)
        for v in left + right:
            c.observe(v)
        a.merge_state(b.state())
        assert a.count == c.count
        assert a.total == pytest.approx(c.total)
        assert a.mean == pytest.approx(c.mean)
        assert a.std == pytest.approx(c.std, rel=1e-9)
        assert a.min == c.min and a.max == c.max

    def test_merge_state_with_empty_sides(self):
        h = Histogram("x")
        h.observe(5.0)
        h.merge_state(Histogram("y").state())  # empty delta: no-op
        assert h.count == 1 and h.mean == 5.0
        empty = Histogram("z")
        empty.merge_state(h.state())
        assert empty.count == 1 and empty.mean == 5.0


class TestThreadSafety:
    def test_concurrent_counter_and_histogram_updates(self):
        import threading

        registry = MetricsRegistry()
        c = registry.counter("hits")
        h = registry.histogram("lat")
        g = registry.gauge("level")
        per_thread, threads = 2000, 8

        def work(tid):
            for i in range(per_thread):
                c.inc()
                h.observe(1.0)
                g.set(float(tid))

        pool = [
            threading.Thread(target=work, args=(t,)) for t in range(threads)
        ]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert c.value == per_thread * threads
        assert h.count == per_thread * threads
        assert h.total == pytest.approx(per_thread * threads)
        assert g.value in {float(t) for t in range(threads)}

    def test_concurrent_instrument_creation_is_deduplicated(self):
        import threading

        registry = MetricsRegistry()
        seen = []
        barrier = threading.Barrier(8)

        def create():
            barrier.wait()
            seen.append(registry.counter("shared"))

        pool = [threading.Thread(target=create) for _ in range(8)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert all(instrument is seen[0] for instrument in seen)


class TestStateDeltas:
    def test_counter_delta_and_merge(self):
        from repro.obs.metrics import delta_state

        registry = MetricsRegistry()
        registry.counter("jobs").inc(3)
        before = registry.state()
        registry.counter("jobs").inc(2)
        registry.counter("fresh").inc()
        delta = delta_state(before, registry.state())
        assert delta["counters"] == {"jobs": 2.0, "fresh": 1.0}

        target = MetricsRegistry()
        target.counter("jobs").inc(10)
        target.merge_delta(delta)
        assert target.counter("jobs").value == 12
        assert target.counter("fresh").value == 1

    def test_gauge_delta_requires_a_write(self):
        from repro.obs.metrics import delta_state

        registry = MetricsRegistry()
        registry.gauge("level").set(4.0)
        before = registry.state()
        delta = delta_state(before, registry.state())
        assert delta["gauges"] == {}  # no write since the snapshot
        registry.gauge("level").set(4.0)  # same value, but written
        delta = delta_state(before, registry.state())
        assert delta["gauges"] == {"level": {"value": 4.0}}

    def test_histogram_window_delta_reconstructs_tail(self):
        from repro.obs.metrics import delta_state

        registry = MetricsRegistry()
        h = registry.histogram("lat")
        for v in (1e9, 1e9 + 1.0):
            h.observe(v)
        before = registry.state()
        tail = (1e9 + 2.0, 3.0, 7.5)
        for v in tail:
            h.observe(v)
        delta = delta_state(before, registry.state())

        expected = Histogram("lat")
        for v in tail:
            expected.observe(v)
        got = delta["histograms"]["lat"]
        assert got["count"] == expected.count
        assert got["mean"] == pytest.approx(expected.mean)
        # Window min/max are after-extrema by design (idempotent under
        # re-merge), so they bound — rather than equal — the tail extrema.
        assert got["min"] <= min(tail)
        assert got["max"] >= max(tail)

        target = MetricsRegistry()
        target.merge_delta(delta)
        merged = target.histogram("lat")
        assert merged.count == expected.count
        assert merged.mean == pytest.approx(expected.mean)

    def test_registry_state_roundtrips_through_merge(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(5)
        registry.gauge("b").set(2.5)
        registry.histogram("c").observe(1.0)
        registry.histogram("c").observe(9.0)

        from repro.obs.metrics import delta_state

        delta = delta_state(MetricsRegistry().state(), registry.state())
        clone = MetricsRegistry()
        clone.merge_delta(delta)
        assert clone.snapshot() == registry.snapshot()
