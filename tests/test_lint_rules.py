"""Per-rule fixture tests for reprolint (RP001–RP009).

Each rule gets positive snippets (must flag), negative snippets (must stay
silent), and a suppressed variant (flag silenced by an inline
``# reprolint: disable`` comment).  Scoping is exercised through the fake
paths passed to :func:`lint_source` — rules key off path parts, so
``cascade/x.py`` opts a snippet into the cascade-scoped rules.
"""

import textwrap

import pytest

from repro.lint import lint_source
from repro.lint.rules import ALL_RULES, rule_by_code


def findings_for(source, path, select=None):
    return lint_source(textwrap.dedent(source), path, select=select)


def codes(findings):
    return [f.code for f in findings]


class TestRuleCatalogue:
    def test_rules_with_stable_codes(self):
        assert [r.code for r in ALL_RULES] == [
            "RP001", "RP002", "RP003", "RP004", "RP005", "RP006", "RP007",
            "RP008", "RP009", "RP017",
        ]

    def test_every_rule_carries_metadata(self):
        for rule in ALL_RULES:
            assert rule.code.startswith("RP")
            assert rule.name and rule.name != "abstract-rule"
            assert rule.rationale
            assert rule.hint

    def test_rule_by_code(self):
        assert rule_by_code("RP003").name == "no-graph-mutation"
        with pytest.raises(KeyError):
            rule_by_code("RP777")


class TestRP001NoGlobalRandom:
    def test_flags_stdlib_random_call(self):
        found = findings_for(
            """
            import random

            def pick():
                return random.random()
            """,
            "core/sampling.py",
            select=["RP001"],
        )
        assert codes(found) == ["RP001", "RP001"]  # the import and the call

    def test_flags_np_random_call(self):
        found = findings_for(
            """
            import numpy as np

            def pick(n):
                return np.random.default_rng().integers(0, n)
            """,
            "cascade/sampling.py",
            select=["RP001"],
        )
        assert codes(found) == ["RP001"]

    def test_flags_numpy_random_import_of_entry_points(self):
        found = findings_for(
            "from numpy.random import default_rng\n",
            "core/x.py",
            select=["RP001"],
        )
        assert codes(found) == ["RP001"]

    def test_allows_generator_type_usage(self):
        found = findings_for(
            """
            import numpy as np
            from numpy.random import Generator

            def draw(rng: np.random.Generator) -> float:
                return rng.random()
            """,
            "cascade/sampling.py",
            select=["RP001"],
        )
        assert found == []

    def test_exempts_utils_rng(self):
        found = findings_for(
            """
            import numpy as np

            def as_rng(seed):
                return np.random.default_rng(seed)
            """,
            "utils/rng.py",
            select=["RP001"],
        )
        assert found == []

    def test_suppression_comment(self):
        found = findings_for(
            """
            import numpy as np

            def pick():
                return np.random.rand()  # reprolint: disable=RP001
            """,
            "core/x.py",
            select=["RP001"],
        )
        assert found == []


class TestRP002NoFloatEquality:
    def test_flags_equality_with_float_literal(self):
        found = findings_for(
            """
            def skip(weight):
                return weight == 0.0
            """,
            "game/mixed.py",
            select=["RP002"],
        )
        assert codes(found) == ["RP002"]

    def test_flags_not_equal_and_float_cast(self):
        found = findings_for(
            """
            def diff(a, b):
                return float(a) != b
            """,
            "core/payoff.py",
            select=["RP002"],
        )
        assert codes(found) == ["RP002"]

    def test_allows_ordering_comparisons(self):
        found = findings_for(
            """
            def clamp(x):
                return x if x >= 0.0 else 0.0
            """,
            "game/pure.py",
            select=["RP002"],
        )
        assert found == []

    def test_allows_integer_equality(self):
        found = findings_for(
            """
            def is_empty(count):
                return count == 0
            """,
            "core/budgets.py",
            select=["RP002"],
        )
        assert found == []

    def test_out_of_scope_package_not_linted(self):
        found = findings_for(
            "def f(x):\n    return x == 0.0\n",
            "graphs/generators.py",
            select=["RP002"],
        )
        assert found == []

    def test_suppression_comment(self):
        found = findings_for(
            """
            def exact(a):
                return a == 1.0  # reprolint: disable=RP002
            """,
            "game/zero_sum.py",
            select=["RP002"],
        )
        assert found == []


class TestRP003NoGraphMutation:
    def test_flags_attribute_assignment(self):
        found = findings_for(
            """
            def select(graph, k):
                graph.cache = {}
                return []
            """,
            "algorithms/bad.py",
            select=["RP003"],
        )
        assert codes(found) == ["RP003"]

    def test_flags_subscript_mutation_through_method(self):
        found = findings_for(
            """
            def select(graph, k):
                graph.out_degrees()[0] = 0
                return []
            """,
            "algorithms/bad.py",
            select=["RP003"],
        )
        assert codes(found) == ["RP003"]

    def test_flags_mutator_call_on_annotated_param(self):
        found = findings_for(
            """
            def select(network: DiGraph, k: int):
                network.add_edge(0, 1)
                return []
            """,
            "algorithms/bad.py",
            select=["RP003"],
        )
        assert codes(found) == ["RP003"]

    def test_flags_augmented_assignment(self):
        found = findings_for(
            """
            class Selector:
                def _select(self, graph, k, rng=None):
                    graph.weights[3] += 1.0
                    return []
            """,
            "algorithms/bad.py",
            select=["RP003"],
        )
        assert codes(found) == ["RP003"]

    def test_allows_reads_and_local_copies(self):
        found = findings_for(
            """
            def select(graph, k):
                degrees = graph.out_degrees().copy()
                degrees[0] = 0
                return list(degrees[:k])
            """,
            "algorithms/good.py",
            select=["RP003"],
        )
        assert found == []

    def test_out_of_scope_package_not_linted(self):
        found = findings_for(
            "def f(graph):\n    graph.cache = 1\n",
            "core/x.py",
            select=["RP003"],
        )
        assert found == []

    def test_suppression_comment(self):
        found = findings_for(
            """
            def select(graph, k):
                graph.cache = {}  # reprolint: disable=RP003
                return []
            """,
            "algorithms/bad.py",
            select=["RP003"],
        )
        assert found == []


class TestRP004CacheMetricHandles:
    def test_flags_factory_call_inside_function(self):
        found = findings_for(
            """
            from repro.obs.metrics import counter

            def run():
                counter("cascade.simulations").inc()
            """,
            "cascade/engine.py",
            select=["RP004"],
        )
        assert codes(found) == ["RP004"]

    def test_flags_module_attribute_style(self):
        found = findings_for(
            """
            from repro.obs import metrics

            def run(j):
                metrics.histogram(f"cascade.group{j}.spread").observe(1.0)
            """,
            "cascade/engine.py",
            select=["RP004"],
        )
        assert codes(found) == ["RP004"]

    def test_allows_module_level_handles(self):
        found = findings_for(
            """
            from repro.obs.metrics import counter

            _SIMULATIONS = counter("cascade.simulations")

            def run():
                _SIMULATIONS.inc()
            """,
            "cascade/engine.py",
            select=["RP004"],
        )
        assert found == []

    def test_applies_to_core_payoff_only_within_core(self):
        source = """
        from repro.obs.metrics import counter

        def run():
            counter("payoff.tables").inc()
        """
        assert codes(findings_for(source, "core/payoff.py", select=["RP004"])) == [
            "RP004"
        ]
        assert findings_for(source, "core/getreal.py", select=["RP004"]) == []

    def test_suppression_comment(self):
        found = findings_for(
            """
            from repro.obs.metrics import histogram

            def handle(j):
                return histogram(f"g{j}")  # reprolint: disable=RP004
            """,
            "cascade/engine.py",
            select=["RP004"],
        )
        assert found == []


class TestRP005PublicAPIAnnotations:
    def test_flags_unannotated_public_function(self):
        found = findings_for(
            """
            def estimate(graph, rounds):
                return 0.0
            """,
            "core/payoff.py",
            select=["RP005"],
        )
        assert codes(found) == ["RP005"]
        assert "graph" in found[0].message
        assert "return" in found[0].message

    def test_flags_missing_return_annotation_only(self):
        found = findings_for(
            """
            def estimate(graph: object, rounds: int):
                return 0.0
            """,
            "cascade/simulate.py",
            select=["RP005"],
        )
        assert codes(found) == ["RP005"]
        assert "return" in found[0].message

    def test_flags_public_method_and_skips_self(self):
        found = findings_for(
            """
            class Engine:
                def run(self, rounds: int):
                    return rounds
            """,
            "cascade/engine.py",
            select=["RP005"],
        )
        assert codes(found) == ["RP005"]
        assert "self" not in found[0].message

    def test_allows_fully_annotated(self):
        found = findings_for(
            """
            class Engine:
                def __init__(self, rounds: int) -> None:
                    self.rounds = rounds

                def run(self, budget: int) -> float:
                    return float(budget)
            """,
            "game/engine.py",
            select=["RP005"],
        )
        assert found == []

    def test_skips_private_functions_and_nested_helpers(self):
        found = findings_for(
            """
            def _helper(x):
                return x

            def public(x: int) -> int:
                def inner(y):
                    return y
                return inner(x)
            """,
            "core/x.py",
            select=["RP005"],
        )
        assert found == []

    def test_out_of_scope_package_not_linted(self):
        found = findings_for(
            "def f(x):\n    return x\n",
            "graphs/loaders.py",
            select=["RP005"],
        )
        assert found == []

    def test_suppression_on_def_line(self):
        found = findings_for(
            """
            def estimate(graph, rounds):  # reprolint: disable=RP005
                return 0.0
            """,
            "core/payoff.py",
            select=["RP005"],
        )
        assert found == []


class TestRP006NoAdHocSimulationLoops:
    def test_flags_spread_once_loop(self):
        found = findings_for(
            """
            def estimate(model, graph, seeds, rounds, generator):
                total = 0
                for _ in range(rounds):
                    total += model.spread_once(graph, seeds, generator)
                return total / rounds
            """,
            "core/payoff.py",
            select=["RP006"],
        )
        assert codes(found) == ["RP006"]
        assert "spread_once" in found[0].message

    def test_flags_spread_once_comprehension(self):
        found = findings_for(
            """
            def estimate(model, graph, seeds, rounds, generator):
                values = [
                    model.spread_once(graph, seeds, generator)
                    for _ in range(rounds)
                ]
                return sum(values) / rounds
            """,
            "algorithms/sweep.py",
            select=["RP006"],
        )
        assert codes(found) == ["RP006"]

    def test_flags_competitive_engine_loop(self):
        found = findings_for(
            """
            from repro.cascade.competitive import CompetitiveDiffusion

            def follower_spread(graph, model, profile, rounds, generator):
                engine = CompetitiveDiffusion(graph, model)
                total = 0.0
                for _ in range(rounds):
                    outcome = engine.run(profile, generator)
                    total += outcome.spread(1)
                return total / rounds
            """,
            "algorithms/follower.py",
            select=["RP006"],
        )
        assert codes(found) == ["RP006"]
        assert "CompetitiveDiffusion.run" in found[0].message

    def test_flags_engine_stored_on_self(self):
        found = findings_for(
            """
            from repro.cascade.competitive import CompetitiveDiffusion

            class Evaluator:
                def __init__(self, graph, model):
                    self.engine = CompetitiveDiffusion(graph, model)

                def average(self, profile, rounds, generator):
                    total = 0.0
                    while rounds:
                        total += self.engine.run(profile, generator).spread(0)
                        rounds -= 1
                    return total
            """,
            "core/blocking.py",
            select=["RP006"],
        )
        assert codes(found) == ["RP006"]

    def test_allows_single_run_outside_loop(self):
        found = findings_for(
            """
            from repro.cascade.competitive import CompetitiveDiffusion

            def one_shot(graph, model, profile, generator):
                engine = CompetitiveDiffusion(graph, model)
                return engine.run(profile, generator)
            """,
            "core/metrics.py",
            select=["RP006"],
        )
        assert found == []

    def test_allows_unrelated_run_calls_in_loops(self):
        found = findings_for(
            """
            def drive(tasks, runner):
                for task in tasks:
                    runner.run(task)
            """,
            "experiments/harness.py",
            select=["RP006"],
        )
        assert found == []

    def test_exec_package_is_exempt(self):
        found = findings_for(
            """
            def run(self, generator):
                for i in range(self.rounds):
                    self.values[i] = self.model.spread_once(
                        self.graph, self.seeds, generator
                    )
            """,
            "exec/jobs.py",
            select=["RP006"],
        )
        assert found == []

    def test_cascade_simulate_is_exempt(self):
        found = findings_for(
            """
            def estimate_spread(graph, model, seeds, rounds, generator):
                return [
                    model.spread_once(graph, seeds, generator)
                    for _ in range(rounds)
                ]
            """,
            "cascade/simulate.py",
            select=["RP006"],
        )
        assert found == []

    def test_suppression(self):
        found = findings_for(
            """
            def estimate(model, graph, seeds, rounds, generator):
                total = 0
                for _ in range(rounds):
                    total += model.spread_once(graph, seeds, generator)  # reprolint: disable=RP006
                return total / rounds
            """,
            "core/payoff.py",
            select=["RP006"],
        )
        assert found == []


class TestRP007NoPerNodeDiffusionLoops:
    def test_flags_out_neighbors_in_for_loop(self):
        found = findings_for(
            """
            def sweep(graph, frontier, active):
                for u in frontier:
                    for v in graph.out_neighbors(u):
                        active[v] = True
            """,
            "cascade/custom_model.py",
            select=["RP007"],
        )
        assert codes(found) == ["RP007"]
        assert "out_neighbors" in found[0].message

    def test_flags_out_edge_ids_in_while_loop(self):
        found = findings_for(
            """
            def walk(graph, stack, mask):
                while stack:
                    u = stack.pop()
                    live = mask[graph.out_edge_ids(u)]
            """,
            "cascade/custom_model.py",
            select=["RP007"],
        )
        assert codes(found) == ["RP007"]

    def test_flags_expansion_in_comprehension(self):
        found = findings_for(
            """
            def fanout(graph, frontier):
                return [v for u in frontier for v in graph.in_neighbors(u)]
            """,
            "cascade/custom_model.py",
            select=["RP007"],
        )
        assert codes(found) == ["RP007"]

    def test_allows_single_expansion_outside_loops(self):
        found = findings_for(
            """
            def degree(graph, u):
                return graph.out_neighbors(u).shape[0]
            """,
            "cascade/custom_model.py",
            select=["RP007"],
        )
        assert found == []

    def test_kernels_module_is_exempt(self):
        source = """
        def sweep(graph, frontier, active):
            for u in frontier:
                for v in graph.out_neighbors(u):
                    active[v] = True
        """
        assert findings_for(source, "cascade/kernels.py", select=["RP007"]) == []

    def test_out_of_scope_package_not_linted(self):
        found = findings_for(
            """
            def materialize(graph):
                return [graph.out_neighbors(u) for u in range(graph.num_nodes)]
            """,
            "graphs/stats.py",
            select=["RP007"],
        )
        assert found == []

    def test_suppression_comment(self):
        found = findings_for(
            """
            def sweep(graph, frontier, active):
                for u in frontier:
                    for v in graph.out_neighbors(u):  # reprolint: disable=RP007
                        active[v] = True
            """,
            "cascade/custom_model.py",
            select=["RP007"],
        )
        assert found == []


class TestRP008UseSharedSnapshotPools:
    def test_flags_direct_sample_snapshots_call(self):
        found = findings_for(
            """
            from repro.cascade.snapshots import sample_snapshots

            def _select(self, graph, k, rng=None):
                masks = sample_snapshots(graph, self.model, 100, rng)
                return masks
            """,
            "algorithms/my_greedy.py",
            select=["RP008"],
        )
        assert codes(found) == ["RP008"]

    def test_flags_attribute_call(self):
        found = findings_for(
            """
            import repro.cascade.snapshots as snapshots

            def _select(self, graph, k, rng=None):
                return snapshots.sample_snapshots(graph, self.model, 10, rng)
            """,
            "algorithms/my_greedy.py",
            select=["RP008"],
        )
        assert codes(found) == ["RP008"]

    def test_pool_api_is_silent(self):
        found = findings_for(
            """
            def _select_pooled(self, graph, k, rng, pool):
                oracle = pool.oracle(self.model, self.num_snapshots)
                gains = pool.initial_gains(self.model, self.num_snapshots)
                return oracle, gains
            """,
            "algorithms/my_greedy.py",
            select=["RP008"],
        )
        assert found == []

    def test_out_of_scope_package_not_linted(self):
        found = findings_for(
            """
            from repro.cascade.snapshots import sample_snapshots

            def build_pool(graph, model, rng):
                return sample_snapshots(graph, model, 100, rng)
            """,
            "cascade/pools.py",
            select=["RP008"],
        )
        assert found == []

    def test_suppression_comment(self):
        found = findings_for(
            """
            from repro.cascade.snapshots import sample_snapshots

            def _select(self, graph, k, rng=None):
                return sample_snapshots(  # reprolint: disable=RP008
                    graph, self.model, 100, rng
                )
            """,
            "algorithms/my_greedy.py",
            select=["RP008"],
        )
        assert found == []


class TestRP009UseSpanTiming:
    def test_flags_perf_counter_pair_via_tracked_name(self):
        found = findings_for(
            """
            import time

            def work():
                started = time.perf_counter()
                do_things()
                return time.perf_counter() - started
            """,
            "core/pipeline.py",
            select=["RP009"],
        )
        assert codes(found) == ["RP009"]

    def test_flags_bare_perf_counter_import(self):
        found = findings_for(
            """
            from time import perf_counter

            def work():
                t0 = perf_counter()
                do_things()
                elapsed = perf_counter() - t0
                return elapsed
            """,
            "core/pipeline.py",
            select=["RP009"],
        )
        assert codes(found) == ["RP009"]

    def test_unrelated_subtraction_is_silent(self):
        found = findings_for(
            """
            import time

            def work(a, b):
                started = time.perf_counter()
                log(started)
                return a - b
            """,
            "core/pipeline.py",
            select=["RP009"],
        )
        assert found == []

    def test_rebound_name_is_silent(self):
        found = findings_for(
            """
            import time

            def work(budget):
                started = time.perf_counter()
                log(started)
                started = budget
                return 10.0 - started
            """,
            "core/pipeline.py",
            select=["RP009"],
        )
        assert found == []

    def test_obs_package_and_timing_module_exempt(self):
        snippet = """
            import time

            def measure():
                t0 = time.perf_counter()
                return time.perf_counter() - t0
            """
        assert findings_for(snippet, "obs/trace.py", select=["RP009"]) == []
        assert findings_for(snippet, "utils/timing.py", select=["RP009"]) == []
        assert codes(
            findings_for(snippet, "utils/other.py", select=["RP009"])
        ) == ["RP009"]

    def test_suppression_comment(self):
        found = findings_for(
            """
            import time

            def work(journal):
                started = time.perf_counter()
                do_things()
                journal.run_end(
                    duration_seconds=time.perf_counter() - started,  # reprolint: disable=RP009
                )
            """,
            "core/pipeline.py",
            select=["RP009"],
        )
        assert found == []


class TestRP017NoWholeGraphInvalidation:
    def test_flags_fingerprint_invalidate(self):
        found = findings_for(
            """
            def drop(memo, graph):
                memo.invalidate(graph.fingerprint)
            """,
            "core/refresh.py",
            select=["RP017"],
        )
        assert codes(found) == ["RP017"]

    def test_flags_nested_fingerprint_expression(self):
        found = findings_for(
            """
            def drop(memo, applied):
                memo.invalidate(int(applied.parent.fingerprint))
            """,
            "algorithms/refresh.py",
            select=["RP017"],
        )
        assert codes(found) == ["RP017"]

    def test_shard_hash_invalidation_is_silent(self):
        found = findings_for(
            """
            def drop(memo, hashes, dirty):
                for s in dirty:
                    memo.invalidate(hashes[s])
            """,
            "core/refresh.py",
            select=["RP017"],
        )
        assert found == []

    def test_cache_package_exempt(self):
        snippet = """
            def drop(memo, graph):
                memo.invalidate(graph.fingerprint)
            """
        assert findings_for(snippet, "cache/__init__.py", select=["RP017"]) == []
        assert codes(
            findings_for(snippet, "exec/refresh.py", select=["RP017"])
        ) == ["RP017"]

    def test_suppression_comment(self):
        found = findings_for(
            """
            def drop(memo, graph):
                memo.invalidate(graph.fingerprint)  # reprolint: disable=RP017
            """,
            "core/refresh.py",
            select=["RP017"],
        )
        assert found == []
