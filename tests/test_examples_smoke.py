"""Smoke tests: the example scripts run to completion.

Only the fast examples run under pytest (the heavier ones are exercised
manually / by the benchmark suite); each is invoked as a subprocess so
import side effects and ``__main__`` guards are covered too.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"
SRC = Path(__file__).resolve().parents[1] / "src"


def _env(base: dict | None = None) -> dict:
    """Subprocess env with the repo's src/ on PYTHONPATH.

    Examples import :mod:`repro`, which is not installed in the test
    environment — the interpreter finds it through PYTHONPATH, so any env
    we hand to a subprocess must carry (or gain) the src path.
    """
    env = dict(os.environ) if base is None else dict(base)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        f"{SRC}{os.pathsep}{existing}" if existing else str(SRC)
    )
    return env


def _run(script: str, timeout: int = 240) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=_env(),
    )


class TestExampleScripts:
    def test_all_examples_exist(self):
        expected = {
            "quickstart.py",
            "smartphone_war.py",
            "three_player_market.py",
            "strategy_tournament.py",
            "market_timeline.py",
            "custom_dataset.py",
            "reproduce_paper.py",
        }
        assert expected <= {p.name for p in EXAMPLES.glob("*.py")}

    def test_quickstart_runs(self):
        result = _run("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "equilibrium type" in result.stdout
        assert "seeds to target" in result.stdout

    def test_reproduce_paper_rejects_unknown(self):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES / "reproduce_paper.py"), "fig99"],
            capture_output=True,
            text=True,
            timeout=60,
            env=_env(),
        )
        assert result.returncode == 2
        assert "unknown experiment" in result.stdout

    def test_reproduce_paper_table3(self, monkeypatch):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES / "reproduce_paper.py"), "table3"],
            capture_output=True,
            text=True,
            timeout=120,
            env=_env(
                {
                    "REPRO_BENCH_NODES": "300",
                    "REPRO_BENCH_ROUNDS": "3",
                    "REPRO_BENCH_SNAPSHOTS": "5",
                    "REPRO_BENCH_KS": "3",
                    "PATH": os.environ.get(
                        "PATH", "/usr/bin:/bin:/usr/local/bin"
                    ),
                    "HOME": os.environ.get("HOME", "/root"),
                }
            ),
        )
        assert result.returncode == 0, result.stderr
        assert "Table 3" in result.stdout
