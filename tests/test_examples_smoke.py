"""Smoke tests: the example scripts run to completion.

Only the fast examples run under pytest (the heavier ones are exercised
manually / by the benchmark suite); each is invoked as a subprocess so
import side effects and ``__main__`` guards are covered too.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def _run(script: str, timeout: int = 240) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestExampleScripts:
    def test_all_examples_exist(self):
        expected = {
            "quickstart.py",
            "smartphone_war.py",
            "three_player_market.py",
            "strategy_tournament.py",
            "market_timeline.py",
            "custom_dataset.py",
            "reproduce_paper.py",
        }
        assert expected <= {p.name for p in EXAMPLES.glob("*.py")}

    def test_quickstart_runs(self):
        result = _run("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "equilibrium type" in result.stdout
        assert "seeds to target" in result.stdout

    def test_reproduce_paper_rejects_unknown(self):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES / "reproduce_paper.py"), "fig99"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 2
        assert "unknown experiment" in result.stdout

    def test_reproduce_paper_table3(self, monkeypatch):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES / "reproduce_paper.py"), "table3"],
            capture_output=True,
            text=True,
            timeout=120,
            env={
                "REPRO_BENCH_NODES": "300",
                "REPRO_BENCH_ROUNDS": "3",
                "REPRO_BENCH_SNAPSHOTS": "5",
                "REPRO_BENCH_KS": "3",
                "PATH": "/usr/bin:/bin:/usr/local/bin",
                "HOME": "/root",
            },
        )
        assert result.returncode == 0, result.stderr
        assert "Table 3" in result.stdout
